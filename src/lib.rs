#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! Workspace-level re-exports for the SuperPin-RS reproduction.
//!
//! This crate exists to host the repository's integration tests
//! (`tests/`) and runnable examples (`examples/`). Library users should
//! depend on the individual crates ([`superpin`], [`superpin_dbi`],
//! [`superpin_vm`], …) directly.

pub use superpin;
pub use superpin_dbi;
pub use superpin_isa;
pub use superpin_sched;
pub use superpin_tools;
pub use superpin_vm;
pub use superpin_workloads;

//! Quickstart: run the `icount2` SuperTool on the gzip workload under
//! native execution, traditional Pin, and SuperPin, and compare.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use superpin::baseline::{run_native, run_pin};
use superpin::{SharedMem, SuperPinConfig, SuperPinRunner};
use superpin_dbi::cycles_to_secs;
use superpin_tools::ICount2;
use superpin_vm::process::Process;
use superpin_workloads::{find, Scale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = find("gzip").expect("gzip is in the catalog");
    let program = spec.build(Scale::Small);

    // 1. Native: the ground truth.
    let native = run_native(Process::load(1, &program)?)?;
    println!(
        "native:   {:>12} insts  {:>10} cycles ({:.3} ms virtual)",
        native.insts,
        native.cycles,
        1e3 * cycles_to_secs(native.cycles)
    );

    // 2. Traditional Pin: serial instrumentation.
    let shared = SharedMem::new();
    let pin = run_pin(Process::load(1, &program)?, ICount2::new(&shared))?;
    println!(
        "pin:      {:>12} count  {:>10} cycles ({:.1}% of native)",
        pin.tool.local_count(),
        pin.cycles,
        100.0 * pin.cycles as f64 / native.cycles as f64
    );

    // 3. SuperPin: parallel instrumented timeslices.
    let shared = SharedMem::new();
    let tool = ICount2::new(&shared);
    let mut cfg = SuperPinConfig::paper_default();
    cfg.timeslice_cycles = native.cycles / 20; // ~20 slices
    cfg.quantum_cycles = (cfg.timeslice_cycles / 50).max(500);
    let report = SuperPinRunner::new(
        Process::load(1, &program)?,
        tool.clone(),
        shared.clone(),
        cfg,
    )?
    .run()?;
    println!(
        "superpin: {:>12} count  {:>10} cycles ({:.1}% of native, {} slices, {:.2}x vs pin)",
        tool.total(&shared),
        report.total_cycles,
        100.0 * report.total_cycles as f64 / native.cycles as f64,
        report.slice_count(),
        pin.cycles as f64 / report.total_cycles as f64
    );

    assert_eq!(
        pin.tool.local_count(),
        native.insts,
        "Pin count must be exact"
    );
    assert_eq!(
        tool.total(&shared),
        native.insts,
        "merged count must be exact"
    );
    println!(
        "counts agree: every mode saw exactly {} instructions",
        native.insts
    );
    Ok(())
}

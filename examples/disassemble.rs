//! Disassemble a workload binary and annotate it with execution counts —
//! a mini objdump + profile overlay built from the public APIs.
//!
//! ```text
//! cargo run --release --example disassemble [benchmark]
//! ```

use superpin::baseline::run_pin;
use superpin_isa::disassemble;
use superpin_tools::BblCount;
use superpin_vm::process::Process;
use superpin_workloads::{find, Scale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "mcf".to_owned());
    let Some(spec) = find(&name) else {
        eprintln!("unknown benchmark `{name}`");
        std::process::exit(2);
    };
    let program = spec.build(Scale::Tiny);

    // Profile block executions under traditional Pin.
    let pin = run_pin(Process::load(1, &program)?, BblCount::new())?;
    let blocks = pin.tool.local_blocks();

    // Print the listing from `main` on, annotating block heads with
    // their execution counts.
    let listing = disassemble(&program);
    let mut in_main = false;
    let mut printed = 0;
    for line in listing.lines() {
        if line.contains("<main>:") {
            in_main = true;
        }
        if !in_main {
            continue;
        }
        // Annotate lines whose address is a counted block head.
        let addr = u64::from_str_radix(
            line.trim_start_matches("0x")
                .split([':', ' '])
                .next()
                .unwrap_or(""),
            16,
        )
        .unwrap_or(0);
        match blocks.get(&addr) {
            Some(count) => println!("{line}    ; executed {count}x"),
            None => println!("{line}"),
        }
        printed += 1;
        if printed > 60 {
            println!("... ({} more lines)", listing.lines().count() - printed);
            break;
        }
    }

    println!(
        "\n{}: {} static instructions, {} dynamic, {} distinct blocks executed",
        spec.name,
        program.static_inst_count(),
        pin.insts,
        blocks.len()
    );
    Ok(())
}

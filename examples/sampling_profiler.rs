//! A Shadow-Profiler-style sampling profiler (paper §5): the tool
//! samples only the first instructions of every slice, then calls the
//! `SP_EndSlice` analogue so the rest of the span costs nothing.
//!
//! ```text
//! cargo run --release --example sampling_profiler
//! ```

use superpin::{SharedMem, SuperPinConfig, SuperPinRunner};
use superpin_tools::{Sampler, BUCKET_BYTES};
use superpin_vm::process::Process;
use superpin_workloads::{find, Scale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = find("crafty").expect("crafty is in the catalog");
    let program = spec.build(Scale::Small);

    let shared = SharedMem::new();
    let tool = Sampler::new(400); // 400 instruction samples per slice
    let mut cfg = SuperPinConfig::paper_default();
    cfg.timeslice_cycles = 10_000;
    cfg.quantum_cycles = 500;
    let report =
        SuperPinRunner::new(Process::load(1, &program)?, tool.clone(), shared, cfg)?.run()?;

    let histogram = tool.merged_histogram();
    println!(
        "{} slices, {} samples over {} master instructions ({:.2}% sampled)",
        report.slice_count(),
        tool.merged_samples(),
        report.master_insts,
        100.0 * tool.merged_samples() as f64 / report.master_insts as f64
    );

    let mut hottest: Vec<(u64, u64)> = histogram.into_iter().collect();
    hottest.sort_by_key(|&(_, count)| std::cmp::Reverse(count));
    println!("hottest code regions:");
    for (bucket, count) in hottest.iter().take(5) {
        let addr = bucket * BUCKET_BYTES;
        let symbol = program
            .symbol_for_addr(addr)
            .map(|sym| sym.name.as_str())
            .unwrap_or("?");
        println!("  {addr:#08x} [{symbol:<10}] {count:>6} samples");
    }

    // Sampling must be far cheaper than full instrumentation: most of
    // each span was skipped.
    assert!(tool.merged_samples() < report.master_insts / 2);
    Ok(())
}

//! Writing your own SuperTool: a call-graph profiler that counts, per
//! callee entry point, how many times it was called — demonstrating the
//! full `SP_*` API surface on a custom tool (paper §5).
//!
//! ```text
//! cargo run --release --example custom_tool
//! ```

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use superpin::baseline::run_pin;
use superpin::{SharedMem, SuperPinConfig, SuperPinRunner, SuperTool};
use superpin_dbi::{IArg, IPoint, Inserter, Pintool, Trace};
use superpin_isa::Inst;
use superpin_vm::process::Process;
use superpin_workloads::{find, Scale};

/// Counts dynamic calls per callee address.
#[derive(Clone, Default)]
struct CallCounter {
    /// Slice-local counts (reset per slice, like the paper's `icount`).
    local: BTreeMap<u64, u64>,
    /// Shared merged table (our shared-memory region).
    merged: Arc<Mutex<BTreeMap<u64, u64>>>,
}

impl CallCounter {
    fn merged_calls(&self) -> BTreeMap<u64, u64> {
        self.merged.lock().expect("merged table poisoned").clone()
    }
}

impl Pintool for CallCounter {
    fn instrument_trace(&mut self, trace: &Trace, inserter: &mut Inserter<Self>) {
        for iref in trace.insts() {
            match iref.inst {
                // Direct call: the target is static.
                Inst::Jal { target, .. } => inserter.insert_call(
                    iref.addr,
                    IPoint::Before,
                    move |tool, _, _| *tool.local.entry(target).or_insert(0) += 1,
                    vec![],
                ),
                // Indirect call: read the register at run time. A jalr
                // through `ra` is the `ret` idiom, not a call.
                Inst::Jalr { rs, .. } if rs != superpin_isa::Reg::RA => inserter.insert_call(
                    iref.addr,
                    IPoint::Before,
                    |tool, ctx, _| *tool.local.entry(ctx.arg(0)).or_insert(0) += 1,
                    vec![IArg::RegValue(rs)],
                ),
                _ => {}
            }
        }
    }

    fn name(&self) -> &'static str {
        "call-counter"
    }
}

impl SuperTool for CallCounter {
    fn reset(&mut self, _slice: u32) {
        self.local.clear();
    }

    fn on_slice_end(&mut self, _slice: u32, _shared: &SharedMem) {
        let mut merged = self.merged.lock().expect("merged table poisoned");
        for (&callee, &count) in &self.local {
            *merged.entry(callee).or_insert(0) += count;
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = find("eon").expect("eon is in the catalog");
    let program = spec.build(Scale::Small);

    // Serial reference.
    let pin = run_pin(Process::load(1, &program)?, CallCounter::default())?;
    let serial: BTreeMap<u64, u64> = pin.tool.local.clone();

    // SuperPin run.
    let shared = SharedMem::new();
    let tool = CallCounter::default();
    let mut cfg = SuperPinConfig::paper_default();
    cfg.timeslice_cycles = 15_000;
    cfg.quantum_cycles = 500;
    let report =
        SuperPinRunner::new(Process::load(1, &program)?, tool.clone(), shared, cfg)?.run()?;
    let merged = tool.merged_calls();

    println!(
        "{} slices; {} distinct callees",
        report.slice_count(),
        merged.len()
    );
    let mut top: Vec<(&u64, &u64)> = merged.iter().collect();
    top.sort_by_key(|&(_, count)| std::cmp::Reverse(*count));
    println!("hottest callees:");
    for (addr, count) in top.iter().take(5) {
        let name = program
            .symbol_for_addr(**addr)
            .map(|sym| sym.name.as_str())
            .unwrap_or("?");
        println!("  {addr:#08x} [{name:<8}] {count:>7} calls");
    }

    assert_eq!(merged, serial, "merged call counts must equal serial Pin");
    println!("merged == serial: call counts are exact across slices");
    Ok(())
}

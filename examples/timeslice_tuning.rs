//! Timeslice tuning (a miniature of the paper's Figure 6): sweep the
//! `-spmsec` analogue over gcc and print the runtime breakdown at each
//! setting.
//!
//! ```text
//! cargo run --release --example timeslice_tuning
//! ```

use superpin::{SharedMem, SuperPinConfig, SuperPinRunner};
use superpin_tools::ICount2;
use superpin_vm::process::Process;
use superpin_workloads::{find, Scale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = find("gcc").expect("gcc is in the catalog");
    let program = spec.build(Scale::Small);

    println!(
        "{:>10} {:>9} {:>12} {:>9} {:>10} {:>9} {:>7}",
        "timeslice", "native", "fork&others", "sleep", "pipeline", "total", "slices"
    );
    for timeslice in [2_500u64, 5_000, 10_000, 20_000] {
        let shared = SharedMem::new();
        let tool = ICount2::new(&shared);
        let mut cfg = SuperPinConfig::paper_default();
        cfg.timeslice_cycles = timeslice;
        cfg.quantum_cycles = (timeslice / 50).max(250);
        let report = SuperPinRunner::new(Process::load(1, &program)?, tool, shared, cfg)?.run()?;
        let b = &report.breakdown;
        println!(
            "{:>10} {:>9} {:>12} {:>9} {:>10} {:>9} {:>7}",
            timeslice,
            b.native_cycles,
            b.fork_other_cycles,
            b.sleep_cycles,
            b.pipeline_cycles,
            report.total_cycles,
            report.slice_count()
        );
        assert_eq!(
            b.total_cycles(),
            report.total_cycles,
            "breakdown must account for the whole runtime"
        );
    }
    println!("(cycles; larger timeslices trade fork/compile overhead for pipeline delay)");
    Ok(())
}

//! Data-cache simulation with SuperPin's assumed-hit reconciliation
//! (paper §5.2): a direct-mapped cache simulated serially under Pin and
//! in parallel slices under SuperPin, with *exactly* equal results.
//!
//! ```text
//! cargo run --release --example dcache_sim
//! ```

use superpin::baseline::run_pin;
use superpin::{SharedMem, SuperPinConfig, SuperPinRunner};
use superpin_tools::{DCache, DCacheConfig};
use superpin_vm::process::Process;
use superpin_workloads::{find, Scale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // mcf: the pointer-chasing, cache-unfriendly benchmark.
    let spec = find("mcf").expect("mcf is in the catalog");
    let program = spec.build(Scale::Small);

    // Serial reference simulation under traditional Pin.
    let shared = SharedMem::new();
    let pin = run_pin(
        Process::load(1, &program)?,
        DCache::new(&shared, DCacheConfig::small()),
    )?;
    let serial = pin.tool.local_result();
    println!(
        "serial dcache:   {:>9} hits {:>8} misses (miss ratio {:.2}%)",
        serial.hits,
        serial.misses,
        100.0 * serial.miss_ratio()
    );

    // SuperPin: each slice assumes its first access per set hits, then
    // reconciles against the previous slice's final state at merge time.
    let shared = SharedMem::new();
    let tool = DCache::new(&shared, DCacheConfig::small());
    let mut cfg = SuperPinConfig::paper_default();
    cfg.timeslice_cycles = 20_000;
    cfg.quantum_cycles = 500;
    let report = SuperPinRunner::new(
        Process::load(1, &program)?,
        tool.clone(),
        shared.clone(),
        cfg,
    )?
    .run()?;
    let merged = tool.merged_result(&shared);
    println!(
        "superpin dcache: {:>9} hits {:>8} misses ({} slices)",
        merged.hits,
        merged.misses,
        report.slice_count()
    );

    assert_eq!(
        merged, serial,
        "reconciled slice results must equal the serial simulation exactly"
    );
    println!("reconciliation exact: sliced == serial");
    Ok(())
}

//! A small, dependency-free stand-in for the `proptest` crate.
//!
//! The build must work with no registry access (see ISSUE 1 / ROADMAP
//! tier-1 verify), so this crate re-implements the subset of the
//! proptest API the workspace uses: `Strategy` + `prop_map`, `any`,
//! `Just`, `prop_oneof!`, tuple and integer-range strategies,
//! `collection::vec`, and the `proptest!` macro with
//! `ProptestConfig::with_cases`.
//!
//! Differences from real proptest, on purpose:
//! - cases are generated from a seed derived from the test name, so
//!   runs are fully deterministic across machines;
//! - there is no shrinking — a failing case panics with its case index,
//!   which is enough to re-run it under a debugger;
//! - `prop_assert!`/`prop_assert_eq!` are plain assertions.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Deterministic splitmix64 generator used to drive all strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded from a test name and case index; the same
    /// `(name, case)` pair always yields the same stream.
    pub fn deterministic(name: &str, case: u32) -> TestRng {
        // FNV-1a over the name, mixed with the case index.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
        TestRng {
            state: hash ^ (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
        }
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        // Multiply-shift bounded sampling; bias is irrelevant for tests.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// Error type kept for API compatibility; assertions panic directly.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// How many cases each `proptest!` test runs (default 64 here; real
/// proptest defaults to 256 — trimmed for suite runtime).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of values of one type. The `Value` associated type and
/// `prop_map` mirror real proptest's `Strategy`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe view of [`Strategy`] backing [`BoxedStrategy`].
trait DynStrategy {
    type Value;
    fn dyn_generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy, as returned by [`Strategy::boxed`].
pub struct BoxedStrategy<V>(Box<dyn DynStrategy<Value = V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.dyn_generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed alternatives; built by `prop_oneof!`.
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Union<V> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let index = rng.below(self.arms.len() as u64) as usize;
        self.arms[index].generate(rng)
    }
}

/// Types with a canonical "any value" strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy producing arbitrary values of `T`.
pub struct Any<T>(std::marker::PhantomData<T>);

/// The canonical strategy for `T` (mirrors `proptest::prelude::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $ty
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}

pub mod collection {
    //! `proptest::collection` subset: vectors of strategy-generated
    //! elements with a fixed or ranged length.

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Inclusive-exclusive length bounds accepted by [`vec`]; built
    /// from a bare `usize` (exact length) or a `Range<usize>`.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> SizeRange {
            SizeRange {
                min: exact,
                max_exclusive: exact + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(range: Range<usize>) -> SizeRange {
            assert!(range.start < range.end, "empty vec size range");
            SizeRange {
                min: range.start,
                max_exclusive: range.end,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec` equivalent.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let len = self.size.min + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod strategy {
    //! Re-exports mirroring `proptest::strategy`.
    pub use super::{BoxedStrategy, Just, Map, Strategy, Union};
}

pub mod prelude {
    //! The glob-import surface (`use proptest::prelude::*`).
    pub use super::{any, Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Uniformly picks one of the listed strategies each case. All arms
/// must produce the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { .. }`
/// item becomes a test running `config.cases` deterministic cases.
/// Attributes on the item (including `#[test]`) are passed through
/// unchanged, matching real proptest's expansion at our call sites.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut rng = $crate::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                $body
            }
        }
    )*};
}

//! The instrumentation-insertion API, modelled on Pin's
//! `INS_InsertCall` / `INS_InsertIfCall` / `INS_InsertThenCall`.
//!
//! Analysis routines are closures over the tool state. An
//! [`Inserter`] collects them while the tool instruments a freshly
//! discovered [`Trace`](crate::trace::Trace); the engine then compiles
//! the trace + calls into the code cache.

use std::fmt;
use std::sync::Arc;
use superpin_isa::Reg;

/// Where an analysis call is attached relative to its instruction
/// (Pin's `IPOINT_BEFORE` / `IPOINT_AFTER`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum IPoint {
    /// Runs before the instruction executes.
    Before,
    /// Runs after the instruction executes (not supported on `syscall`,
    /// which hands control to the supervisor — use
    /// [`Pintool::on_syscall`](crate::tool::Pintool::on_syscall) instead).
    After,
}

/// Argument descriptors materialized for analysis calls (Pin's `IARG_*`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IArg {
    /// The instrumented instruction's address (`IARG_INST_PTR`).
    InstPtr,
    /// A constant (`IARG_UINT32`/`IARG_UINT64`).
    UInt(u64),
    /// Effective address of the instruction's memory operand
    /// (`IARG_MEMORYOP_EA`); 0 for non-memory instructions. Always
    /// computed from pre-execution register values.
    MemAddr,
    /// Bytes accessed by the memory operand; 0 for non-memory
    /// instructions.
    MemSize,
    /// 1 if the instruction writes memory, else 0.
    IsMemWrite,
    /// 1 if a control transfer was taken by this instruction
    /// (`IARG_BRANCH_TAKEN`; meaningful only at [`IPoint::After`]).
    BranchTaken,
    /// Pre-execution value of a register (`IARG_REG_VALUE`).
    RegValue(Reg),
    /// The `i`th 64-bit word above the stack pointer, i.e.
    /// `mem[sp + 8·i]`; 0 if unmapped. SuperPin's full signature check
    /// compares "the top 100 words on the stack" (paper §4.4).
    StackWord(u32),
    /// The address execution continues at if the instruction falls
    /// through (`IARG_FALLTHROUGH_ADDR`).
    FallthroughAddr,
}

/// Runtime context passed to every analysis routine.
#[derive(Clone, Copy, Debug)]
pub struct CallCtx<'a> {
    /// Address of the instrumented instruction.
    pub pc: u64,
    /// Argument values, in the order the call requested them.
    pub args: &'a [u64],
}

impl CallCtx<'_> {
    /// The `i`th requested argument (0 if fewer were requested —
    /// analysis code stays panic-free on tool bugs).
    pub fn arg(&self, i: usize) -> u64 {
        self.args.get(i).copied().unwrap_or(0)
    }
}

/// Control surface handed to analysis routines.
///
/// Lets a routine charge extra virtual cycles (e.g. SuperPin's full
/// signature comparison walks 100 stack words, paper §4.4) and request
/// that the engine stop at the end of the current instruction (used by
/// `SP_EndSlice` and by signature-detection hits).
#[derive(Debug, Default)]
pub struct EngineCtl {
    stop: bool,
    extra_cycles: u64,
}

impl EngineCtl {
    /// Ask the engine to stop after the current instruction completes.
    pub fn request_stop(&mut self) {
        self.stop = true;
    }

    /// Whether a stop has been requested.
    pub fn stop_requested(&self) -> bool {
        self.stop
    }

    /// Charge additional virtual cycles to the analysis account.
    pub fn charge_cycles(&mut self, cycles: u64) {
        self.extra_cycles += cycles;
    }

    /// Cycles charged so far.
    pub fn extra_cycles(&self) -> u64 {
        self.extra_cycles
    }
}

/// A plain analysis routine over tool state `T`.
pub type AnalysisFn<T> = Arc<dyn Fn(&mut T, &CallCtx<'_>, &mut EngineCtl) + Send + Sync>;

/// A predicate routine (`INS_InsertIfCall`): returns `true` to trigger
/// the paired then-call.
pub type PredicateFn<T> = Arc<dyn Fn(&mut T, &CallCtx<'_>) -> bool + Send + Sync>;

/// One inserted call, plain or if/then guarded.
pub enum Call<T> {
    /// Unconditional analysis call.
    Plain {
        /// The analysis routine.
        func: AnalysisFn<T>,
        /// Arguments materialized at each execution.
        args: Vec<IArg>,
    },
    /// `INS_InsertIfCall` + `INS_InsertThenCall`: a cheap inlined
    /// predicate guarding an expensive call (paper §4.4 uses this pair
    /// for signature detection).
    IfThen {
        /// The inlined quick predicate.
        pred: PredicateFn<T>,
        /// Predicate arguments.
        pred_args: Vec<IArg>,
        /// The expensive guarded routine.
        then: AnalysisFn<T>,
        /// Then-call arguments.
        then_args: Vec<IArg>,
    },
}

impl<T> Clone for Call<T> {
    fn clone(&self) -> Call<T> {
        match self {
            Call::Plain { func, args } => Call::Plain {
                func: Arc::clone(func),
                args: args.clone(),
            },
            Call::IfThen {
                pred,
                pred_args,
                then,
                then_args,
            } => Call::IfThen {
                pred: Arc::clone(pred),
                pred_args: pred_args.clone(),
                then: Arc::clone(then),
                then_args: then_args.clone(),
            },
        }
    }
}

impl<T> fmt::Debug for Call<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Call::Plain { args, .. } => f.debug_struct("Plain").field("args", args).finish(),
            Call::IfThen {
                pred_args,
                then_args,
                ..
            } => f
                .debug_struct("IfThen")
                .field("pred_args", pred_args)
                .field("then_args", then_args)
                .finish(),
        }
    }
}

/// Collects instrumentation for one trace while a tool's
/// `instrument_trace` hook runs.
pub struct Inserter<T> {
    calls: Vec<(u64, IPoint, Call<T>)>,
}

impl<T> Default for Inserter<T> {
    fn default() -> Inserter<T> {
        Inserter { calls: Vec::new() }
    }
}

impl<T> fmt::Debug for Inserter<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Inserter")
            .field("calls", &self.calls.len())
            .finish()
    }
}

impl<T: 'static> Inserter<T> {
    /// Creates an empty inserter.
    pub fn new() -> Inserter<T> {
        Inserter::default()
    }

    /// Inserts an unconditional analysis call at `addr`
    /// (`INS_InsertCall`).
    pub fn insert_call(
        &mut self,
        addr: u64,
        point: IPoint,
        func: impl Fn(&mut T, &CallCtx<'_>, &mut EngineCtl) + Send + Sync + 'static,
        args: Vec<IArg>,
    ) {
        self.calls.push((
            addr,
            point,
            Call::Plain {
                func: Arc::new(func),
                args,
            },
        ));
    }

    /// Inserts an if/then guarded pair at `addr`
    /// (`INS_InsertIfCall` + `INS_InsertThenCall`). The predicate is
    /// charged as a cheap inlined check; the then-call is only charged
    /// (and run) when the predicate returns `true`.
    pub fn insert_if_then_call(
        &mut self,
        addr: u64,
        point: IPoint,
        pred: impl Fn(&mut T, &CallCtx<'_>) -> bool + Send + Sync + 'static,
        pred_args: Vec<IArg>,
        then: impl Fn(&mut T, &CallCtx<'_>, &mut EngineCtl) + Send + Sync + 'static,
        then_args: Vec<IArg>,
    ) {
        self.calls.push((
            addr,
            point,
            Call::IfThen {
                pred: Arc::new(pred),
                pred_args,
                then: Arc::new(then),
                then_args,
            },
        ));
    }

    /// Number of calls collected.
    pub fn len(&self) -> usize {
        self.calls.len()
    }

    /// Whether no calls were collected.
    pub fn is_empty(&self) -> bool {
        self.calls.is_empty()
    }

    /// Drains the collected calls (used by the compiler).
    pub(crate) fn into_calls(self) -> Vec<(u64, IPoint, Call<T>)> {
        self.calls
    }

    /// Re-homes every call collected for an inner tool type `U` onto this
    /// inserter's tool type `T`, through a projection.
    ///
    /// This is how wrapper tools compose: SuperPin's slice wrapper runs
    /// the user tool's `instrument_trace` into an `Inserter<U>`, then
    /// absorbs it so the user's analysis routines see `&mut U` while the
    /// engine drives `&mut T`.
    pub fn absorb<U: 'static>(&mut self, inner: Inserter<U>, project: fn(&mut T) -> &mut U) {
        for (addr, point, call) in inner.into_calls() {
            let mapped = match call {
                Call::Plain { func, args } => Call::Plain {
                    func: Arc::new(move |t: &mut T, ctx: &CallCtx<'_>, ctl: &mut EngineCtl| {
                        func(project(t), ctx, ctl)
                    }) as AnalysisFn<T>,
                    args,
                },
                Call::IfThen {
                    pred,
                    pred_args,
                    then,
                    then_args,
                } => Call::IfThen {
                    pred: Arc::new(move |t: &mut T, ctx: &CallCtx<'_>| pred(project(t), ctx))
                        as PredicateFn<T>,
                    pred_args,
                    then: Arc::new(move |t: &mut T, ctx: &CallCtx<'_>, ctl: &mut EngineCtl| {
                        then(project(t), ctx, ctl)
                    }) as AnalysisFn<T>,
                    then_args,
                },
            };
            self.calls.push((addr, point, mapped));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Counter {
        hits: u64,
    }

    #[test]
    fn collects_calls_in_order() {
        let mut inserter: Inserter<Counter> = Inserter::new();
        inserter.insert_call(0x10, IPoint::Before, |t, _, _| t.hits += 1, vec![]);
        inserter.insert_if_then_call(
            0x18,
            IPoint::After,
            |_, _| true,
            vec![IArg::InstPtr],
            |t, _, _| t.hits += 10,
            vec![],
        );
        assert_eq!(inserter.len(), 2);
        let calls = inserter.into_calls();
        assert_eq!(calls[0].0, 0x10);
        assert!(matches!(calls[1].2, Call::IfThen { .. }));
    }

    #[test]
    fn absorb_projects_inner_tool() {
        struct Wrapper {
            inner: Counter,
            own: u64,
        }
        let mut inner: Inserter<Counter> = Inserter::new();
        inner.insert_call(0x10, IPoint::Before, |t, _, _| t.hits += 5, vec![]);

        let mut outer: Inserter<Wrapper> = Inserter::new();
        outer.insert_call(0x10, IPoint::Before, |t, _, _| t.own += 1, vec![]);
        outer.absorb(inner, |w| &mut w.inner);
        assert_eq!(outer.len(), 2);

        let mut wrapper = Wrapper {
            inner: Counter::default(),
            own: 0,
        };
        let ctx = CallCtx {
            pc: 0x10,
            args: &[],
        };
        let mut ctl = EngineCtl::default();
        for (_, _, call) in outer.into_calls() {
            if let Call::Plain { func, .. } = call {
                func(&mut wrapper, &ctx, &mut ctl);
            }
        }
        assert_eq!(wrapper.own, 1);
        assert_eq!(wrapper.inner.hits, 5);
    }

    #[test]
    fn engine_ctl_accumulates() {
        let mut ctl = EngineCtl::default();
        assert!(!ctl.stop_requested());
        ctl.charge_cycles(3);
        ctl.charge_cycles(4);
        ctl.request_stop();
        assert!(ctl.stop_requested());
        assert_eq!(ctl.extra_cycles(), 7);
    }

    #[test]
    fn call_ctx_arg_is_total() {
        let ctx = CallCtx { pc: 0, args: &[9] };
        assert_eq!(ctx.arg(0), 9);
        assert_eq!(ctx.arg(5), 0);
    }
}

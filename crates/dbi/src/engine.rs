//! The instrumentation engine: dispatcher + JIT loop over a guest process.

use crate::cache::{
    CodeCache, CompiledInst, CompiledTrace, FusedMeta, InsertedCall, DEFAULT_CAPACITY_INSTS,
};
use crate::cost::CostModel;
use crate::inserter::{Call, CallCtx, EngineCtl, IArg, Inserter};
use crate::shared_index::SharedTraceIndex;
use crate::spill::ClobberViolation;
use crate::tool::Pintool;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::Arc;
use superpin_analysis::{SoundnessOracle, SuperblockPlan};
use superpin_fault::{FailpointRegistry, Site};
use superpin_isa::Inst;
use superpin_vm::cpu::ExecOutcome;
use superpin_vm::kernel::SyscallRecord;
use superpin_vm::process::Process;
use superpin_vm::VmError;

/// Where the engine's cycles went (paper §6.3's overhead taxonomy).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CycleBreakdown {
    /// Application instructions executed out of the code cache.
    pub app: u64,
    /// Inserted analysis calls, their arguments, and tool-charged extras.
    pub analysis: u64,
    /// JIT compilation ("compilation slowdown").
    pub jit: u64,
    /// Per-trace dispatch.
    pub dispatch: u64,
    /// Syscall servicing / playback.
    pub syscall: u64,
}

impl CycleBreakdown {
    /// Sum of all components.
    pub fn total(&self) -> u64 {
        self.app + self.analysis + self.jit + self.dispatch + self.syscall
    }
}

/// Host-only superblock-plan counters. Deliberately separate from
/// [`EngineStats`]: the plan is an execution accelerator, so everything
/// that feeds bit-identical-report comparisons must not change with a
/// plan installed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlanStats {
    /// Trace compilations that fetched from the plan's pre-decoded
    /// stream (a predicted-hot entry missed the cache).
    pub planned_traces: u64,
    /// Instructions those compilations took from the pre-decode.
    pub planned_insts: u64,
    /// Instructions a planned compilation still had to decode live
    /// (address outside the plan, e.g. past a split point).
    pub fallback_decodes: u64,
    /// Register restores skipped thanks to the plan's refined
    /// interprocedural liveness (see
    /// [`crate::cache::InsertedCall::elided`]).
    pub elided_restores: u64,
}

/// Execution counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Cycle accounting.
    pub cycles: CycleBreakdown,
    /// Instructions executed under instrumentation.
    pub insts_executed: u64,
    /// Trace dispatches.
    pub traces_executed: u64,
    /// Plain analysis calls invoked.
    pub analysis_calls: u64,
    /// Inlined if-checks evaluated.
    pub if_checks: u64,
    /// Then-calls triggered by a true if-check.
    pub then_calls: u64,
    /// Compilations that adopted a shared-cache trace at the cheaper
    /// consistency-check rate (paper §8 extension).
    pub shared_cache_adoptions: u64,
    /// Compilations that probed the shared index and claimed the trace
    /// first (full JIT price while sharing). Zero without a shared cache.
    pub shared_cache_misses: u64,
    /// Shared-index probes that had to block on a contended shard lock.
    /// Structurally zero in epoch-snapshot mode, where engines never
    /// touch the live index mid-run.
    pub shared_cache_contention: u64,
}

/// Why [`Engine::run`] returned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineStop {
    /// The cycle budget was consumed; call `run` again to continue.
    BudgetExhausted,
    /// Parked at a syscall: service with [`Engine::service_syscall`] or
    /// replay with [`Engine::playback_syscall`].
    SyscallEntry,
    /// The guest exited with this code.
    Exited(i64),
    /// An analysis routine requested a stop (`SP_EndSlice`, signature
    /// detection). The pending instruction has *not* executed if the stop
    /// came from a before-call.
    ToolStop,
    /// The guest executed `halt`.
    Halted,
}

/// Result of one [`Engine::run`] invocation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunResult {
    /// Why the engine stopped.
    pub stop: EngineStop,
    /// Cycles consumed during this invocation.
    pub cycles: u64,
}

enum TraceExit {
    Continue,
    Stop(EngineStop),
}

/// How an engine consults the shared-trace index (paper §8).
#[derive(Clone)]
enum SharedTraceMode {
    /// Probe-and-publish against the live sharded index on every compile.
    /// Right for standalone engines and single-threaded supervisors, but
    /// racy across threads: who compiles first depends on host timing.
    Live(Arc<SharedTraceIndex>),
    /// Epoch-snapshot consistency: consult an immutable snapshot taken at
    /// the last epoch barrier, record own fresh compiles locally. The
    /// supervisor drains `fresh` at the barrier and publishes it in slice
    /// order, making the cycle accounting independent of host
    /// interleaving.
    Epoch {
        snapshot: Arc<HashSet<u64>>,
        fresh: HashSet<u64>,
    },
}

/// A Pin-like execution engine: owns the guest [`Process`], the tool, and
/// a (cold) code cache.
///
/// # Example
///
/// ```
/// use superpin_dbi::{Engine, NullTool};
/// use superpin_isa::asm::assemble;
///
/// let program = assemble("main:\n li r1, 3\nloop:\n subi r1, r1, 1\n bne r1, r0, loop\n exit 0\n")?;
/// let process = superpin_vm::process::Process::load(1, &program)?;
/// let mut engine = Engine::new(process, NullTool);
/// let (code, cycles) = engine.run_to_exit()?;
/// assert_eq!(code, 0);
/// assert!(cycles > 0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Engine<T: Pintool> {
    process: Process,
    tool: T,
    cache: CodeCache<T>,
    cost: CostModel,
    stats: EngineStats,
    fini_done: bool,
    /// Trace formation ends just before this address (SuperPin slice
    /// boundaries; see [`crate::trace::discover_trace_split`]).
    split_point: Option<u64>,
    /// Shared index of trace entries some engine has already compiled.
    /// When present, compiling an already-indexed trace charges
    /// [`CostModel::shared_cache_check`] per instruction instead of the
    /// full JIT cost (paper §8's shared code cache).
    shared_traces: Option<SharedTraceMode>,
    /// The guest code version last observed; a mismatch means the guest
    /// wrote into its code region (self-modifying code) and every
    /// translation must be discarded.
    code_version_seen: u64,
    /// Whether the next trace entry goes through the dispatcher. Direct
    /// branches between cached traces are *linked* (as in Pin) and skip
    /// the dispatcher; indirect transfers and re-entries after
    /// syscalls/stops pay [`CostModel::dispatch_per_trace`].
    pending_dispatch: bool,
    /// Armed chaos registry for the [`Site::DbiEngineDispatch`]
    /// failpoint. `None` (the default) costs nothing: the dispatch path
    /// takes one branch on an `Option` it would otherwise not have.
    fault: Option<Arc<FailpointRegistry>>,
    /// Salt mixed into every dispatch failpoint key; the supervisor bumps
    /// it per retry so a re-armed slice does not deterministically re-hit
    /// the fault that killed it.
    fault_salt: u64,
    /// Dispatches evaluated against the failpoint while armed (the
    /// per-engine half of the key, deterministic per execution).
    fault_dispatches: u64,
    /// Ahead-of-time superblock plan: pre-decoded instruction stream and
    /// predicted-hot trace entries. Purely a host-side accelerator —
    /// trace shapes and charged costs are identical with or without it.
    plan: Option<Arc<SuperblockPlan>>,
    /// Cleared the first time self-modifying code is detected: the plan
    /// pre-decoded the original image, so after SMC every fetch falls
    /// back to live decode.
    plan_valid: bool,
    /// Static↔dynamic soundness oracle: every taken `jalr` and every
    /// code write is validated against the static analysis (debug builds
    /// assert; release builds record).
    oracle: Option<Arc<SoundnessOracle>>,
    /// Host-only plan counters (`elided_restores` lives in the cache and
    /// is merged in by [`Engine::plan_stats`]).
    plan_stats: PlanStats,
    /// Host-side cross-engine template cache (see
    /// [`Engine::set_trace_templates`]). `None` keeps every compile
    /// private to this engine.
    templates: Option<TraceTemplates<T>>,
}

/// Host-side map of compiled-trace templates shared by every engine of a
/// run (SuperPin's slices). Keyed by trace entry address; adoption is
/// guarded by an instruction-for-instruction comparison against the
/// adopter's own freshly discovered trace, so a stale or mismatched
/// template is simply recompiled, never executed.
pub type TraceTemplates<T> = Arc<std::sync::Mutex<HashMap<u64, Arc<CompiledTrace<T>>>>>;

impl<T: Pintool + Clone> Clone for Engine<T> {
    /// Checkpoint clone: compiled traces are shared (immutable `Arc`s),
    /// everything else — process, tool, counters, chaos arming — is
    /// copied.
    fn clone(&self) -> Engine<T> {
        Engine {
            process: self.process.clone(),
            tool: self.tool.clone(),
            cache: self.cache.clone(),
            cost: self.cost,
            stats: self.stats,
            fini_done: self.fini_done,
            split_point: self.split_point,
            shared_traces: self.shared_traces.clone(),
            code_version_seen: self.code_version_seen,
            pending_dispatch: self.pending_dispatch,
            fault: self.fault.clone(),
            fault_salt: self.fault_salt,
            fault_dispatches: self.fault_dispatches,
            plan: self.plan.clone(),
            plan_valid: self.plan_valid,
            oracle: self.oracle.clone(),
            plan_stats: self.plan_stats,
            templates: self.templates.clone(),
        }
    }
}

impl<T: Pintool> fmt::Debug for Engine<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Engine")
            .field("pid", &self.process.pid())
            .field("tool", &self.tool.name())
            .field("stats", &self.stats)
            .finish()
    }
}

impl<T: Pintool + 'static> Engine<T> {
    /// Creates an engine with the default cost model and cache capacity.
    pub fn new(process: Process, tool: T) -> Engine<T> {
        Engine::with_config(process, tool, CostModel::default(), DEFAULT_CAPACITY_INSTS)
    }

    /// Creates an engine with an explicit cost model and cache capacity.
    pub fn with_config(
        process: Process,
        tool: T,
        cost: CostModel,
        cache_capacity_insts: usize,
    ) -> Engine<T> {
        let code_version_seen = process.mem.code_version();
        Engine {
            process,
            tool,
            cache: CodeCache::with_capacity(cache_capacity_insts),
            cost,
            stats: EngineStats::default(),
            fini_done: false,
            split_point: None,
            shared_traces: None,
            code_version_seen,
            pending_dispatch: true,
            fault: None,
            fault_salt: 0,
            fault_dispatches: 0,
            plan: None,
            plan_valid: false,
            oracle: None,
            plan_stats: PlanStats::default(),
            templates: None,
        }
    }

    /// Arms (or with `None` disarms) the [`Site::DbiEngineDispatch`]
    /// failpoint. `salt` is mixed into every key; pass the retry attempt
    /// so a recovered slice sees a fresh schedule (see
    /// [`Engine::run`]'s dispatch path).
    pub fn arm_fault_injection(&mut self, registry: Option<Arc<FailpointRegistry>>, salt: u64) {
        self.fault = registry;
        self.fault_salt = salt;
    }

    /// Sets the trace split point. Must be set before the affected code
    /// compiles (SuperPin sets it when a slice wakes, while the slice's
    /// cache is still cold).
    pub fn set_split_point(&mut self, split: Option<u64>) {
        self.split_point = split;
    }

    /// Installs a shared compiled-trace index (paper §8's shared code
    /// cache) in **live** mode: traces another engine already compiled
    /// are adopted at the consistency-check rate rather than recompiled
    /// from scratch, and fresh compiles are published immediately.
    pub fn set_shared_trace_index(&mut self, index: Arc<SharedTraceIndex>) {
        self.shared_traces = Some(SharedTraceMode::Live(index));
    }

    /// Switches shared-cache consistency to **epoch-snapshot** mode: the
    /// engine consults `snapshot` (plus its own fresh compiles) without
    /// touching the live index, keeping its cycle accounting a pure
    /// function of virtual time. Fresh compiles accumulated in a previous
    /// epoch and not yet drained are carried over.
    ///
    /// The supervisor calls this at every epoch barrier after draining
    /// [`take_fresh_traces`](Engine::take_fresh_traces) and publishing in
    /// slice order.
    pub fn enter_shared_epoch(&mut self, snapshot: Arc<HashSet<u64>>) {
        let fresh = match self.shared_traces.take() {
            Some(SharedTraceMode::Epoch { fresh, .. }) => fresh,
            _ => HashSet::new(),
        };
        self.shared_traces = Some(SharedTraceMode::Epoch { snapshot, fresh });
    }

    /// Drains the trace pcs this engine compiled at full price since the
    /// last drain (epoch-snapshot mode only; empty in live mode). Sorted,
    /// so barrier publication is deterministic.
    pub fn take_fresh_traces(&mut self) -> Vec<u64> {
        match &mut self.shared_traces {
            Some(SharedTraceMode::Epoch { fresh, .. }) => {
                let mut pcs: Vec<u64> = fresh.drain().collect();
                pcs.sort_unstable();
                pcs
            }
            _ => Vec::new(),
        }
    }

    /// Installs static liveness for the guest program (see
    /// [`CodeCache::set_liveness`]): save/restores of registers proven
    /// dead at an insertion point are elided, shrinking each analysis
    /// call's charge from the conservative
    /// [`CostModel::analysis_call`] to
    /// [`CostModel::analysis_call_base`] plus
    /// [`CostModel::save_restore_per_reg`] per live clobbered register.
    /// Call execution itself is unchanged, so instrumentation results
    /// (e.g. icounts) are identical with or without liveness.
    pub fn set_liveness(&mut self, liveness: Arc<superpin_analysis::LiveMap>) {
        self.cache.set_liveness(liveness);
    }

    /// Installs an ahead-of-time superblock plan. Predicted-hot trace
    /// entries that miss the code cache are formed from the plan's
    /// pre-decoded stream instead of decoding guest memory, and the
    /// plan's refined interprocedural liveness lets the cache skip
    /// host-side restores of provably dead saved registers
    /// ([`CodeCache::set_refined_liveness`]). Trace shapes,
    /// instrumentation results, and charged costs are identical with or
    /// without a plan — only host wall-clock changes. Install while the
    /// cache is cold. Self-modifying code permanently invalidates the
    /// pre-decode (fetches fall back to live decode).
    pub fn set_plan(&mut self, plan: Arc<SuperblockPlan>) {
        self.cache.set_refined_liveness(plan.refined_liveness_arc());
        self.plan = Some(plan);
        self.plan_valid = true;
    }

    /// Installs a cross-engine compiled-trace template cache.
    ///
    /// Engines sharing one map reuse each other's compiled traces when
    /// the tool certifies its instrumentation as shareable
    /// ([`Pintool::instrumentation_is_shareable`]) and the adopter's own
    /// trace discovery produced instruction-identical shape. This is
    /// purely a host-side accelerator: the adopting engine's code cache
    /// performs the same bookkeeping and the same JIT cycles are
    /// charged, so simulated reports are unchanged.
    pub fn set_trace_templates(&mut self, templates: TraceTemplates<T>) {
        self.templates = Some(templates);
    }

    /// Installs the static↔dynamic soundness oracle and turns on the
    /// guest's code-write log to feed its SMC checks. Every taken
    /// `jalr` and every code write is validated against the static
    /// analysis; debug builds assert on a violation, release builds
    /// record it (see [`SoundnessOracle::violations`]).
    pub fn set_oracle(&mut self, oracle: Arc<SoundnessOracle>) {
        self.process.mem.log_code_writes(true);
        self.oracle = Some(oracle);
    }

    /// Host-only plan counters (zero when no plan is installed).
    pub fn plan_stats(&self) -> PlanStats {
        PlanStats {
            elided_restores: self.cache.elided_restores(),
            ..self.plan_stats
        }
    }

    /// Clobber-safety violations found while compiling instrumentation
    /// (debug/test builds only; see
    /// [`CodeCache::clobber_violations`]).
    pub fn clobber_violations(&self) -> &[ClobberViolation] {
        self.cache.clobber_violations()
    }

    /// Test hook: plant a deliberate save-set bug for the clobber
    /// verifier to catch (see [`CodeCache::inject_clobber_bug`]).
    pub fn inject_clobber_bug(&mut self, reg: superpin_isa::Reg) {
        self.cache.inject_clobber_bug(reg);
    }

    /// The guest process.
    pub fn process(&self) -> &Process {
        &self.process
    }

    /// Mutable access to the guest process.
    pub fn process_mut(&mut self) -> &mut Process {
        &mut self.process
    }

    /// The tool.
    pub fn tool(&self) -> &T {
        &self.tool
    }

    /// Mutable access to the tool.
    pub fn tool_mut(&mut self) -> &mut T {
        &mut self.tool
    }

    /// The cost model in effect.
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// Execution statistics.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Code-cache statistics.
    pub fn cache_stats(&self) -> crate::cache::CacheStats {
        self.cache.stats()
    }

    /// Instructions resident in the code cache (the memory governor's
    /// charge basis for this engine).
    pub fn cache_resident_insts(&self) -> usize {
        self.cache.resident_insts()
    }

    /// Evicts the whole code cache under memory pressure, returning the
    /// instructions freed. Subsequent execution recompiles on demand.
    pub fn evict_code_cache(&mut self) -> usize {
        self.cache.evict_for_pressure()
    }

    /// Consumes the engine, returning the process and tool.
    pub fn into_parts(self) -> (Process, T) {
        (self.process, self.tool)
    }

    /// Runs instrumented code for approximately `budget` cycles.
    ///
    /// The budget is a soft target: a trace always completes once
    /// entered, so the engine may overshoot by up to one trace's cost
    /// (bounded by [`crate::trace::MAX_INSTS_PER_TRACE`]).
    ///
    /// # Errors
    ///
    /// Propagates guest execution errors.
    pub fn run(&mut self, budget: u64) -> Result<RunResult, VmError> {
        if let Some(code) = self.process.exited() {
            return Ok(RunResult {
                stop: EngineStop::Exited(code),
                cycles: 0,
            });
        }
        let mut spent = 0u64;
        // Resuming after a stop always re-enters through the dispatcher.
        self.pending_dispatch = true;
        loop {
            // Self-modifying code: any write into the code region since
            // the last dispatch invalidates every translation.
            let code_version = self.process.mem.code_version();
            if code_version != self.code_version_seen {
                self.code_version_seen = code_version;
                self.cache.flush_for_smc();
                self.pending_dispatch = true;
                // The plan pre-decoded the original image; its stream is
                // stale now. Fall back to live decode for good.
                self.plan_valid = false;
                if let Some(oracle) = &self.oracle {
                    for (addr, len) in self.process.mem.take_code_writes() {
                        let admitted = oracle.check_code_write(addr, len as u64);
                        debug_assert!(
                            admitted,
                            "soundness oracle: code write [{addr:#x}, +{len}) outside every \
                             static SMC region"
                        );
                    }
                }
            }
            let pc = self.process.cpu.pc;
            let trace = self.lookup_or_compile(pc, &mut spent)?;
            if self.pending_dispatch {
                if let Some(registry) = &self.fault {
                    // Key = pid, per-engine dispatch ordinal, retry salt:
                    // pure simulation state, so a given seed fires at the
                    // same dispatch on every run and on no others.
                    self.fault_dispatches += 1;
                    let key = (self.process.pid() << 32)
                        ^ self.fault_dispatches
                        ^ (self.fault_salt << 56);
                    if registry.fire(Site::DbiEngineDispatch, key) {
                        return Err(VmError::FaultInjected {
                            site: Site::DbiEngineDispatch.name(),
                        });
                    }
                }
                self.stats.cycles.dispatch += self.cost.dispatch_per_trace;
                spent += self.cost.dispatch_per_trace;
                self.pending_dispatch = false;
            }
            self.stats.traces_executed += 1;

            // Superinstruction dispatch: if this trace was fused at compile
            // time and the signature check passes (slot count consistent
            // with the compiled trace — SMC flushes already removed any
            // stale trace), run the batched fast path; otherwise fall back
            // to the generic per-call executor.
            let exit = match &trace.fused {
                Some(fused) if fused.slots.len() == trace.insts.len() => {
                    self.exec_trace_fused(&trace, fused, &mut spent)?
                }
                _ => self.exec_trace(&trace, &mut spent)?,
            };
            match exit {
                TraceExit::Stop(stop) => {
                    if let EngineStop::Exited(_) = stop {
                        self.run_fini();
                    }
                    return Ok(RunResult {
                        stop,
                        cycles: spent,
                    });
                }
                TraceExit::Continue => {
                    if spent >= budget {
                        return Ok(RunResult {
                            stop: EngineStop::BudgetExhausted,
                            cycles: spent,
                        });
                    }
                }
            }
        }
    }

    fn lookup_or_compile(
        &mut self,
        pc: u64,
        spent: &mut u64,
    ) -> Result<Arc<CompiledTrace<T>>, VmError> {
        if let Some(compiled) = self.cache.lookup(pc) {
            return Ok(compiled);
        }
        // A miss always routes through the dispatcher into the JIT.
        self.pending_dispatch = true;
        let plan = self
            .plan
            .as_ref()
            .filter(|plan| self.plan_valid && plan.is_hot(pc))
            .cloned();
        let trace = match plan {
            Some(plan) => {
                // Predicted-hot entry: form the trace from the plan's
                // pre-decoded stream. Shape-identical to a live decode
                // (debug builds verify instruction by instruction); the
                // JIT cost below is charged exactly the same either way.
                let mem = &self.process.mem;
                let fallbacks = std::cell::Cell::new(0u64);
                let trace = crate::trace::discover_trace_with(
                    |pc| match plan.lookup(pc) {
                        Some((inst, size)) => {
                            let planned = crate::trace::InstRef {
                                addr: pc,
                                inst,
                                size,
                            };
                            #[cfg(debug_assertions)]
                            {
                                let fresh = crate::trace::decode_guest(mem, pc)?;
                                debug_assert_eq!(
                                    fresh, planned,
                                    "plan pre-decode diverged from guest memory at {pc:#x}"
                                );
                            }
                            Ok(planned)
                        }
                        None => {
                            fallbacks.set(fallbacks.get() + 1);
                            crate::trace::decode_guest(mem, pc)
                        }
                    },
                    pc,
                    self.split_point,
                )?;
                self.plan_stats.planned_traces += 1;
                self.plan_stats.planned_insts +=
                    trace.num_insts() as u64 - fallbacks.get().min(trace.num_insts() as u64);
                self.plan_stats.fallback_decodes += fallbacks.get();
                trace
            }
            None => {
                // Live discovery routes through the process decode cache:
                // a forked slice inherits its master's decoded pages, so
                // re-discovering a trace the master already walked decodes
                // nothing.
                let split = self.split_point;
                let process = &mut self.process;
                crate::trace::discover_trace_with(
                    |pc| {
                        let (inst, size) = process.fetch_decoded(pc)?;
                        Ok(crate::trace::InstRef {
                            addr: pc,
                            inst,
                            size,
                        })
                    },
                    pc,
                    split,
                )?
            }
        };
        // Template sharing: when a peer engine already compiled this
        // exact trace with certified-pure instrumentation, adopt its
        // compiled form instead of re-instrumenting. Guarded by an
        // instruction-for-instruction comparison against the trace *this*
        // engine just discovered, so SMC divergence or a different slice
        // boundary falls through to a private compile.
        let shareable = self.templates.is_some()
            && !self.cache.has_clobber_bug()
            && self.tool.instrumentation_is_shareable(&trace);
        if shareable {
            let template = self
                .templates
                .as_ref()
                .expect("checked is_some")
                .lock()
                .expect("template lock")
                .get(&pc)
                .cloned();
            if let Some(template) = template {
                if template_matches(&template, &trace) {
                    let count = self.cache.adopt(&template);
                    self.charge_jit(pc, count, spent);
                    return Ok(template);
                }
            }
        }
        let mut inserter = Inserter::new();
        self.tool.instrument_trace(&trace, &mut inserter);
        // Every compile attempts fusion: eligibility is per-call (plain
        // call, fully static arguments) and the fused accounting is the
        // slow path's accounting computed ahead of time, so fusing is
        // sound with or without a plan installed.
        let (compiled, count) = self.cache.compile(&trace, inserter, Some(&self.cost));
        if shareable {
            self.templates
                .as_ref()
                .expect("checked is_some")
                .lock()
                .expect("template lock")
                .insert(pc, Arc::clone(&compiled));
        }
        self.charge_jit(pc, count, spent);
        Ok(compiled)
    }

    /// Charges the simulated JIT cost for compiling (or adopting) a
    /// trace of `count` instructions entered at `pc`. The charge depends
    /// only on the *simulated* shared-code-cache mode — host-side
    /// template adoption takes this exact same path, so both routes cost
    /// the same simulated cycles.
    fn charge_jit(&mut self, pc: u64, count: usize, spent: &mut u64) {
        let per_inst = match &mut self.shared_traces {
            Some(SharedTraceMode::Live(index)) => {
                let probe = index.probe_insert(pc);
                if probe.contended {
                    self.stats.shared_cache_contention += 1;
                }
                if probe.adopted {
                    // Someone already shared it: consistency check only.
                    self.stats.shared_cache_adoptions += 1;
                    self.cost.shared_cache_check
                } else {
                    // First compiler of this trace pays full price.
                    self.stats.shared_cache_misses += 1;
                    self.cost.compile_per_inst
                }
            }
            Some(SharedTraceMode::Epoch { snapshot, fresh }) => {
                // `!fresh.insert(pc)` covers this engine recompiling its
                // own trace after a cache flush within the epoch.
                if snapshot.contains(&pc) || !fresh.insert(pc) {
                    self.stats.shared_cache_adoptions += 1;
                    self.cost.shared_cache_check
                } else {
                    self.stats.shared_cache_misses += 1;
                    self.cost.compile_per_inst
                }
            }
            None => self.cost.compile_per_inst,
        };
        let jit = count as u64 * per_inst;
        self.stats.cycles.jit += jit;
        *spent += jit;
    }

    fn exec_trace(
        &mut self,
        trace: &CompiledTrace<T>,
        spent: &mut u64,
    ) -> Result<TraceExit, VmError> {
        let mut index = 0usize;
        while index < trace.insts.len() {
            let slot = &trace.insts[index];
            debug_assert_eq!(slot.addr, self.process.cpu.pc, "trace desync");

            // Effective address is computed from pre-execution registers
            // for both before- and after-calls. Slots whose calls never
            // ask for it skip the computation entirely — nothing can
            // observe it.
            let mem_ea = if slot.needs_mem_ea {
                mem_effective_address(&self.process, slot.inst)
            } else {
                None
            };

            // Before-calls.
            if !slot.before.is_empty() && self.run_calls(&slot.before, slot, mem_ea, None, spent)? {
                // Stop requested before execution: the instruction is NOT
                // executed; pc stays at the boundary (paper §4.4 — the
                // boundary instruction belongs to the next slice).
                return Ok(TraceExit::Stop(EngineStop::ToolStop));
            }

            // The guest instruction itself.
            let outcome = self.process.exec_decoded(slot.inst, slot.size)?;
            match outcome {
                ExecOutcome::Syscall => {
                    return Ok(TraceExit::Stop(EngineStop::SyscallEntry));
                }
                ExecOutcome::Halt => {
                    return Ok(TraceExit::Stop(EngineStop::Halted));
                }
                ExecOutcome::Next | ExecOutcome::Jumped => {
                    self.stats.cycles.app += self.cost.cached_cpi;
                    *spent += self.cost.cached_cpi;
                    self.stats.insts_executed += 1;
                }
            }
            let taken = outcome == ExecOutcome::Jumped;

            // After-calls.
            if !slot.after.is_empty()
                && self.run_calls(&slot.after, slot, mem_ea, Some(taken), spent)?
            {
                return Ok(TraceExit::Stop(EngineStop::ToolStop));
            }

            if taken {
                // Indirect transfers cannot be trace-linked: they pay the
                // dispatcher on re-entry. Direct branches are linked.
                if matches!(slot.inst, Inst::Jalr { .. }) {
                    self.pending_dispatch = true;
                    if let Some(oracle) = &self.oracle {
                        let dest = self.process.cpu.pc;
                        let admitted = oracle.check_transfer(slot.addr, dest);
                        debug_assert!(
                            admitted,
                            "soundness oracle: jalr at {:#x} reached {dest:#x} outside its \
                             static target set",
                            slot.addr
                        );
                    }
                }
                // Control left the straight line unless the target happens
                // to be the next slot (branch to fall-through).
                let next_matches = trace
                    .insts
                    .get(index + 1)
                    .is_some_and(|next| next.addr == self.process.cpu.pc);
                if !next_matches {
                    return Ok(TraceExit::Continue);
                }
            }
            index += 1;
        }
        // The budget is only checked *between* traces (see `run`): a
        // trace always completes once entered. Preempting mid-trace would
        // re-enter the block through a side trace and re-run its
        // block-granularity instrumentation — real Pin never re-instruments
        // on a context switch, and block-counting tools (icount2) rely on
        // block entry firing exactly once per block execution.
        Ok(TraceExit::Continue)
    }

    /// Superinstruction fast path: executes a fused trace as one batched
    /// dispatch.
    ///
    /// Per-call invocation costs and argument values were lowered at
    /// compile time into [`crate::cache::FusedCall`]s, so the hot loop
    /// does no argument evaluation and no cost arithmetic beyond adding
    /// pre-computed constants. Accounting accumulates in locals and is
    /// flushed on *every* exit path — tool stop, syscall, halt, early
    /// branch-out, and guest faults — so observable counters are
    /// bit-identical to [`Self::exec_trace`] at any exit point.
    fn exec_trace_fused(
        &mut self,
        trace: &CompiledTrace<T>,
        fused: &FusedMeta,
        spent: &mut u64,
    ) -> Result<TraceExit, VmError> {
        let mut app = 0u64;
        let mut insts = 0u64;
        let mut analysis = 0u64;
        let mut calls = 0u64;
        let mut acc = 0u64;
        let result = 'body: {
            let mut index = 0usize;
            while index < trace.insts.len() {
                let slot = &trace.insts[index];
                let fslot = &fused.slots[index];
                debug_assert_eq!(slot.addr, self.process.cpu.pc, "trace desync");
                debug_assert_eq!(fslot.before.len(), slot.before.len());
                debug_assert_eq!(fslot.after.len(), slot.after.len());

                // Before-calls. A stop request short-circuits the rest of
                // the list and leaves the instruction unexecuted, exactly
                // like the slow path.
                let mut stop = false;
                for (fc, inserted) in fslot.before.iter().zip(slot.before.iter()) {
                    if stop {
                        break;
                    }
                    let Call::Plain { func, .. } = &inserted.call else {
                        unreachable!("fusion only admits plain calls")
                    };
                    let mut ctl = EngineCtl::default();
                    let ctx = CallCtx {
                        pc: slot.addr,
                        args: &fc.args,
                    };
                    func(&mut self.tool, &ctx, &mut ctl);
                    let charged = fc.static_cost + ctl.extra_cycles();
                    analysis += charged;
                    acc += charged;
                    calls += 1;
                    stop |= ctl.stop_requested();
                }
                if stop {
                    break 'body Ok(TraceExit::Stop(EngineStop::ToolStop));
                }

                // The guest instruction itself.
                let outcome = match self.process.exec_decoded(slot.inst, slot.size) {
                    Ok(outcome) => outcome,
                    Err(err) => break 'body Err(err),
                };
                match outcome {
                    ExecOutcome::Syscall => {
                        break 'body Ok(TraceExit::Stop(EngineStop::SyscallEntry));
                    }
                    ExecOutcome::Halt => {
                        break 'body Ok(TraceExit::Stop(EngineStop::Halted));
                    }
                    ExecOutcome::Next | ExecOutcome::Jumped => {
                        app += fused.cached_cpi;
                        acc += fused.cached_cpi;
                        insts += 1;
                    }
                }
                let taken = outcome == ExecOutcome::Jumped;

                // After-calls.
                let mut stop = false;
                for (fc, inserted) in fslot.after.iter().zip(slot.after.iter()) {
                    if stop {
                        break;
                    }
                    let Call::Plain { func, .. } = &inserted.call else {
                        unreachable!("fusion only admits plain calls")
                    };
                    let mut ctl = EngineCtl::default();
                    let ctx = CallCtx {
                        pc: slot.addr,
                        args: &fc.args,
                    };
                    func(&mut self.tool, &ctx, &mut ctl);
                    let charged = fc.static_cost + ctl.extra_cycles();
                    analysis += charged;
                    acc += charged;
                    calls += 1;
                    stop |= ctl.stop_requested();
                }
                if stop {
                    break 'body Ok(TraceExit::Stop(EngineStop::ToolStop));
                }

                if taken {
                    if matches!(slot.inst, Inst::Jalr { .. }) {
                        self.pending_dispatch = true;
                        if let Some(oracle) = &self.oracle {
                            let dest = self.process.cpu.pc;
                            let admitted = oracle.check_transfer(slot.addr, dest);
                            debug_assert!(
                                admitted,
                                "soundness oracle: jalr at {:#x} reached {dest:#x} outside its \
                                 static target set",
                                slot.addr
                            );
                        }
                    }
                    let next_matches = trace
                        .insts
                        .get(index + 1)
                        .is_some_and(|next| next.addr == self.process.cpu.pc);
                    if !next_matches {
                        break 'body Ok(TraceExit::Continue);
                    }
                }
                index += 1;
            }
            Ok(TraceExit::Continue)
        };
        self.stats.cycles.app += app;
        self.stats.cycles.analysis += analysis;
        self.stats.insts_executed += insts;
        self.stats.analysis_calls += calls;
        *spent += acc;
        result
    }

    /// Runs a call list; returns `true` if a stop was requested.
    ///
    /// A stop request short-circuits the remaining calls in the list:
    /// when SuperPin's signature detector (inserted ahead of the user
    /// tool's calls) fires at a slice boundary, the user tool must not
    /// observe the boundary instruction — it belongs to the next slice.
    fn run_calls(
        &mut self,
        calls: &[InsertedCall<T>],
        slot: &CompiledInst<T>,
        mem_ea: Option<(u64, u64)>,
        taken: Option<bool>,
        spent: &mut u64,
    ) -> Result<bool, VmError> {
        let mut stop = false;
        for inserted in calls {
            if stop {
                break;
            }
            // Invocation cost: call/return plus one save/restore per
            // clobbered register the compiler decided to preserve. With
            // no liveness installed the full clobber set is saved and
            // this equals the flat `analysis_call`.
            let invoke_cost = self.cost.analysis_call_base
                + inserted.saves.len() as u64 * self.cost.save_restore_per_reg;
            match &inserted.call {
                Call::Plain { func, args } => {
                    let values = self.eval_args(args, slot, mem_ea, taken);
                    let cost = invoke_cost + args.len() as u64 * self.cost.analysis_arg;
                    let mut ctl = EngineCtl::default();
                    let ctx = CallCtx {
                        pc: slot.addr,
                        args: &values,
                    };
                    func(&mut self.tool, &ctx, &mut ctl);
                    let charged = cost + ctl.extra_cycles();
                    self.stats.cycles.analysis += charged;
                    *spent += charged;
                    self.stats.analysis_calls += 1;
                    stop |= ctl.stop_requested();
                }
                Call::IfThen {
                    pred,
                    pred_args,
                    then,
                    then_args,
                } => {
                    let pred_values = self.eval_args(pred_args, slot, mem_ea, taken);
                    let mut charged =
                        self.cost.inline_if_check + pred_args.len() as u64 * self.cost.analysis_arg;
                    self.stats.if_checks += 1;
                    let ctx = CallCtx {
                        pc: slot.addr,
                        args: &pred_values,
                    };
                    if pred(&mut self.tool, &ctx) {
                        let then_values = self.eval_args(then_args, slot, mem_ea, taken);
                        let mut ctl = EngineCtl::default();
                        let then_ctx = CallCtx {
                            pc: slot.addr,
                            args: &then_values,
                        };
                        then(&mut self.tool, &then_ctx, &mut ctl);
                        charged += invoke_cost
                            + then_args.len() as u64 * self.cost.analysis_arg
                            + ctl.extra_cycles();
                        self.stats.then_calls += 1;
                        stop |= ctl.stop_requested();
                    }
                    self.stats.cycles.analysis += charged;
                    *spent += charged;
                }
            }
        }
        Ok(stop)
    }

    fn eval_args(
        &self,
        args: &[IArg],
        slot: &CompiledInst<T>,
        mem_ea: Option<(u64, u64)>,
        taken: Option<bool>,
    ) -> Vec<u64> {
        args.iter()
            .map(|arg| match *arg {
                IArg::InstPtr => slot.addr,
                IArg::UInt(value) => value,
                IArg::MemAddr => mem_ea.map(|(ea, _)| ea).unwrap_or(0),
                IArg::MemSize => mem_ea.map(|(_, size)| size).unwrap_or(0),
                IArg::IsMemWrite => u64::from(slot.inst.is_mem_write()),
                IArg::BranchTaken => u64::from(taken.unwrap_or(false)),
                IArg::RegValue(reg) => self.process.cpu.regs.get(reg),
                IArg::StackWord(i) => {
                    let sp = self.process.cpu.regs.get(superpin_isa::Reg::SP);
                    self.process
                        .mem
                        .read_u64(sp.wrapping_add(8 * i as u64))
                        .unwrap_or(0)
                }
                IArg::FallthroughAddr => slot.addr + slot.size,
            })
            .collect()
    }

    /// Services the syscall the guest is parked at, charging syscall cost
    /// and notifying the tool. Returns the record plus cycles charged.
    ///
    /// # Errors
    ///
    /// Propagates kernel errors.
    pub fn service_syscall(&mut self, now_ns: u64) -> Result<(SyscallRecord, u64), VmError> {
        let record = self.process.do_syscall(now_ns)?;
        self.stats.cycles.syscall += self.cost.syscall;
        self.tool.on_syscall(&record);
        if record.exited.is_some() {
            self.run_fini();
        }
        Ok((record, self.cost.syscall))
    }

    /// Plays back a recorded syscall instead of executing it (SuperPin
    /// slices, paper §4.2), charging syscall cost and notifying the tool.
    /// Returns cycles charged.
    ///
    /// # Errors
    ///
    /// Propagates memory errors from re-applying the record.
    pub fn playback_syscall(&mut self, record: &SyscallRecord) -> Result<u64, VmError> {
        self.process.playback_syscall(record)?;
        self.stats.cycles.syscall += self.cost.syscall;
        self.tool.on_syscall(record);
        if record.exited.is_some() {
            self.run_fini();
        }
        Ok(self.cost.syscall)
    }

    fn run_fini(&mut self) {
        if !self.fini_done {
            self.fini_done = true;
            self.tool.fini();
        }
    }

    /// Runs the guest to completion in standalone "Pin mode", servicing
    /// syscalls inline. The virtual `gettime` clock is derived from the
    /// cycles this engine has consumed. Returns the exit code and total
    /// cycles.
    ///
    /// # Errors
    ///
    /// Propagates guest errors; `halt` surfaces as
    /// [`VmError::UnexpectedHalt`].
    pub fn run_to_exit(&mut self) -> Result<(i64, u64), VmError> {
        let mut total = 0u64;
        loop {
            let result = self.run(u64::MAX / 4)?;
            total += result.cycles;
            match result.stop {
                EngineStop::SyscallEntry => {
                    let now_ns = cycles_to_ns(self.stats.cycles.total());
                    let (record, cycles) = self.service_syscall(now_ns)?;
                    total += cycles;
                    if let Some(code) = record.exited {
                        return Ok((code, total));
                    }
                }
                EngineStop::Exited(code) => return Ok((code, total)),
                EngineStop::Halted => {
                    return Err(VmError::UnexpectedHalt {
                        pc: self.process.cpu.pc,
                    })
                }
                EngineStop::ToolStop => {
                    // Standalone mode has no slice supervisor; a tool stop
                    // simply continues.
                }
                EngineStop::BudgetExhausted => {}
            }
        }
    }
}

// The parallel runner moves engines into scoped worker threads, so
// `Engine<T>: Send` for any `Send` tool is a load-bearing property:
// losing it (say, by caching an `Rc` somewhere) must fail compilation
// here rather than at the runner's distant spawn site.
const _: () = {
    const fn assert_send<S: Send>() {}
    #[allow(dead_code)]
    const fn engine_is_send_for_send_tools<T: Pintool + Send + 'static>() {
        assert_send::<Engine<T>>();
    }
};

/// Converts 2.2 GHz cycles to virtual nanoseconds.
pub fn cycles_to_ns(cycles: u64) -> u64 {
    ((cycles as u128) * 10 / 22) as u64
}

/// Whether a shared template is instruction-for-instruction identical to
/// the trace this engine just discovered. Anything else — self-modified
/// code, a different slice-boundary truncation — fails the comparison
/// and the engine compiles privately.
fn template_matches<T>(template: &CompiledTrace<T>, trace: &crate::trace::Trace) -> bool {
    template.insts.len() == trace.num_insts()
        && template
            .insts
            .iter()
            .zip(trace.insts())
            .all(|(slot, iref)| {
                slot.addr == iref.addr && slot.inst == iref.inst && slot.size == iref.size
            })
}

fn mem_effective_address(process: &Process, inst: Inst) -> Option<(u64, u64)> {
    match inst {
        Inst::Ld {
            base,
            offset,
            width,
            ..
        }
        | Inst::St {
            base,
            offset,
            width,
            ..
        } => {
            let ea = process
                .cpu
                .regs
                .get(base)
                .wrapping_add(offset as i64 as u64);
            Some((ea, width.bytes() as u64))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inserter::IPoint;
    use crate::tool::NullTool;
    use crate::trace::Trace;
    use superpin_isa::asm::assemble;

    fn process_for(src: &str) -> Process {
        Process::load(1, &assemble(src).expect("assemble")).expect("load")
    }

    const LOOP_100: &str =
        "main:\n li r1, 100\nloop:\n subi r1, r1, 1\n bne r1, r0, loop\n exit 0\n";

    #[derive(Clone, Default)]
    struct ICount1 {
        count: u64,
    }

    impl Pintool for ICount1 {
        fn instrument_trace(&mut self, trace: &Trace, inserter: &mut Inserter<Self>) {
            for iref in trace.insts() {
                inserter.insert_call(
                    iref.addr,
                    IPoint::Before,
                    |tool, _, _| tool.count += 1,
                    vec![],
                );
            }
        }
        fn name(&self) -> &'static str {
            "icount1-test"
        }
    }

    #[test]
    fn null_tool_matches_native_count() {
        let mut native = process_for(LOOP_100);
        native.run(u64::MAX, 0).expect("native");
        let truth = native.inst_count();

        let mut engine = Engine::new(process_for(LOOP_100), NullTool);
        let (code, _) = engine.run_to_exit().expect("run");
        assert_eq!(code, 0);
        assert_eq!(engine.process().inst_count(), truth);
    }

    #[test]
    fn icount_tool_counts_every_instruction() {
        let mut engine = Engine::new(process_for(LOOP_100), ICount1::default());
        engine.run_to_exit().expect("run");
        // The tool's before-calls fire for syscall instructions too, so
        // the tool count equals the process's dynamic count.
        assert_eq!(engine.tool().count, engine.process().inst_count());
        assert_eq!(engine.process().inst_count(), 204);
    }

    #[test]
    fn jit_compiles_each_trace_once() {
        let mut engine = Engine::new(process_for(LOOP_100), NullTool);
        engine.run_to_exit().expect("run");
        let cache = engine.cache_stats();
        // Loop body trace compiled once, re-dispatched ~100 times.
        assert!(
            cache.traces_compiled <= 4,
            "traces {}",
            cache.traces_compiled
        );
        assert!(engine.stats().traces_executed >= 99);
        assert!(cache.hits >= 95, "hits {}", cache.hits);
    }

    #[test]
    fn budget_pauses_and_resumes_consistently() {
        let mut engine = Engine::new(process_for(LOOP_100), ICount1::default());
        let mut stops = 0;
        loop {
            let result = engine.run(5_000).expect("run");
            match result.stop {
                EngineStop::BudgetExhausted => stops += 1,
                EngineStop::SyscallEntry => {
                    let (record, _) = engine.service_syscall(0).expect("svc");
                    if record.exited.is_some() {
                        break;
                    }
                }
                EngineStop::Exited(_) => break,
                other => panic!("unexpected stop {other:?}"),
            }
            assert!(stops < 10_000, "no forward progress");
        }
        assert_eq!(engine.tool().count, 204);
    }

    #[test]
    fn cycle_breakdown_components_are_populated() {
        let mut engine = Engine::new(process_for(LOOP_100), ICount1::default());
        engine.run_to_exit().expect("run");
        let cycles = engine.stats().cycles;
        assert!(cycles.app > 0);
        assert!(cycles.analysis > 0);
        assert!(cycles.jit > 0);
        assert!(cycles.dispatch > 0);
        assert!(cycles.syscall > 0);
        assert_eq!(
            cycles.total(),
            cycles.app + cycles.analysis + cycles.jit + cycles.dispatch + cycles.syscall
        );
    }

    #[test]
    fn icount1_slowdown_in_paper_band() {
        // Steady-state slowdown vs native for a long loop must land in
        // the 8–16× band around the paper's 12× average (Fig. 3).
        let src = "main:\n li r1, 200000\nloop:\n subi r1, r1, 1\n bne r1, r0, loop\n exit 0\n";
        let mut native = process_for(src);
        native.run(u64::MAX, 0).expect("native");
        let native_cycles = native.inst_count(); // native_cpi == 1

        let mut engine = Engine::new(process_for(src), ICount1::default());
        let (_, cycles) = engine.run_to_exit().expect("run");
        let slowdown = cycles as f64 / native_cycles as f64;
        assert!(
            (8.0..=16.0).contains(&slowdown),
            "icount1 slowdown {slowdown:.1} outside paper band"
        );
    }

    #[derive(Clone, Default)]
    struct StopAtThird {
        seen: u64,
    }

    impl Pintool for StopAtThird {
        fn instrument_trace(&mut self, trace: &Trace, inserter: &mut Inserter<Self>) {
            for iref in trace.insts() {
                inserter.insert_call(
                    iref.addr,
                    IPoint::Before,
                    |tool, _, ctl| {
                        tool.seen += 1;
                        if tool.seen == 3 {
                            ctl.request_stop();
                        }
                    },
                    vec![],
                );
            }
        }
    }

    #[test]
    fn tool_stop_parks_before_instruction() {
        let mut engine = Engine::new(process_for(LOOP_100), StopAtThird::default());
        let result = engine.run(u64::MAX / 4).expect("run");
        assert_eq!(result.stop, EngineStop::ToolStop);
        // Two instructions executed; the third is pending.
        assert_eq!(engine.process().inst_count(), 2);
        // Resuming re-instruments from the parked pc and continues.
        let result = engine.run(u64::MAX / 4).expect("run");
        // Tool keeps requesting at seen==3 only once; run continues to
        // the exit syscall.
        assert_eq!(result.stop, EngineStop::SyscallEntry);
    }

    #[derive(Clone, Default)]
    struct MemWatch {
        reads: Vec<(u64, u64)>,
        writes: Vec<(u64, u64)>,
    }

    impl Pintool for MemWatch {
        fn instrument_trace(&mut self, trace: &Trace, inserter: &mut Inserter<Self>) {
            for iref in trace.insts() {
                if iref.inst.is_mem_read() || iref.inst.is_mem_write() {
                    inserter.insert_call(
                        iref.addr,
                        IPoint::Before,
                        |tool, ctx, _| {
                            if ctx.arg(2) == 1 {
                                tool.writes.push((ctx.arg(0), ctx.arg(1)));
                            } else {
                                tool.reads.push((ctx.arg(0), ctx.arg(1)));
                            }
                        },
                        vec![IArg::MemAddr, IArg::MemSize, IArg::IsMemWrite],
                    );
                }
            }
        }
    }

    #[test]
    fn memory_args_report_effective_addresses() {
        let src = r#"
            .data
            buf: .word 1, 2
            .text
            main:
                la  r2, buf
                ld  r3, 8(r2)
                stw r3, 0(r2)
                exit 0
        "#;
        let mut engine = Engine::new(process_for(src), MemWatch::default());
        engine.run_to_exit().expect("run");
        let tool = engine.tool();
        assert_eq!(tool.reads, vec![(superpin_isa::DATA_BASE + 8, 8)]);
        assert_eq!(tool.writes, vec![(superpin_isa::DATA_BASE, 4)]);
    }

    #[derive(Clone, Default)]
    struct IfThenCounter {
        then_hits: u64,
    }

    impl Pintool for IfThenCounter {
        fn instrument_trace(&mut self, trace: &Trace, inserter: &mut Inserter<Self>) {
            for iref in trace.insts() {
                inserter.insert_if_then_call(
                    iref.addr,
                    IPoint::Before,
                    |_, ctx| ctx.arg(0) % 2 == 0,
                    vec![IArg::InstPtr],
                    |tool, _, _| tool.then_hits += 1,
                    vec![],
                );
            }
        }
    }

    #[test]
    fn if_then_fires_only_on_true_predicate() {
        let mut engine = Engine::new(
            process_for("main:\n nop\n nop\n exit 0\n"),
            IfThenCounter::default(),
        );
        engine.run_to_exit().expect("run");
        let stats = engine.stats();
        assert!(stats.if_checks >= 5);
        assert_eq!(stats.then_calls, engine.tool().then_hits);
        // Addresses are 8-aligned, so every check is true here.
        assert_eq!(stats.then_calls, stats.if_checks);
    }

    #[test]
    fn shared_trace_index_discounts_recompilation() {
        let index = Arc::new(SharedTraceIndex::new());

        let mut first = Engine::new(process_for(LOOP_100), NullTool);
        first.set_shared_trace_index(Arc::clone(&index));
        first.run_to_exit().expect("first");
        assert_eq!(first.stats().shared_cache_adoptions, 0);
        assert!(first.stats().shared_cache_misses > 0, "first claims traces");
        let full_jit = first.stats().cycles.jit;
        assert!(!index.is_empty());

        let mut second = Engine::new(process_for(LOOP_100), NullTool);
        second.set_shared_trace_index(Arc::clone(&index));
        second.run_to_exit().expect("second");
        let stats = second.stats();
        assert!(stats.shared_cache_adoptions > 0, "second engine must adopt");
        assert_eq!(stats.shared_cache_misses, 0, "nothing new to claim");
        assert!(
            stats.cycles.jit * 4 < full_jit,
            "adopted compilation {} should be far below full {}",
            stats.cycles.jit,
            full_jit
        );

        // Without the index, the second engine pays full price again.
        let mut solo = Engine::new(process_for(LOOP_100), NullTool);
        solo.run_to_exit().expect("solo");
        assert_eq!(solo.stats().cycles.jit, full_jit);
    }

    #[test]
    fn epoch_snapshot_mode_matches_live_accounting() {
        // Live mode, serial: first engine pays full, second adopts all.
        let live_index = Arc::new(SharedTraceIndex::new());
        let mut live_first = Engine::new(process_for(LOOP_100), NullTool);
        live_first.set_shared_trace_index(Arc::clone(&live_index));
        live_first.run_to_exit().expect("live first");
        let mut live_second = Engine::new(process_for(LOOP_100), NullTool);
        live_second.set_shared_trace_index(Arc::clone(&live_index));
        live_second.run_to_exit().expect("live second");

        // Epoch mode with a barrier between the two engines must produce
        // the same stats: engine one runs against an empty snapshot, its
        // fresh traces are published, engine two snapshots and adopts.
        let epoch_index = SharedTraceIndex::new();
        let mut epoch_first = Engine::new(process_for(LOOP_100), NullTool);
        epoch_first.enter_shared_epoch(epoch_index.snapshot());
        epoch_first.run_to_exit().expect("epoch first");
        let fresh = epoch_first.take_fresh_traces();
        assert!(!fresh.is_empty());
        epoch_index.publish(fresh);
        let mut epoch_second = Engine::new(process_for(LOOP_100), NullTool);
        epoch_second.enter_shared_epoch(epoch_index.snapshot());
        epoch_second.run_to_exit().expect("epoch second");
        assert!(epoch_second.take_fresh_traces().is_empty());

        assert_eq!(epoch_first.stats(), live_first.stats());
        let live = live_second.stats();
        let epoch = epoch_second.stats();
        assert_eq!(epoch.cycles, live.cycles);
        assert_eq!(epoch.shared_cache_adoptions, live.shared_cache_adoptions);
        assert_eq!(epoch.shared_cache_misses, 0);
        // Epoch mode never touches the live index mid-run.
        assert_eq!(epoch.shared_cache_contention, 0);
    }

    #[test]
    fn branch_taken_arg() {
        #[derive(Clone, Default)]
        struct TakenWatch {
            taken: u64,
            not_taken: u64,
        }
        impl Pintool for TakenWatch {
            fn instrument_trace(&mut self, trace: &Trace, inserter: &mut Inserter<Self>) {
                for iref in trace.insts() {
                    if matches!(iref.inst, Inst::Branch { .. }) {
                        inserter.insert_call(
                            iref.addr,
                            IPoint::After,
                            |tool, ctx, _| {
                                if ctx.arg(0) == 1 {
                                    tool.taken += 1;
                                } else {
                                    tool.not_taken += 1;
                                }
                            },
                            vec![IArg::BranchTaken],
                        );
                    }
                }
            }
        }
        let mut engine = Engine::new(process_for(LOOP_100), TakenWatch::default());
        engine.run_to_exit().expect("run");
        assert_eq!(engine.tool().taken, 99);
        assert_eq!(engine.tool().not_taken, 1);
    }
}

//! The virtual-time cost model.
//!
//! All execution in the reproduction is measured in *cycles* of a
//! 2.2 GHz core — the Xeon MP frequency of the paper's testbed — so
//! "seconds" in the figures are `cycles / CYCLES_PER_SEC`.
//!
//! The constants below are calibrated to reproduce the paper's *ratios*,
//! not any absolute hardware numbers:
//!
//! * plain Pin (no tool) costs ≈ 10–30% over native, dominated by JIT
//!   compilation on cold code and per-block dispatch (paper §1: "10% to a
//!   10X slowdown, depending on the code footprint, code reuse
//!   characteristics...");
//! * `icount1` (a counter call after every instruction) lands near the
//!   12× average slowdown of Figure 3;
//! * `icount2` (a call per basic block) lands in Figure 5's 2–8× band.
//!
//! The fixed per-*event* costs (`fork_base`, `cow_fault`, `ptrace_stop`,
//! `syscall`) are calibrated for the harness's *miniature* workloads:
//! runs are 10³–10⁴× shorter than the paper's ~100 s benchmarks, so these
//! constants are scaled down by a comparable factor to keep the
//! event-cost : run-length *ratios* — the quantities every figure
//! reports — in the paper's regime (e.g. a fork costs ~10⁻⁵ of a
//! timeslice, ptrace stops stay "less than a few tenths of a percent").

/// Simulated core clock: 2.2 GHz, as in the paper's 8-way Xeon MP testbed.
pub const CYCLES_PER_SEC: u64 = 2_200_000_000;

/// Converts cycles to seconds of virtual time.
pub fn cycles_to_secs(cycles: u64) -> f64 {
    cycles as f64 / CYCLES_PER_SEC as f64
}

/// Converts seconds of virtual time to cycles.
pub fn secs_to_cycles(secs: f64) -> u64 {
    (secs * CYCLES_PER_SEC as f64) as u64
}

/// Cost constants used by the DBI engine's cycle accounting.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    /// Cycles per natively executed application instruction.
    pub native_cpi: u64,
    /// Cycles per application instruction when executed out of the code
    /// cache (cache-resident translated code is slightly slower than
    /// native due to layout and register-reallocation effects).
    pub cached_cpi: u64,
    /// Dispatch cost charged each time control enters a cached trace.
    pub dispatch_per_trace: u64,
    /// JIT compilation cost per instruction compiled into the cache.
    ///
    /// Like the per-event costs, this is calibrated for miniature
    /// workloads: what matters for the figures is the ratio of a slice's
    /// cold-cache recompilation to its span. With miniature footprints
    /// (hundreds to thousands of static instructions) and spans of tens
    /// of thousands of cycles, 64 cycles/instruction puts gcc's
    /// per-slice recompile at a comparable order to a short timeslice —
    /// the paper's Figure 6 regime, where gcc slices compile slowly
    /// enough to back up against the max-slice limit — while
    /// small-footprint loops stay compile-light, as at full scale.
    pub compile_per_inst: u64,
    /// Per-instruction cost of adopting a trace that another slice
    /// already compiled into a *shared* code cache (paper §8: sharing
    /// "may add a little extra overhead by performing extra consistency
    /// checks from other slices"). Only charged when a shared trace
    /// index is installed; see `Engine::set_shared_trace_index`.
    pub shared_cache_check: u64,
    /// Base cost of invoking one inserted analysis call (register
    /// save/restore + call + return). Kept as the *conservative* total:
    /// it must equal `analysis_call_base` plus a full save/restore of
    /// every register in [`crate::spill::analysis_clobbers`], which is
    /// what the engine charges when no liveness information is
    /// installed (see [`Engine::set_liveness`](crate::Engine::set_liveness)).
    pub analysis_call: u64,
    /// Call/return/frame part of an analysis-call invocation, excluding
    /// register spills.
    pub analysis_call_base: u64,
    /// Cost of saving and later restoring one clobbered register around
    /// an analysis call. Liveness-driven elision skips this charge for
    /// registers proven dead at the insertion point.
    pub save_restore_per_reg: u64,
    /// Additional cost per argument materialized for an analysis call.
    pub analysis_arg: u64,
    /// Cost of an inlined `insert_if_call` quick check (paper §4.4: "This
    /// will inline a quick check at that specific location").
    pub inline_if_check: u64,
    /// Cost of servicing a syscall in the kernel (also charged when a
    /// slice plays a record back).
    pub syscall: u64,
    /// Cost charged to the *parent* for a process fork, excluding later
    /// COW faults.
    pub fork_base: u64,
    /// Cost per copy-on-write page fault (fault + 4 KiB copy).
    pub cow_fault: u64,
    /// Cost per ptrace stop of the master (paper §6.3: "less than a few
    /// tenths of a percent").
    pub ptrace_stop: u64,
}

impl CostModel {
    /// The calibrated default model (see module docs).
    pub fn paper_default() -> CostModel {
        CostModel {
            native_cpi: 1,
            cached_cpi: 1,
            dispatch_per_trace: 4,
            compile_per_inst: 64,
            shared_cache_check: 4,
            analysis_call: 10,
            analysis_call_base: 6,
            save_restore_per_reg: 1,
            analysis_arg: 1,
            inline_if_check: 2,
            syscall: 250,
            fork_base: 500,
            cow_fault: 100,
            ptrace_stop: 2,
        }
    }
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_conversions_round_trip() {
        assert_eq!(secs_to_cycles(1.0), CYCLES_PER_SEC);
        let secs = cycles_to_secs(CYCLES_PER_SEC / 2);
        assert!((secs - 0.5).abs() < 1e-12);
    }

    #[test]
    fn conservative_spill_charge_equals_legacy_analysis_call() {
        // Without liveness the engine saves every register an analysis
        // call clobbers; that conservative charge must equal the
        // historical flat `analysis_call` so elision-off runs are
        // bit-identical to the pre-elision model.
        let m = CostModel::paper_default();
        let clobbers = crate::spill::analysis_clobbers().len() as u64;
        assert_eq!(
            m.analysis_call_base + clobbers * m.save_restore_per_reg,
            m.analysis_call
        );
    }

    #[test]
    fn icount1_cost_lands_near_paper_slowdown() {
        // Per paper Fig. 3: icount1 under Pin averages ≈ 12× native.
        // Steady-state cost per instruction: cached execution + one
        // analysis call with one argument; dispatch amortized over a
        // ~6-instruction block.
        // Hot traces are linked (no dispatch), so the steady state is
        // cached execution + one analysis call with one argument.
        let m = CostModel::paper_default();
        let per_inst = m.cached_cpi + m.analysis_call + m.analysis_arg;
        let slowdown = per_inst as f64 / m.native_cpi as f64;
        assert!(
            (8.0..=16.0).contains(&slowdown),
            "icount1 steady-state slowdown {slowdown} out of the paper's band"
        );
    }

    #[test]
    fn icount2_cost_lands_near_paper_slowdown() {
        // Per paper Fig. 5: icount2 under Pin sits in the 2–8× band.
        // One call per ~6-instruction basic block.
        let m = CostModel::paper_default();
        let per_block = 6 * m.cached_cpi + m.analysis_call + m.analysis_arg;
        let slowdown = per_block as f64 / (6 * m.native_cpi) as f64;
        assert!(
            (2.0..=8.0).contains(&slowdown),
            "icount2 steady-state slowdown {slowdown} out of the paper's band"
        );
    }
}

//! The Pintool trait.

use crate::inserter::Inserter;
use crate::trace::Trace;
use superpin_vm::kernel::SyscallRecord;

/// A plug-in analysis tool, the analogue of a Pintool.
///
/// The engine calls [`instrument_trace`](Pintool::instrument_trace) once
/// per trace *compilation* (so re-executions of cached traces pay no
/// instrumentation-time cost, exactly like Pin), and
/// [`on_syscall`](Pintool::on_syscall) each time a syscall is serviced or
/// played back. [`fini`](Pintool::fini) runs when the instrumented
/// program exits.
///
/// Tools must be `Clone`: SuperPin gives every slice "their own copy of
/// Pin and the Pintool" (paper §4.5), which in this reproduction is a
/// clone of the registered tool, reset via the `SP_Init` reset function.
pub trait Pintool: Sized + Send {
    /// Inspect a newly compiled trace and insert analysis calls.
    fn instrument_trace(&mut self, trace: &Trace, inserter: &mut Inserter<Self>);

    /// Whether [`instrument_trace`](Pintool::instrument_trace) for
    /// `trace` is a pure function of the trace — same calls, in the same
    /// places, with no tool-state reads or writes at instrumentation
    /// time — for *every* clone of this tool.
    ///
    /// Returning `true` lets a host runner reuse one compiled trace
    /// across many engines running clones of the tool (SuperPin's
    /// slices), skipping redundant instrument+compile work. This is a
    /// host-side optimization only: each engine's code cache still
    /// accounts the compile, so simulated reports are unchanged. The
    /// conservative default is `false`.
    fn instrumentation_is_shareable(&self, trace: &Trace) -> bool {
        let _ = trace;
        false
    }

    /// Observe a serviced (or played-back) syscall.
    fn on_syscall(&mut self, record: &SyscallRecord) {
        let _ = record;
    }

    /// Called when the instrumented program exits.
    fn fini(&mut self) {}

    /// Short tool name for reports.
    fn name(&self) -> &'static str {
        "tool"
    }
}

/// A tool that inserts nothing — running under it measures the pure DBI
/// (JIT + dispatch) overhead, the paper's "no instrumentation" baseline.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NullTool;

impl Pintool for NullTool {
    fn instrument_trace(&mut self, _trace: &Trace, _inserter: &mut Inserter<Self>) {}

    fn name(&self) -> &'static str {
        "null"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_tool_inserts_nothing() {
        // Compile-time check that the trait is object-friendly enough for
        // generic engines; behavioural check that no calls are added.
        let mut tool = NullTool;
        let mut inserter = Inserter::new();
        // An empty trace can't be constructed publicly; use a real one.
        let program = superpin_isa::asm::assemble("main:\n jmp main\n").expect("assemble");
        let process = superpin_vm::process::Process::load(1, &program).expect("load");
        let trace = crate::trace::discover_trace(&process.mem, program.entry()).expect("trace");
        tool.instrument_trace(&trace, &mut inserter);
        assert!(inserter.is_empty());
        assert_eq!(tool.name(), "null");
    }
}

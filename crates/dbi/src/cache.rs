//! The code cache: compiled, instrumented traces keyed by entry address.

use crate::cost::CostModel;
use crate::inserter::{Call, IArg, IPoint, Inserter};
use crate::spill::{required_saves, ClobberViolation};
use crate::trace::Trace;
use std::collections::HashMap;
use std::fmt;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::Arc;
use superpin_analysis::{LiveMap, RegSet};
use superpin_isa::{Inst, Reg};

/// Hasher for trace-entry keys. Entries are guest addresses — already
/// well distributed — so the default SipHash's per-lookup cost (it
/// dominates a hot dispatch loop) buys nothing; a single multiply-xor
/// finalizer (splitmix64's) is sufficient and an order of magnitude
/// cheaper.
#[derive(Default)]
struct EntryHasher(u64);

impl Hasher for EntryHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Fallback for non-u64 keys (unused by the cache, but required).
        for &byte in bytes {
            self.0 = (self.0 ^ u64::from(byte)).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn write_u64(&mut self, value: u64) {
        let mut v = value.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        v ^= v >> 32;
        self.0 = v;
    }
}

type EntryMap<V> = HashMap<u64, V, BuildHasherDefault<EntryHasher>>;

/// Default cache capacity in cached instructions. Workloads whose hot
/// footprint exceeds this (the paper repeatedly calls out gcc's "large
/// code footprint") take wholesale flushes and recompile, raising their
/// compilation overhead exactly as in the paper.
pub const DEFAULT_CAPACITY_INSTS: usize = 65_536;

/// One analysis call as compiled into the cache: the tool's routine plus
/// the register save/restore plan the compiler chose for it.
pub struct InsertedCall<T> {
    /// The analysis call.
    pub call: Call<T>,
    /// Clobbered registers bracketed with a save/restore around this
    /// call. Without liveness information this is the full clobber set
    /// ([`crate::spill::analysis_clobbers`]); with a
    /// [`LiveMap`] installed, registers dead at the insertion point are
    /// elided.
    pub saves: RegSet,
    /// Subset of `saves` additionally proven dead by the *refined*
    /// interprocedural liveness of a superblock plan
    /// ([`CodeCache::set_refined_liveness`]). These registers skip the
    /// host-side restore, but `saves` is untouched — it is the cost
    /// basis, so charged cycles stay identical with a plan on or off.
    pub elided: RegSet,
}

impl<T> fmt::Debug for InsertedCall<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("InsertedCall")
            .field("call", &self.call)
            .field("saves", &self.saves)
            .field("elided", &self.elided)
            .finish()
    }
}

/// One instruction of a compiled trace with its attached analysis calls.
pub struct CompiledInst<T> {
    /// Guest address.
    pub addr: u64,
    /// The decoded instruction.
    pub inst: Inst,
    /// Encoded size in bytes.
    pub size: u64,
    /// Calls to run before the instruction.
    pub before: Vec<InsertedCall<T>>,
    /// Calls to run after the instruction.
    pub after: Vec<InsertedCall<T>>,
    /// Whether any attached call takes [`IArg::MemAddr`] or
    /// [`IArg::MemSize`] — precomputed so the executor only derives the
    /// effective address for slots that can observe it.
    pub needs_mem_ea: bool,
}

impl<T> fmt::Debug for CompiledInst<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CompiledInst")
            .field("addr", &format_args!("{:#x}", self.addr))
            .field("inst", &self.inst)
            .field("before", &self.before.len())
            .field("after", &self.after.len())
            .finish()
    }
}

/// A compiled trace ready for execution.
pub struct CompiledTrace<T> {
    /// Entry address (cache key).
    pub entry: u64,
    /// The trace's instructions with instrumentation attached.
    pub insts: Vec<CompiledInst<T>>,
    /// Continuation address if the last instruction falls through.
    pub fallthrough: u64,
    /// Number of basic blocks the source trace had.
    pub num_bbls: usize,
    /// Superinstruction fusion metadata, present only when this trace
    /// was compiled under a valid superblock plan that predicted it hot
    /// *and* every attached call is fusible (see [`FusedMeta`]). Purely a
    /// host-side accelerator: the fused executor charges exactly the
    /// cycles the slow path would.
    pub fused: Option<FusedMeta>,
}

/// One analysis call pre-lowered for the fused executor: its full static
/// charge and its argument values, both computed once at fuse time
/// instead of once per execution.
#[derive(Clone, Debug)]
pub struct FusedCall {
    /// `analysis_call_base + |saves| · save_restore_per_reg +
    /// |args| · analysis_arg` — the slow path's charge for this call
    /// before any tool-requested extra cycles.
    pub static_cost: u64,
    /// Pre-evaluated argument values. Fusion requires every argument to
    /// be static (known at compile time), so this is the exact vector
    /// the slow path's `eval_args` would build.
    pub args: Box<[u64]>,
}

/// One trace instruction's fused call lists (parallel to
/// [`CompiledInst::before`] / [`CompiledInst::after`]).
#[derive(Clone, Debug, Default)]
pub struct FusedSlot {
    /// Pre-lowered before-calls, in insertion order.
    pub before: Box<[FusedCall]>,
    /// Pre-lowered after-calls, in insertion order.
    pub after: Box<[FusedCall]>,
}

/// Superinstruction fusion: per-instruction tool-callback costs and cost
/// accounting batched into pre-computed per-slot constants, so a hot
/// planned trace executes as one tight dispatch over pre-lowered slots
/// (cycle charges and argument vectors summed/evaluated at fuse time)
/// instead of re-deriving each call's cost and arguments per execution.
///
/// Fusion is only attempted for traces a [`SuperblockPlan`] predicted
/// hot, and only succeeds when every call is `Plain` with all-static
/// arguments; anything else (if-then calls, dynamic arguments such as
/// `MemAddr` on a load/store or `BranchTaken` on an after-call) leaves
/// `fused` as `None` and the trace on the slow path. The signature check
/// at dispatch (`slots.len() == insts.len()` plus a still-valid plan)
/// guards the fused executor; any mismatch falls back to the slow path.
///
/// [`SuperblockPlan`]: superpin_analysis::SuperblockPlan
#[derive(Clone, Debug)]
pub struct FusedMeta {
    /// Per-instruction fused call lists, parallel to the trace's
    /// `insts` — the length equality is the dispatch signature check.
    pub slots: Box<[FusedSlot]>,
    /// `cached_cpi` at fuse time (per retired instruction).
    pub cached_cpi: u64,
}

/// The value of `arg` when it is statically known at `(addr, inst,
/// size, point)`, mirroring the engine's dynamic `eval_args` exactly.
/// `None` means the argument depends on execution state (registers,
/// effective addresses, branch outcomes) and disqualifies fusion.
fn static_arg_value(arg: &IArg, addr: u64, inst: Inst, size: u64, point: IPoint) -> Option<u64> {
    match *arg {
        IArg::InstPtr => Some(addr),
        IArg::UInt(value) => Some(value),
        // Non-memory instructions evaluate MemAddr/MemSize to 0.
        IArg::MemAddr => {
            if inst.is_mem_read() || inst.is_mem_write() {
                None
            } else {
                Some(0)
            }
        }
        IArg::MemSize => match inst {
            Inst::Ld { width, .. } | Inst::St { width, .. } => Some(width.bytes() as u64),
            _ => Some(0),
        },
        IArg::IsMemWrite => Some(u64::from(inst.is_mem_write())),
        // Before-calls always observe `taken = false`.
        IArg::BranchTaken => match point {
            IPoint::Before => Some(0),
            IPoint::After => None,
        },
        IArg::RegValue(_) | IArg::StackWord(_) => None,
        IArg::FallthroughAddr => Some(addr + size),
    }
}

impl<T> fmt::Debug for CompiledTrace<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CompiledTrace")
            .field("entry", &format_args!("{:#x}", self.entry))
            .field("insts", &self.insts.len())
            .field("num_bbls", &self.num_bbls)
            .finish()
    }
}

/// Cache statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Trace lookups.
    pub lookups: u64,
    /// Lookup hits.
    pub hits: u64,
    /// Traces compiled (== misses).
    pub traces_compiled: u64,
    /// Instructions compiled across all traces.
    pub insts_compiled: u64,
    /// Wholesale cache flushes due to capacity pressure.
    pub flushes: u64,
    /// Flushes forced by self-modifying code (a guest write into its own
    /// code region invalidates all translations).
    pub smc_flushes: u64,
}

/// The code cache. Starts *cold*: every SuperPin slice gets a fresh one,
/// which is the source of the paper's per-slice "compilation slowdown"
/// (§6.3: "each slice has its own copy of the code cache, and it starts
/// in a clean state").
///
/// `Clone` shares the compiled traces (they are immutable behind `Arc`s)
/// and copies the counters — exactly what a slice checkpoint needs.
#[derive(Clone)]
pub struct CodeCache<T> {
    traces: EntryMap<Arc<CompiledTrace<T>>>,
    /// Memo of the most recent hit: hot loops re-enter the same trace
    /// back to back, so this answers most lookups without touching the
    /// map. Invalidated by every flush/evict/compile. The memoized hit
    /// still counts in [`CacheStats`] exactly like a map hit.
    last: Option<(u64, Arc<CompiledTrace<T>>)>,
    resident_insts: usize,
    capacity_insts: usize,
    stats: CacheStats,
    /// Static liveness used to elide save/restores of dead registers
    /// around analysis calls; `None` saves the full clobber set.
    liveness: Option<Arc<LiveMap>>,
    /// Interprocedurally refined liveness from a superblock plan.
    /// Registers in a call's save set that this map proves dead skip
    /// the host-side restore ([`InsertedCall::elided`]) without
    /// changing the charged cost.
    refined: Option<Arc<LiveMap>>,
    /// Host-only counter: restores elided via `refined` across all
    /// compilations. Deliberately *not* part of [`CacheStats`], which
    /// feeds bit-identical-report comparisons.
    elided_restores: u64,
    /// Test hook: a register deliberately omitted from every planned
    /// save set, so the clobber-safety verifier has a bug to catch.
    clobber_bug: Option<Reg>,
    /// Clobber-safety violations found while compiling (populated in
    /// debug/test builds only).
    violations: Vec<ClobberViolation>,
}

impl<T> fmt::Debug for CodeCache<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CodeCache")
            .field("traces", &self.traces.len())
            .field("resident_insts", &self.resident_insts)
            .field("capacity_insts", &self.capacity_insts)
            .finish()
    }
}

impl<T> Default for CodeCache<T> {
    fn default() -> CodeCache<T> {
        CodeCache::new()
    }
}

impl<T> CodeCache<T> {
    /// An empty cache with the default capacity.
    pub fn new() -> CodeCache<T> {
        CodeCache::with_capacity(DEFAULT_CAPACITY_INSTS)
    }

    /// An empty cache bounded at `capacity_insts` cached instructions.
    pub fn with_capacity(capacity_insts: usize) -> CodeCache<T> {
        CodeCache {
            traces: EntryMap::default(),
            last: None,
            resident_insts: 0,
            capacity_insts: capacity_insts.max(1),
            stats: CacheStats::default(),
            liveness: None,
            refined: None,
            elided_restores: 0,
            clobber_bug: None,
            violations: Vec::new(),
        }
    }

    /// Installs static liveness for the guest program. Subsequent
    /// compilations elide save/restores of registers proven dead at each
    /// insertion point. Must be installed while the cache is cold (or
    /// after a flush): already-compiled traces keep their conservative
    /// save sets.
    pub fn set_liveness(&mut self, liveness: Arc<LiveMap>) {
        self.liveness = Some(liveness);
    }

    /// Installs the superblock plan's interprocedurally refined
    /// liveness. Registers a call must *save* (per the conservative
    /// map) but that the refined map proves dead are marked
    /// [`InsertedCall::elided`]: the host skips their restore while
    /// the charged cost still covers the full save set. Like
    /// [`CodeCache::set_liveness`], install while cold.
    pub fn set_refined_liveness(&mut self, refined: Arc<LiveMap>) {
        self.refined = Some(refined);
    }

    /// Host-only count of save/restores elided by the refined
    /// liveness across all compilations. Not part of [`CacheStats`].
    pub fn elided_restores(&self) -> u64 {
        self.elided_restores
    }

    /// Test hook: omit `reg` from every save set the compiler plans, so
    /// the debug-build clobber-safety verifier has a deliberate bug to
    /// catch. Never use outside negative tests.
    pub fn inject_clobber_bug(&mut self, reg: Reg) {
        self.clobber_bug = Some(reg);
    }

    /// Clobber-safety violations found while compiling. Verification
    /// runs in debug/test builds (`debug_assertions`); release builds
    /// always report an empty list.
    pub fn clobber_violations(&self) -> &[ClobberViolation] {
        &self.violations
    }

    /// Whether a deliberate clobber bug is armed
    /// ([`inject_clobber_bug`](CodeCache::inject_clobber_bug)). A bugged
    /// cache compiles differently from its peers, so its traces must not
    /// be shared across engines.
    pub fn has_clobber_bug(&self) -> bool {
        self.clobber_bug.is_some()
    }

    /// Statistics so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Number of cached traces.
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }

    /// Drops every cached trace (self-modifying code detected).
    pub fn flush_for_smc(&mut self) {
        self.traces.clear();
        self.last = None;
        self.resident_insts = 0;
        self.stats.smc_flushes += 1;
    }

    /// Instructions currently resident in compiled traces — the
    /// simulated footprint the memory governor charges for this cache.
    pub fn resident_insts(&self) -> usize {
        self.resident_insts
    }

    /// Drops every cached trace under memory pressure (the governor's
    /// cache-eviction rung), returning the instructions freed. Counted as
    /// a capacity flush in [`CacheStats::flushes`]; an already-empty
    /// cache is left untouched and returns 0.
    pub fn evict_for_pressure(&mut self) -> usize {
        let freed = self.resident_insts;
        if freed == 0 {
            return 0;
        }
        self.traces.clear();
        self.last = None;
        self.resident_insts = 0;
        self.stats.flushes += 1;
        freed
    }

    /// Looks up the compiled trace entered at `entry`.
    #[inline]
    pub fn lookup(&mut self, entry: u64) -> Option<Arc<CompiledTrace<T>>> {
        self.stats.lookups += 1;
        if let Some((memo_entry, memo)) = &self.last {
            if *memo_entry == entry {
                self.stats.hits += 1;
                return Some(Arc::clone(memo));
            }
        }
        let hit = self.traces.get(&entry).cloned();
        if let Some(trace) = &hit {
            self.stats.hits += 1;
            self.last = Some((entry, Arc::clone(trace)));
        }
        hit
    }

    /// Compiles a discovered trace plus the tool's collected
    /// instrumentation and inserts it. Returns the compiled trace and the
    /// number of instructions compiled (for JIT cost accounting).
    ///
    /// With `fuse` set (the engine passes its cost model for traces a
    /// superblock plan predicted hot), the compiler additionally tries to
    /// fuse the trace into a superinstruction ([`FusedMeta`]): per-call
    /// charges and static argument vectors are pre-computed here so the
    /// fused executor dispatches the whole trace without re-deriving
    /// them. Ineligible traces (if-then calls, dynamic arguments) simply
    /// get `fused: None`.
    ///
    /// If inserting would exceed capacity, the whole cache is flushed
    /// first (Pin's wholesale-flush policy).
    pub fn compile(
        &mut self,
        trace: &Trace,
        inserter: Inserter<T>,
        fuse: Option<&CostModel>,
    ) -> (Arc<CompiledTrace<T>>, usize)
    where
        T: 'static,
    {
        let mut insts: Vec<CompiledInst<T>> = trace
            .insts()
            .map(|iref| CompiledInst {
                addr: iref.addr,
                inst: iref.inst,
                size: iref.size,
                before: Vec::new(),
                after: Vec::new(),
                needs_mem_ea: false,
            })
            .collect();

        for (addr, point, call) in inserter.into_calls() {
            if let Some(slot) = insts.iter_mut().find(|slot| slot.addr == addr) {
                // Live registers at the insertion point: before-calls see
                // the instruction's own reads as live; after-calls see
                // its live-out set. Unknown liveness saves everything.
                let live = match &self.liveness {
                    None => RegSet::ALL,
                    Some(map) => match point {
                        IPoint::Before => map.live_before(addr),
                        IPoint::After => map.live_after(addr),
                    },
                };
                let mut saves = required_saves(live);
                if let Some(bug) = self.clobber_bug {
                    saves.remove(bug);
                }
                // Refined interprocedural liveness (superblock plan):
                // saved registers the refined map proves dead skip
                // their host-side restore. `saves` itself is untouched
                // — it is the cost basis.
                let refined_live = self.refined.as_ref().map(|map| match point {
                    IPoint::Before => map.live_before(addr),
                    IPoint::After => map.live_after(addr),
                });
                let elided = match refined_live {
                    None => RegSet::EMPTY,
                    Some(refined) => saves.minus(required_saves(refined)),
                };
                self.elided_restores += elided.len() as u64;
                slot.needs_mem_ea |= call_needs_mem_ea(&call);
                let list = match point {
                    IPoint::Before => &mut slot.before,
                    IPoint::After => &mut slot.after,
                };
                if cfg!(debug_assertions) {
                    // Clobber-safety verifier: every planned save set
                    // must cover the live clobbered registers.
                    let missing = required_saves(live).minus(saves);
                    if !missing.is_empty() {
                        self.violations.push(ClobberViolation {
                            addr,
                            point,
                            call_index: list.len(),
                            missing,
                            live,
                        });
                    }
                    // With elision, what is actually restored is
                    // `saves − elided`; it must still cover the
                    // refined requirement.
                    if let Some(refined) = refined_live {
                        let missing = required_saves(refined).minus(saves.minus(elided));
                        if !missing.is_empty() {
                            self.violations.push(ClobberViolation {
                                addr,
                                point,
                                call_index: list.len(),
                                missing,
                                live: refined,
                            });
                        }
                    }
                }
                list.push(InsertedCall {
                    call,
                    saves,
                    elided,
                });
            }
            // Calls aimed at addresses outside the trace are dropped,
            // mirroring Pin: instrumentation only applies to the trace
            // being compiled.
        }

        let fused = fuse.and_then(|cost| {
            let mut slots = Vec::with_capacity(insts.len());
            for slot in &insts {
                slots.push(FusedSlot {
                    before: fuse_calls(&slot.before, slot, IPoint::Before, cost)?,
                    after: fuse_calls(&slot.after, slot, IPoint::After, cost)?,
                });
            }
            Some(FusedMeta {
                slots: slots.into_boxed_slice(),
                cached_cpi: cost.cached_cpi,
            })
        });

        let count = insts.len();
        // Recompiling an entry (e.g. after a mid-trace resume) replaces
        // the old trace; release its accounting first.
        if let Some(old) = self.traces.remove(&trace.entry()) {
            self.resident_insts -= old.insts.len();
        }
        if self.resident_insts + count > self.capacity_insts {
            self.traces.clear();
            self.last = None;
            self.resident_insts = 0;
            self.stats.flushes += 1;
        }

        let compiled = Arc::new(CompiledTrace {
            entry: trace.entry(),
            insts,
            fallthrough: trace.fallthrough(),
            num_bbls: trace.bbls().len(),
            fused,
        });
        self.traces.insert(trace.entry(), Arc::clone(&compiled));
        self.last = Some((trace.entry(), Arc::clone(&compiled)));
        self.resident_insts += count;
        self.stats.traces_compiled += 1;
        self.stats.insts_compiled += count as u64;
        (compiled, count)
    }

    /// Adopts a trace compiled by a peer engine (host-side template
    /// sharing), skipping the instrument+build work but performing the
    /// *same* cache bookkeeping as [`compile`](CodeCache::compile) —
    /// capacity flush, residency, compile statistics — so every
    /// simulated observable is identical to having compiled it here.
    /// Returns the instruction count for JIT cost accounting.
    ///
    /// The caller must have verified that compiling locally would have
    /// produced this exact trace (same instructions, pure shareable
    /// instrumentation, no clobber bug armed).
    pub fn adopt(&mut self, template: &Arc<CompiledTrace<T>>) -> usize {
        let count = template.insts.len();
        if let Some(old) = self.traces.remove(&template.entry) {
            self.resident_insts -= old.insts.len();
        }
        if self.resident_insts + count > self.capacity_insts {
            self.traces.clear();
            self.last = None;
            self.resident_insts = 0;
            self.stats.flushes += 1;
        }
        self.traces.insert(template.entry, Arc::clone(template));
        self.last = Some((template.entry, Arc::clone(template)));
        self.resident_insts += count;
        self.stats.traces_compiled += 1;
        self.stats.insts_compiled += count as u64;
        count
    }
}

/// Whether a call requests the effective address or access size, i.e.
/// whether the executor must derive `mem_ea` for the call's slot.
fn call_needs_mem_ea<T>(call: &Call<T>) -> bool {
    let wants = |args: &[IArg]| {
        args.iter()
            .any(|arg| matches!(arg, IArg::MemAddr | IArg::MemSize))
    };
    match call {
        Call::Plain { args, .. } => wants(args),
        Call::IfThen {
            pred_args,
            then_args,
            ..
        } => wants(pred_args) || wants(then_args),
    }
}

/// Pre-lowers one call list for the fused executor, or `None` if any
/// call is ineligible (non-`Plain`, or any dynamic argument).
fn fuse_calls<T>(
    calls: &[InsertedCall<T>],
    slot: &CompiledInst<T>,
    point: IPoint,
    cost: &CostModel,
) -> Option<Box<[FusedCall]>> {
    let mut out = Vec::with_capacity(calls.len());
    for inserted in calls {
        let Call::Plain { args, .. } = &inserted.call else {
            return None;
        };
        let mut values = Vec::with_capacity(args.len());
        for arg in args {
            values.push(static_arg_value(
                arg, slot.addr, slot.inst, slot.size, point,
            )?);
        }
        let static_cost = cost.analysis_call_base
            + inserted.saves.len() as u64 * cost.save_restore_per_reg
            + args.len() as u64 * cost.analysis_arg;
        out.push(FusedCall {
            static_cost,
            args: values.into_boxed_slice(),
        });
    }
    Some(out.into_boxed_slice())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inserter::IPoint;
    use crate::trace::discover_trace;
    use superpin_isa::asm::assemble;
    use superpin_vm::process::Process;

    fn trace_for(src: &str) -> Trace {
        let program = assemble(src).expect("assemble");
        let process = Process::load(1, &program).expect("load");
        discover_trace(&process.mem, program.entry()).expect("trace")
    }

    #[test]
    fn compile_attaches_calls_to_addresses() {
        let trace = trace_for("main:\n nop\n nop\n jmp main\n");
        let mut inserter: Inserter<u64> = Inserter::new();
        let second = trace.entry() + 8;
        inserter.insert_call(second, IPoint::Before, |t, _, _| *t += 1, vec![]);
        inserter.insert_call(second, IPoint::After, |t, _, _| *t += 1, vec![]);
        // Out-of-trace address: dropped.
        inserter.insert_call(0xdead, IPoint::Before, |t, _, _| *t += 1, vec![]);

        let mut cache: CodeCache<u64> = CodeCache::new();
        let (compiled, count) = cache.compile(&trace, inserter, None);
        assert_eq!(count, 3);
        assert_eq!(compiled.insts[1].before.len(), 1);
        assert_eq!(compiled.insts[1].after.len(), 1);
        assert_eq!(compiled.insts[0].before.len(), 0);
    }

    #[test]
    fn lookup_hits_after_compile() {
        let trace = trace_for("main:\n jmp main\n");
        let mut cache: CodeCache<u64> = CodeCache::new();
        assert!(cache.lookup(trace.entry()).is_none());
        cache.compile(&trace, Inserter::new(), None);
        assert!(cache.lookup(trace.entry()).is_some());
        let stats = cache.stats();
        assert_eq!(stats.lookups, 2);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.traces_compiled, 1);
    }

    #[test]
    fn capacity_pressure_flushes_wholesale() {
        // Two traces at distinct entries within one program.
        let src = "main:\n nop\n nop\n nop\n jmp second\nsecond:\n nop\n jmp main\n";
        let program = assemble(src).expect("assemble");
        let process = Process::load(1, &program).expect("load");
        let t1 = discover_trace(&process.mem, program.entry()).expect("t1"); // 4 insts
        let t2 = discover_trace(&process.mem, program.entry() + 32).expect("t2"); // 2 insts

        let mut cache: CodeCache<u64> = CodeCache::with_capacity(6);
        cache.compile(&t1, Inserter::new(), None); // 4 resident
        cache.compile(&t2, Inserter::new(), None); // 6 resident
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().flushes, 0);
        // Recompiling t1 releases its 4 first (6-4+4 = 6 fits, no flush)...
        cache.compile(&t1, Inserter::new(), None);
        assert_eq!(cache.stats().flushes, 0);
        assert_eq!(cache.len(), 2);
        // ...but a brand-new 4-inst trace exceeds capacity → flush.
        let t3 = discover_trace(&process.mem, program.entry() + 8).expect("t3");
        assert_eq!(t3.num_insts(), 3);
        cache.compile(&t3, Inserter::new(), None);
        assert_eq!(cache.stats().flushes, 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn fallthrough_and_bbl_metadata() {
        let trace = trace_for("main:\n beq r1, r2, main\n nop\n jmp main\n");
        let mut cache: CodeCache<u64> = CodeCache::new();
        let (compiled, _) = cache.compile(&trace, Inserter::new(), None);
        assert_eq!(compiled.num_bbls, 2);
        assert_eq!(compiled.fallthrough, trace.fallthrough());
    }
}

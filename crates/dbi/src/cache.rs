//! The code cache: compiled, instrumented traces keyed by entry address.

use crate::inserter::{Call, IPoint, Inserter};
use crate::spill::{required_saves, ClobberViolation};
use crate::trace::Trace;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use superpin_analysis::{LiveMap, RegSet};
use superpin_isa::{Inst, Reg};

/// Default cache capacity in cached instructions. Workloads whose hot
/// footprint exceeds this (the paper repeatedly calls out gcc's "large
/// code footprint") take wholesale flushes and recompile, raising their
/// compilation overhead exactly as in the paper.
pub const DEFAULT_CAPACITY_INSTS: usize = 65_536;

/// One analysis call as compiled into the cache: the tool's routine plus
/// the register save/restore plan the compiler chose for it.
pub struct InsertedCall<T> {
    /// The analysis call.
    pub call: Call<T>,
    /// Clobbered registers bracketed with a save/restore around this
    /// call. Without liveness information this is the full clobber set
    /// ([`crate::spill::analysis_clobbers`]); with a
    /// [`LiveMap`] installed, registers dead at the insertion point are
    /// elided.
    pub saves: RegSet,
    /// Subset of `saves` additionally proven dead by the *refined*
    /// interprocedural liveness of a superblock plan
    /// ([`CodeCache::set_refined_liveness`]). These registers skip the
    /// host-side restore, but `saves` is untouched — it is the cost
    /// basis, so charged cycles stay identical with a plan on or off.
    pub elided: RegSet,
}

impl<T> fmt::Debug for InsertedCall<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("InsertedCall")
            .field("call", &self.call)
            .field("saves", &self.saves)
            .field("elided", &self.elided)
            .finish()
    }
}

/// One instruction of a compiled trace with its attached analysis calls.
pub struct CompiledInst<T> {
    /// Guest address.
    pub addr: u64,
    /// The decoded instruction.
    pub inst: Inst,
    /// Encoded size in bytes.
    pub size: u64,
    /// Calls to run before the instruction.
    pub before: Vec<InsertedCall<T>>,
    /// Calls to run after the instruction.
    pub after: Vec<InsertedCall<T>>,
}

impl<T> fmt::Debug for CompiledInst<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CompiledInst")
            .field("addr", &format_args!("{:#x}", self.addr))
            .field("inst", &self.inst)
            .field("before", &self.before.len())
            .field("after", &self.after.len())
            .finish()
    }
}

/// A compiled trace ready for execution.
pub struct CompiledTrace<T> {
    /// Entry address (cache key).
    pub entry: u64,
    /// The trace's instructions with instrumentation attached.
    pub insts: Vec<CompiledInst<T>>,
    /// Continuation address if the last instruction falls through.
    pub fallthrough: u64,
    /// Number of basic blocks the source trace had.
    pub num_bbls: usize,
}

impl<T> fmt::Debug for CompiledTrace<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CompiledTrace")
            .field("entry", &format_args!("{:#x}", self.entry))
            .field("insts", &self.insts.len())
            .field("num_bbls", &self.num_bbls)
            .finish()
    }
}

/// Cache statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Trace lookups.
    pub lookups: u64,
    /// Lookup hits.
    pub hits: u64,
    /// Traces compiled (== misses).
    pub traces_compiled: u64,
    /// Instructions compiled across all traces.
    pub insts_compiled: u64,
    /// Wholesale cache flushes due to capacity pressure.
    pub flushes: u64,
    /// Flushes forced by self-modifying code (a guest write into its own
    /// code region invalidates all translations).
    pub smc_flushes: u64,
}

/// The code cache. Starts *cold*: every SuperPin slice gets a fresh one,
/// which is the source of the paper's per-slice "compilation slowdown"
/// (§6.3: "each slice has its own copy of the code cache, and it starts
/// in a clean state").
///
/// `Clone` shares the compiled traces (they are immutable behind `Arc`s)
/// and copies the counters — exactly what a slice checkpoint needs.
#[derive(Clone)]
pub struct CodeCache<T> {
    traces: HashMap<u64, Arc<CompiledTrace<T>>>,
    resident_insts: usize,
    capacity_insts: usize,
    stats: CacheStats,
    /// Static liveness used to elide save/restores of dead registers
    /// around analysis calls; `None` saves the full clobber set.
    liveness: Option<Arc<LiveMap>>,
    /// Interprocedurally refined liveness from a superblock plan.
    /// Registers in a call's save set that this map proves dead skip
    /// the host-side restore ([`InsertedCall::elided`]) without
    /// changing the charged cost.
    refined: Option<Arc<LiveMap>>,
    /// Host-only counter: restores elided via `refined` across all
    /// compilations. Deliberately *not* part of [`CacheStats`], which
    /// feeds bit-identical-report comparisons.
    elided_restores: u64,
    /// Test hook: a register deliberately omitted from every planned
    /// save set, so the clobber-safety verifier has a bug to catch.
    clobber_bug: Option<Reg>,
    /// Clobber-safety violations found while compiling (populated in
    /// debug/test builds only).
    violations: Vec<ClobberViolation>,
}

impl<T> fmt::Debug for CodeCache<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CodeCache")
            .field("traces", &self.traces.len())
            .field("resident_insts", &self.resident_insts)
            .field("capacity_insts", &self.capacity_insts)
            .finish()
    }
}

impl<T> Default for CodeCache<T> {
    fn default() -> CodeCache<T> {
        CodeCache::new()
    }
}

impl<T> CodeCache<T> {
    /// An empty cache with the default capacity.
    pub fn new() -> CodeCache<T> {
        CodeCache::with_capacity(DEFAULT_CAPACITY_INSTS)
    }

    /// An empty cache bounded at `capacity_insts` cached instructions.
    pub fn with_capacity(capacity_insts: usize) -> CodeCache<T> {
        CodeCache {
            traces: HashMap::new(),
            resident_insts: 0,
            capacity_insts: capacity_insts.max(1),
            stats: CacheStats::default(),
            liveness: None,
            refined: None,
            elided_restores: 0,
            clobber_bug: None,
            violations: Vec::new(),
        }
    }

    /// Installs static liveness for the guest program. Subsequent
    /// compilations elide save/restores of registers proven dead at each
    /// insertion point. Must be installed while the cache is cold (or
    /// after a flush): already-compiled traces keep their conservative
    /// save sets.
    pub fn set_liveness(&mut self, liveness: Arc<LiveMap>) {
        self.liveness = Some(liveness);
    }

    /// Installs the superblock plan's interprocedurally refined
    /// liveness. Registers a call must *save* (per the conservative
    /// map) but that the refined map proves dead are marked
    /// [`InsertedCall::elided`]: the host skips their restore while
    /// the charged cost still covers the full save set. Like
    /// [`CodeCache::set_liveness`], install while cold.
    pub fn set_refined_liveness(&mut self, refined: Arc<LiveMap>) {
        self.refined = Some(refined);
    }

    /// Host-only count of save/restores elided by the refined
    /// liveness across all compilations. Not part of [`CacheStats`].
    pub fn elided_restores(&self) -> u64 {
        self.elided_restores
    }

    /// Test hook: omit `reg` from every save set the compiler plans, so
    /// the debug-build clobber-safety verifier has a deliberate bug to
    /// catch. Never use outside negative tests.
    pub fn inject_clobber_bug(&mut self, reg: Reg) {
        self.clobber_bug = Some(reg);
    }

    /// Clobber-safety violations found while compiling. Verification
    /// runs in debug/test builds (`debug_assertions`); release builds
    /// always report an empty list.
    pub fn clobber_violations(&self) -> &[ClobberViolation] {
        &self.violations
    }

    /// Statistics so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Number of cached traces.
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }

    /// Drops every cached trace (self-modifying code detected).
    pub fn flush_for_smc(&mut self) {
        self.traces.clear();
        self.resident_insts = 0;
        self.stats.smc_flushes += 1;
    }

    /// Instructions currently resident in compiled traces — the
    /// simulated footprint the memory governor charges for this cache.
    pub fn resident_insts(&self) -> usize {
        self.resident_insts
    }

    /// Drops every cached trace under memory pressure (the governor's
    /// cache-eviction rung), returning the instructions freed. Counted as
    /// a capacity flush in [`CacheStats::flushes`]; an already-empty
    /// cache is left untouched and returns 0.
    pub fn evict_for_pressure(&mut self) -> usize {
        let freed = self.resident_insts;
        if freed == 0 {
            return 0;
        }
        self.traces.clear();
        self.resident_insts = 0;
        self.stats.flushes += 1;
        freed
    }

    /// Looks up the compiled trace entered at `entry`.
    pub fn lookup(&mut self, entry: u64) -> Option<Arc<CompiledTrace<T>>> {
        self.stats.lookups += 1;
        let hit = self.traces.get(&entry).cloned();
        if hit.is_some() {
            self.stats.hits += 1;
        }
        hit
    }

    /// Compiles a discovered trace plus the tool's collected
    /// instrumentation and inserts it. Returns the compiled trace and the
    /// number of instructions compiled (for JIT cost accounting).
    ///
    /// If inserting would exceed capacity, the whole cache is flushed
    /// first (Pin's wholesale-flush policy).
    pub fn compile(
        &mut self,
        trace: &Trace,
        inserter: Inserter<T>,
    ) -> (Arc<CompiledTrace<T>>, usize)
    where
        T: 'static,
    {
        let mut insts: Vec<CompiledInst<T>> = trace
            .insts()
            .map(|iref| CompiledInst {
                addr: iref.addr,
                inst: iref.inst,
                size: iref.size,
                before: Vec::new(),
                after: Vec::new(),
            })
            .collect();

        for (addr, point, call) in inserter.into_calls() {
            if let Some(slot) = insts.iter_mut().find(|slot| slot.addr == addr) {
                // Live registers at the insertion point: before-calls see
                // the instruction's own reads as live; after-calls see
                // its live-out set. Unknown liveness saves everything.
                let live = match &self.liveness {
                    None => RegSet::ALL,
                    Some(map) => match point {
                        IPoint::Before => map.live_before(addr),
                        IPoint::After => map.live_after(addr),
                    },
                };
                let mut saves = required_saves(live);
                if let Some(bug) = self.clobber_bug {
                    saves.remove(bug);
                }
                // Refined interprocedural liveness (superblock plan):
                // saved registers the refined map proves dead skip
                // their host-side restore. `saves` itself is untouched
                // — it is the cost basis.
                let refined_live = self.refined.as_ref().map(|map| match point {
                    IPoint::Before => map.live_before(addr),
                    IPoint::After => map.live_after(addr),
                });
                let elided = match refined_live {
                    None => RegSet::EMPTY,
                    Some(refined) => saves.minus(required_saves(refined)),
                };
                self.elided_restores += elided.len() as u64;
                let list = match point {
                    IPoint::Before => &mut slot.before,
                    IPoint::After => &mut slot.after,
                };
                if cfg!(debug_assertions) {
                    // Clobber-safety verifier: every planned save set
                    // must cover the live clobbered registers.
                    let missing = required_saves(live).minus(saves);
                    if !missing.is_empty() {
                        self.violations.push(ClobberViolation {
                            addr,
                            point,
                            call_index: list.len(),
                            missing,
                            live,
                        });
                    }
                    // With elision, what is actually restored is
                    // `saves − elided`; it must still cover the
                    // refined requirement.
                    if let Some(refined) = refined_live {
                        let missing = required_saves(refined).minus(saves.minus(elided));
                        if !missing.is_empty() {
                            self.violations.push(ClobberViolation {
                                addr,
                                point,
                                call_index: list.len(),
                                missing,
                                live: refined,
                            });
                        }
                    }
                }
                list.push(InsertedCall {
                    call,
                    saves,
                    elided,
                });
            }
            // Calls aimed at addresses outside the trace are dropped,
            // mirroring Pin: instrumentation only applies to the trace
            // being compiled.
        }

        let count = insts.len();
        // Recompiling an entry (e.g. after a mid-trace resume) replaces
        // the old trace; release its accounting first.
        if let Some(old) = self.traces.remove(&trace.entry()) {
            self.resident_insts -= old.insts.len();
        }
        if self.resident_insts + count > self.capacity_insts {
            self.traces.clear();
            self.resident_insts = 0;
            self.stats.flushes += 1;
        }

        let compiled = Arc::new(CompiledTrace {
            entry: trace.entry(),
            insts,
            fallthrough: trace.fallthrough(),
            num_bbls: trace.bbls().len(),
        });
        self.traces.insert(trace.entry(), Arc::clone(&compiled));
        self.resident_insts += count;
        self.stats.traces_compiled += 1;
        self.stats.insts_compiled += count as u64;
        (compiled, count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inserter::IPoint;
    use crate::trace::discover_trace;
    use superpin_isa::asm::assemble;
    use superpin_vm::process::Process;

    fn trace_for(src: &str) -> Trace {
        let program = assemble(src).expect("assemble");
        let process = Process::load(1, &program).expect("load");
        discover_trace(&process.mem, program.entry()).expect("trace")
    }

    #[test]
    fn compile_attaches_calls_to_addresses() {
        let trace = trace_for("main:\n nop\n nop\n jmp main\n");
        let mut inserter: Inserter<u64> = Inserter::new();
        let second = trace.entry() + 8;
        inserter.insert_call(second, IPoint::Before, |t, _, _| *t += 1, vec![]);
        inserter.insert_call(second, IPoint::After, |t, _, _| *t += 1, vec![]);
        // Out-of-trace address: dropped.
        inserter.insert_call(0xdead, IPoint::Before, |t, _, _| *t += 1, vec![]);

        let mut cache: CodeCache<u64> = CodeCache::new();
        let (compiled, count) = cache.compile(&trace, inserter);
        assert_eq!(count, 3);
        assert_eq!(compiled.insts[1].before.len(), 1);
        assert_eq!(compiled.insts[1].after.len(), 1);
        assert_eq!(compiled.insts[0].before.len(), 0);
    }

    #[test]
    fn lookup_hits_after_compile() {
        let trace = trace_for("main:\n jmp main\n");
        let mut cache: CodeCache<u64> = CodeCache::new();
        assert!(cache.lookup(trace.entry()).is_none());
        cache.compile(&trace, Inserter::new());
        assert!(cache.lookup(trace.entry()).is_some());
        let stats = cache.stats();
        assert_eq!(stats.lookups, 2);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.traces_compiled, 1);
    }

    #[test]
    fn capacity_pressure_flushes_wholesale() {
        // Two traces at distinct entries within one program.
        let src = "main:\n nop\n nop\n nop\n jmp second\nsecond:\n nop\n jmp main\n";
        let program = assemble(src).expect("assemble");
        let process = Process::load(1, &program).expect("load");
        let t1 = discover_trace(&process.mem, program.entry()).expect("t1"); // 4 insts
        let t2 = discover_trace(&process.mem, program.entry() + 32).expect("t2"); // 2 insts

        let mut cache: CodeCache<u64> = CodeCache::with_capacity(6);
        cache.compile(&t1, Inserter::new()); // 4 resident
        cache.compile(&t2, Inserter::new()); // 6 resident
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().flushes, 0);
        // Recompiling t1 releases its 4 first (6-4+4 = 6 fits, no flush)...
        cache.compile(&t1, Inserter::new());
        assert_eq!(cache.stats().flushes, 0);
        assert_eq!(cache.len(), 2);
        // ...but a brand-new 4-inst trace exceeds capacity → flush.
        let t3 = discover_trace(&process.mem, program.entry() + 8).expect("t3");
        assert_eq!(t3.num_insts(), 3);
        cache.compile(&t3, Inserter::new());
        assert_eq!(cache.stats().flushes, 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn fallthrough_and_bbl_metadata() {
        let trace = trace_for("main:\n beq r1, r2, main\n nop\n jmp main\n");
        let mut cache: CodeCache<u64> = CodeCache::new();
        let (compiled, _) = cache.compile(&trace, Inserter::new());
        assert_eq!(compiled.num_bbls, 2);
        assert_eq!(compiled.fallthrough, trace.fallthrough());
    }
}

#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! # superpin-dbi
//!
//! A Pin-like dynamic binary instrumentation engine over the
//! `superpin-vm` substrate.
//!
//! Mirroring Pin's internal architecture (paper §2.2), the engine consists
//! of a dispatcher + JIT ([`Engine`]) that discovers [`trace`]s of guest
//! code, lets the registered [`Pintool`] insert analysis calls through a
//! Pin-style API ([`Inserter::insert_call`], [`Inserter::insert_if_then_call`],
//! [`IArg`] argument descriptors), compiles the result into a [`cache`]
//! (the *code cache*), and executes it while accounting virtual cycles
//! against a calibrated [`CostModel`].
//!
//! Each SuperPin slice instantiates its own `Engine` with a cold cache,
//! which is exactly how the paper's per-slice "compilation slowdown"
//! arises (§6.3).
//!
//! # Example: counting instructions
//!
//! ```
//! use superpin_dbi::{Engine, IPoint, Inserter, Pintool, Trace};
//! use superpin_isa::asm::assemble;
//! use superpin_vm::process::Process;
//!
//! #[derive(Clone, Default)]
//! struct ICount { count: u64 }
//!
//! impl Pintool for ICount {
//!     fn instrument_trace(&mut self, trace: &Trace, inserter: &mut Inserter<Self>) {
//!         for bbl in trace.bbls() {
//!             let n = bbl.num_insts() as u64;
//!             inserter.insert_call(
//!                 bbl.head_addr(),
//!                 IPoint::Before,
//!                 move |tool, _, _| tool.count += n,
//!                 vec![],
//!             );
//!         }
//!     }
//! }
//!
//! let program = assemble("main:\n li r1, 10\nloop:\n subi r1, r1, 1\n bne r1, r0, loop\n exit 0\n")?;
//! let mut engine = Engine::new(Process::load(1, &program)?, ICount::default());
//! engine.run_to_exit()?;
//! assert_eq!(engine.tool().count, engine.process().inst_count());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod cache;
pub mod cost;
pub mod engine;
pub mod inserter;
pub mod shared_index;
pub mod spill;
pub mod tool;
pub mod trace;

pub use cache::{CacheStats, CodeCache, InsertedCall};
pub use cost::{cycles_to_secs, secs_to_cycles, CostModel, CYCLES_PER_SEC};
pub use engine::{
    cycles_to_ns, CycleBreakdown, Engine, EngineStats, EngineStop, PlanStats, RunResult,
};
pub use inserter::{AnalysisFn, Call, CallCtx, EngineCtl, IArg, IPoint, Inserter, PredicateFn};
pub use shared_index::{ProbeOutcome, SharedIndexStats, SharedTraceIndex};
pub use spill::{analysis_clobbers, ClobberViolation};
pub use tool::{NullTool, Pintool};
pub use trace::{discover_trace, BasicBlock, InstRef, Trace};

// Re-exported so DBI consumers can build and install liveness without
// depending on `superpin-analysis` directly.
pub use superpin_analysis::{
    LiveMap, PlanKnobs, ProgramAnalysis, RegSet, SoundnessOracle, SuperblockPlan,
};

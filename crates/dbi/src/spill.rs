//! Register save/restore planning for analysis calls.
//!
//! Invoking an inserted analysis routine clobbers a fixed set of guest
//! registers (the call's scratch/argument registers). The compiler must
//! bracket every call with spills of the clobbered registers that are
//! *live* at the insertion point; registers proven dead there need no
//! save/restore, which is the paper's motivation for keeping inserted
//! calls cheap ("register save/restore + call + return" in the cost
//! model).
//!
//! Two consumers are built on this module:
//!
//! * **Elision** — [`CodeCache::compile`](crate::cache::CodeCache::compile)
//!   intersects the clobber set with a [`LiveMap`](superpin_analysis::LiveMap)
//!   (when one is installed via
//!   [`Engine::set_liveness`](crate::Engine::set_liveness)) so the engine
//!   charges [`save_restore_per_reg`](crate::CostModel::save_restore_per_reg)
//!   only for registers that are actually live. Without liveness the full
//!   clobber set is saved, which by construction costs exactly the legacy
//!   flat [`analysis_call`](crate::CostModel::analysis_call).
//! * **Verification** — in debug/test builds the compiler re-checks every
//!   planned save set against the rule `saves ⊇ clobbers ∩ live` and
//!   records a [`ClobberViolation`] for each inserted call that would
//!   corrupt a live register.

use std::fmt;
use superpin_analysis::RegSet;
use superpin_isa::Reg;

use crate::inserter::IPoint;

/// The guest registers an analysis-call invocation clobbers: the
/// syscall/scratch register plus the first three argument registers,
/// which the modeled calling convention uses for marshalling
/// [`IArg`](crate::IArg) values.
pub fn analysis_clobbers() -> RegSet {
    RegSet::from_regs(&[Reg::R0, Reg::R1, Reg::R2, Reg::R3])
}

/// One clobber-safety violation found while compiling instrumentation:
/// an analysis call whose planned save set misses a clobbered register
/// that is live at the insertion point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ClobberViolation {
    /// Address of the instrumented instruction.
    pub addr: u64,
    /// Whether the offending call runs before or after the instruction.
    pub point: IPoint,
    /// Index of the call within its before/after list.
    pub call_index: usize,
    /// Clobbered-and-live registers the save set fails to cover.
    pub missing: RegSet,
    /// The full live set at the insertion point.
    pub live: RegSet,
}

impl fmt::Display for ClobberViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let point = match self.point {
            IPoint::Before => "before",
            IPoint::After => "after",
        };
        write!(
            f,
            "analysis call {} {:#x} (#{}) clobbers live register(s) {:?} without saving them \
             (live set {:?})",
            point, self.addr, self.call_index, self.missing, self.live
        )
    }
}

/// The registers an analysis call at a point with live set `live` must
/// save and restore: every clobbered register that is live there.
pub fn required_saves(live: RegSet) -> RegSet {
    analysis_clobbers().intersect(live)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn required_saves_is_clobbers_intersect_live() {
        let live = RegSet::from_regs(&[Reg::R0, Reg::R8]);
        assert_eq!(required_saves(live), RegSet::from_regs(&[Reg::R0]));
        assert_eq!(required_saves(RegSet::ALL), analysis_clobbers());
        assert_eq!(required_saves(RegSet::EMPTY), RegSet::EMPTY);
    }

    #[test]
    fn violation_renders_the_missing_registers() {
        let v = ClobberViolation {
            addr: 0x1000,
            point: IPoint::Before,
            call_index: 0,
            missing: RegSet::from_regs(&[Reg::R1]),
            live: RegSet::from_regs(&[Reg::R1, Reg::R8]),
        };
        let text = v.to_string();
        assert!(text.contains("0x1000"), "{text}");
        assert!(text.contains("r1"), "{text}");
    }
}

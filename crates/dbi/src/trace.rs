//! Trace and basic-block discovery.
//!
//! Like Pin, the JIT unit is a *trace*: a single-entry, multiple-exit
//! straight-line region. A trace starts at the requested address and
//! extends across fall-through basic-block boundaries until it reaches an
//! unconditional control transfer, a syscall, a block-count limit, or an
//! instruction-count limit.

use superpin_isa::{DecodeError, Inst};
use superpin_vm::mem::AddressSpace;
use superpin_vm::VmError;

/// Upper bound on basic blocks per trace (Pin uses similar small limits).
pub const MAX_BBLS_PER_TRACE: usize = 3;

/// Upper bound on instructions per trace.
pub const MAX_INSTS_PER_TRACE: usize = 96;

/// One decoded instruction within a trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InstRef {
    /// Virtual address of the instruction.
    pub addr: u64,
    /// The decoded instruction.
    pub inst: Inst,
    /// Encoded size in bytes.
    pub size: u64,
}

/// A single-entry basic block: instructions up to and including the first
/// block terminator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BasicBlock {
    insts: Vec<InstRef>,
}

impl BasicBlock {
    /// The instructions of the block, in order.
    pub fn insts(&self) -> &[InstRef] {
        &self.insts
    }

    /// Address of the first instruction.
    pub fn head_addr(&self) -> u64 {
        self.insts[0].addr
    }

    /// Number of instructions — what `icount2` adds per block execution.
    pub fn num_insts(&self) -> usize {
        self.insts.len()
    }

    /// The block's final (terminating or trace-truncated) instruction.
    pub fn tail(&self) -> InstRef {
        *self.insts.last().expect("blocks are non-empty")
    }
}

/// A discovered trace: one or more basic blocks laid out contiguously.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Trace {
    entry: u64,
    bbls: Vec<BasicBlock>,
}

impl Trace {
    /// Entry address (the code-cache key).
    pub fn entry(&self) -> u64 {
        self.entry
    }

    /// The trace's basic blocks in order (`TRACE_BblHead`/`BBL_Next`).
    pub fn bbls(&self) -> &[BasicBlock] {
        &self.bbls
    }

    /// Iterates every instruction of the trace in order.
    pub fn insts(&self) -> impl Iterator<Item = &InstRef> {
        self.bbls.iter().flat_map(|bbl| bbl.insts().iter())
    }

    /// Total instruction count.
    pub fn num_insts(&self) -> usize {
        self.bbls.iter().map(BasicBlock::num_insts).sum()
    }

    /// Address immediately after the trace's last instruction (the
    /// fall-through continuation if the last block doesn't transfer).
    pub fn fallthrough(&self) -> u64 {
        let tail = self.bbls.last().expect("traces are non-empty").tail();
        tail.addr + tail.size
    }
}

/// Decodes one instruction out of guest memory.
///
/// # Errors
///
/// Returns [`VmError::Mem`] for unmapped fetches, [`VmError::Decode`] for
/// invalid encodings.
pub fn decode_guest(mem: &AddressSpace, pc: u64) -> Result<InstRef, VmError> {
    let mut buf = [0u8; 16];
    mem.read(pc, &mut buf[..8])?;
    match superpin_isa::decode(&buf[..8]) {
        Ok((inst, size)) => Ok(InstRef {
            addr: pc,
            inst,
            size: size as u64,
        }),
        Err(DecodeError::Truncated) => {
            mem.read(pc + 8, &mut buf[8..])?;
            let (inst, size) =
                superpin_isa::decode(&buf).map_err(|source| VmError::Decode { pc, source })?;
            Ok(InstRef {
                addr: pc,
                inst,
                size: size as u64,
            })
        }
        Err(source) => Err(VmError::Decode { pc, source }),
    }
}

/// Discovers the trace starting at `entry` by decoding guest memory.
///
/// Blocks end at any [`Inst::ends_basic_block`] instruction. The trace
/// continues past *conditional* branches (their fall-through starts the
/// next block) and stops at unconditional transfers, syscalls, `halt`,
/// or the size limits.
///
/// # Errors
///
/// Propagates decode/fetch errors.
pub fn discover_trace(mem: &AddressSpace, entry: u64) -> Result<Trace, VmError> {
    discover_trace_split(mem, entry, None)
}

/// [`discover_trace`] with an optional *split point*: the trace ends just
/// before `split`, so that address always begins its own trace/block.
///
/// SuperPin slices set the split to their boundary pc (paper §4.4): the
/// signature detector then fires at a block head, before any
/// block-granularity instrumentation of the boundary block has run, which
/// keeps block-counting tools exact across slice boundaries.
///
/// # Errors
///
/// Propagates decode/fetch errors.
pub fn discover_trace_split(
    mem: &AddressSpace,
    entry: u64,
    split: Option<u64>,
) -> Result<Trace, VmError> {
    discover_trace_with(|pc| decode_guest(mem, pc), entry, split)
}

/// [`discover_trace_split`] over an arbitrary instruction source.
///
/// The fetch closure abstracts where instruction bytes come from: live
/// guest-memory decode ([`decode_guest`]) or an ahead-of-time
/// superblock plan's pre-decoded stream. Both must yield identical
/// [`InstRef`]s for the same pc — the engine debug-asserts this when a
/// plan is installed.
///
/// # Errors
///
/// Propagates fetch errors.
pub fn discover_trace_with(
    mut fetch: impl FnMut(u64) -> Result<InstRef, VmError>,
    entry: u64,
    split: Option<u64>,
) -> Result<Trace, VmError> {
    let mut bbls = Vec::new();
    let mut current = Vec::new();
    let mut pc = entry;
    let mut total = 0usize;

    loop {
        if split == Some(pc) && total > 0 {
            if !current.is_empty() {
                bbls.push(BasicBlock {
                    insts: std::mem::take(&mut current),
                });
            }
            break;
        }
        let inst_ref = fetch(pc)?;
        current.push(inst_ref);
        total += 1;
        pc += inst_ref.size;

        let ends_block = inst_ref.inst.ends_basic_block();
        if ends_block {
            let continues = matches!(inst_ref.inst, Inst::Branch { .. });
            bbls.push(BasicBlock {
                insts: std::mem::take(&mut current),
            });
            if !continues || bbls.len() >= MAX_BBLS_PER_TRACE || total >= MAX_INSTS_PER_TRACE {
                break;
            }
        } else if total >= MAX_INSTS_PER_TRACE {
            bbls.push(BasicBlock {
                insts: std::mem::take(&mut current),
            });
            break;
        }
    }

    Ok(Trace { entry, bbls })
}

#[cfg(test)]
mod tests {
    use super::*;
    use superpin_isa::asm::assemble;
    use superpin_vm::process::Process;

    fn mem_for(src: &str) -> (AddressSpace, u64) {
        let program = assemble(src).expect("assemble");
        let process = Process::load(1, &program).expect("load");
        (process.mem.clone(), program.entry())
    }

    #[test]
    fn single_block_ends_at_jmp() {
        let (mem, entry) = mem_for("main:\n nop\n nop\n jmp main\n");
        let trace = discover_trace(&mem, entry).expect("trace");
        assert_eq!(trace.bbls().len(), 1);
        assert_eq!(trace.num_insts(), 3);
        assert_eq!(trace.entry(), entry);
    }

    #[test]
    fn conditional_branch_extends_trace() {
        let (mem, entry) = mem_for(
            "main:\n beq r1, r2, out\n nop\n beq r3, r4, out\n nop\n jmp main\nout:\n exit 0\n",
        );
        let trace = discover_trace(&mem, entry).expect("trace");
        // bbl1 = [beq], bbl2 = [nop, beq], bbl3 = [nop, jmp] — 3-block cap.
        assert_eq!(trace.bbls().len(), 3);
        assert_eq!(trace.bbls()[0].num_insts(), 1);
        assert_eq!(trace.bbls()[1].num_insts(), 2);
        assert_eq!(trace.bbls()[2].num_insts(), 2);
    }

    #[test]
    fn bbl_cap_stops_trace() {
        let (mem, entry) = mem_for(
            "main:\n beq r1, r2, main\n beq r1, r2, main\n beq r1, r2, main\n beq r1, r2, main\n exit 0\n",
        );
        let trace = discover_trace(&mem, entry).expect("trace");
        assert_eq!(trace.bbls().len(), MAX_BBLS_PER_TRACE);
        // Fall-through resumes at the 4th branch.
        assert_eq!(trace.fallthrough(), entry + 3 * 8);
    }

    #[test]
    fn syscall_terminates_block_and_trace() {
        let (mem, entry) = mem_for("main:\n nop\n syscall\n nop\n jmp main\n");
        let trace = discover_trace(&mem, entry).expect("trace");
        assert_eq!(trace.bbls().len(), 1);
        assert_eq!(trace.num_insts(), 2);
        assert!(matches!(trace.bbls()[0].tail().inst, Inst::Syscall));
    }

    #[test]
    fn inst_cap_truncates_long_block() {
        let body = "nop\n".repeat(2 * MAX_INSTS_PER_TRACE);
        let src = format!("main:\n{body} jmp main\n");
        let (mem, entry) = mem_for(&src);
        let trace = discover_trace(&mem, entry).expect("trace");
        assert_eq!(trace.num_insts(), MAX_INSTS_PER_TRACE);
        assert_eq!(
            trace.fallthrough(),
            entry + (MAX_INSTS_PER_TRACE as u64) * 8
        );
    }

    #[test]
    fn fallthrough_after_variable_length() {
        let (mem, entry) = mem_for("main:\n li r1, 1\n jmp main\n");
        let trace = discover_trace(&mem, entry).expect("trace");
        assert_eq!(trace.num_insts(), 2);
        // li is 16 bytes, jmp 8.
        assert_eq!(trace.fallthrough(), entry + 24);
    }

    #[test]
    fn decode_guest_reports_bad_code() {
        let (mut mem, entry) = mem_for("main:\n nop\n jmp main\n");
        mem.write(entry, &[0xff; 8]).expect("poison");
        assert!(matches!(
            decode_guest(&mem, entry),
            Err(VmError::Decode { .. })
        ));
    }
}

//! Sharded shared-trace index: the concurrent registry behind the
//! shared code cache (paper §8).
//!
//! Engines record which trace entry pcs *some* engine has already
//! compiled; later compilers of the same trace adopt it at the cheap
//! consistency-check rate instead of paying full JIT cost. The original
//! implementation was a single `Mutex<HashSet<u64>>` — one global lock
//! on the hottest path of every cold engine, which serializes exactly
//! the phase the parallel runner wants to overlap.
//!
//! [`SharedTraceIndex`] replaces it with `RwLock` shards selected by pc
//! hash. Reads (the overwhelmingly common case once caches warm) take a
//! shard read lock; only the first compiler of a trace takes the shard's
//! write lock. Hit/miss/contention counters are atomics, surfaced per
//! engine in [`EngineStats`](crate::EngineStats) and per run in the
//! `SliceReport`.
//!
//! ## Two consistency modes
//!
//! * **Live** ([`SharedTraceIndex::probe_insert`]) — probe and publish in
//!   one step. Right for standalone engines and single-threaded runs,
//!   but *racy across threads*: which engine compiles a trace first
//!   would depend on host scheduling, and with it the jit-cycle
//!   accounting.
//! * **Epoch snapshot** ([`SharedTraceIndex::snapshot`] +
//!   [`SharedTraceIndex::publish`]) — the parallel runner hands every
//!   slice an immutable snapshot at each epoch barrier; slices record
//!   their own fresh compilations locally and the runner publishes them
//!   *in slice order* at the next barrier. What each engine pays is then
//!   a pure function of virtual time, independent of host interleaving —
//!   this is what keeps `threads=N` reports bit-identical to
//!   `threads=1`.

use std::collections::hash_map::RandomState;
use std::collections::HashSet;
use std::hash::BuildHasher;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Number of shards. A small power of two: enough to spread the handful
/// of concurrently-cold engines (`max_slices` ≤ 16 in practice) across
/// independent locks without bloating the structure.
pub const SHARDS: usize = 16;

/// Counter snapshot from a [`SharedTraceIndex`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SharedIndexStats {
    /// Probes that found the pc already indexed (an adoption upstream).
    pub hits: u64,
    /// Probes that claimed a pc first (full JIT price upstream).
    pub misses: u64,
    /// Lock acquisitions that had to block because another thread held
    /// the shard (read-side or write-side).
    pub contention: u64,
}

/// Outcome of a live-mode [`SharedTraceIndex::probe_insert`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProbeOutcome {
    /// The pc was already indexed: the caller should adopt the trace at
    /// the consistency-check rate. `false` means this probe claimed the
    /// pc first and the caller pays full JIT price.
    pub adopted: bool,
    /// A shard lock was held by another thread and this probe had to
    /// block for it.
    pub contended: bool,
}

/// A sharded, concurrently-readable index of compiled trace entry pcs.
#[derive(Debug, Default)]
pub struct SharedTraceIndex {
    shards: [RwLock<HashSet<u64>>; SHARDS],
    hasher: RandomState,
    hits: AtomicU64,
    misses: AtomicU64,
    contention: AtomicU64,
}

impl SharedTraceIndex {
    /// Creates an empty index.
    pub fn new() -> SharedTraceIndex {
        SharedTraceIndex::default()
    }

    fn shard_for(&self, pc: u64) -> &RwLock<HashSet<u64>> {
        &self.shards[(self.hasher.hash_one(pc) as usize) % SHARDS]
    }

    /// Live-mode probe: checks whether `pc` is indexed and claims it if
    /// not, in one step.
    ///
    /// Fast path is a shard read lock; only a first-compile upgrades to
    /// the write lock.
    pub fn probe_insert(&self, pc: u64) -> ProbeOutcome {
        let shard = self.shard_for(pc);
        let mut contended = false;
        let known = {
            let guard = match shard.try_read() {
                Ok(guard) => guard,
                Err(std::sync::TryLockError::WouldBlock) => {
                    contended = true;
                    shard.read().expect("shared-trace shard poisoned")
                }
                Err(std::sync::TryLockError::Poisoned(_)) => {
                    panic!("shared-trace shard poisoned")
                }
            };
            guard.contains(&pc)
        };
        let adopted = if known {
            self.hits.fetch_add(1, Ordering::Relaxed);
            true
        } else {
            let mut guard = match shard.try_write() {
                Ok(guard) => guard,
                Err(std::sync::TryLockError::WouldBlock) => {
                    contended = true;
                    shard.write().expect("shared-trace shard poisoned")
                }
                Err(std::sync::TryLockError::Poisoned(_)) => panic!("shared-trace shard poisoned"),
            };
            if guard.insert(pc) {
                self.misses.fetch_add(1, Ordering::Relaxed);
                false
            } else {
                // Lost the upgrade race: someone indexed it between our
                // read and write — an adoption after all.
                self.hits.fetch_add(1, Ordering::Relaxed);
                true
            }
        };
        if contended {
            self.contention.fetch_add(1, Ordering::Relaxed);
        }
        ProbeOutcome { adopted, contended }
    }

    /// Epoch-mode read: an immutable copy of the whole index, for engines
    /// to consult lock-free during an epoch.
    pub fn snapshot(&self) -> Arc<HashSet<u64>> {
        let mut all = HashSet::new();
        for shard in &self.shards {
            all.extend(shard.read().expect("shared-trace shard poisoned").iter());
        }
        Arc::new(all)
    }

    /// Epoch-mode write: publishes pcs freshly compiled during an epoch.
    /// The parallel runner calls this at the barrier, slice by slice in
    /// slice order.
    pub fn publish(&self, pcs: impl IntoIterator<Item = u64>) {
        for pc in pcs {
            let inserted = self
                .shard_for(pc)
                .write()
                .expect("shared-trace shard poisoned")
                .insert(pc);
            if inserted {
                self.misses.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Whether the index has no entries.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|shard| {
            shard
                .read()
                .expect("shared-trace shard poisoned")
                .is_empty()
        })
    }

    /// Total entries across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|shard| shard.read().expect("shared-trace shard poisoned").len())
            .sum()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> SharedIndexStats {
        SharedIndexStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            contention: self.contention.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_probe_claims_later_probes_adopt() {
        let index = SharedTraceIndex::new();
        assert!(
            !index.probe_insert(0x1000).adopted,
            "first compiler pays full"
        );
        assert!(index.probe_insert(0x1000).adopted, "second adopts");
        assert!(index.probe_insert(0x1000).adopted);
        let stats = index.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 2);
        assert_eq!(index.len(), 1);
    }

    #[test]
    fn snapshot_is_immutable_and_publish_lands() {
        let index = SharedTraceIndex::new();
        index.publish([0x10, 0x20]);
        let snap = index.snapshot();
        assert!(snap.contains(&0x10) && snap.contains(&0x20));
        index.publish([0x30]);
        // The old snapshot does not see later publishes.
        assert!(!snap.contains(&0x30));
        assert!(index.snapshot().contains(&0x30));
        assert_eq!(index.len(), 3);
    }

    #[test]
    fn publish_is_idempotent() {
        let index = SharedTraceIndex::new();
        index.publish([0x10]);
        index.publish([0x10, 0x10]);
        assert_eq!(index.len(), 1);
        assert_eq!(index.stats().misses, 1);
    }

    #[test]
    fn entries_spread_across_shards() {
        let index = SharedTraceIndex::new();
        index.publish((0..1024).map(|i| i * 8));
        assert_eq!(index.len(), 1024);
        let occupied = index
            .shards
            .iter()
            .filter(|shard| !shard.read().unwrap().is_empty())
            .count();
        assert!(occupied > SHARDS / 2, "only {occupied} shards occupied");
    }

    #[test]
    fn concurrent_probes_agree_on_one_claimant() {
        let index = Arc::new(SharedTraceIndex::new());
        let claims: usize = std::thread::scope(|scope| {
            (0..8)
                .map(|_| {
                    let index = Arc::clone(&index);
                    scope.spawn(move || {
                        let mut claimed = 0usize;
                        for pc in 0..256u64 {
                            if !index.probe_insert(pc * 8).adopted {
                                claimed += 1;
                            }
                        }
                        claimed
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|handle| handle.join().expect("join"))
                .sum()
        });
        // Each pc has exactly one first compiler across all threads.
        assert_eq!(claims, 256);
        assert_eq!(index.len(), 256);
        let stats = index.stats();
        assert_eq!(stats.misses, 256);
        assert_eq!(stats.hits, 8 * 256 - 256);
    }
}

//! Liveness-driven save/restore elision and the clobber-safety verifier.
//!
//! With a [`LiveMap`] installed, the compiler skips spills of registers
//! proven dead at each insertion point: modeled analysis cost shrinks,
//! while call *execution* is untouched, so instrumentation results stay
//! bit-identical. The verifier re-checks every planned save set against
//! `saves ⊇ clobbers ∩ live` in debug builds and must catch a
//! deliberately planted bug.

use std::sync::Arc;
use superpin_dbi::{
    analysis_clobbers, discover_trace, CodeCache, Engine, IPoint, Inserter, LiveMap, Pintool,
    RegSet, Trace,
};
use superpin_isa::asm::assemble;
use superpin_isa::Reg;
use superpin_vm::process::Process;

/// A countdown loop: at the loop head only `r8` (the counter) and `r0`
/// (the zero register read by `bne`) are live, so three of the four
/// clobbered registers need no save/restore.
const LOOP: &str = "main:\n li r8, 60\nloop:\n subi r8, r8, 1\n bne r8, r0, loop\n exit 0\n";

#[derive(Clone, Default)]
struct ICount {
    count: u64,
}

impl Pintool for ICount {
    fn instrument_trace(&mut self, trace: &Trace, inserter: &mut Inserter<Self>) {
        for iref in trace.insts() {
            inserter.insert_call(iref.addr, IPoint::Before, |t, _, _| t.count += 1, vec![]);
        }
    }
}

fn run(install_liveness: bool) -> Engine<ICount> {
    let program = assemble(LOOP).expect("assemble");
    let process = Process::load(1, &program).expect("load");
    let mut engine = Engine::new(process, ICount::default());
    if install_liveness {
        let live = LiveMap::compute(&program).expect("liveness");
        engine.set_liveness(Arc::new(live));
    }
    engine.run_to_exit().expect("run");
    engine
}

#[test]
fn elision_reduces_modeled_cost_and_preserves_results() {
    let conservative = run(false);
    let elided = run(true);

    // Instrumentation results are identical: same dynamic icount, same
    // number of analysis calls fired.
    assert_eq!(elided.tool().count, conservative.tool().count);
    assert_eq!(
        elided.process().inst_count(),
        conservative.process().inst_count()
    );
    assert_eq!(
        elided.stats().analysis_calls,
        conservative.stats().analysis_calls
    );

    // Modeled analysis overhead shrinks: at the loop head only r0 of the
    // four clobbered registers is live, so most spills are elided.
    let full = conservative.stats().cycles.analysis;
    let thin = elided.stats().cycles.analysis;
    assert!(
        thin < full,
        "elided {thin} must be below conservative {full}"
    );
    // Steady state: 7 cycles per call instead of 10.
    let calls = conservative.stats().analysis_calls;
    assert_eq!(full, calls * conservative.cost().analysis_call);
    assert!(
        thin <= calls * 7 + 16,
        "elided total {thin} should be ≈7 per call for {calls} calls"
    );
    // Non-analysis components are untouched by elision.
    assert_eq!(elided.stats().cycles.app, conservative.stats().cycles.app);
}

#[test]
fn conservative_charge_matches_flat_analysis_call() {
    // Without liveness, the per-register charging must reproduce the
    // legacy flat `analysis_call` rate exactly (zero-arg calls here).
    let engine = run(false);
    let stats = engine.stats();
    assert_eq!(
        stats.cycles.analysis,
        stats.analysis_calls * engine.cost().analysis_call
    );
}

#[test]
fn compile_plans_minimal_save_sets() {
    let program = assemble(LOOP).expect("assemble");
    let live = Arc::new(LiveMap::compute(&program).expect("liveness"));
    let process = Process::load(1, &program).expect("load");
    let trace = discover_trace(&process.mem, program.entry()).expect("trace");

    let mut inserter: Inserter<u64> = Inserter::new();
    for iref in trace.insts() {
        inserter.insert_call(iref.addr, IPoint::Before, |t, _, _| *t += 1, vec![]);
    }
    let mut cache: CodeCache<u64> = CodeCache::new();
    cache.set_liveness(live);
    let (compiled, _) = cache.compile(&trace, inserter, None);

    // Before `subi` (the loop head) live = {r8, r0}: only r0 of the
    // clobber set needs saving.
    let subi = compiled
        .insts
        .iter()
        .find(|slot| slot.addr == program.entry() + 16)
        .expect("loop head in trace");
    assert_eq!(subi.before[0].saves, RegSet::from_regs(&[Reg::R0]));
    // An honest compilation passes the verifier.
    assert!(cache.clobber_violations().is_empty());

    // Without liveness the full clobber set is saved.
    let mut conservative: CodeCache<u64> = CodeCache::new();
    let mut inserter: Inserter<u64> = Inserter::new();
    inserter.insert_call(program.entry(), IPoint::Before, |t, _, _| *t += 1, vec![]);
    let (compiled, _) = conservative.compile(&trace, inserter, None);
    assert_eq!(compiled.insts[0].before[0].saves, analysis_clobbers());
}

#[test]
fn verifier_catches_an_injected_clobber_bug() {
    let program = assemble(LOOP).expect("assemble");
    let process = Process::load(1, &program).expect("load");
    let mut engine = Engine::new(process, ICount::default());
    engine.set_liveness(Arc::new(LiveMap::compute(&program).expect("liveness")));
    // Plant the bug: r0 is live at the loop head (read by `bne`) and in
    // the clobber set, yet the compiler will skip saving it.
    engine.inject_clobber_bug(Reg::R0);
    engine.run_to_exit().expect("run");

    let violations = engine.clobber_violations();
    assert!(
        !violations.is_empty(),
        "the verifier must catch the planted clobber"
    );
    let v = violations
        .iter()
        .find(|v| v.addr == program.entry() + 16)
        .expect("violation at the loop head");
    assert!(v.missing.contains(Reg::R0), "{v:?}");
    assert!(v.live.contains(Reg::R8), "{v:?}");
    let rendered = v.to_string();
    assert!(rendered.contains("clobbers live register"), "{rendered}");
    assert!(rendered.contains("r0"), "{rendered}");
}

#[test]
fn honest_runs_report_no_violations() {
    assert!(run(true).clobber_violations().is_empty());
    assert!(run(false).clobber_violations().is_empty());
}

//! Engine integration: cache pressure, split points, instrumentation
//! argument matrix, and instrumentation-time behaviour on assembled
//! programs.

use superpin_dbi::{
    discover_trace, CostModel, Engine, IArg, IPoint, Inserter, NullTool, Pintool, Trace,
};
use superpin_isa::asm::assemble;
use superpin_isa::{Inst, Reg};
use superpin_vm::process::Process;

fn process(src: &str) -> Process {
    Process::load(1, &assemble(src).expect("assemble")).expect("load")
}

#[derive(Clone, Default)]
struct ICount {
    count: u64,
}

impl Pintool for ICount {
    fn instrument_trace(&mut self, trace: &Trace, inserter: &mut Inserter<Self>) {
        for iref in trace.insts() {
            inserter.insert_call(iref.addr, IPoint::Before, |t, _, _| t.count += 1, vec![]);
        }
    }
}

#[test]
fn cache_flushes_do_not_affect_tool_results() {
    // A program whose footprint exceeds a tiny cache: two phases, each a
    // long distinct code run, looped so the phases evict each other.
    let body_a = "addi r2, r2, 1\n".repeat(60);
    let body_b = "addi r3, r3, 1\n".repeat(60);
    let src = format!(
        "main:\n li r1, 30\nloop:\n{body_a}{body_b} subi r1, r1, 1\n bne r1, r0, loop\n exit 0\n"
    );

    let mut native = process(&src);
    native.run(u64::MAX, 0).expect("native");
    let truth = native.inst_count();

    // Capacity far below the ~120-inst loop body forces flushes.
    let mut engine =
        Engine::with_config(process(&src), ICount::default(), CostModel::default(), 64);
    engine.run_to_exit().expect("run");
    assert!(
        engine.cache_stats().flushes > 0,
        "test must exercise flushing"
    );
    assert_eq!(engine.tool().count, truth);
    assert_eq!(engine.process().inst_count(), truth);
}

#[test]
fn split_point_partitions_counts_exactly() {
    let src = "main:\n li r1, 50\nloop:\n subi r1, r1, 1\n nop\n nop\n bne r1, r0, loop\n exit 0\n";
    let mut native = process(src);
    native.run(u64::MAX, 0).expect("native");
    let truth = native.inst_count();

    // Split in the middle of the loop body: the `nop` at loop+8.
    let program = assemble(src).expect("assemble");
    let split = program.entry() + 16 + 8;
    let mut engine = Engine::new(process(src), ICount::default());
    engine.set_split_point(Some(split));
    engine.run_to_exit().expect("run");
    assert_eq!(engine.tool().count, truth, "split must not change counts");

    // And the split point indeed heads its own trace.
    let trace = discover_trace(&engine.process().mem, program.entry() + 16).expect("trace");
    let _ = trace; // discovery without split spans the block
}

#[test]
fn iarg_matrix_values() {
    #[derive(Clone, Default)]
    struct ArgProbe {
        rows: Vec<Vec<u64>>,
    }
    impl Pintool for ArgProbe {
        fn instrument_trace(&mut self, trace: &Trace, inserter: &mut Inserter<Self>) {
            for iref in trace.insts() {
                if iref.inst.is_mem_write() {
                    inserter.insert_call(
                        iref.addr,
                        IPoint::Before,
                        |tool, ctx, _| tool.rows.push(ctx.args.to_vec()),
                        vec![
                            IArg::InstPtr,
                            IArg::UInt(42),
                            IArg::MemAddr,
                            IArg::MemSize,
                            IArg::IsMemWrite,
                            IArg::RegValue(Reg::R3),
                            IArg::FallthroughAddr,
                            IArg::StackWord(0),
                        ],
                    );
                }
            }
        }
    }
    let src = r#"
        .data
        buf: .space 64
        .text
        main:
            la  r2, buf
            li  r3, 7
            st  r3, 0(sp)        ; seed stack word 0
            stw r3, 8(r2)
            exit 0
    "#;
    let mut engine = Engine::new(process(src), ArgProbe::default());
    engine.run_to_exit().expect("run");
    let rows = &engine.tool().rows;
    assert_eq!(rows.len(), 2, "two stores instrumented");
    // Second store: stw r3, 8(r2).
    let row = &rows[1];
    assert_eq!(row[1], 42, "UInt constant");
    assert_eq!(row[2], superpin_isa::DATA_BASE + 8, "MemAddr");
    assert_eq!(row[3], 4, "MemSize of stw");
    assert_eq!(row[4], 1, "IsMemWrite");
    assert_eq!(row[5], 7, "RegValue(r3)");
    assert_eq!(row[6], row[0] + 8, "FallthroughAddr = pc + 8");
    assert_eq!(row[7], 7, "StackWord(0) seeded by the first store");
}

#[test]
fn instrument_trace_called_once_per_compilation() {
    #[derive(Clone, Default)]
    struct CompileCounter {
        compiles: u64,
    }
    impl Pintool for CompileCounter {
        fn instrument_trace(&mut self, _trace: &Trace, _inserter: &mut Inserter<Self>) {
            self.compiles += 1;
        }
    }
    let src = "main:\n li r1, 500\nloop:\n subi r1, r1, 1\n bne r1, r0, loop\n exit 0\n";
    let mut engine = Engine::new(process(src), CompileCounter::default());
    engine.run_to_exit().expect("run");
    let compiles = engine.tool().compiles;
    assert_eq!(compiles, engine.cache_stats().traces_compiled);
    assert!(
        compiles < 10,
        "hot loop must not re-instrument per iteration: {compiles}"
    );
}

#[test]
fn indirect_jumps_pay_dispatch_but_direct_loops_do_not() {
    // Indirect-call loop vs direct-branch loop with equal iteration
    // counts: the indirect version must accumulate more dispatch cycles.
    let direct = "main:\n li r1, 300\nloop:\n subi r1, r1, 1\n bne r1, r0, loop\n exit 0\n";
    let indirect = r#"
        main:
            li r1, 300
            la r2, fn
        loop:
            jalr ra, 0(r2)
            subi r1, r1, 1
            bne r1, r0, loop
            exit 0
        fn:
            ret
    "#;
    let mut d = Engine::new(process(direct), NullTool);
    d.run_to_exit().expect("direct");
    let mut i = Engine::new(process(indirect), NullTool);
    i.run_to_exit().expect("indirect");
    assert!(
        i.stats().cycles.dispatch > 10 * d.stats().cycles.dispatch.max(1),
        "indirect {} vs direct {}",
        i.stats().cycles.dispatch,
        d.stats().cycles.dispatch
    );
}

#[test]
fn after_calls_skipped_when_before_stop_fires() {
    #[derive(Clone, Default)]
    struct StopProbe {
        before: u64,
        after: u64,
        stop_at: u64,
    }
    impl Pintool for StopProbe {
        fn instrument_trace(&mut self, trace: &Trace, inserter: &mut Inserter<Self>) {
            for iref in trace.insts() {
                inserter.insert_call(
                    iref.addr,
                    IPoint::Before,
                    |t, _, ctl| {
                        t.before += 1;
                        if t.before == t.stop_at {
                            ctl.request_stop();
                        }
                    },
                    vec![],
                );
                inserter.insert_call(iref.addr, IPoint::After, |t, _, _| t.after += 1, vec![]);
            }
        }
    }
    let src = "main:\n nop\n nop\n nop\n nop\n exit 0\n";
    let mut engine = Engine::new(
        process(src),
        StopProbe {
            stop_at: 3,
            ..StopProbe::default()
        },
    );
    let result = engine.run(u64::MAX / 8).expect("run");
    assert_eq!(result.stop, superpin_dbi::EngineStop::ToolStop);
    // Two instructions fully executed (before+after), the third's
    // before-call fired and stopped: its after-call must not run and the
    // instruction must not execute.
    assert_eq!(engine.tool().before, 3);
    assert_eq!(engine.tool().after, 2);
    assert_eq!(engine.process().inst_count(), 2);
}

#[test]
fn self_modifying_code_invalidates_translations() {
    // The guest overwrites `addi r2, r2, 1` with `addi r2, r2, 5`, then
    // re-executes it. The native interpreter fetches from memory every
    // time, so it is automatically correct; the engine must flush its
    // cached translation to agree.
    let patched = {
        let mut bytes = Vec::new();
        superpin_isa::encode(
            superpin_isa::Inst::AluImm {
                op: superpin_isa::AluOp::Add,
                rd: Reg::R2,
                rs1: Reg::R2,
                imm: 5,
            },
            &mut bytes,
        );
        u64::from_le_bytes(bytes[..8].try_into().expect("8 bytes"))
    };
    let src = format!(
        r#"
        main:
            li r1, 2
        loop:
            call bump
            subi r1, r1, 1
            bne r1, r0, loop
            ; second round: patch `bump`'s addi, then run it twice more
            li r3, {patched}
            la r4, patch_site
            st r3, 0(r4)
            li r1, 2
        loop2:
            call bump
            subi r1, r1, 1
            bne r1, r0, loop2
            exit 0
        bump:
        patch_site:
            addi r2, r2, 1
            ret
        "#
    );

    // Ground truth from the native interpreter.
    let mut native = process(&src);
    native.run(u64::MAX, 0).expect("native");
    let truth = native.cpu.regs.get(Reg::R2);
    assert_eq!(truth, 1 + 1 + 5 + 5, "two old + two patched executions");

    let mut engine = Engine::new(process(&src), ICount::default());
    engine.run_to_exit().expect("run");
    assert_eq!(
        engine.process().cpu.regs.get(Reg::R2),
        truth,
        "engine must not execute stale translations"
    );
    assert!(
        engine.cache_stats().smc_flushes >= 1,
        "the code write must have forced an SMC flush"
    );
    assert_eq!(engine.tool().count, native.inst_count());
}

#[test]
fn trace_discovery_agrees_with_execution_paths() {
    // Every dynamically executed pc must appear in some discovered trace
    // starting from the addresses the engine dispatched.
    let src =
        "main:\n li r1, 3\nloop:\n subi r1, r1, 1\n beq r1, r0, out\n jmp loop\nout:\n exit 0\n";
    let mut engine = Engine::new(process(src), ICount::default());
    engine.run_to_exit().expect("run");
    // icount == dynamic count is the strongest available witness.
    assert_eq!(engine.tool().count, engine.process().inst_count());
    assert!(matches!(
        discover_trace(&engine.process().mem, assemble(src).expect("asm").entry())
            .expect("trace")
            .bbls()
            .last()
            .expect("bbl")
            .tail()
            .inst,
        Inst::Branch { .. } | Inst::Jmp { .. }
    ));
}

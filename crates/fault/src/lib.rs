//! Seeded deterministic fault injection for SuperPin.
//!
//! A **failpoint** is a named site in the host runtime (not the guest!)
//! where a fault can be injected on purpose: a fork that fails, a
//! dispatch that errors, a signature check that lies, a worker that
//! dies. Sites fire on a reproducible schedule derived from a single
//! `--chaos-seed`, so a chaos run can be replayed exactly.
//!
//! Firing decisions are keyed on *simulation state* supplied by the
//! caller (slice number, pid, local check counters), never on host
//! time or thread interleaving — the same seed faults the same logical
//! events no matter how many worker threads the run uses. The whole
//! registry sits behind an `Option<Arc<FailpointRegistry>>` at every
//! call site, so a production run with chaos disabled pays nothing.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// A named injection site in the SuperPin runtime.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Site {
    /// Copy-on-write fork of a slice from the master fails.
    VmForkCow = 0,
    /// The DBI engine's trace dispatch errors out mid-slice.
    DbiEngineDispatch = 1,
    /// The quick two-register signature check reports a miss on what
    /// was really a match (false negative → runaway slice).
    CoreSignatureQuickMiss = 2,
    /// The full register comparison rejects a true boundary (false
    /// negative deeper in the check → runaway slice).
    CoreSignatureFullMismatch = 3,
    /// Publishing fresh traces to the shared code-cache index fails.
    SharedIndexPublish = 4,
    /// A worker thread dies, dropping its batch of slices.
    ParallelWorkerChannel = 5,
    /// The kernel transiently fails to allocate memory for a slice fork
    /// (page tables, kernel structures) — an ENOMEM the runner absorbs
    /// through the transient retry ladder, like a failed COW fork.
    VmMemAlloc = 6,
    /// A WAL frame append tears: only a prefix of the frame reaches the
    /// host file before the write errors, leaving a torn tail the
    /// salvage reader must truncate. The fleet degrades to non-durable.
    IoWalAppend = 7,
    /// The fsync after a WAL round commit fails — the commit may not be
    /// durable, so the fleet degrades to non-durable.
    IoWalFsync = 8,
    /// The host disk is full: the WAL append fails cleanly before any
    /// byte is written (a clean frame boundary, unlike the torn
    /// [`Site::IoWalAppend`]).
    IoDiskFull = 9,
}

/// Number of defined sites.
pub const SITE_COUNT: usize = 10;

impl Site {
    /// Every site, in stable order (indexable by `site as usize`).
    pub const ALL: [Site; SITE_COUNT] = [
        Site::VmForkCow,
        Site::DbiEngineDispatch,
        Site::CoreSignatureQuickMiss,
        Site::CoreSignatureFullMismatch,
        Site::SharedIndexPublish,
        Site::ParallelWorkerChannel,
        Site::VmMemAlloc,
        Site::IoWalAppend,
        Site::IoWalFsync,
        Site::IoDiskFull,
    ];

    /// The site's stable dotted name (used in CLI/errors/logs).
    pub fn name(self) -> &'static str {
        match self {
            Site::VmForkCow => "vm.fork.cow",
            Site::DbiEngineDispatch => "dbi.engine.dispatch",
            Site::CoreSignatureQuickMiss => "core.signature.quick_miss",
            Site::CoreSignatureFullMismatch => "core.signature.full_mismatch",
            Site::SharedIndexPublish => "shared_index.publish",
            Site::ParallelWorkerChannel => "parallel.worker.channel",
            Site::VmMemAlloc => "vm.mem.alloc",
            Site::IoWalAppend => "io.wal.append",
            Site::IoWalFsync => "io.wal.fsync",
            Site::IoDiskFull => "io.disk.full",
        }
    }

    /// Parses a dotted site name.
    pub fn from_name(name: &str) -> Option<Site> {
        Site::ALL.into_iter().find(|s| s.name() == name)
    }

    /// Relative firing weight for rate-based scheduling. Sites that are
    /// evaluated far more often than others (dispatch runs once per
    /// trace dispatch, thousands of times per slice) are scaled down so
    /// one `--chaos-rate` knob produces a comparable number of faults
    /// per run from every site.
    fn weight(self) -> f64 {
        match self {
            Site::DbiEngineDispatch => 1.0 / 256.0,
            _ => 1.0,
        }
    }
}

impl fmt::Display for Site {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-site firing policy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SiteMode {
    /// Follow the plan's seeded rate schedule (the default).
    Inherit,
    /// Never fire, regardless of rate.
    Off,
    /// Fire exactly once, on the n-th evaluation of this site (1-based).
    /// Used by tests to force a specific fault class deterministically.
    Nth(u64),
    /// Fire on every evaluation.
    Always,
}

/// A plain-data chaos plan: seed, global rate, per-site overrides.
///
/// This is what lives in `SuperPinConfig` — `Clone`/`PartialEq` data
/// with no atomics, so configs stay comparable and cheap to copy. The
/// runner instantiates a live [`FailpointRegistry`] from it.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FailPlan {
    /// Seed for the deterministic firing schedule.
    pub seed: u64,
    /// Target fault probability per (weight-1) site evaluation, in
    /// `[0, 1]`.
    pub rate: f64,
    /// Per-site overrides, indexed by `Site as usize`.
    pub site_modes: [SiteMode; SITE_COUNT],
}

impl FailPlan {
    /// A plan firing every site at `rate` from `seed`.
    pub fn new(seed: u64, rate: f64) -> FailPlan {
        FailPlan {
            seed,
            rate: rate.clamp(0.0, 1.0),
            site_modes: [SiteMode::Inherit; SITE_COUNT],
        }
    }

    /// Overrides one site's mode.
    #[must_use]
    pub fn with_site(mut self, site: Site, mode: SiteMode) -> FailPlan {
        self.site_modes[site as usize] = mode;
        self
    }

    /// Derives tenant `id`'s **fault domain** from a fleet-level plan:
    /// the same rate and per-site modes, but a sub-seed mixed from the
    /// fleet seed and the tenant id through the splitmix64 finalizer.
    ///
    /// The service front end gives every tenant its own registry built
    /// from this derivation, so one `--chaos-seed` yields independent
    /// per-tenant schedules — a fault firing in tenant A's jobs can
    /// never perturb tenant B's report, and a tenant's schedule is
    /// stable no matter which other tenants share the fleet. The
    /// domain-separation constant keeps `for_tenant(0)` distinct from
    /// the fleet plan itself.
    #[must_use]
    pub fn for_tenant(&self, id: u32) -> FailPlan {
        const TENANT_DOMAIN: u64 = 0x7E4A_5EED_7E4A_5EED;
        FailPlan {
            seed: mix(self.seed ^ mix(TENANT_DOMAIN ^ id as u64)),
            ..*self
        }
    }

    /// Appends the plan's wire encoding (little-endian, self-delimiting)
    /// to `out`. Because firing decisions are a pure function of
    /// `(plan, site, key)`, serializing the plan serializes the entire
    /// fault schedule — a record/replay log stores this instead of
    /// per-firing frames.
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.seed.to_le_bytes());
        out.extend_from_slice(&self.rate.to_bits().to_le_bytes());
        out.push(SITE_COUNT as u8);
        for mode in self.site_modes {
            match mode {
                SiteMode::Inherit => out.push(0),
                SiteMode::Off => out.push(1),
                SiteMode::Nth(n) => {
                    out.push(2);
                    out.extend_from_slice(&n.to_le_bytes());
                }
                SiteMode::Always => out.push(3),
            }
        }
    }

    /// Decodes a plan from `bytes` at `*pos`, advancing the cursor.
    /// `None` on truncation or an unknown mode tag. Plans encoded with a
    /// different `SITE_COUNT` (an older or newer build) are rejected —
    /// the schedule would not reproduce.
    pub fn decode(bytes: &[u8], pos: &mut usize) -> Option<FailPlan> {
        let read_u64 = |pos: &mut usize| -> Option<u64> {
            let raw = bytes.get(*pos..*pos + 8)?;
            *pos += 8;
            Some(u64::from_le_bytes(raw.try_into().ok()?))
        };
        let seed = read_u64(pos)?;
        let rate = f64::from_bits(read_u64(pos)?);
        let count = *bytes.get(*pos)? as usize;
        *pos += 1;
        if count != SITE_COUNT {
            return None;
        }
        let mut site_modes = [SiteMode::Inherit; SITE_COUNT];
        for slot in &mut site_modes {
            let tag = *bytes.get(*pos)?;
            *pos += 1;
            *slot = match tag {
                0 => SiteMode::Inherit,
                1 => SiteMode::Off,
                2 => SiteMode::Nth(read_u64(pos)?),
                3 => SiteMode::Always,
                _ => return None,
            };
        }
        Some(FailPlan {
            seed,
            rate,
            site_modes,
        })
    }
}

/// splitmix64 finalizer: a high-quality 64-bit mixing function.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Live failpoint registry: the firing schedule plus hit counters.
///
/// `Send + Sync`; shared across the runner, engines, and worker
/// threads via `Arc`. All counters are observability only — firing
/// decisions depend solely on the plan and the caller-supplied key, so
/// fault placement is independent of thread interleaving (except for
/// the explicitly counter-based [`SiteMode::Nth`]).
#[derive(Debug)]
pub struct FailpointRegistry {
    plan: FailPlan,
    /// Precomputed per-site firing thresholds over the full u64 range.
    thresholds: [u64; SITE_COUNT],
    evals: [AtomicU64; SITE_COUNT],
    hits: [AtomicU64; SITE_COUNT],
}

impl FailpointRegistry {
    /// Builds a registry from a plan.
    pub fn new(plan: FailPlan) -> FailpointRegistry {
        let mut thresholds = [0u64; SITE_COUNT];
        for site in Site::ALL {
            let p = (plan.rate * site.weight()).clamp(0.0, 1.0);
            thresholds[site as usize] = (p * u64::MAX as f64) as u64;
        }
        FailpointRegistry {
            plan,
            thresholds,
            evals: Default::default(),
            hits: Default::default(),
        }
    }

    /// The plan this registry was built from.
    pub fn plan(&self) -> &FailPlan {
        &self.plan
    }

    /// Evaluates the site: should this event fault?
    ///
    /// `key` must be derived from deterministic simulation state (slice
    /// number, pid, a local per-slice counter) so that the schedule is
    /// reproducible across thread counts. Returns `true` when the fault
    /// should be injected.
    pub fn fire(&self, site: Site, key: u64) -> bool {
        let i = site as usize;
        let n = self.evals[i].fetch_add(1, Ordering::Relaxed) + 1;
        let fired = match self.plan.site_modes[i] {
            SiteMode::Off => false,
            SiteMode::Always => true,
            SiteMode::Nth(k) => n == k,
            SiteMode::Inherit => {
                let h = mix(self.plan.seed ^ mix((i as u64 + 1) ^ mix(key)));
                h < self.thresholds[i]
            }
        };
        if fired {
            self.hits[i].fetch_add(1, Ordering::Relaxed);
        }
        fired
    }

    /// How many times the site has been evaluated.
    pub fn evals(&self, site: Site) -> u64 {
        self.evals[site as usize].load(Ordering::Relaxed)
    }

    /// How many times the site has fired.
    pub fn hits(&self, site: Site) -> u64 {
        self.hits[site as usize].load(Ordering::Relaxed)
    }

    /// Total fired faults across all sites.
    pub fn total_hits(&self) -> u64 {
        Site::ALL.into_iter().map(|s| self.hits(s)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for site in Site::ALL {
            assert_eq!(Site::from_name(site.name()), Some(site));
            assert_eq!(site.to_string(), site.name());
        }
        assert_eq!(Site::from_name("nope"), None);
    }

    #[test]
    fn zero_rate_never_fires() {
        let reg = FailpointRegistry::new(FailPlan::new(42, 0.0));
        for site in Site::ALL {
            for key in 0..1_000 {
                assert!(!reg.fire(site, key));
            }
            assert_eq!(reg.hits(site), 0);
            assert_eq!(reg.evals(site), 1_000);
        }
        assert_eq!(reg.total_hits(), 0);
    }

    #[test]
    fn full_rate_always_fires() {
        let reg = FailpointRegistry::new(FailPlan::new(7, 1.0));
        // Threshold rounding can shave the last ulp; accept >= 99.9%.
        let mut hits = 0;
        for key in 0..10_000 {
            if reg.fire(Site::VmForkCow, key) {
                hits += 1;
            }
        }
        assert!(hits >= 9_990, "hits = {hits}");
    }

    #[test]
    fn firing_is_deterministic_in_seed_and_key() {
        let a = FailpointRegistry::new(FailPlan::new(123, 0.3));
        let b = FailpointRegistry::new(FailPlan::new(123, 0.3));
        for key in 0..5_000 {
            assert_eq!(
                a.fire(Site::SharedIndexPublish, key),
                b.fire(Site::SharedIndexPublish, key)
            );
        }
        assert_eq!(
            a.hits(Site::SharedIndexPublish),
            b.hits(Site::SharedIndexPublish)
        );
        assert!(a.hits(Site::SharedIndexPublish) > 0);
    }

    #[test]
    fn different_seeds_give_different_schedules() {
        let a = FailpointRegistry::new(FailPlan::new(1, 0.3));
        let b = FailpointRegistry::new(FailPlan::new(2, 0.3));
        let mut differs = false;
        for key in 0..1_000 {
            if a.fire(Site::VmForkCow, key) != b.fire(Site::VmForkCow, key) {
                differs = true;
            }
        }
        assert!(differs);
    }

    #[test]
    fn rate_lands_near_target() {
        let reg = FailpointRegistry::new(FailPlan::new(99, 0.1));
        let mut hits = 0;
        for key in 0..100_000u64 {
            if reg.fire(Site::VmForkCow, key) {
                hits += 1;
            }
        }
        // 10% ± generous slack for a non-cryptographic mixer.
        assert!((8_000..12_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn dispatch_site_is_weighted_down() {
        let reg = FailpointRegistry::new(FailPlan::new(5, 0.5));
        let mut dispatch_hits = 0;
        for key in 0..100_000u64 {
            if reg.fire(Site::DbiEngineDispatch, key) {
                dispatch_hits += 1;
            }
        }
        // 0.5 / 256 ≈ 0.2% → ~195 expected out of 100k.
        assert!(dispatch_hits < 1_000, "dispatch_hits = {dispatch_hits}");
        assert!(dispatch_hits > 0);
    }

    #[test]
    fn nth_mode_fires_exactly_once() {
        let plan = FailPlan::new(0, 0.0).with_site(Site::ParallelWorkerChannel, SiteMode::Nth(3));
        let reg = FailpointRegistry::new(plan);
        let fired: Vec<bool> = (0..6)
            .map(|k| reg.fire(Site::ParallelWorkerChannel, k))
            .collect();
        assert_eq!(fired, [false, false, true, false, false, false]);
        assert_eq!(reg.hits(Site::ParallelWorkerChannel), 1);
    }

    #[test]
    fn always_and_off_override_rate() {
        let plan = FailPlan::new(0, 1.0)
            .with_site(Site::VmForkCow, SiteMode::Off)
            .with_site(Site::DbiEngineDispatch, SiteMode::Always);
        let reg = FailpointRegistry::new(plan);
        assert!(!reg.fire(Site::VmForkCow, 0));
        assert!(reg.fire(Site::DbiEngineDispatch, 0));
    }

    #[test]
    fn tenant_domains_are_deterministic_and_independent() {
        let fleet = FailPlan::new(3, 0.05).with_site(Site::VmForkCow, SiteMode::Off);
        // Pure function of (fleet seed, tenant id).
        assert_eq!(fleet.for_tenant(1), fleet.for_tenant(1));
        // Distinct from the fleet plan and from every other tenant.
        assert_ne!(fleet.for_tenant(0).seed, fleet.seed);
        assert_ne!(fleet.for_tenant(1).seed, fleet.for_tenant(2).seed);
        // Rate and site overrides carry over unchanged.
        let derived = fleet.for_tenant(7);
        assert_eq!(derived.rate, fleet.rate);
        assert_eq!(derived.site_modes, fleet.site_modes);
        // The derived schedules genuinely differ.
        let a = FailpointRegistry::new(FailPlan::new(3, 0.3).for_tenant(1));
        let b = FailpointRegistry::new(FailPlan::new(3, 0.3).for_tenant(2));
        let differs = (0..1_000).any(|key| {
            a.fire(Site::SharedIndexPublish, key) != b.fire(Site::SharedIndexPublish, key)
        });
        assert!(differs);
    }

    #[test]
    fn plan_is_plain_comparable_data() {
        let a = FailPlan::new(1, 0.5);
        let b = FailPlan::new(1, 0.5);
        assert_eq!(a, b);
        assert_ne!(a, a.with_site(Site::VmForkCow, SiteMode::Off));
    }

    #[test]
    fn plan_encoding_round_trips() {
        let plans = [
            FailPlan::new(0, 0.0),
            FailPlan::new(u64::MAX, 1.0),
            FailPlan::new(3, 0.05)
                .with_site(Site::VmForkCow, SiteMode::Off)
                .with_site(Site::ParallelWorkerChannel, SiteMode::Nth(17))
                .with_site(Site::DbiEngineDispatch, SiteMode::Always),
        ];
        for plan in plans {
            let mut bytes = Vec::new();
            plan.encode(&mut bytes);
            // Trailing data must be left untouched by the cursor.
            bytes.extend_from_slice(&[0xAA, 0xBB]);
            let mut pos = 0;
            let decoded = FailPlan::decode(&bytes, &mut pos).expect("decode");
            assert_eq!(decoded, plan);
            assert_eq!(pos, bytes.len() - 2);
        }
    }

    #[test]
    fn plan_decode_rejects_truncation_and_bad_tags() {
        let mut bytes = Vec::new();
        FailPlan::new(9, 0.25).encode(&mut bytes);
        for cut in 0..bytes.len() {
            let mut pos = 0;
            assert_eq!(FailPlan::decode(&bytes[..cut], &mut pos), None);
        }
        let mut bad = bytes.clone();
        *bad.last_mut().expect("nonempty") = 0xFF;
        let mut pos = 0;
        assert_eq!(FailPlan::decode(&bad, &mut pos), None);
        // Wrong site count: the schedule would not reproduce.
        let mut wrong = bytes;
        wrong[16] = SITE_COUNT as u8 + 1;
        let mut pos = 0;
        assert_eq!(FailPlan::decode(&wrong, &mut pos), None);
    }
}

//! `spin-serve` — the multi-tenant service front end.
//!
//! Reads a job file (tenants + jobs + arrival schedule), runs the
//! whole mix over one governed fleet, and prints the deterministic
//! summary. `--emit-reports` streams per-job outcome JSON lines;
//! `--record` writes a fleet log; `--replay` re-runs a recorded fleet
//! (at any `--threads`) and byte-verifies the decision trace and every
//! outcome line against the log.

use std::io::Read;

use superpin_replay::fleet::{diff_fleet, FleetLog, FleetRecipe};
use superpin_serve::spec::parse_bytes;
use superpin_serve::{parse_jobs, run_service, FleetConfig, SpecError};

/// Typed command-line rejection. Each variant renders a specific
/// message; `main` prints it with a usage hint and exits 2.
#[derive(Clone, Debug, PartialEq)]
enum ArgError {
    /// A flag was given without its required value.
    MissingValue(&'static str),
    /// A flag's value failed to parse as the expected shape.
    InvalidValue {
        flag: &'static str,
        value: String,
        expected: &'static str,
    },
    /// `--threads 0` has no meaning; the minimum is 1 (serial).
    ZeroThreads,
    /// `--fleet-slots 0` would select no jobs and the fleet could
    /// never advance.
    ZeroSlots,
    /// `--chaos-rate` is a probability and must lie in [0, 1].
    ChaosRateOutOfRange(f64),
    /// An unrecognized flag.
    UnknownFlag(String),
    /// No `--jobs FILE` (or `--replay LOG`) was given.
    MissingJobs,
    /// `--record` and `--replay` are mutually exclusive.
    RecordAndReplay,
    /// The job file itself was rejected (weights, duplicates, budgets…).
    Spec(SpecError),
}

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgError::MissingValue(flag) => write!(f, "`{flag}` requires a value"),
            ArgError::InvalidValue {
                flag,
                value,
                expected,
            } => write!(f, "`{flag}` got `{value}`; expected {expected}"),
            ArgError::ZeroThreads => {
                write!(f, "`--threads` must be at least 1 (1 = serial execution)")
            }
            ArgError::ZeroSlots => write!(
                f,
                "`--fleet-slots` must be at least 1 — a zero-wide round can never \
                 advance any job"
            ),
            ArgError::ChaosRateOutOfRange(value) => write!(
                f,
                "`--chaos-rate` is a probability and must be within [0, 1] (got {value})"
            ),
            ArgError::UnknownFlag(flag) => write!(f, "unknown flag `{flag}`"),
            ArgError::MissingJobs => write!(
                f,
                "a job file is required: `--jobs FILE` (or `-` for stdin), or `--replay LOG`"
            ),
            ArgError::RecordAndReplay => {
                write!(f, "`--record` and `--replay` are mutually exclusive")
            }
            ArgError::Spec(err) => write!(f, "{err}"),
        }
    }
}

impl std::error::Error for ArgError {}

#[derive(Debug, PartialEq)]
struct Options {
    jobs: Option<String>,
    threads: usize,
    slots: usize,
    fleet_budget: Option<u64>,
    chaos_seed: Option<u64>,
    chaos_rate: Option<f64>,
    spmsec: u64,
    emit_reports: Option<String>,
    record: Option<String>,
    replay: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: spin-serve --jobs FILE|- [--threads N] [--fleet-slots N] \
         [--fleet-budget BYTES[k|m|g]] [--chaos-seed N] [--chaos-rate F] [--spmsec MSEC] \
         [--emit-reports PATH] [--record LOG]\n\
         \x20      spin-serve --replay LOG [--threads N]\n\
         job file lines: `tenant NAME weight=N [budget=BYTES]` and\n\
         `job tenant=NAME workload=NAME [scale=S] [tool=T] [arrive=CYCLES] \
         [mem-budget=BYTES] [chaos-rate=F] [plan=on|off]`"
    );
    std::process::exit(2);
}

fn parse_options(args: &[String]) -> Result<Options, ArgError> {
    let mut options = Options {
        jobs: None,
        threads: 1,
        slots: 4,
        fleet_budget: None,
        chaos_seed: None,
        chaos_rate: None,
        spmsec: 1000,
        emit_reports: None,
        record: None,
        replay: None,
    };
    let mut iter = args.iter();
    fn value<'a, I: Iterator<Item = &'a String>, V: std::str::FromStr>(
        iter: &mut I,
        flag: &'static str,
        expected: &'static str,
    ) -> Result<V, ArgError> {
        let text = iter.next().ok_or(ArgError::MissingValue(flag))?;
        text.parse().map_err(|_| ArgError::InvalidValue {
            flag,
            value: text.clone(),
            expected,
        })
    }
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--jobs" => {
                options.jobs = Some(iter.next().ok_or(ArgError::MissingValue("--jobs"))?.clone());
            }
            "--threads" => {
                let threads: usize = value(&mut iter, "--threads", "a thread count")?;
                if threads == 0 {
                    return Err(ArgError::ZeroThreads);
                }
                options.threads = threads;
            }
            "--fleet-slots" => {
                let slots: usize = value(&mut iter, "--fleet-slots", "a round width")?;
                if slots == 0 {
                    return Err(ArgError::ZeroSlots);
                }
                options.slots = slots;
            }
            "--fleet-budget" => {
                let text = iter
                    .next()
                    .ok_or(ArgError::MissingValue("--fleet-budget"))?;
                let bytes = parse_bytes(text).ok_or_else(|| ArgError::InvalidValue {
                    flag: "--fleet-budget",
                    value: text.clone(),
                    expected: "a byte count with optional k/m/g suffix (e.g. 64m)",
                })?;
                options.fleet_budget = Some(bytes);
            }
            "--chaos-seed" => {
                options.chaos_seed = Some(value(&mut iter, "--chaos-seed", "a seed integer")?);
            }
            "--chaos-rate" => {
                let rate: f64 = value(&mut iter, "--chaos-rate", "a probability in [0, 1]")?;
                if !(0.0..=1.0).contains(&rate) {
                    return Err(ArgError::ChaosRateOutOfRange(rate));
                }
                options.chaos_rate = Some(rate);
            }
            "--spmsec" => options.spmsec = value(&mut iter, "--spmsec", "milliseconds")?,
            "--emit-reports" => {
                options.emit_reports = Some(
                    iter.next()
                        .ok_or(ArgError::MissingValue("--emit-reports"))?
                        .clone(),
                );
            }
            "--record" => {
                options.record = Some(
                    iter.next()
                        .ok_or(ArgError::MissingValue("--record"))?
                        .clone(),
                );
            }
            "--replay" => {
                options.replay = Some(
                    iter.next()
                        .ok_or(ArgError::MissingValue("--replay"))?
                        .clone(),
                );
            }
            other => return Err(ArgError::UnknownFlag(other.to_owned())),
        }
    }
    if options.record.is_some() && options.replay.is_some() {
        return Err(ArgError::RecordAndReplay);
    }
    if options.jobs.is_none() && options.replay.is_none() {
        return Err(ArgError::MissingJobs);
    }
    Ok(options)
}

/// The fleet chaos plan the CLI knobs describe (`--chaos-rate` without
/// `--chaos-seed` defaults the seed to 1, and vice versa the rate to
/// 0.01 — matching the `superpin` CLI).
fn chaos_plan(options: &Options) -> Option<superpin::FailPlan> {
    if options.chaos_seed.is_none() && options.chaos_rate.is_none() {
        return None;
    }
    Some(superpin::FailPlan::new(
        options.chaos_seed.unwrap_or(1),
        options.chaos_rate.unwrap_or(0.01),
    ))
}

fn read_jobs(path: &str) -> std::io::Result<String> {
    if path == "-" {
        let mut text = String::new();
        std::io::stdin().read_to_string(&mut text)?;
        Ok(text)
    } else {
        std::fs::read_to_string(path)
    }
}

fn fail(message: impl std::fmt::Display) -> ! {
    eprintln!("spin-serve: {message}");
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse_options(&args) {
        Ok(options) => options,
        Err(err) => {
            eprintln!("spin-serve: {err}");
            usage();
        }
    };

    if let Some(log_path) = &options.replay {
        let bytes = std::fs::read(log_path)
            .unwrap_or_else(|err| fail(format_args!("reading {log_path}: {err}")));
        let log = FleetLog::decode(&bytes)
            .unwrap_or_else(|err| fail(format_args!("decoding {log_path}: {err}")));
        let file = parse_jobs(&log.recipe.spec_text)
            .unwrap_or_else(|err| fail(format_args!("recorded spec: {err}")));
        let cfg = FleetConfig {
            threads: options.threads,
            slots: log.recipe.slots as usize,
            fleet_budget: log.recipe.fleet_budget,
            chaos: log.recipe.chaos,
            spmsec: log.recipe.spmsec,
        };
        let report = run_service(&file, &cfg).unwrap_or_else(|err| fail(err));
        let outcomes: Vec<String> = report.outcomes.iter().map(|o| o.to_json()).collect();
        match diff_fleet(&log, &report.events, &outcomes) {
            None => println!(
                "replay OK: {} events, {} jobs byte-identical (recorded at {} threads, \
                 replayed at {})",
                log.events.len(),
                log.outcomes.len(),
                log.recipe.threads,
                options.threads,
            ),
            Some(divergence) => fail(format_args!("replay diverged: {divergence}")),
        }
        return;
    }

    let jobs_path = options.jobs.as_deref().expect("checked by parse_options");
    let spec_text =
        read_jobs(jobs_path).unwrap_or_else(|err| fail(format_args!("reading {jobs_path}: {err}")));
    let file = match parse_jobs(&spec_text) {
        Ok(file) => file,
        Err(err) => {
            eprintln!("spin-serve: {}", ArgError::Spec(err));
            usage();
        }
    };
    if let Some(budget) = options.fleet_budget {
        if let Err(err) = file.check_fleet_budget(budget) {
            eprintln!("spin-serve: {}", ArgError::Spec(err));
            usage();
        }
    }

    let cfg = FleetConfig {
        threads: options.threads,
        slots: options.slots,
        fleet_budget: options.fleet_budget,
        chaos: chaos_plan(&options),
        spmsec: options.spmsec,
    };
    let report = run_service(&file, &cfg).unwrap_or_else(|err| fail(err));
    print!("{}", report.render_text());

    if let Some(path) = &options.emit_reports {
        std::fs::write(path, report.jsonl())
            .unwrap_or_else(|err| fail(format_args!("writing {path}: {err}")));
        println!("reports: {} job lines -> {path}", report.outcomes.len());
    }
    if let Some(path) = &options.record {
        let log = FleetLog {
            recipe: FleetRecipe {
                spec_text,
                threads: cfg.threads as u32,
                slots: cfg.slots as u32,
                fleet_budget: cfg.fleet_budget,
                chaos: cfg.chaos,
                spmsec: cfg.spmsec,
            },
            events: report.events.clone(),
            outcomes: report.outcomes.iter().map(|o| o.to_json()).collect(),
        };
        std::fs::write(path, log.encode())
            .unwrap_or_else(|err| fail(format_args!("writing {path}: {err}")));
        println!("recorded: {} events -> {path}", report.events.len());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Options, ArgError> {
        let owned: Vec<String> = args.iter().map(|s| (*s).to_owned()).collect();
        parse_options(&owned)
    }

    #[test]
    fn parses_the_full_surface() {
        let options = parse(&[
            "--jobs",
            "fleet.jobs",
            "--threads",
            "4",
            "--fleet-slots",
            "3",
            "--fleet-budget",
            "2m",
            "--chaos-seed",
            "3",
            "--chaos-rate",
            "0.05",
            "--spmsec",
            "500",
            "--emit-reports",
            "out.jsonl",
            "--record",
            "fleet.spflog",
        ])
        .expect("parses");
        assert_eq!(options.jobs.as_deref(), Some("fleet.jobs"));
        assert_eq!(options.threads, 4);
        assert_eq!(options.slots, 3);
        assert_eq!(options.fleet_budget, Some(2 << 20));
        assert_eq!(options.chaos_seed, Some(3));
        assert_eq!(options.chaos_rate, Some(0.05));
        assert_eq!(options.spmsec, 500);
        assert_eq!(options.emit_reports.as_deref(), Some("out.jsonl"));
        assert_eq!(options.record.as_deref(), Some("fleet.spflog"));
    }

    #[test]
    fn defaults_are_serial_four_slots() {
        let options = parse(&["--jobs", "-"]).expect("parses");
        assert_eq!(options.threads, 1);
        assert_eq!(options.slots, 4);
        assert_eq!(options.fleet_budget, None);
        assert_eq!(options.record, None);
    }

    #[test]
    fn rejects_zero_threads_and_slots() {
        assert_eq!(
            parse(&["--jobs", "f", "--threads", "0"]),
            Err(ArgError::ZeroThreads)
        );
        assert_eq!(
            parse(&["--jobs", "f", "--fleet-slots", "0"]),
            Err(ArgError::ZeroSlots)
        );
    }

    #[test]
    fn rejects_bad_values_with_typed_errors() {
        assert_eq!(
            parse(&["--jobs", "f", "--chaos-rate", "1.5"]),
            Err(ArgError::ChaosRateOutOfRange(1.5))
        );
        assert_eq!(
            parse(&["--jobs", "f", "--fleet-budget", "banana"]),
            Err(ArgError::InvalidValue {
                flag: "--fleet-budget",
                value: "banana".to_owned(),
                expected: "a byte count with optional k/m/g suffix (e.g. 64m)",
            })
        );
        assert_eq!(
            parse(&["--jobs", "f", "--threads"]),
            Err(ArgError::MissingValue("--threads"))
        );
        assert_eq!(
            parse(&["--frobnicate"]),
            Err(ArgError::UnknownFlag("--frobnicate".to_owned()))
        );
    }

    #[test]
    fn rejects_contradictory_modes() {
        assert_eq!(parse(&["--threads", "2"]), Err(ArgError::MissingJobs));
        assert_eq!(
            parse(&["--jobs", "f", "--record", "a", "--replay", "b"]),
            Err(ArgError::RecordAndReplay)
        );
    }

    #[test]
    fn spec_rejections_surface_as_arg_errors() {
        // The satellite contract: weight 0, duplicate tenants, and
        // tenant-budget-over-fleet all reject with typed errors.
        let workload = superpin_workloads::catalog()[0].name;
        let zero = format!("tenant a weight=0\njob tenant=a workload={workload}\n");
        assert!(matches!(
            parse_jobs(&zero).map_err(ArgError::Spec),
            Err(ArgError::Spec(SpecError::ZeroWeight { .. }))
        ));
        let dup =
            format!("tenant a weight=1\ntenant a weight=2\njob tenant=a workload={workload}\n");
        assert!(matches!(
            parse_jobs(&dup).map_err(ArgError::Spec),
            Err(ArgError::Spec(SpecError::DuplicateTenant { .. }))
        ));
        let capped = format!("tenant a weight=1 budget=4m\njob tenant=a workload={workload}\n");
        let file = parse_jobs(&capped).expect("parses");
        assert!(matches!(
            file.check_fleet_budget(1 << 20).map_err(ArgError::Spec),
            Err(ArgError::Spec(SpecError::TenantBudgetExceedsFleet { .. }))
        ));
    }
}

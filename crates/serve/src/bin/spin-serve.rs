//! `spin-serve` — the multi-tenant service front end.
//!
//! Reads a job file (tenants + jobs + arrival schedule), runs the
//! whole mix over one governed fleet, and prints the deterministic
//! summary. `--emit-reports` streams per-job outcome JSON lines;
//! `--record` writes a fleet log; `--replay` re-runs a recorded fleet
//! (at any `--threads`) and byte-verifies the decision trace and every
//! outcome line against the log.
//!
//! `--wal PATH` journals every settled round to a crash-durable
//! write-ahead log; after a crash, `--resume PATH` salvages the
//! committed prefix, re-executes it with verification, and continues
//! the run live — the final output is byte-identical to an
//! uninterrupted run. WAL and recovery status lines go to stderr so
//! stdout stays deterministic.

use std::io::Read;

use superpin_replay::fleet::{diff_fleet, recover_fleet_wal, FleetLog, FleetRecipe};
use superpin_replay::wal::{atomic_write, FrameDamage, FsyncPolicy, WalCause, WalIoError, WalOp};
use superpin_serve::durable::{Durability, FleetWal};
use superpin_serve::spec::parse_bytes;
use superpin_serve::{parse_jobs, run_service, run_service_durable, FleetConfig, SpecError};

/// Typed command-line rejection. Each variant renders a specific
/// message; `main` prints it with a usage hint and exits 2.
#[derive(Clone, Debug, PartialEq)]
enum ArgError {
    /// A flag was given without its required value.
    MissingValue(&'static str),
    /// A flag's value failed to parse as the expected shape.
    InvalidValue {
        flag: &'static str,
        value: String,
        expected: &'static str,
    },
    /// `--threads 0` has no meaning; the minimum is 1 (serial).
    ZeroThreads,
    /// `--fleet-slots 0` would select no jobs and the fleet could
    /// never advance.
    ZeroSlots,
    /// `--chaos-rate` is a probability and must lie in [0, 1].
    ChaosRateOutOfRange(f64),
    /// An unrecognized flag.
    UnknownFlag(String),
    /// No `--jobs FILE` (or `--replay LOG` / `--resume WAL`) was given.
    MissingJobs,
    /// `--record` and `--replay` are mutually exclusive.
    RecordAndReplay,
    /// `--resume` rebuilds every fleet knob from the WAL header; the
    /// named flag would contradict the journalled run.
    ResumeConflict(&'static str),
    /// The job file itself was rejected (weights, duplicates, budgets…).
    Spec(SpecError),
}

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgError::MissingValue(flag) => write!(f, "`{flag}` requires a value"),
            ArgError::InvalidValue {
                flag,
                value,
                expected,
            } => write!(f, "`{flag}` got `{value}`; expected {expected}"),
            ArgError::ZeroThreads => {
                write!(f, "`--threads` must be at least 1 (1 = serial execution)")
            }
            ArgError::ZeroSlots => write!(
                f,
                "`--fleet-slots` must be at least 1 — a zero-wide round can never \
                 advance any job"
            ),
            ArgError::ChaosRateOutOfRange(value) => write!(
                f,
                "`--chaos-rate` is a probability and must be within [0, 1] (got {value})"
            ),
            ArgError::UnknownFlag(flag) => write!(f, "unknown flag `{flag}`"),
            ArgError::MissingJobs => write!(
                f,
                "a job file is required: `--jobs FILE` (or `-` for stdin), or `--replay LOG`"
            ),
            ArgError::RecordAndReplay => {
                write!(f, "`--record` and `--replay` are mutually exclusive")
            }
            ArgError::ResumeConflict(flag) => write!(
                f,
                "`{flag}` cannot accompany `--resume`: the WAL header already \
                 fixes that knob (only `--threads`, `--emit-reports`, and \
                 `--wal-fsync` may vary on resume)"
            ),
            ArgError::Spec(err) => write!(f, "{err}"),
        }
    }
}

impl std::error::Error for ArgError {}

#[derive(Debug, PartialEq)]
struct Options {
    jobs: Option<String>,
    threads: usize,
    slots: usize,
    fleet_budget: Option<u64>,
    chaos_seed: Option<u64>,
    chaos_rate: Option<f64>,
    spmsec: u64,
    emit_reports: Option<String>,
    record: Option<String>,
    replay: Option<String>,
    wal: Option<String>,
    resume: Option<String>,
    wal_fsync: FsyncPolicy,
    /// Flags seen that `--resume` refuses (the WAL header fixes them).
    resume_conflicts: Vec<&'static str>,
}

fn usage() -> ! {
    eprintln!(
        "usage: spin-serve --jobs FILE|- [--threads N] [--fleet-slots N] \
         [--fleet-budget BYTES[k|m|g]] [--chaos-seed N] [--chaos-rate F] [--spmsec MSEC] \
         [--emit-reports PATH] [--record LOG] [--wal PATH] [--wal-fsync commit|off|every=N]\n\
         \x20      spin-serve --replay LOG [--threads N]\n\
         \x20      spin-serve --resume WAL [--threads N] [--emit-reports PATH] \
         [--wal-fsync commit|off|every=N]\n\
         job file lines: `tenant NAME weight=N [budget=BYTES]` and\n\
         `job tenant=NAME workload=NAME [scale=S] [tool=T] [arrive=CYCLES] \
         [mem-budget=BYTES] [chaos-rate=F] [plan=on|off]`"
    );
    std::process::exit(2);
}

fn parse_options(args: &[String]) -> Result<Options, ArgError> {
    let mut options = Options {
        jobs: None,
        threads: 1,
        slots: 4,
        fleet_budget: None,
        chaos_seed: None,
        chaos_rate: None,
        spmsec: 1000,
        emit_reports: None,
        record: None,
        replay: None,
        wal: None,
        resume: None,
        wal_fsync: FsyncPolicy::EveryCommit,
        resume_conflicts: Vec::new(),
    };
    let mut iter = args.iter();
    fn value<'a, I: Iterator<Item = &'a String>, V: std::str::FromStr>(
        iter: &mut I,
        flag: &'static str,
        expected: &'static str,
    ) -> Result<V, ArgError> {
        let text = iter.next().ok_or(ArgError::MissingValue(flag))?;
        text.parse().map_err(|_| ArgError::InvalidValue {
            flag,
            value: text.clone(),
            expected,
        })
    }
    // Flags the WAL header fixes; `--resume` rejects them on sight.
    const FIXED_BY_WAL_HEADER: &[&str] = &[
        "--jobs",
        "--fleet-slots",
        "--fleet-budget",
        "--chaos-seed",
        "--chaos-rate",
        "--spmsec",
        "--record",
        "--replay",
        "--wal",
    ];
    while let Some(arg) = iter.next() {
        if let Some(&flag) = FIXED_BY_WAL_HEADER.iter().find(|&&flag| flag == arg) {
            options.resume_conflicts.push(flag);
        }
        match arg.as_str() {
            "--jobs" => {
                options.jobs = Some(iter.next().ok_or(ArgError::MissingValue("--jobs"))?.clone());
            }
            "--threads" => {
                let threads: usize = value(&mut iter, "--threads", "a thread count")?;
                if threads == 0 {
                    return Err(ArgError::ZeroThreads);
                }
                options.threads = threads;
            }
            "--fleet-slots" => {
                let slots: usize = value(&mut iter, "--fleet-slots", "a round width")?;
                if slots == 0 {
                    return Err(ArgError::ZeroSlots);
                }
                options.slots = slots;
            }
            "--fleet-budget" => {
                let text = iter
                    .next()
                    .ok_or(ArgError::MissingValue("--fleet-budget"))?;
                let bytes = parse_bytes(text).ok_or_else(|| ArgError::InvalidValue {
                    flag: "--fleet-budget",
                    value: text.clone(),
                    expected: "a byte count with optional k/m/g suffix (e.g. 64m)",
                })?;
                options.fleet_budget = Some(bytes);
            }
            "--chaos-seed" => {
                options.chaos_seed = Some(value(&mut iter, "--chaos-seed", "a seed integer")?);
            }
            "--chaos-rate" => {
                let rate: f64 = value(&mut iter, "--chaos-rate", "a probability in [0, 1]")?;
                if !(0.0..=1.0).contains(&rate) {
                    return Err(ArgError::ChaosRateOutOfRange(rate));
                }
                options.chaos_rate = Some(rate);
            }
            "--spmsec" => options.spmsec = value(&mut iter, "--spmsec", "milliseconds")?,
            "--emit-reports" => {
                options.emit_reports = Some(
                    iter.next()
                        .ok_or(ArgError::MissingValue("--emit-reports"))?
                        .clone(),
                );
            }
            "--record" => {
                options.record = Some(
                    iter.next()
                        .ok_or(ArgError::MissingValue("--record"))?
                        .clone(),
                );
            }
            "--replay" => {
                options.replay = Some(
                    iter.next()
                        .ok_or(ArgError::MissingValue("--replay"))?
                        .clone(),
                );
            }
            "--wal" => {
                options.wal = Some(iter.next().ok_or(ArgError::MissingValue("--wal"))?.clone());
            }
            "--resume" => {
                options.resume = Some(
                    iter.next()
                        .ok_or(ArgError::MissingValue("--resume"))?
                        .clone(),
                );
            }
            "--wal-fsync" => {
                let text = iter.next().ok_or(ArgError::MissingValue("--wal-fsync"))?;
                options.wal_fsync =
                    FsyncPolicy::parse(text).ok_or_else(|| ArgError::InvalidValue {
                        flag: "--wal-fsync",
                        value: text.clone(),
                        expected: "`commit`, `off`, or `every=N`",
                    })?;
            }
            other => return Err(ArgError::UnknownFlag(other.to_owned())),
        }
    }
    if options.record.is_some() && options.replay.is_some() {
        return Err(ArgError::RecordAndReplay);
    }
    if options.resume.is_some() {
        if let Some(flag) = options.resume_conflicts.first() {
            return Err(ArgError::ResumeConflict(flag));
        }
    }
    if options.jobs.is_none() && options.replay.is_none() && options.resume.is_none() {
        return Err(ArgError::MissingJobs);
    }
    Ok(options)
}

/// The fleet chaos plan the CLI knobs describe (`--chaos-rate` without
/// `--chaos-seed` defaults the seed to 1, and vice versa the rate to
/// 0.01 — matching the `superpin` CLI).
fn chaos_plan(options: &Options) -> Option<superpin::FailPlan> {
    if options.chaos_seed.is_none() && options.chaos_rate.is_none() {
        return None;
    }
    Some(superpin::FailPlan::new(
        options.chaos_seed.unwrap_or(1),
        options.chaos_rate.unwrap_or(0.01),
    ))
}

fn read_jobs(path: &str) -> std::io::Result<String> {
    if path == "-" {
        let mut text = String::new();
        std::io::stdin().read_to_string(&mut text)?;
        Ok(text)
    } else {
        std::fs::read_to_string(path)
    }
}

fn fail(message: impl std::fmt::Display) -> ! {
    eprintln!("spin-serve: {message}");
    std::process::exit(1);
}

/// Post-run WAL status, on stderr: stdout must stay byte-identical
/// between an uninterrupted run and a kill-then-resume run, and the
/// two commit different round counts.
fn report_wal_status(dur: &Durability) {
    let Some(status) = dur.status() else {
        return;
    };
    if status.degraded {
        eprintln!(
            "spin-serve: warning: wal degraded to non-durable after {} append / {} fsync \
             failure(s) ({}); {} round(s) were committed before that",
            status.append_failures,
            status.fsync_failures,
            status.last_error.as_deref().unwrap_or("no error recorded"),
            status.rounds_committed,
        );
    } else {
        eprintln!(
            "spin-serve: wal: {} round(s) committed",
            status.rounds_committed
        );
    }
}

/// Streams per-job outcome JSON lines to `path`, atomically: a crash
/// mid-write leaves either the old file or the new one, never a torn
/// half.
fn emit_reports(path: &str, report: &superpin_serve::ServiceReport) {
    atomic_write(path, report.jsonl().as_bytes())
        .unwrap_or_else(|err| fail(format_args!("writing {path}: {err}")));
    println!("reports: {} job lines -> {path}", report.outcomes.len());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse_options(&args) {
        Ok(options) => options,
        Err(err) => {
            eprintln!("spin-serve: {err}");
            usage();
        }
    };

    if let Some(log_path) = &options.replay {
        let bytes = std::fs::read(log_path)
            .unwrap_or_else(|err| fail(format_args!("reading {log_path}: {err}")));
        let log = FleetLog::decode(&bytes)
            .unwrap_or_else(|err| fail(format_args!("decoding {log_path}: {err}")));
        let file = parse_jobs(&log.recipe.spec_text)
            .unwrap_or_else(|err| fail(format_args!("recorded spec: {err}")));
        let cfg = FleetConfig {
            threads: options.threads,
            slots: log.recipe.slots as usize,
            fleet_budget: log.recipe.fleet_budget,
            chaos: log.recipe.chaos,
            spmsec: log.recipe.spmsec,
        };
        let report = run_service(&file, &cfg).unwrap_or_else(|err| fail(err));
        let outcomes: Vec<String> = report.outcomes.iter().map(|o| o.to_json()).collect();
        match diff_fleet(&log, &report.events, &outcomes) {
            None => println!(
                "replay OK: {} events, {} jobs byte-identical (recorded at {} threads, \
                 replayed at {})",
                log.events.len(),
                log.outcomes.len(),
                log.recipe.threads,
                options.threads,
            ),
            Some(divergence) => fail(format_args!("replay diverged: {divergence}")),
        }
        return;
    }

    if let Some(wal_path) = &options.resume {
        let bytes = std::fs::read(wal_path)
            .unwrap_or_else(|err| fail(format_args!("reading {wal_path}: {err}")));
        let recovery = recover_fleet_wal(&bytes)
            .unwrap_or_else(|err| fail(format_args!("recovering {wal_path}: {err}")));
        match &recovery.damage {
            Some(FrameDamage::Torn { offset }) => eprintln!(
                "spin-serve: recovery: {wal_path}: truncated (salvageable, last committed \
                 round {}); torn frame at byte {offset}",
                recovery.rounds.len()
            ),
            Some(FrameDamage::Corrupt { offset, detail }) => eprintln!(
                "spin-serve: recovery: {wal_path}: corrupt at offset {offset} ({detail}); \
                 salvaging {} committed round(s)",
                recovery.rounds.len()
            ),
            None if recovery.clean_end => eprintln!(
                "spin-serve: recovery: {wal_path}: clean end frame; re-verifying {} \
                 committed round(s)",
                recovery.rounds.len()
            ),
            None => eprintln!(
                "spin-serve: recovery: {wal_path}: in-progress log (no end frame), last \
                 committed round {}",
                recovery.rounds.len()
            ),
        }
        if recovery.committed_len < bytes.len() {
            eprintln!(
                "spin-serve: recovery: discarding {} uncommitted frame(s), truncating \
                 {} -> {} bytes",
                recovery.discarded,
                bytes.len(),
                recovery.committed_len
            );
        }
        let file = parse_jobs(&recovery.recipe.spec_text)
            .unwrap_or_else(|err| fail(format_args!("journalled spec: {err}")));
        let cfg = FleetConfig {
            threads: options.threads,
            slots: recovery.recipe.slots as usize,
            fleet_budget: recovery.recipe.fleet_budget,
            chaos: recovery.recipe.chaos,
            spmsec: recovery.recipe.spmsec,
        };
        // Truncate the file to the durable prefix, then reopen it for
        // appending: frames past the last commit marker are
        // unterminated transactions and must not survive.
        let rounds = recovery.rounds.len() as u64;
        let sink = std::fs::OpenOptions::new()
            .write(true)
            .open(wal_path)
            .and_then(|file| {
                file.set_len(recovery.committed_len as u64)?;
                file.sync_data()?;
                std::fs::OpenOptions::new().append(true).open(wal_path)
            })
            .unwrap_or_else(|err| fail(format_args!("truncating {wal_path}: {err}")));
        // Frame/commit counters resume where the durable prefix ends
        // (header + record/commit pair per round), so rate-mode I/O
        // chaos keyed on them continues the interrupted schedule.
        let wal = FleetWal::resume(
            Box::new(sink),
            options.wal_fsync,
            cfg.chaos,
            1 + 2 * rounds,
            rounds,
        );
        let mut dur = Durability {
            wal: Some(wal),
            resume: recovery.rounds.into(),
        };
        let report = run_service_durable(&file, &cfg, &mut dur).unwrap_or_else(|err| fail(err));
        print!("{}", report.render_text());
        report_wal_status(&dur);
        if let Some(path) = &options.emit_reports {
            emit_reports(path, &report);
        }
        return;
    }

    let jobs_path = options.jobs.as_deref().expect("checked by parse_options");
    let spec_text =
        read_jobs(jobs_path).unwrap_or_else(|err| fail(format_args!("reading {jobs_path}: {err}")));
    let file = match parse_jobs(&spec_text) {
        Ok(file) => file,
        Err(err) => {
            eprintln!("spin-serve: {}", ArgError::Spec(err));
            usage();
        }
    };
    if let Some(budget) = options.fleet_budget {
        if let Err(err) = file.check_fleet_budget(budget) {
            eprintln!("spin-serve: {}", ArgError::Spec(err));
            usage();
        }
    }

    let cfg = FleetConfig {
        threads: options.threads,
        slots: options.slots,
        fleet_budget: options.fleet_budget,
        chaos: chaos_plan(&options),
        spmsec: options.spmsec,
    };
    let recipe = FleetRecipe {
        spec_text,
        threads: cfg.threads as u32,
        slots: cfg.slots as u32,
        fleet_budget: cfg.fleet_budget,
        chaos: cfg.chaos,
        spmsec: cfg.spmsec,
    };
    let mut dur = match &options.wal {
        Some(path) => {
            // A WAL that cannot even open degrades the run to
            // non-durable with a counted warning — durability is
            // best-effort, jobs are not.
            let wal = match std::fs::File::create(path) {
                Ok(sink) => FleetWal::create(Box::new(sink), &recipe, options.wal_fsync, cfg.chaos)
                    .unwrap_or_else(FleetWal::degraded_from),
                Err(err) => FleetWal::degraded_from(WalIoError {
                    op: WalOp::Append,
                    at: 0,
                    cause: WalCause::Io(err),
                }),
            };
            Durability {
                wal: Some(wal),
                resume: Default::default(),
            }
        }
        None => Durability::none(),
    };
    let report = run_service_durable(&file, &cfg, &mut dur).unwrap_or_else(|err| fail(err));
    print!("{}", report.render_text());
    report_wal_status(&dur);

    if let Some(path) = &options.emit_reports {
        emit_reports(path, &report);
    }
    if let Some(path) = &options.record {
        let log = FleetLog {
            recipe,
            events: report.events.clone(),
            outcomes: report.outcomes.iter().map(|o| o.to_json()).collect(),
        };
        atomic_write(path, &log.encode())
            .unwrap_or_else(|err| fail(format_args!("writing {path}: {err}")));
        println!("recorded: {} events -> {path}", report.events.len());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Options, ArgError> {
        let owned: Vec<String> = args.iter().map(|s| (*s).to_owned()).collect();
        parse_options(&owned)
    }

    #[test]
    fn parses_the_full_surface() {
        let options = parse(&[
            "--jobs",
            "fleet.jobs",
            "--threads",
            "4",
            "--fleet-slots",
            "3",
            "--fleet-budget",
            "2m",
            "--chaos-seed",
            "3",
            "--chaos-rate",
            "0.05",
            "--spmsec",
            "500",
            "--emit-reports",
            "out.jsonl",
            "--record",
            "fleet.spflog",
        ])
        .expect("parses");
        assert_eq!(options.jobs.as_deref(), Some("fleet.jobs"));
        assert_eq!(options.threads, 4);
        assert_eq!(options.slots, 3);
        assert_eq!(options.fleet_budget, Some(2 << 20));
        assert_eq!(options.chaos_seed, Some(3));
        assert_eq!(options.chaos_rate, Some(0.05));
        assert_eq!(options.spmsec, 500);
        assert_eq!(options.emit_reports.as_deref(), Some("out.jsonl"));
        assert_eq!(options.record.as_deref(), Some("fleet.spflog"));
    }

    #[test]
    fn defaults_are_serial_four_slots() {
        let options = parse(&["--jobs", "-"]).expect("parses");
        assert_eq!(options.threads, 1);
        assert_eq!(options.slots, 4);
        assert_eq!(options.fleet_budget, None);
        assert_eq!(options.record, None);
    }

    #[test]
    fn rejects_zero_threads_and_slots() {
        assert_eq!(
            parse(&["--jobs", "f", "--threads", "0"]),
            Err(ArgError::ZeroThreads)
        );
        assert_eq!(
            parse(&["--jobs", "f", "--fleet-slots", "0"]),
            Err(ArgError::ZeroSlots)
        );
    }

    #[test]
    fn rejects_bad_values_with_typed_errors() {
        assert_eq!(
            parse(&["--jobs", "f", "--chaos-rate", "1.5"]),
            Err(ArgError::ChaosRateOutOfRange(1.5))
        );
        assert_eq!(
            parse(&["--jobs", "f", "--fleet-budget", "banana"]),
            Err(ArgError::InvalidValue {
                flag: "--fleet-budget",
                value: "banana".to_owned(),
                expected: "a byte count with optional k/m/g suffix (e.g. 64m)",
            })
        );
        assert_eq!(
            parse(&["--jobs", "f", "--threads"]),
            Err(ArgError::MissingValue("--threads"))
        );
        assert_eq!(
            parse(&["--frobnicate"]),
            Err(ArgError::UnknownFlag("--frobnicate".to_owned()))
        );
    }

    #[test]
    fn rejects_contradictory_modes() {
        assert_eq!(parse(&["--threads", "2"]), Err(ArgError::MissingJobs));
        assert_eq!(
            parse(&["--jobs", "f", "--record", "a", "--replay", "b"]),
            Err(ArgError::RecordAndReplay)
        );
    }

    #[test]
    fn parses_the_durability_surface() {
        let options = parse(&[
            "--jobs",
            "fleet.jobs",
            "--wal",
            "fleet.spwal",
            "--wal-fsync",
            "every=8",
        ])
        .expect("parses");
        assert_eq!(options.wal.as_deref(), Some("fleet.spwal"));
        assert_eq!(options.wal_fsync, FsyncPolicy::EveryN(8));
        // The default policy is the safe one.
        let defaults = parse(&["--jobs", "f"]).expect("parses");
        assert_eq!(defaults.wal_fsync, FsyncPolicy::EveryCommit);
        assert_eq!(
            parse(&["--jobs", "f", "--wal-fsync", "sometimes"]),
            Err(ArgError::InvalidValue {
                flag: "--wal-fsync",
                value: "sometimes".to_owned(),
                expected: "`commit`, `off`, or `every=N`",
            })
        );
    }

    #[test]
    fn resume_stands_alone() {
        // Resume satisfies the job-file requirement by itself...
        let options = parse(&["--resume", "cut.spwal", "--threads", "4"]).expect("parses");
        assert_eq!(options.resume.as_deref(), Some("cut.spwal"));
        // ...and refuses every knob the WAL header already fixes.
        for (flag, value) in [
            ("--jobs", "f"),
            ("--fleet-slots", "2"),
            ("--fleet-budget", "1m"),
            ("--chaos-seed", "3"),
            ("--chaos-rate", "0.1"),
            ("--spmsec", "500"),
            ("--record", "a"),
            ("--replay", "b"),
            ("--wal", "w"),
        ] {
            assert_eq!(
                parse(&["--resume", "cut.spwal", flag, value]),
                Err(ArgError::ResumeConflict(flag)),
                "{flag} must conflict with --resume"
            );
        }
    }

    #[test]
    fn spec_rejections_surface_as_arg_errors() {
        // The satellite contract: weight 0, duplicate tenants, and
        // tenant-budget-over-fleet all reject with typed errors.
        let workload = superpin_workloads::catalog()[0].name;
        let zero = format!("tenant a weight=0\njob tenant=a workload={workload}\n");
        assert!(matches!(
            parse_jobs(&zero).map_err(ArgError::Spec),
            Err(ArgError::Spec(SpecError::ZeroWeight { .. }))
        ));
        let dup =
            format!("tenant a weight=1\ntenant a weight=2\njob tenant=a workload={workload}\n");
        assert!(matches!(
            parse_jobs(&dup).map_err(ArgError::Spec),
            Err(ArgError::Spec(SpecError::DuplicateTenant { .. }))
        ));
        let capped = format!("tenant a weight=1 budget=4m\njob tenant=a workload={workload}\n");
        let file = parse_jobs(&capped).expect("parses");
        assert!(matches!(
            file.check_fleet_budget(1 << 20).map_err(ArgError::Spec),
            Err(ArgError::Spec(SpecError::TenantBudgetExceedsFleet { .. }))
        ));
    }
}

//! One fleet job: a typed [`SuperPinRunner`] erased behind an
//! object-safe driver.
//!
//! The runner is generic over its tool, but a job queue holds jobs of
//! many tool types at once, so the type is erased exactly once — at
//! admission — through the rank-2 registry dispatch
//! ([`superpin_tools::with_tool`]). From then on the fleet only sees
//! `Box<dyn JobDriver>`: step one epoch, read the virtual clock and
//! resident footprint, evict caches, finish. Every method maps 1:1 to
//! a runner method, so a fleet-driven job behaves identically to a
//! standalone `step_serial` loop.

use superpin::{SharedMem, SpError, SuperPinConfig, SuperPinReport, SuperPinRunner, SuperTool};
use superpin_isa::Program;
use superpin_tools::ToolVisitor;
use superpin_vm::process::Process;

/// The object-safe surface the fleet drives a job through.
pub trait JobDriver: Send {
    /// Executes exactly one epoch inline on the calling thread;
    /// `Ok(false)` means the run is complete.
    ///
    /// # Errors
    ///
    /// Propagates guest errors.
    fn step(&mut self) -> Result<bool, SpError>;

    /// Renders the final report once [`step`](JobDriver::step) has
    /// returned `false`.
    ///
    /// # Errors
    ///
    /// Propagates errors surfaced at finalization.
    fn finish(&mut self) -> Result<SuperPinReport, SpError>;

    /// The job's virtual clock in cycles.
    fn now_cycles(&self) -> u64;

    /// The job's governed resident footprint in simulated bytes.
    fn resident_bytes(&self) -> u64;

    /// Evicts the job's code caches coldest-first until `target` bytes
    /// are freed or nothing remains; returns bytes freed.
    fn evict_caches(&mut self, target: u64) -> u64;

    /// Whether an eviction could free anything.
    fn has_evictable_cache(&self) -> bool;
}

struct Job<T: SuperTool> {
    runner: SuperPinRunner<T>,
}

impl<T: SuperTool> JobDriver for Job<T> {
    fn step(&mut self) -> Result<bool, SpError> {
        self.runner.step_serial()
    }

    fn finish(&mut self) -> Result<SuperPinReport, SpError> {
        self.runner.finish()
    }

    fn now_cycles(&self) -> u64 {
        self.runner.now_cycles()
    }

    fn resident_bytes(&self) -> u64 {
        self.runner.resident_bytes()
    }

    fn evict_caches(&mut self, target: u64) -> u64 {
        self.runner.fleet_evict_caches(target)
    }

    fn has_evictable_cache(&self) -> bool {
        self.runner.has_evictable_cache()
    }
}

struct BuildJob {
    process: Process,
    shared: SharedMem,
    cfg: SuperPinConfig,
}

impl ToolVisitor for BuildJob {
    type Out = Result<Box<dyn JobDriver>, SpError>;

    fn visit<T: SuperTool>(self, tool: T) -> Self::Out {
        let runner = SuperPinRunner::new(self.process, tool, self.shared, self.cfg)?;
        Ok(Box::new(Job { runner }))
    }
}

/// Loads `program` and builds a boxed job running `tool_name` under
/// `cfg`. The job owns a fresh [`SharedMem`] — fleet jobs never share
/// merge areas. `None` if the tool name is outside the serve registry
/// (callers validate names at parse time, so this is defensive).
///
/// # Errors
///
/// Propagates process-load and runner-setup errors.
pub fn build_job(
    program: &Program,
    cfg: SuperPinConfig,
    tool_name: &str,
) -> Result<Option<Box<dyn JobDriver>>, SpError> {
    let shared = SharedMem::new();
    let process = Process::load(1, program)?;
    let build = BuildJob {
        process,
        shared: shared.clone(),
        cfg,
    };
    superpin_tools::with_tool(tool_name, &shared, build).transpose()
}

#[cfg(test)]
mod tests {
    use super::*;
    use superpin_workloads::Scale;

    fn tiny_config() -> SuperPinConfig {
        SuperPinConfig::scaled(1000, 500_000.0)
    }

    #[test]
    fn a_built_job_steps_to_completion() {
        let spec = &superpin_workloads::catalog()[0];
        let program = spec.build(Scale::Tiny);
        let mut job = build_job(&program, tiny_config(), "icount2")
            .expect("builds")
            .expect("registered tool");
        let mut epochs = 0u32;
        while job.step().expect("epoch") {
            epochs += 1;
            assert!(epochs < 100_000, "job never completed");
        }
        let report = job.finish().expect("report");
        assert!(report.total_cycles > 0);
        assert!(job.now_cycles() >= report.total_cycles);
    }

    #[test]
    fn unknown_tools_yield_none() {
        let spec = &superpin_workloads::catalog()[0];
        let program = spec.build(Scale::Tiny);
        assert!(build_job(&program, tiny_config(), "dcache")
            .expect("no setup error")
            .is_none());
    }
}

//! The fleet's shared worker pool.
//!
//! One persistent pool serves every tenant's jobs for the whole
//! service run — the tentpole's "one shared worker pool". Each round
//! the scheduler moves the selected jobs into the pool by value, the
//! workers each step their jobs one epoch, and the results come back
//! keyed by *slot* (the job's index within the round's selection).
//! The scheduler re-applies results in slot order, so wall-clock
//! completion order — the only nondeterminism threads introduce —
//! never reaches a scheduling decision. That is the same epoch-barrier
//! argument the per-run worker pool makes, lifted one level up.

use std::sync::mpsc;
use std::thread::JoinHandle;

use superpin::SpError;

use crate::job::JobDriver;

type Task = (usize, Box<dyn JobDriver>);
type Outcome = (usize, Box<dyn JobDriver>, Result<bool, SpError>);
type SteppedJob = (Box<dyn JobDriver>, Result<bool, SpError>);

/// A persistent pool of `threads` workers stepping job epochs.
pub(crate) struct JobPool {
    senders: Vec<mpsc::Sender<Task>>,
    results: mpsc::Receiver<Outcome>,
    handles: Vec<JoinHandle<()>>,
}

impl JobPool {
    /// Spawns `threads` workers (min 1).
    pub(crate) fn new(threads: usize) -> JobPool {
        let threads = threads.max(1);
        let (result_tx, results) = mpsc::channel::<Outcome>();
        let mut senders = Vec::with_capacity(threads);
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            let (task_tx, task_rx) = mpsc::channel::<Task>();
            let result_tx = result_tx.clone();
            senders.push(task_tx);
            handles.push(std::thread::spawn(move || {
                while let Ok((slot, mut job)) = task_rx.recv() {
                    let stepped = job.step();
                    if result_tx.send((slot, job, stepped)).is_err() {
                        break;
                    }
                }
            }));
        }
        JobPool {
            senders,
            results,
            handles,
        }
    }

    /// Steps every job one epoch across the pool and returns the jobs
    /// in their original slot order. Tasks are dealt round-robin; the
    /// slot key restores order no matter which worker finishes first.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread itself panicked (a simulator bug, not
    /// a guest fault — guest faults come back as `Err` values).
    pub(crate) fn step_round(&mut self, round: Vec<Box<dyn JobDriver>>) -> Vec<SteppedJob> {
        let count = round.len();
        for (slot, job) in round.into_iter().enumerate() {
            self.senders[slot % self.senders.len()]
                .send((slot, job))
                .expect("pool workers outlive the scheduler");
        }
        let mut slots: Vec<Option<SteppedJob>> = (0..count).map(|_| None).collect();
        for _ in 0..count {
            let (slot, job, stepped) = self
                .results
                .recv()
                .expect("a pool worker panicked mid-epoch");
            slots[slot] = Some((job, stepped));
        }
        slots
            .into_iter()
            .map(|slot| slot.expect("every slot reported"))
            .collect()
    }
}

impl Drop for JobPool {
    fn drop(&mut self) {
        self.senders.clear();
        for handle in self.handles.drain(..) {
            // A worker that panicked already surfaced via the recv
            // expect above; at teardown we only care that they exit.
            let _ = handle.join();
        }
    }
}

#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! # superpin-serve
//!
//! Multi-tenant **service mode**: a deterministic job-queue daemon
//! that runs many guest programs over one governed SuperPin fleet.
//!
//! A job file declares tenants (weights, optional resident caps) and
//! jobs (workload, scale, tool, arrival time, per-job knobs); the
//! fleet scheduler admits jobs through the tenant-weighted memory
//! ladder, selects runnable jobs by weighted-fair virtual time, and
//! advances the selected jobs one epoch per round on one shared worker
//! pool. Every scheduling decision is fixed serially at round
//! barriers, so the whole run — per-job reports, tenant scoreboards,
//! the decision trace — is byte-identical across `--threads`, chaos
//! included.
//!
//! * [`spec`] — the job-file grammar and typed validation.
//! * [`job`] — jobs as type-erased [`SuperPinRunner`](superpin::SuperPinRunner)s.
//! * [`fleet`] — the round-based weighted-fair scheduler.
//! * [`durable`] — crash durability: the WAL handle and resume prefix.
//! * [`report`] — deterministic outcome rendering (text + JSONL).
//!
//! The `spin-serve` CLI fronts all of this, including `--record` /
//! `--replay` of fleet logs (see [`superpin_replay::fleet`]) and
//! `--wal` / `--resume` crash-durable runs.

pub mod durable;
pub mod fleet;
pub mod job;
pub mod report;
pub mod spec;

mod pool;

pub use durable::{Durability, FleetWal, WalStatus};
pub use fleet::{run_service, run_service_durable, time_scale_for, FleetConfig, FleetError};
pub use job::{build_job, JobDriver};
pub use report::{JobOutcome, ServiceReport, TenantSummary};
pub use spec::{parse_jobs, JobFile, JobSpec, SpecError, TenantSpec};

//! Service-run results: per-job outcomes, per-tenant scoreboards, and
//! their deterministic renderings.
//!
//! Everything here renders from simulated quantities only — virtual
//! clocks, counters, report fields — so two runs that made the same
//! decisions render byte-identical text and JSON no matter the thread
//! count or host. That property is what the determinism suite and the
//! CI `t1` vs `t4` byte-diff assert.

use superpin::{SuperPinReport, TenantCounters};
use superpin_replay::json::report_to_json;
use superpin_replay::FleetEvent;
use superpin_workloads::Scale;

use crate::spec::scale_name;

/// One completed job.
#[derive(Clone, Debug)]
pub struct JobOutcome {
    /// Job index in spec order.
    pub job: u32,
    /// Owning tenant's name.
    pub tenant: String,
    /// Workload name.
    pub workload: String,
    /// Workload scale.
    pub scale: Scale,
    /// Tool name.
    pub tool: String,
    /// Arrival time in fleet virtual cycles.
    pub arrive: u64,
    /// Fleet virtual time at the round barrier observing completion.
    pub complete: u64,
    /// `complete − arrive`, in fleet virtual cycles.
    pub turnaround: u64,
    /// Whether admission was degraded (budget-clamped).
    pub degraded: bool,
    /// The job's full SuperPin report.
    pub report: SuperPinReport,
}

impl JobOutcome {
    /// The outcome as one deterministic JSON line (fixed field order;
    /// the embedded report uses the `.splog` JSON codec).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"job\":{},\"tenant\":\"{}\",\"workload\":\"{}\",\"scale\":\"{}\",\
             \"tool\":\"{}\",\"arrive\":{},\"complete\":{},\"turnaround\":{},\
             \"degraded\":{},\"report\":{}}}",
            self.job,
            self.tenant,
            self.workload,
            scale_name(self.scale),
            self.tool,
            self.arrive,
            self.complete,
            self.turnaround,
            self.degraded,
            report_to_json(&self.report),
        )
    }
}

/// One tenant's scoreboard at the end of the run.
#[derive(Clone, Debug)]
pub struct TenantSummary {
    /// Tenant name.
    pub name: String,
    /// Fair-share weight.
    pub weight: u64,
    /// Ledger counters (admitted / deferred / degraded / evicted).
    pub counters: TenantCounters,
    /// Jobs that ran to completion.
    pub completed: u64,
}

/// A complete service run: every job's outcome, every tenant's
/// scoreboard, and the scheduler's decision trace.
#[derive(Clone, Debug)]
pub struct ServiceReport {
    /// Outcomes in job-id order (every job completes — the fleet
    /// admits degraded rather than rejecting).
    pub outcomes: Vec<JobOutcome>,
    /// Per-tenant scoreboards in tenant-id order.
    pub tenants: Vec<TenantSummary>,
    /// Fleet rounds driven.
    pub rounds: u64,
    /// Final fleet virtual time in cycles.
    pub fleet_cycles: u64,
    /// The decision trace (also what the fleet log records).
    pub events: Vec<FleetEvent>,
}

impl ServiceReport {
    /// All outcome lines, one JSON object per line, job-id order.
    pub fn jsonl(&self) -> String {
        let mut out = String::new();
        for outcome in &self.outcomes {
            out.push_str(&outcome.to_json());
            out.push('\n');
        }
        out
    }

    /// Deterministic human-readable summary.
    pub fn render_text(&self) -> String {
        let mut out = format!(
            "fleet: {} jobs over {} tenants, {} rounds, {} virtual cycles\n",
            self.outcomes.len(),
            self.tenants.len(),
            self.rounds,
            self.fleet_cycles,
        );
        for tenant in &self.tenants {
            out.push_str(&format!(
                "tenant {}: weight {}, admitted {}, deferred {}, degraded {}, \
                 evictions {}, completed {}\n",
                tenant.name,
                tenant.weight,
                tenant.counters.admitted,
                tenant.counters.deferred,
                tenant.counters.degraded,
                tenant.counters.evicted,
                tenant.completed,
            ));
        }
        for o in &self.outcomes {
            out.push_str(&format!(
                "job {}: tenant={} workload={} scale={} tool={} arrive={} \
                 complete={} turnaround={} degraded={} slices={}\n",
                o.job,
                o.tenant,
                o.workload,
                scale_name(o.scale),
                o.tool,
                o.arrive,
                o.complete,
                o.turnaround,
                o.degraded,
                o.report.slice_count(),
            ));
        }
        out
    }

    /// Nearest-rank percentile of job turnarounds (simulated cycles);
    /// 0 when no jobs completed.
    pub fn turnaround_percentile(&self, pct: f64) -> u64 {
        let mut turnarounds: Vec<u64> = self.outcomes.iter().map(|o| o.turnaround).collect();
        if turnarounds.is_empty() {
            return 0;
        }
        turnarounds.sort_unstable();
        let rank = ((pct / 100.0) * turnarounds.len() as f64).ceil() as usize;
        turnarounds[rank.clamp(1, turnarounds.len()) - 1]
    }
}

//! Job-file parsing: tenants, jobs, and typed validation.
//!
//! A job file is line-oriented text. Blank lines and `#` comments are
//! skipped; every other line is a directive:
//!
//! ```text
//! tenant NAME weight=N [budget=BYTES[k|m|g]]
//! job tenant=NAME workload=NAME [scale=tiny|small|medium|large]
//!     [tool=NAME] [arrive=CYCLES] [mem-budget=BYTES[k|m|g]]
//!     [chaos-rate=F] [plan=on|off]
//! ```
//!
//! A tenant must be declared before its first job references it. Job
//! order in the file is the job's id; the fleet admits in
//! `(arrive, id)` order, so the file *is* the arrival schedule.
//! Validation is typed ([`SpecError`]) so the CLI and tests can match
//! on the exact rejection: zero weights, duplicate tenants, unknown
//! workloads/tools, and per-tenant budgets exceeding the fleet budget
//! all have their own variants.

use std::fmt;

use superpin_workloads::Scale;

/// One tenant: a name, a fair-share weight, and an optional resident
/// cap tighter than its weighted share.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TenantSpec {
    /// Human name, unique in the file.
    pub name: String,
    /// Fair-share weight (≥ 1; 0 is rejected at parse).
    pub weight: u64,
    /// Optional per-tenant resident cap in bytes.
    pub budget: Option<u64>,
}

/// One guest job: which tenant it bills to, what it runs, and its
/// per-job knobs.
#[derive(Clone, Debug, PartialEq)]
pub struct JobSpec {
    /// Index into [`JobFile::tenants`].
    pub tenant: u32,
    /// Workload name from the `superpin-workloads` catalog.
    pub workload: String,
    /// Workload scale.
    pub scale: Scale,
    /// Pintool name from the serve registry.
    pub tool: String,
    /// Arrival time in fleet virtual cycles.
    pub arrive: u64,
    /// Optional per-job memory budget (the run's own governor).
    pub mem_budget: Option<u64>,
    /// Optional per-job chaos-rate override of the fleet plan.
    pub chaos_rate: Option<f64>,
    /// Whether to compute and install the whole-program superblock plan.
    pub plan: bool,
}

/// A parsed job file.
#[derive(Clone, Debug, PartialEq)]
pub struct JobFile {
    /// Declared tenants, file order (index = tenant id).
    pub tenants: Vec<TenantSpec>,
    /// Jobs, file order (index = job id).
    pub jobs: Vec<JobSpec>,
}

/// Typed job-file rejection. One variant per distinct mistake so CLI
/// output and tests can name the exact problem.
#[derive(Clone, Debug, PartialEq)]
pub enum SpecError {
    /// A directive was missing a required `key=value` field.
    MissingField {
        /// 1-based line number.
        line: usize,
        /// The missing key.
        field: &'static str,
    },
    /// A field's value failed to parse as the expected shape.
    InvalidValue {
        /// 1-based line number.
        line: usize,
        /// The field's key.
        field: &'static str,
        /// The offending text.
        value: String,
        /// What would have parsed.
        expected: &'static str,
    },
    /// `weight=0` — a zero-weight tenant can never be scheduled.
    ZeroWeight {
        /// 1-based line number.
        line: usize,
        /// The tenant being declared.
        tenant: String,
    },
    /// The same tenant name was declared twice.
    DuplicateTenant {
        /// 1-based line number of the second declaration.
        line: usize,
        /// The duplicated name.
        tenant: String,
    },
    /// A job referenced a tenant not (yet) declared.
    UnknownTenant {
        /// 1-based line number.
        line: usize,
        /// The undeclared name.
        tenant: String,
    },
    /// A job named a workload outside the catalog.
    UnknownWorkload {
        /// 1-based line number.
        line: usize,
        /// The unmatched name.
        workload: String,
    },
    /// A job named a tool outside the serve registry.
    UnknownTool {
        /// 1-based line number.
        line: usize,
        /// The unmatched name.
        tool: String,
    },
    /// A line began with something other than `tenant` or `job`.
    UnknownDirective {
        /// 1-based line number.
        line: usize,
        /// The first word of the line.
        directive: String,
    },
    /// `chaos-rate` is a probability and must lie in [0, 1].
    ChaosRateOutOfRange {
        /// 1-based line number.
        line: usize,
        /// The offending rate.
        value: f64,
    },
    /// A tenant's cap exceeds the whole fleet's budget — the cap could
    /// never bind and almost certainly misstates intent.
    TenantBudgetExceedsFleet {
        /// The offending tenant.
        tenant: String,
        /// Its declared cap.
        budget: u64,
        /// The fleet budget it exceeds.
        fleet: u64,
    },
    /// The file declared no jobs.
    NoJobs,
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::MissingField { line, field } => {
                write!(f, "line {line}: missing required `{field}=`")
            }
            SpecError::InvalidValue {
                line,
                field,
                value,
                expected,
            } => write!(
                f,
                "line {line}: `{field}={value}` is invalid; expected {expected}"
            ),
            SpecError::ZeroWeight { line, tenant } => write!(
                f,
                "line {line}: tenant `{tenant}` has weight 0 — a zero-weight tenant \
                 can never be scheduled; the minimum weight is 1"
            ),
            SpecError::DuplicateTenant { line, tenant } => {
                write!(f, "line {line}: tenant `{tenant}` is declared twice")
            }
            SpecError::UnknownTenant { line, tenant } => write!(
                f,
                "line {line}: job references tenant `{tenant}`, which is not declared \
                 above it"
            ),
            SpecError::UnknownWorkload { line, workload } => {
                write!(f, "line {line}: unknown workload `{workload}`")
            }
            SpecError::UnknownTool { line, tool } => {
                write!(f, "line {line}: unknown tool `{tool}`")
            }
            SpecError::UnknownDirective { line, directive } => write!(
                f,
                "line {line}: unknown directive `{directive}` (expected `tenant` or `job`)"
            ),
            SpecError::ChaosRateOutOfRange { line, value } => write!(
                f,
                "line {line}: chaos-rate is a probability and must be within [0, 1] \
                 (got {value})"
            ),
            SpecError::TenantBudgetExceedsFleet {
                tenant,
                budget,
                fleet,
            } => write!(
                f,
                "tenant `{tenant}` declares budget {budget} bytes, which exceeds the \
                 fleet budget of {fleet} bytes — the cap could never bind"
            ),
            SpecError::NoJobs => write!(f, "the job file declares no jobs"),
        }
    }
}

impl std::error::Error for SpecError {}

/// Parses a byte count with an optional binary `k`/`m`/`g` suffix
/// (case-insensitive), matching the `superpin` CLI's `--mem-budget`
/// grammar: `64m` → 64 MiB.
pub fn parse_bytes(text: &str) -> Option<u64> {
    let lower = text.trim().to_ascii_lowercase();
    let (digits, mult) = if let Some(digits) = lower.strip_suffix('k') {
        (digits, 1u64 << 10)
    } else if let Some(digits) = lower.strip_suffix('m') {
        (digits, 1u64 << 20)
    } else if let Some(digits) = lower.strip_suffix('g') {
        (digits, 1u64 << 30)
    } else {
        (lower.as_str(), 1u64)
    };
    digits.parse::<u64>().ok()?.checked_mul(mult)
}

/// Parses a workload scale name.
pub fn parse_scale(text: &str) -> Option<Scale> {
    match text {
        "tiny" => Some(Scale::Tiny),
        "small" => Some(Scale::Small),
        "medium" => Some(Scale::Medium),
        "large" => Some(Scale::Large),
        _ => None,
    }
}

/// The scale's wire name (inverse of [`parse_scale`]).
pub fn scale_name(scale: Scale) -> &'static str {
    match scale {
        Scale::Tiny => "tiny",
        Scale::Small => "small",
        Scale::Medium => "medium",
        Scale::Large => "large",
    }
}

/// Splits one directive line into `key=value` fields, rejecting bare
/// words.
fn fields(line: usize, rest: &[&str]) -> Result<Vec<(String, String)>, SpecError> {
    rest.iter()
        .map(|token| {
            token
                .split_once('=')
                .map(|(k, v)| (k.to_owned(), v.to_owned()))
                .ok_or_else(|| SpecError::InvalidValue {
                    line,
                    field: "field",
                    value: (*token).to_owned(),
                    expected: "`key=value` pairs after the directive",
                })
        })
        .collect()
}

/// Parses job-file text into a validated [`JobFile`].
///
/// # Errors
///
/// The first [`SpecError`] encountered, with its line number.
pub fn parse_jobs(text: &str) -> Result<JobFile, SpecError> {
    let mut file = JobFile {
        tenants: Vec::new(),
        jobs: Vec::new(),
    };
    for (index, raw) in text.lines().enumerate() {
        let line = index + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let tokens: Vec<&str> = trimmed.split_whitespace().collect();
        match tokens[0] {
            "tenant" => {
                let name = tokens.get(1).copied().unwrap_or_default();
                if name.is_empty() || name.contains('=') {
                    return Err(SpecError::MissingField {
                        line,
                        field: "tenant name",
                    });
                }
                if file.tenants.iter().any(|t| t.name == name) {
                    return Err(SpecError::DuplicateTenant {
                        line,
                        tenant: name.to_owned(),
                    });
                }
                let mut weight = None;
                let mut budget = None;
                for (key, value) in fields(line, &tokens[2..])? {
                    match key.as_str() {
                        "weight" => {
                            let w: u64 = value.parse().map_err(|_| SpecError::InvalidValue {
                                line,
                                field: "weight",
                                value: value.clone(),
                                expected: "a positive integer",
                            })?;
                            if w == 0 {
                                return Err(SpecError::ZeroWeight {
                                    line,
                                    tenant: name.to_owned(),
                                });
                            }
                            weight = Some(w);
                        }
                        "budget" => {
                            budget = Some(parse_bytes(&value).ok_or_else(|| {
                                SpecError::InvalidValue {
                                    line,
                                    field: "budget",
                                    value: value.clone(),
                                    expected: "a byte count with optional k/m/g suffix",
                                }
                            })?);
                        }
                        _ => {
                            return Err(SpecError::InvalidValue {
                                line,
                                field: "tenant field",
                                value: key,
                                expected: "weight= or budget=",
                            })
                        }
                    }
                }
                file.tenants.push(TenantSpec {
                    name: name.to_owned(),
                    weight: weight.ok_or(SpecError::MissingField {
                        line,
                        field: "weight",
                    })?,
                    budget,
                });
            }
            "job" => {
                let mut tenant = None;
                let mut workload = None;
                let mut scale = Scale::Tiny;
                let mut tool = "icount2".to_owned();
                let mut arrive = 0u64;
                let mut mem_budget = None;
                let mut chaos_rate = None;
                let mut plan = false;
                for (key, value) in fields(line, &tokens[1..])? {
                    match key.as_str() {
                        "tenant" => {
                            let id = file
                                .tenants
                                .iter()
                                .position(|t| t.name == value)
                                .ok_or_else(|| SpecError::UnknownTenant {
                                    line,
                                    tenant: value.clone(),
                                })?;
                            tenant = Some(id as u32);
                        }
                        "workload" => {
                            if superpin_workloads::find(&value).is_none() {
                                return Err(SpecError::UnknownWorkload {
                                    line,
                                    workload: value,
                                });
                            }
                            workload = Some(value);
                        }
                        "scale" => {
                            scale = parse_scale(&value).ok_or_else(|| SpecError::InvalidValue {
                                line,
                                field: "scale",
                                value: value.clone(),
                                expected: "tiny|small|medium|large",
                            })?;
                        }
                        "tool" => {
                            if !superpin_tools::SERVE_TOOL_NAMES.contains(&value.as_str()) {
                                return Err(SpecError::UnknownTool { line, tool: value });
                            }
                            tool = value;
                        }
                        "arrive" => {
                            arrive = value.parse().map_err(|_| SpecError::InvalidValue {
                                line,
                                field: "arrive",
                                value: value.clone(),
                                expected: "a cycle count",
                            })?;
                        }
                        "mem-budget" => {
                            mem_budget = Some(parse_bytes(&value).ok_or_else(|| {
                                SpecError::InvalidValue {
                                    line,
                                    field: "mem-budget",
                                    value: value.clone(),
                                    expected: "a byte count with optional k/m/g suffix",
                                }
                            })?);
                        }
                        "chaos-rate" => {
                            let rate: f64 = value.parse().map_err(|_| SpecError::InvalidValue {
                                line,
                                field: "chaos-rate",
                                value: value.clone(),
                                expected: "a probability in [0, 1]",
                            })?;
                            if !(0.0..=1.0).contains(&rate) {
                                return Err(SpecError::ChaosRateOutOfRange { line, value: rate });
                            }
                            chaos_rate = Some(rate);
                        }
                        "plan" => {
                            plan = match value.as_str() {
                                "on" | "1" => true,
                                "off" | "0" => false,
                                _ => {
                                    return Err(SpecError::InvalidValue {
                                        line,
                                        field: "plan",
                                        value,
                                        expected: "on|off",
                                    })
                                }
                            };
                        }
                        _ => {
                            return Err(SpecError::InvalidValue {
                                line,
                                field: "job field",
                                value: key,
                                expected: "tenant=, workload=, scale=, tool=, arrive=, \
                                           mem-budget=, chaos-rate=, or plan=",
                            })
                        }
                    }
                }
                file.jobs.push(JobSpec {
                    tenant: tenant.ok_or(SpecError::MissingField {
                        line,
                        field: "tenant",
                    })?,
                    workload: workload.ok_or(SpecError::MissingField {
                        line,
                        field: "workload",
                    })?,
                    scale,
                    tool,
                    arrive,
                    mem_budget,
                    chaos_rate,
                    plan,
                });
            }
            other => {
                return Err(SpecError::UnknownDirective {
                    line,
                    directive: other.to_owned(),
                })
            }
        }
    }
    if file.jobs.is_empty() {
        return Err(SpecError::NoJobs);
    }
    Ok(file)
}

impl JobFile {
    /// Rejects tenants whose declared cap exceeds the fleet budget —
    /// validated at run time rather than parse time because the fleet
    /// budget is a CLI knob, not a job-file field.
    ///
    /// # Errors
    ///
    /// [`SpecError::TenantBudgetExceedsFleet`] for the first offender.
    pub fn check_fleet_budget(&self, fleet: u64) -> Result<(), SpecError> {
        for tenant in &self.tenants {
            if let Some(budget) = tenant.budget {
                if budget > fleet {
                    return Err(SpecError::TenantBudgetExceedsFleet {
                        tenant: tenant.name.clone(),
                        budget,
                        fleet,
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workload() -> &'static str {
        superpin_workloads::catalog()[0].name
    }

    #[test]
    fn parses_tenants_and_jobs_with_defaults() {
        let text = format!(
            "# fleet spec\n\
             tenant alpha weight=3 budget=1m\n\
             tenant beta weight=1\n\n\
             job tenant=alpha workload={w}\n\
             job tenant=beta workload={w} scale=tiny tool=icount1 arrive=500 \
             mem-budget=64k chaos-rate=0.5 plan=off\n",
            w = workload()
        );
        let file = parse_jobs(&text).expect("parses");
        assert_eq!(file.tenants.len(), 2);
        assert_eq!(file.tenants[0].weight, 3);
        assert_eq!(file.tenants[0].budget, Some(1 << 20));
        assert_eq!(file.tenants[1].budget, None);
        assert_eq!(file.jobs.len(), 2);
        let first = &file.jobs[0];
        assert_eq!((first.tenant, first.arrive), (0, 0));
        assert_eq!(first.tool, "icount2");
        assert_eq!(first.scale, Scale::Tiny);
        let second = &file.jobs[1];
        assert_eq!(second.tenant, 1);
        assert_eq!(second.arrive, 500);
        assert_eq!(second.mem_budget, Some(64 << 10));
        assert_eq!(second.chaos_rate, Some(0.5));
    }

    #[test]
    fn rejects_zero_weight() {
        let text = format!("tenant a weight=0\njob tenant=a workload={}\n", workload());
        assert_eq!(
            parse_jobs(&text),
            Err(SpecError::ZeroWeight {
                line: 1,
                tenant: "a".to_owned()
            })
        );
    }

    #[test]
    fn rejects_duplicate_tenants() {
        let text = format!(
            "tenant a weight=1\ntenant a weight=2\njob tenant=a workload={}\n",
            workload()
        );
        assert_eq!(
            parse_jobs(&text),
            Err(SpecError::DuplicateTenant {
                line: 2,
                tenant: "a".to_owned()
            })
        );
    }

    #[test]
    fn rejects_unknown_references() {
        let text = format!("job tenant=ghost workload={}\n", workload());
        assert_eq!(
            parse_jobs(&text),
            Err(SpecError::UnknownTenant {
                line: 1,
                tenant: "ghost".to_owned()
            })
        );
        let text = "tenant a weight=1\njob tenant=a workload=nope\n";
        assert_eq!(
            parse_jobs(text),
            Err(SpecError::UnknownWorkload {
                line: 2,
                workload: "nope".to_owned()
            })
        );
        let text = format!(
            "tenant a weight=1\njob tenant=a workload={} tool=frobnicator\n",
            workload()
        );
        assert_eq!(
            parse_jobs(&text),
            Err(SpecError::UnknownTool {
                line: 2,
                tool: "frobnicator".to_owned()
            })
        );
    }

    #[test]
    fn rejects_malformed_fields() {
        assert_eq!(
            parse_jobs("tenant a weight=banana\n"),
            Err(SpecError::InvalidValue {
                line: 1,
                field: "weight",
                value: "banana".to_owned(),
                expected: "a positive integer",
            })
        );
        assert_eq!(
            parse_jobs("tenant a\n"),
            Err(SpecError::MissingField {
                line: 1,
                field: "weight"
            })
        );
        let text = format!(
            "tenant a weight=1\njob tenant=a workload={} chaos-rate=1.5\n",
            workload()
        );
        assert_eq!(
            parse_jobs(&text),
            Err(SpecError::ChaosRateOutOfRange {
                line: 2,
                value: 1.5
            })
        );
        assert_eq!(
            parse_jobs("frobnicate everything\n"),
            Err(SpecError::UnknownDirective {
                line: 1,
                directive: "frobnicate".to_owned()
            })
        );
        assert_eq!(parse_jobs("# nothing\n"), Err(SpecError::NoJobs));
    }

    #[test]
    fn fleet_budget_check_rejects_oversized_caps() {
        let text = format!(
            "tenant a weight=1 budget=2m\njob tenant=a workload={}\n",
            workload()
        );
        let file = parse_jobs(&text).expect("parses");
        assert_eq!(file.check_fleet_budget(4 << 20), Ok(()));
        assert_eq!(
            file.check_fleet_budget(1 << 20),
            Err(SpecError::TenantBudgetExceedsFleet {
                tenant: "a".to_owned(),
                budget: 2 << 20,
                fleet: 1 << 20,
            })
        );
    }

    #[test]
    fn bytes_grammar_matches_the_superpin_cli() {
        assert_eq!(parse_bytes("4096"), Some(4096));
        assert_eq!(parse_bytes("8k"), Some(8 << 10));
        assert_eq!(parse_bytes("64M"), Some(64 << 20));
        assert_eq!(parse_bytes("2g"), Some(2 << 30));
        assert_eq!(parse_bytes("banana"), None);
        assert_eq!(parse_bytes(""), None);
    }
}

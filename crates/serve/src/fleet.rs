//! The fleet scheduler: round-based weighted-fair scheduling of many
//! guest jobs over one shared worker pool and one governed memory
//! budget.
//!
//! # The round loop
//!
//! The fleet is SuperPin's epoch-barrier argument applied one level
//! up. Each **round**:
//!
//! 1. **Admission barrier** (serial): parked deferrals retry first
//!    (FIFO), then arrivals whose time has come, in `(arrive, id)`
//!    order. Admission under a fleet budget walks the tenant-weighted
//!    ladder — evict code caches from *over-share* tenants' running
//!    jobs (rung 1), defer the over-share newcomer while others can
//!    free memory (rung 2), admit degraded with a budget clamped to
//!    the tenant's remaining share (rung 3) — so an over-share tenant
//!    pays before an under-share tenant degrades.
//! 2. **Selection** (serial): the [`FleetQueue`] picks the
//!    `fleet_slots` active jobs with minimum weighted virtual time.
//!    The selection is fixed *before* any job runs.
//! 3. **Execution** (parallel): each selected job advances exactly one
//!    of its own epochs, moved by value onto the shared pool. Jobs run
//!    with `threads = 1` internally — the fleet's parallelism is
//!    across jobs, never within one — so a job's epoch is a
//!    deterministic function of the job alone.
//! 4. **Settlement** (serial, slot order): virtual-time charges,
//!    completions, and ledger postings apply in the selection's order,
//!    never in wall-clock finish order.
//!
//! Because steps 1, 2, and 4 are serial and step 3's results are
//! re-ordered by slot, the whole run — every report byte, every
//! counter — is invariant under `--threads`.
//!
//! # Chaos domains
//!
//! A fleet chaos plan is never used directly: each job's registry is
//! built from [`FailPlan::for_tenant`], so tenants fault on
//! independent schedules and a tenant's schedule does not change when
//! other tenants join or leave the fleet.

use std::collections::VecDeque;
use std::fmt;

use superpin::governor::FORK_COST_BYTES;
use superpin::{FailPlan, ProgramAnalysis, SpError, SuperPinConfig, TenantAdmission, TenantLedger};
use superpin_dbi::CYCLES_PER_SEC;
use superpin_replay::{diff_round, FleetEvent, RoundFrame};
use superpin_sched::FleetQueue;
use superpin_workloads::Scale;

use crate::durable::Durability;
use crate::job::{build_job, JobDriver};
use crate::pool::JobPool;
use crate::report::{JobOutcome, ServiceReport, TenantSummary};
use crate::spec::JobFile;

/// Paper-equivalent seconds one full benchmark run presents as; the
/// same constant the bench harness uses, so a fleet job's time scale
/// matches the standalone `superpin` CLI's for the same scale.
pub const PRESENTED_NATIVE_SECS: f64 = 100.0;

/// The time-scale factor for a workload scale (virtual seconds ×
/// scale = presented seconds).
pub fn time_scale_for(scale: Scale) -> f64 {
    PRESENTED_NATIVE_SECS * CYCLES_PER_SEC as f64 / scale.target_insts() as f64
}

/// Fleet-level knobs (the `spin-serve` CLI surface minus I/O).
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Shared pool worker threads (`--threads`). Purely a host
    /// execution knob: reports are bit-identical across values.
    pub threads: usize,
    /// Round width (`--fleet-slots`): how many jobs advance per round.
    /// A *scheduling* knob — changing it changes the interleaving —
    /// deliberately independent of `threads`.
    pub slots: usize,
    /// Shared fleet resident budget in bytes (`--fleet-budget`).
    pub fleet_budget: Option<u64>,
    /// Fleet chaos plan; tenants derive independent domains from it.
    pub chaos: Option<FailPlan>,
    /// Paper-time timeslice per job in milliseconds (`--spmsec`).
    pub spmsec: u64,
}

impl Default for FleetConfig {
    fn default() -> FleetConfig {
        FleetConfig {
            threads: 1,
            slots: 4,
            fleet_budget: None,
            chaos: None,
            spmsec: 1000,
        }
    }
}

/// A fleet run failed: some job's simulator surfaced an error, or a
/// resumed run diverged from its own committed journal.
#[derive(Debug)]
pub enum FleetError {
    /// The named job's runner failed.
    Job {
        /// Job index in spec order.
        job: u32,
        /// The underlying simulator error.
        source: SpError,
    },
    /// Re-execution during `--resume` did not reproduce a round the
    /// WAL holds as committed. The journal and the build disagree —
    /// continuing would silently fork history, so this aborts.
    WalDivergence {
        /// The 1-based round that failed verification.
        round: u64,
        /// What differed, from [`diff_round`].
        detail: String,
    },
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::Job { job, source } => write!(f, "job {job}: {source}"),
            FleetError::WalDivergence { round, detail } => write!(
                f,
                "resume diverged from the committed WAL at round {round}: {detail}"
            ),
        }
    }
}

impl std::error::Error for FleetError {}

struct ActiveJob {
    id: u32,
    tenant: u32,
    driver: Option<Box<dyn JobDriver>>,
    degraded: Option<u64>,
}

struct Fleet<'a> {
    file: &'a JobFile,
    cfg: &'a FleetConfig,
    dur: &'a mut Durability,
    ledger: TenantLedger,
    queue: FleetQueue,
    active: Vec<ActiveJob>,
    waiting: VecDeque<u32>,
    pending: VecDeque<u32>,
    pool: Option<JobPool>,
    events: Vec<FleetEvent>,
    /// Events up to this index are already journalled; the next round
    /// frame carries `events[events_mark..]`.
    events_mark: usize,
    fleet_now: u64,
    rounds: u64,
    outcomes: Vec<Option<JobOutcome>>,
    completed: Vec<u64>,
}

impl Fleet<'_> {
    /// Re-posts every tenant's live resident total into the ledger.
    fn post_usages(&mut self) {
        for tenant in 0..self.file.tenants.len() as u32 {
            let usage: u64 = self
                .active
                .iter()
                .filter(|job| job.tenant == tenant)
                .filter_map(|job| job.driver.as_ref())
                .map(|driver| driver.resident_bytes())
                .sum();
            self.ledger.post_usage(tenant, usage);
        }
    }

    /// Ladder rung 1: evicts code caches from over-share tenants'
    /// running jobs (worst overage first, job id order within a
    /// tenant) until `needed` bytes are freed or nothing evictable
    /// remains.
    fn evict_for(&mut self, needed: u64) {
        let mut freed = 0u64;
        for tenant in self.ledger.over_share_tenants() {
            if freed >= needed {
                break;
            }
            let mut ids: Vec<u32> = self
                .active
                .iter()
                .filter(|job| job.tenant == tenant)
                .map(|job| job.id)
                .collect();
            ids.sort_unstable();
            for id in ids {
                if freed >= needed {
                    break;
                }
                let job = self
                    .active
                    .iter_mut()
                    .find(|job| job.id == id)
                    .expect("listed job is active");
                let Some(driver) = job.driver.as_mut() else {
                    continue;
                };
                let bytes = driver.evict_caches(needed - freed);
                if bytes > 0 {
                    freed += bytes;
                    self.ledger.count_evicted(tenant);
                    self.events.push(FleetEvent::Evict {
                        job: id,
                        bytes,
                        fleet_now: self.fleet_now,
                    });
                }
            }
        }
        if freed > 0 {
            self.post_usages();
        }
    }

    /// One admission attempt for job `id`. `fresh` marks the first
    /// attempt — deferral is only counted, logged, and parked once;
    /// barrier retries of a parked job re-decide silently until they
    /// admit. Returns whether the job was admitted.
    fn try_admit(&mut self, id: u32, fresh: bool) -> Result<bool, FleetError> {
        let spec = &self.file.jobs[id as usize];
        let tenant = spec.tenant;
        self.post_usages();
        if self.ledger.over_budget(FORK_COST_BYTES) {
            let needed = (self.ledger.fleet_usage() + FORK_COST_BYTES)
                .saturating_sub(self.ledger.fleet_budget());
            self.evict_for(needed);
        }
        let others_can_free = !self.active.is_empty();
        let decision = self.ledger.decide(tenant, FORK_COST_BYTES, others_can_free);
        let clamp = match decision {
            TenantAdmission::Defer => {
                if fresh {
                    self.ledger.count_deferred(tenant);
                    self.events.push(FleetEvent::Defer {
                        job: id,
                        fleet_now: self.fleet_now,
                    });
                    self.waiting.push_back(id);
                }
                return Ok(false);
            }
            TenantAdmission::Admit => {
                self.ledger.count_admitted(tenant);
                None
            }
            TenantAdmission::AdmitDegraded { budget } => {
                self.ledger.count_degraded(tenant);
                Some(budget)
            }
        };

        let program = superpin_workloads::find(&spec.workload)
            .expect("workload validated at parse")
            .build(spec.scale);
        let mut cfg =
            SuperPinConfig::scaled(self.cfg.spmsec, time_scale_for(spec.scale)).with_threads(1);
        let budget = match (spec.mem_budget, clamp) {
            (Some(own), Some(clamped)) => Some(own.min(clamped)),
            (own, clamped) => own.or(clamped),
        };
        if let Some(bytes) = budget {
            cfg = cfg.with_mem_budget(bytes);
        }
        let base_chaos = match (self.cfg.chaos, spec.chaos_rate) {
            (Some(plan), Some(rate)) => Some(FailPlan { rate, ..plan }),
            (Some(plan), None) => Some(plan),
            (None, Some(rate)) => Some(FailPlan::new(1, rate)),
            (None, None) => None,
        };
        if let Some(plan) = base_chaos {
            cfg = cfg.with_chaos(plan.for_tenant(tenant));
        }
        if spec.plan {
            let analysis = ProgramAnalysis::compute(&program).expect("whole-program analysis");
            cfg = cfg
                .with_plan(std::sync::Arc::new(analysis.plan(Default::default())))
                .with_oracle(std::sync::Arc::new(analysis.oracle()));
        }
        let driver = build_job(&program, cfg, &spec.tool)
            .map_err(|source| FleetError::Job { job: id, source })?
            .expect("tool validated at parse");

        self.events.push(FleetEvent::Admit {
            job: id,
            fleet_now: self.fleet_now,
            budget: clamp,
        });
        self.queue
            .add(id, self.file.tenants[tenant as usize].weight);
        self.active.push(ActiveJob {
            id,
            tenant,
            driver: Some(driver),
            degraded: clamp,
        });
        Ok(true)
    }

    /// The round's admission barrier: parked deferrals retry first
    /// (FIFO), then due arrivals in `(arrive, id)` order.
    fn admissions(&mut self) -> Result<(), FleetError> {
        let mut parked = std::mem::take(&mut self.waiting);
        while let Some(id) = parked.pop_front() {
            if !self.try_admit(id, false)? {
                self.waiting.push_back(id);
            }
        }
        while self
            .pending
            .front()
            .is_some_and(|&id| self.file.jobs[id as usize].arrive <= self.fleet_now)
        {
            let id = self.pending.pop_front().expect("front exists");
            self.try_admit(id, true)?;
        }
        Ok(())
    }

    /// Steps one fleet round: select, execute, settle.
    fn round(&mut self) -> Result<(), FleetError> {
        self.rounds += 1;
        let ids = self.queue.select(self.cfg.slots.max(1));
        let mut befores = Vec::with_capacity(ids.len());
        let mut round = Vec::with_capacity(ids.len());
        for &id in &ids {
            let job = self
                .active
                .iter_mut()
                .find(|job| job.id == id)
                .expect("selected job is active");
            let driver = job.driver.take().expect("selected job holds its driver");
            befores.push(driver.now_cycles());
            round.push(driver);
        }

        let stepped = match &mut self.pool {
            Some(pool) => pool.step_round(round),
            None => round
                .into_iter()
                .map(|mut driver| {
                    let more = driver.step();
                    (driver, more)
                })
                .collect(),
        };

        let mut max_delta = 0u64;
        let mut deltas = Vec::with_capacity(ids.len());
        let mut finished = Vec::new();
        for (slot, (driver, more)) in stepped.into_iter().enumerate() {
            let id = ids[slot];
            let more = more.map_err(|source| FleetError::Job { job: id, source })?;
            let delta = driver.now_cycles().saturating_sub(befores[slot]);
            self.queue.charge(id, delta);
            deltas.push(delta);
            max_delta = max_delta.max(delta);
            let job = self
                .active
                .iter_mut()
                .find(|job| job.id == id)
                .expect("selected job is active");
            job.driver = Some(driver);
            if !more {
                finished.push(id);
            }
        }
        // The barrier observes the round's longest epoch; a round that
        // somehow burned no virtual time still advances the clock so
        // arrival processing cannot stall.
        self.fleet_now += max_delta.max(1);

        for id in finished {
            let position = self
                .active
                .iter()
                .position(|job| job.id == id)
                .expect("finished job is active");
            let mut job = self.active.remove(position);
            self.queue.remove(id);
            let report = job
                .driver
                .as_mut()
                .expect("finished job holds its driver")
                .finish()
                .map_err(|source| FleetError::Job { job: id, source })?;
            self.events.push(FleetEvent::Complete {
                job: id,
                fleet_now: self.fleet_now,
            });
            self.completed[job.tenant as usize] += 1;
            let spec = &self.file.jobs[id as usize];
            self.outcomes[id as usize] = Some(JobOutcome {
                job: id,
                tenant: self.file.tenants[spec.tenant as usize].name.clone(),
                workload: spec.workload.clone(),
                scale: spec.scale,
                tool: spec.tool.clone(),
                arrive: spec.arrive,
                complete: self.fleet_now,
                turnaround: self.fleet_now - spec.arrive,
                degraded: job.degraded.is_some(),
                report,
            });
        }
        self.post_usages();
        self.settle_durability(&ids, deltas)
    }

    /// The round's durability step, after settlement: build the
    /// [`RoundFrame`] for everything that happened since the last one,
    /// then either verify it against the resume prefix (re-execution
    /// of already-committed rounds) or journal it to the WAL.
    fn settle_durability(&mut self, ids: &[u32], deltas: Vec<u64>) -> Result<(), FleetError> {
        if self.dur.resume.is_empty() && self.dur.wal.is_none() {
            self.events_mark = self.events.len();
            return Ok(());
        }
        let frame = RoundFrame {
            round: self.rounds,
            fleet_now: self.fleet_now,
            selected: ids.to_vec(),
            deltas,
            events: self.events[self.events_mark..].to_vec(),
            usages: (0..self.file.tenants.len() as u32)
                .map(|tenant| self.ledger.usage(tenant))
                .collect(),
        };
        self.events_mark = self.events.len();
        if let Some(expected) = self.dur.resume.pop_front() {
            if let Some(detail) = diff_round(&expected, &frame) {
                return Err(FleetError::WalDivergence {
                    round: self.rounds,
                    detail,
                });
            }
        } else if let Some(wal) = self.dur.wal.as_mut() {
            wal.append_round(&frame);
        }
        Ok(())
    }
}

/// Runs a whole service workload to completion and returns the
/// [`ServiceReport`]. Deterministic in `(file, cfg)` except for
/// `cfg.threads`, which never changes a single output byte.
///
/// # Errors
///
/// [`FleetError`] naming the first job whose simulator failed.
///
/// # Panics
///
/// Panics on internal bookkeeping violations (a selected job without a
/// driver, a finished job not in the active set) — simulator bugs, not
/// input errors.
pub fn run_service(file: &JobFile, cfg: &FleetConfig) -> Result<ServiceReport, FleetError> {
    let mut dur = Durability::none();
    run_service_durable(file, cfg, &mut dur)
}

/// [`run_service`] under a [`Durability`] context: while `dur.resume`
/// holds committed rounds, re-execution verifies each settled round
/// against its frame (any mismatch is [`FleetError::WalDivergence`]);
/// once past the prefix — or from round 1 when there is no prefix —
/// settled rounds are journalled to `dur.wal`, and a naturally
/// completed run is sealed with the WAL's end frame. WAL write
/// failures never fail the run; they degrade it to non-durable (see
/// [`crate::durable::WalStatus`]).
///
/// # Errors
///
/// [`FleetError`] for the first failing job, or a WAL divergence on
/// resume.
pub fn run_service_durable(
    file: &JobFile,
    cfg: &FleetConfig,
    dur: &mut Durability,
) -> Result<ServiceReport, FleetError> {
    let mut ledger = TenantLedger::new(cfg.fleet_budget.unwrap_or(u64::MAX));
    for (id, tenant) in file.tenants.iter().enumerate() {
        ledger.add_tenant(id as u32, tenant.weight, tenant.budget);
    }
    let mut order: Vec<u32> = (0..file.jobs.len() as u32).collect();
    order.sort_by_key(|&id| (file.jobs[id as usize].arrive, id));

    let mut fleet = Fleet {
        file,
        cfg,
        dur,
        ledger,
        queue: FleetQueue::new(),
        active: Vec::new(),
        waiting: VecDeque::new(),
        pending: order.into(),
        pool: (cfg.threads > 1).then(|| JobPool::new(cfg.threads)),
        events: Vec::new(),
        events_mark: 0,
        fleet_now: 0,
        rounds: 0,
        outcomes: (0..file.jobs.len()).map(|_| None).collect(),
        completed: vec![0; file.tenants.len()],
    };

    loop {
        fleet.admissions()?;
        if fleet.active.is_empty() {
            if !fleet.waiting.is_empty() {
                // Nothing is running, so nothing can free memory:
                // the next admission barrier re-decides with
                // `others_can_free = false`, which never defers —
                // the parked queue drains (degraded if need be) and
                // the fleet always makes progress.
                continue;
            }
            match fleet.pending.front() {
                Some(&next) => {
                    let arrive = file.jobs[next as usize].arrive;
                    fleet.fleet_now = fleet.fleet_now.max(arrive);
                }
                None => break,
            }
            continue;
        }
        fleet.round()?;
    }

    if let Some(expected) = fleet.dur.resume.front() {
        return Err(FleetError::WalDivergence {
            round: fleet.rounds,
            detail: format!(
                "run completed after round {} but the WAL holds {} more \
                 committed round(s), next is round {}",
                fleet.rounds,
                fleet.dur.resume.len(),
                expected.round
            ),
        });
    }
    if let Some(wal) = fleet.dur.wal.as_mut() {
        wal.finish();
    }

    Ok(ServiceReport {
        outcomes: fleet
            .outcomes
            .into_iter()
            .map(|outcome| outcome.expect("every job completes"))
            .collect(),
        tenants: fleet
            .ledger
            .counters()
            .into_iter()
            .enumerate()
            .map(|(id, counters)| TenantSummary {
                name: file.tenants[id].name.clone(),
                weight: file.tenants[id].weight,
                counters,
                completed: fleet.completed[id],
            })
            .collect(),
        rounds: fleet.rounds,
        fleet_cycles: fleet.fleet_now,
        events: fleet.events,
    })
}

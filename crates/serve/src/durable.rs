//! Crash durability for fleet runs: the WAL handle and the resume
//! prefix.
//!
//! The fleet is a pure function of `(job file, knobs)`, so its durable
//! journal does not need to checkpoint runner state — it journals the
//! *decisions* (one [`RoundFrame`] per settled round) and recovery
//! re-derives everything else by re-executing from round 0, verifying
//! each re-executed round against its committed frame, then continuing
//! live past the prefix. That is the record/replay engine doing double
//! duty as the recovery engine.
//!
//! Durability is strictly best-effort relative to job progress: a WAL
//! that stops accepting writes (disk full, torn append, failed fsync —
//! injected by the `io.*` chaos sites or real) **degrades the fleet to
//! non-durable** with counted warnings in [`WalStatus`]; it never
//! fails a job or changes a scheduling decision. For the same reason,
//! WAL state stays out of the deterministic report renders — a resumed
//! run and an uninterrupted run commit different round counts but must
//! stay byte-identical where it matters.

use std::collections::VecDeque;

use superpin::FailPlan;
use superpin_replay::fleet::{FleetRecipe, RoundFrame};
use superpin_replay::wal::{
    FsyncPolicy, WalIoError, WalOp, WalSink, WalWriter, WAL_FRAME_HEADER, WAL_FRAME_RECORD,
};

/// Observability counters for one fleet WAL. Deliberately *not* part
/// of [`ServiceReport`](crate::ServiceReport): an interrupted-then-
/// resumed run and an uninterrupted run have different WAL histories
/// but byte-identical reports.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WalStatus {
    /// Rounds committed to the log by *this process* (a resumed run
    /// starts from the salvaged count).
    pub rounds_committed: u64,
    /// Frame appends that failed (torn writes and disk-full included).
    pub append_failures: u64,
    /// Commit fsyncs that failed.
    pub fsync_failures: u64,
    /// The WAL stopped accepting writes and the fleet continued
    /// non-durable.
    pub degraded: bool,
    /// The failure that caused the degradation.
    pub last_error: Option<String>,
}

/// A fleet's write-ahead log handle: one committed frame per settled
/// round, graceful degradation on any write failure.
pub struct FleetWal {
    writer: Option<WalWriter>,
    status: WalStatus,
}

impl FleetWal {
    /// Opens a fresh WAL on `sink`: preamble plus a header frame
    /// carrying the recipe. The host-I/O fault sites arm from `chaos`
    /// (the fleet-level plan — the WAL is fleet infrastructure, not a
    /// tenant).
    ///
    /// # Errors
    ///
    /// [`WalIoError`] if even the preamble/header cannot be written —
    /// the caller decides whether to run non-durable or abort.
    pub fn create(
        sink: Box<dyn WalSink>,
        recipe: &FleetRecipe,
        policy: FsyncPolicy,
        chaos: Option<FailPlan>,
    ) -> Result<FleetWal, WalIoError> {
        let mut writer = WalWriter::create(sink, policy, chaos)?;
        let mut payload = Vec::new();
        recipe.encode_into(&mut payload);
        writer.append(WAL_FRAME_HEADER, &payload)?;
        Ok(FleetWal {
            writer: Some(writer),
            status: WalStatus::default(),
        })
    }

    /// Continues a salvaged WAL whose sink is already truncated to the
    /// durable prefix. `frames`/`commits` prime the writer's fault-site
    /// keys so rate-mode chaos schedules continue exactly where the
    /// interrupted process left off.
    pub fn resume(
        sink: Box<dyn WalSink>,
        policy: FsyncPolicy,
        chaos: Option<FailPlan>,
        frames: u64,
        commits: u64,
    ) -> FleetWal {
        FleetWal {
            writer: Some(WalWriter::resume(sink, policy, chaos, frames, commits)),
            status: WalStatus {
                rounds_committed: commits,
                ..WalStatus::default()
            },
        }
    }

    /// A handle that was never writable (e.g. the WAL file could not
    /// be created): the fleet runs non-durable but the warning is
    /// still counted and carried.
    pub fn degraded_from(err: WalIoError) -> FleetWal {
        let mut wal = FleetWal {
            writer: None,
            status: WalStatus::default(),
        };
        wal.degrade(err);
        wal
    }

    /// The counters (read after the run for the status line).
    pub fn status(&self) -> &WalStatus {
        &self.status
    }

    /// Journals one settled round: record frame + commit marker +
    /// policy fsync. Infallible by contract — any failure degrades the
    /// fleet to non-durable and is counted, never propagated.
    pub(crate) fn append_round(&mut self, frame: &RoundFrame) {
        let Some(writer) = self.writer.as_mut() else {
            return;
        };
        let result = writer.append_committed(WAL_FRAME_RECORD, &frame.encode(), frame.round);
        match result {
            Ok(()) => self.status.rounds_committed += 1,
            Err(err) => self.degrade(err),
        }
    }

    /// Seals a naturally completed run with the clean end frame.
    pub(crate) fn finish(&mut self) {
        if let Some(writer) = self.writer.as_mut() {
            if let Err(err) = writer.end() {
                self.degrade(err);
            }
        }
    }

    fn degrade(&mut self, err: WalIoError) {
        match err.op {
            WalOp::Append => self.status.append_failures += 1,
            WalOp::Fsync => self.status.fsync_failures += 1,
        }
        self.status.degraded = true;
        self.status.last_error = Some(err.to_string());
        // Drop the writer: once an append tore or an fsync lied, the
        // tail of the file is untrustworthy — stop writing rather than
        // journal rounds that may not be durable.
        self.writer = None;
    }
}

/// The durability context a fleet run executes under: an optional WAL
/// to append to, and an optional committed prefix to verify against
/// (resume). Both empty means a plain, non-durable run.
#[derive(Default)]
pub struct Durability {
    /// Journal for newly settled rounds.
    pub wal: Option<FleetWal>,
    /// Committed rounds to verify during re-execution, oldest first.
    /// While non-empty, settled rounds are checked against the front
    /// frame instead of being appended (they are already durable).
    pub resume: VecDeque<RoundFrame>,
}

impl Durability {
    /// A plain, non-durable run.
    pub fn none() -> Durability {
        Durability::default()
    }

    /// The WAL counters, if a WAL was attached.
    pub fn status(&self) -> Option<&WalStatus> {
        self.wal.as_ref().map(FleetWal::status)
    }
}

//! The crash-durability suite.
//!
//! The acceptance bar: a fleet run killed at **any byte** of its WAL
//! and resumed must produce output byte-identical to the uninterrupted
//! run — reports, counters, renders, and the WAL file itself — across
//! thread counts and with chaos on. And a WAL that stops accepting
//! writes (torn append, disk full, failed fsync) must degrade the run
//! to non-durable without changing a single output byte.

use std::collections::VecDeque;

use superpin::{FailPlan, Site, SiteMode};
use superpin_replay::fleet::{recover_fleet_wal, FleetRecipe};
use superpin_replay::json::first_report_difference;
use superpin_replay::wal::{salvage, FsyncPolicy, MemSink, WAL_FRAME_COMMIT, WAL_FRAME_OVERHEAD};
use superpin_serve::durable::{Durability, FleetWal};
use superpin_serve::{
    parse_jobs, run_service, run_service_durable, FleetConfig, JobFile, ServiceReport,
};

/// A compact two-tenant mix with a staggered arrival — enough rounds
/// to cut at interesting places, small enough to re-run dozens of
/// times.
fn mix() -> (String, JobFile) {
    let catalog = superpin_workloads::catalog();
    let (w0, w1) = (catalog[0].name, catalog[1].name);
    let text = format!(
        "tenant alpha weight=2\n\
         tenant beta weight=1\n\
         job tenant=alpha workload={w0} scale=tiny tool=icount2 arrive=0\n\
         job tenant=beta workload={w1} scale=tiny tool=branch arrive=1000\n\
         job tenant=alpha workload={w1} scale=tiny tool=icount1 arrive=3000\n"
    );
    let file = parse_jobs(&text).expect("suite spec parses");
    (text, file)
}

fn config(threads: usize, chaos: Option<FailPlan>) -> FleetConfig {
    FleetConfig {
        threads,
        slots: 2,
        fleet_budget: Some(1 << 20),
        chaos,
        spmsec: 1000,
    }
}

fn recipe(text: &str, cfg: &FleetConfig) -> FleetRecipe {
    FleetRecipe {
        spec_text: text.to_owned(),
        threads: cfg.threads as u32,
        slots: cfg.slots as u32,
        fleet_budget: cfg.fleet_budget,
        chaos: cfg.chaos,
        spmsec: cfg.spmsec,
    }
}

/// Asserts two runs are the same run, byte by byte where it counts.
fn assert_identical(a: &ServiceReport, b: &ServiceReport, what: &str) {
    assert_eq!(a.events, b.events, "{what}: decision traces differ");
    for (oa, ob) in a.outcomes.iter().zip(&b.outcomes) {
        let (ja, jb) = (oa.to_json(), ob.to_json());
        if let Some(field) = first_report_difference(&ja, &jb) {
            panic!("{what}: job {} report field `{field}` differs", oa.job);
        }
        assert_eq!(ja, jb, "{what}: job {} outcome bytes differ", oa.job);
    }
    assert_eq!(a.rounds, b.rounds, "{what}: round counts differ");
    assert_eq!(
        a.fleet_cycles, b.fleet_cycles,
        "{what}: fleet clocks differ"
    );
    assert_eq!(
        a.render_text(),
        b.render_text(),
        "{what}: text renders differ"
    );
    assert_eq!(a.jsonl(), b.jsonl(), "{what}: JSONL renders differ");
}

/// One uninterrupted durable run: report plus the complete WAL bytes.
fn baseline(text: &str, file: &JobFile, cfg: &FleetConfig) -> (ServiceReport, Vec<u8>) {
    let sink = MemSink::new();
    let wal = FleetWal::create(
        Box::new(sink.clone()),
        &recipe(text, cfg),
        FsyncPolicy::Off,
        cfg.chaos,
    )
    .expect("wal opens");
    let mut dur = Durability {
        wal: Some(wal),
        resume: VecDeque::new(),
    };
    let report = run_service_durable(file, cfg, &mut dur).expect("baseline runs");
    let status = dur.status().expect("wal attached");
    assert!(!status.degraded, "baseline WAL degraded: {status:?}");
    assert_eq!(status.rounds_committed, report.rounds);
    (report, sink.bytes())
}

/// Resumes from `prefix` (an arbitrary cut of the baseline WAL) and
/// asserts the continued run reproduces `expected` exactly — report
/// and final WAL bytes both.
fn resume_from(
    prefix: &[u8],
    file: &JobFile,
    cfg: &FleetConfig,
    expected: &ServiceReport,
    full_wal: &[u8],
    what: &str,
) {
    let rec = recover_fleet_wal(prefix).unwrap_or_else(|err| panic!("{what}: recover: {err}"));
    let rounds = rec.rounds.len() as u64;
    let sink = MemSink::from_bytes(prefix[..rec.committed_len].to_vec());
    let wal = FleetWal::resume(
        Box::new(sink.clone()),
        FsyncPolicy::Off,
        cfg.chaos,
        1 + 2 * rounds,
        rounds,
    );
    let mut dur = Durability {
        wal: Some(wal),
        resume: rec.rounds.into(),
    };
    let resumed = run_service_durable(file, cfg, &mut dur)
        .unwrap_or_else(|err| panic!("{what}: resume: {err}"));
    assert_identical(expected, &resumed, what);
    assert_eq!(
        sink.bytes(),
        full_wal,
        "{what}: resumed WAL bytes differ from the uninterrupted WAL"
    );
}

/// Every commit boundary of `wal`, as byte lengths a kill could leave
/// the file at.
fn commit_boundaries(wal: &[u8]) -> Vec<usize> {
    salvage(wal)
        .expect("baseline WAL scans")
        .frames
        .iter()
        .filter(|frame| frame.kind == WAL_FRAME_COMMIT)
        .map(|frame| frame.offset + frame.payload.len() + WAL_FRAME_OVERHEAD)
        .collect()
}

/// The kill-anywhere matrix body: cut the WAL at every commit
/// boundary (subsampled when the run is long) and at mid-frame
/// offsets around each, resume, and demand byte-identity.
fn kill_anywhere(threads: usize, chaos: Option<FailPlan>, what: &str) {
    let (text, file) = mix();
    let cfg = config(threads, chaos);
    let (expected, full) = baseline(&text, &file, &cfg);
    let boundaries = commit_boundaries(&full);
    assert!(
        boundaries.len() >= 2,
        "{what}: mix too small to cut meaningfully ({} commits)",
        boundaries.len()
    );
    // Every boundary when short, every k-th (plus first and last) when
    // long — each resume re-executes the whole run, so keep the matrix
    // honest but bounded.
    let stride = boundaries.len().div_ceil(8);
    let mut cuts: Vec<usize> = boundaries.iter().copied().step_by(stride).collect();
    cuts.push(*boundaries.last().expect("non-empty"));
    // A kill rarely lands exactly on a frame boundary: also cut inside
    // the commit frame (torn commit — its round must roll back) and
    // just past it (torn next record).
    for &boundary in &[boundaries[0], *boundaries.last().expect("non-empty")] {
        cuts.push(boundary - 3);
        if boundary + 5 < full.len() {
            cuts.push(boundary + 5);
        }
    }
    // And the complete file: resume of a finished run re-verifies and
    // re-emits without diverging.
    cuts.push(full.len());
    cuts.sort_unstable();
    cuts.dedup();
    for cut in cuts {
        resume_from(
            &full[..cut],
            &file,
            &cfg,
            &expected,
            &full,
            &format!("{what}: cut at byte {cut} of {}", full.len()),
        );
    }
}

#[test]
fn kill_anywhere_serial() {
    kill_anywhere(1, None, "serial");
}

#[test]
fn kill_anywhere_parallel() {
    kill_anywhere(4, None, "4 threads");
}

#[test]
fn kill_anywhere_under_chaos() {
    // Guest chaos on, host-I/O sites quiesced: the cut/resume matrix
    // must hold with tenants faulting on their own schedules.
    let chaos = FailPlan::new(3, 0.02)
        .with_site(Site::IoWalAppend, SiteMode::Off)
        .with_site(Site::IoWalFsync, SiteMode::Off)
        .with_site(Site::IoDiskFull, SiteMode::Off);
    kill_anywhere(1, Some(chaos), "chaos serial");
    kill_anywhere(4, Some(chaos), "chaos 4 threads");
}

#[test]
fn wal_never_changes_the_run() {
    // Attaching a WAL is pure observation: the report is byte-equal to
    // a plain run's.
    let (text, file) = mix();
    let cfg = config(2, None);
    let plain = run_service(&file, &cfg).expect("plain run");
    let (durable, _) = baseline(&text, &file, &cfg);
    assert_identical(&plain, &durable, "plain vs durable");
}

/// A WAL failure degrades durability, never the run: inject each I/O
/// fault class, demand the report stays byte-equal to the plain run
/// and the failure is counted — then salvage what was committed and
/// prove a resume from the degraded file still reproduces the run.
fn degradation_case(site: Site, mode: SiteMode, expect_fsync: bool, what: &str) {
    let (text, file) = mix();
    let cfg = config(1, None);
    let plain = run_service(&file, &cfg).expect("plain run");

    let wal_chaos = FailPlan::new(11, 0.0).with_site(site, mode);
    let sink = MemSink::new();
    let policy = FsyncPolicy::EveryCommit;
    let mut dur = Durability {
        wal: Some(
            FleetWal::create(
                Box::new(sink.clone()),
                &recipe(&text, &cfg),
                policy,
                Some(wal_chaos),
            )
            .expect("header precedes the armed fault"),
        ),
        resume: VecDeque::new(),
    };
    let report = run_service_durable(&file, &cfg, &mut dur).expect("degraded run completes");
    assert_identical(&plain, &report, what);
    let status = dur.status().expect("wal attached").clone();
    assert!(status.degraded, "{what}: fault did not degrade");
    if expect_fsync {
        assert_eq!(
            (status.append_failures, status.fsync_failures),
            (0, 1),
            "{what}: wrong failure class counted"
        );
    } else {
        assert_eq!(
            (status.append_failures, status.fsync_failures),
            (1, 0),
            "{what}: wrong failure class counted"
        );
    }
    assert!(
        status.rounds_committed < report.rounds,
        "{what}: degradation should cut journaling short"
    );

    // The torn/short file is still a valid salvage target, and a
    // resume from it (faults disarmed, as after replacing the disk)
    // reproduces the run.
    let bytes = sink.bytes();
    let rec = recover_fleet_wal(&bytes).unwrap_or_else(|err| panic!("{what}: recover: {err}"));
    // A failed *fsync* leaves the commit frame's bytes in place —
    // salvage may legitimately find one more committed round than the
    // writer acknowledged (the bytes might have reached disk anyway).
    assert!(
        rec.rounds.len() as u64 >= status.rounds_committed,
        "{what}: salvage lost acknowledged rounds"
    );
    let clean_cfg = cfg.clone();
    let resume_sink = MemSink::from_bytes(bytes[..rec.committed_len].to_vec());
    let rounds = rec.rounds.len() as u64;
    let mut dur = Durability {
        wal: Some(FleetWal::resume(
            Box::new(resume_sink),
            policy,
            None,
            1 + 2 * rounds,
            rounds,
        )),
        resume: rec.rounds.into(),
    };
    let resumed =
        run_service_durable(&file, &clean_cfg, &mut dur).expect("resume from degraded file");
    assert_identical(&plain, &resumed, &format!("{what}: resumed"));
    assert!(
        !dur.status().expect("wal attached").degraded,
        "{what}: resume with faults disarmed must stay durable"
    );
}

#[test]
fn torn_append_degrades_gracefully() {
    // 6th append = round 3's record frame (header, then record+commit
    // pairs, then commit frames also count as appends).
    degradation_case(Site::IoWalAppend, SiteMode::Nth(6), false, "torn append");
}

#[test]
fn disk_full_degrades_gracefully() {
    degradation_case(Site::IoDiskFull, SiteMode::Nth(6), false, "disk full");
}

#[test]
fn failed_fsync_degrades_gracefully() {
    degradation_case(Site::IoWalFsync, SiteMode::Nth(2), true, "failed fsync");
}

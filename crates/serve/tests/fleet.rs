//! The fleet determinism suite.
//!
//! The service-mode acceptance bar: with a fixed job-arrival schedule,
//! the per-job reports and the per-tenant fleet counters must be
//! **byte-identical** across `--threads {1, 2, 4}` — including under
//! chaos and under a tight fleet budget that forces the
//! eviction/deferral ladder. Plus the fairness floor: a low-weight
//! tenant still completes while a high-weight tenant floods the fleet.

use superpin::FailPlan;
use superpin_replay::json::first_report_difference;
use superpin_serve::{parse_jobs, run_service, FleetConfig, JobFile, ServiceReport};

fn workloads() -> (&'static str, &'static str) {
    let catalog = superpin_workloads::catalog();
    assert!(catalog.len() >= 2, "catalog too small for the suite");
    (catalog[0].name, catalog[1].name)
}

/// A fixed two-tenant mix with staggered arrivals — the suite's
/// standard schedule.
fn two_tenant_file() -> JobFile {
    let (w0, w1) = workloads();
    let text = format!(
        "tenant alpha weight=3\n\
         tenant beta weight=1\n\
         job tenant=alpha workload={w0} scale=tiny tool=icount2 arrive=0\n\
         job tenant=beta workload={w1} scale=tiny tool=icount1 arrive=0\n\
         job tenant=alpha workload={w1} scale=tiny tool=bblcount arrive=2000\n\
         job tenant=beta workload={w0} scale=tiny tool=branch arrive=4000\n\
         job tenant=alpha workload={w0} scale=tiny tool=mem arrive=4000\n"
    );
    parse_jobs(&text).expect("suite spec parses")
}

fn config(threads: usize, chaos: Option<FailPlan>, fleet_budget: Option<u64>) -> FleetConfig {
    FleetConfig {
        threads,
        slots: 2,
        fleet_budget,
        chaos,
        spmsec: 1000,
    }
}

/// Asserts two runs are the same run, field by field and byte by byte.
fn assert_identical(a: &ServiceReport, b: &ServiceReport, what: &str) {
    assert_eq!(a.events, b.events, "{what}: decision traces differ");
    assert_eq!(
        a.outcomes.len(),
        b.outcomes.len(),
        "{what}: job counts differ"
    );
    for (oa, ob) in a.outcomes.iter().zip(&b.outcomes) {
        let ja = oa.to_json();
        let jb = ob.to_json();
        // Field-by-field first for a readable failure, then the full
        // byte equality the CI diff asserts.
        if let Some(field) = first_report_difference(&ja, &jb) {
            panic!("{what}: job {} report field `{field}` differs", oa.job);
        }
        assert_eq!(ja, jb, "{what}: job {} outcome bytes differ", oa.job);
    }
    for (ta, tb) in a.tenants.iter().zip(&b.tenants) {
        assert_eq!(ta.name, tb.name, "{what}: tenant order differs");
        // Unscrubbed counters, every field.
        assert_eq!(
            (
                ta.counters.admitted,
                ta.counters.deferred,
                ta.counters.degraded,
                ta.counters.evicted,
                ta.completed,
            ),
            (
                tb.counters.admitted,
                tb.counters.deferred,
                tb.counters.degraded,
                tb.counters.evicted,
                tb.completed,
            ),
            "{what}: tenant {} counters differ",
            ta.name
        );
    }
    assert_eq!(a.rounds, b.rounds, "{what}: round counts differ");
    assert_eq!(
        a.fleet_cycles, b.fleet_cycles,
        "{what}: fleet clocks differ"
    );
    assert_eq!(
        a.render_text(),
        b.render_text(),
        "{what}: text renders differ"
    );
    assert_eq!(a.jsonl(), b.jsonl(), "{what}: JSONL renders differ");
}

fn run_across_threads(chaos: Option<FailPlan>, fleet_budget: Option<u64>, what: &str) {
    let file = two_tenant_file();
    let t1 = run_service(&file, &config(1, chaos, fleet_budget)).expect("t1");
    for threads in [2usize, 4] {
        let tn = run_service(&file, &config(threads, chaos, fleet_budget)).expect("tn");
        assert_identical(&t1, &tn, &format!("{what} t1-vs-t{threads}"));
    }
    // Sanity on the t1 run itself: every job completed and merged.
    assert_eq!(t1.outcomes.len(), file.jobs.len());
    for outcome in &t1.outcomes {
        assert!(outcome.report.total_cycles > 0);
        assert!(outcome.complete >= outcome.arrive);
    }
}

#[test]
fn plain_fleet_is_thread_invariant() {
    run_across_threads(None, None, "plain");
}

#[test]
fn chaotic_fleet_is_thread_invariant() {
    run_across_threads(Some(FailPlan::new(3, 0.02)), None, "chaos seed 3");
}

#[test]
fn tight_budget_fleet_is_thread_invariant() {
    run_across_threads(None, Some(64 << 10), "tight budget");
}

#[test]
fn tight_budget_actually_exercises_the_ladder() {
    let file = two_tenant_file();
    let report = run_service(&file, &config(1, None, Some(64 << 10))).expect("runs");
    let pressure: u64 = report
        .tenants
        .iter()
        .map(|t| t.counters.deferred + t.counters.degraded + t.counters.evicted)
        .sum();
    assert!(
        pressure > 0,
        "a 64 KiB fleet budget should defer, degrade, or evict at least once; \
         counters: {:?}",
        report
            .tenants
            .iter()
            .map(|t| (
                t.name.clone(),
                t.counters.deferred,
                t.counters.degraded,
                t.counters.evicted
            ))
            .collect::<Vec<_>>()
    );
    // Pressure must not break completion: every job still finishes.
    assert_eq!(report.outcomes.len(), file.jobs.len());
}

#[test]
fn chaos_domains_are_per_tenant() {
    // Adding a job for tenant beta must not change tenant alpha's
    // chaos schedule: alpha's reports are identical across the two
    // fleets because its fault domain derives from the tenant id, not
    // from fleet composition.
    let (w0, w1) = workloads();
    let base = format!(
        "tenant alpha weight=1\n\
         tenant beta weight=1\n\
         job tenant=alpha workload={w0} scale=tiny tool=icount2 arrive=0\n"
    );
    let extended =
        format!("{base}job tenant=beta workload={w1} scale=tiny tool=icount1 arrive=0\n");
    let chaos = Some(FailPlan::new(7, 0.05));
    let small = run_service(&parse_jobs(&base).expect("parses"), &config(1, chaos, None))
        .expect("small fleet");
    let big = run_service(
        &parse_jobs(&extended).expect("parses"),
        &config(1, chaos, None),
    )
    .expect("big fleet");
    let alpha_small = small.outcomes[0].to_json();
    let alpha_big = big.outcomes[0].to_json();
    // Scheduling times differ (beta shares rounds), but alpha's
    // *report* — everything the guest and its faults determine — must
    // not.
    assert_eq!(
        first_report_difference(&alpha_small, &alpha_big),
        None,
        "tenant alpha's report changed when tenant beta joined the fleet"
    );
}

#[test]
fn low_weight_tenant_is_not_starved() {
    let (w0, w1) = workloads();
    let text = format!(
        "tenant whale weight=100\n\
         tenant minnow weight=1\n\
         job tenant=whale workload={w0} scale=tiny tool=icount2 arrive=0\n\
         job tenant=whale workload={w1} scale=tiny tool=icount2 arrive=0\n\
         job tenant=whale workload={w0} scale=tiny tool=icount1 arrive=0\n\
         job tenant=whale workload={w1} scale=tiny tool=icount1 arrive=0\n\
         job tenant=minnow workload={w0} scale=tiny tool=icount2 arrive=0\n"
    );
    let file = parse_jobs(&text).expect("parses");
    let cfg = FleetConfig {
        threads: 1,
        slots: 1, // one job per round: contention is real
        fleet_budget: None,
        chaos: None,
        spmsec: 1000,
    };
    let report = run_service(&file, &cfg).expect("runs");
    // The guarantee is starvation-*freedom*, not priority: at a 100:1
    // weight ratio the whale's backlog drains first (that IS weighted
    // fairness), but the minnow's job still runs to completion with a
    // bounded turnaround.
    let minnow = report
        .outcomes
        .iter()
        .find(|o| o.tenant == "minnow")
        .expect("minnow's job completed despite a 100:1 weight deficit");
    assert!(minnow.turnaround > 0);
    assert!(minnow.complete <= report.fleet_cycles);
    let summary = report
        .tenants
        .iter()
        .find(|t| t.name == "minnow")
        .expect("minnow summary");
    assert_eq!(summary.completed, 1);
    assert_eq!(summary.counters.admitted, 1);
    // And the minnow was admitted immediately — weight shapes service
    // share, never queue entry.
    let admitted_at = report
        .events
        .iter()
        .find_map(|event| match *event {
            superpin_replay::FleetEvent::Admit {
                job: 4, fleet_now, ..
            } => Some(fleet_now),
            _ => None,
        })
        .expect("minnow admission logged");
    assert_eq!(admitted_at, 0);
}

#[test]
fn fleet_log_roundtrips_and_replays_across_thread_counts() {
    use superpin_replay::fleet::{diff_fleet, FleetLog, FleetRecipe};

    let (w0, w1) = workloads();
    let text = format!(
        "tenant alpha weight=2\n\
         tenant beta weight=1\n\
         job tenant=alpha workload={w0} scale=tiny tool=icount2 arrive=0\n\
         job tenant=beta workload={w1} scale=tiny tool=branch arrive=1000\n"
    );
    let file = parse_jobs(&text).expect("parses");
    let chaos = Some(FailPlan::new(3, 0.02));
    let recorded = run_service(&file, &config(1, chaos, Some(1 << 20))).expect("recording run");
    let log = FleetLog {
        recipe: FleetRecipe {
            spec_text: text,
            threads: 1,
            slots: 2,
            fleet_budget: Some(1 << 20),
            chaos,
            spmsec: 1000,
        },
        events: recorded.events.clone(),
        outcomes: recorded.outcomes.iter().map(|o| o.to_json()).collect(),
    };
    let decoded = FleetLog::decode(&log.encode()).expect("codec roundtrip");
    assert_eq!(decoded, log);

    // Replay from the decoded log alone, at a different thread count.
    let replay_file = parse_jobs(&decoded.recipe.spec_text).expect("recorded spec parses");
    let cfg = FleetConfig {
        threads: 4,
        slots: decoded.recipe.slots as usize,
        fleet_budget: decoded.recipe.fleet_budget,
        chaos: decoded.recipe.chaos,
        spmsec: decoded.recipe.spmsec,
    };
    let replayed = run_service(&replay_file, &cfg).expect("replay run");
    let outcomes: Vec<String> = replayed.outcomes.iter().map(|o| o.to_json()).collect();
    assert_eq!(
        diff_fleet(&decoded, &replayed.events, &outcomes),
        None,
        "replay at 4 threads diverged from the 1-thread recording"
    );
}

//! In-memory endpoints for the runner's [`RunRecorder`]/[`RunSource`]
//! traits: an [`EventSink`] that accumulates a recording, and an
//! [`EventStream`] that feeds a recorded stream back in order.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use superpin::{NondetEvent, RunRecorder, RunSource};

/// Collects the event stream of a recorded run.
///
/// Cloneable handle over shared storage: hand
/// [`recorder`](EventSink::recorder) to the runner (which consumes a
/// boxed recorder) and keep the sink to [`take`](EventSink::take) the
/// events after the run. All recording happens on the supervisor
/// thread; the mutex is uncontended.
#[derive(Clone, Debug, Default)]
pub struct EventSink {
    events: Arc<Mutex<Vec<NondetEvent>>>,
}

struct SinkRecorder {
    events: Arc<Mutex<Vec<NondetEvent>>>,
}

impl RunRecorder for SinkRecorder {
    fn record(&mut self, event: NondetEvent) {
        self.events.lock().expect("recorder mutex").push(event);
    }
}

impl EventSink {
    /// An empty sink.
    pub fn new() -> EventSink {
        EventSink::default()
    }

    /// A boxed recorder feeding this sink, for
    /// [`SuperPinRunner::set_recorder`](superpin::SuperPinRunner::set_recorder).
    pub fn recorder(&self) -> Box<dyn RunRecorder> {
        Box::new(SinkRecorder {
            events: Arc::clone(&self.events),
        })
    }

    /// Takes the recorded events, leaving the sink empty.
    pub fn take(&self) -> Vec<NondetEvent> {
        std::mem::take(&mut self.events.lock().expect("sink mutex"))
    }

    /// Events recorded so far.
    pub fn len(&self) -> usize {
        self.events.lock().expect("sink mutex").len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Feeds a recorded event stream back into a replaying run, in order.
#[derive(Debug)]
pub struct EventStream {
    events: VecDeque<NondetEvent>,
}

impl EventStream {
    /// Wraps a recorded stream.
    pub fn new(events: Vec<NondetEvent>) -> EventStream {
        EventStream {
            events: events.into(),
        }
    }

    /// Boxes the stream for
    /// [`SuperPinRunner::set_replay`](superpin::SuperPinRunner::set_replay).
    pub fn boxed(self) -> Box<dyn RunSource> {
        Box::new(self)
    }
}

impl RunSource for EventStream {
    fn next_event(&mut self) -> Option<NondetEvent> {
        self.events.pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sink_records_in_order_and_stream_replays_in_order() {
        let sink = EventSink::new();
        let mut recorder = sink.recorder();
        recorder.record(NondetEvent::EpochPlan { planned: 1 });
        recorder.record(NondetEvent::EpochPlan { planned: 2 });
        assert_eq!(sink.len(), 2);
        let events = sink.take();
        assert!(sink.is_empty());

        let mut stream = EventStream::new(events);
        assert_eq!(
            stream.next_event(),
            Some(NondetEvent::EpochPlan { planned: 1 })
        );
        assert_eq!(
            stream.next_event(),
            Some(NondetEvent::EpochPlan { planned: 2 })
        );
        assert_eq!(stream.next_event(), None);
    }
}

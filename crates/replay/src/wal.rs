//! The crash-durable write-ahead log container (`SPWAL`).
//!
//! The `.splog`/SPFL codecs assume a complete, well-formed file — fine
//! for artifacts written in one shot at run end, useless for a journal
//! that must survive being killed mid-write. This module is the
//! durable counterpart: a streaming frame container where every frame
//! carries its own CRC32 and an explicit commit marker, so a reader
//! can always find the longest durable prefix of a torn file.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! "SPWAL"              5-byte magic
//! version: u16         = 1
//! frame*               kind: u8, len: u32, payload[len], crc32: u32
//! ```
//!
//! The CRC covers `kind`, `len`, and the payload. Frame kinds: `0x01`
//! Header (format-specific, first), `0x02` Record (one journalled
//! unit), `0x03` Commit (a `u64` sequence number; everything up to and
//! including this frame is durable once it reaches disk), `0x04` End
//! (empty; the writer completed cleanly). A Record is *not* durable
//! until its Commit frame lands — the salvage reader discards a
//! trailing Record with no Commit, exactly like a database WAL
//! discards an unterminated transaction.
//!
//! Writing goes through [`WalWriter`], which appends frames
//! incrementally and applies the [`FsyncPolicy`] at commit markers.
//! The writer is also where the host-I/O fault sites live
//! (`io.wal.append`, `io.wal.fsync`, `io.disk.full`): an injected
//! append fault tears the frame mid-write — only a prefix reaches the
//! sink — so chaos runs exercise the exact failure the salvage reader
//! exists for.
//!
//! Reading goes through [`salvage`], which never hard-fails past the
//! preamble: it walks frames until the first torn or corrupt one and
//! reports exactly what was recovered ([`WalSalvage`]) — intact
//! frames, the last committed sequence number, the byte offset and
//! nature of the damage.

use std::path::Path;
use std::sync::{Arc, Mutex};

use superpin_fault::{FailPlan, FailpointRegistry, Site};

use crate::wire::{put_u32, put_u64, put_u8, CodecError};

/// WAL magic bytes.
pub const WAL_MAGIC: &[u8; 5] = b"SPWAL";
/// Current WAL format version.
pub const WAL_VERSION: u16 = 1;

/// Frame kind: format-specific header, must come first.
pub const WAL_FRAME_HEADER: u8 = 0x01;
/// Frame kind: one journalled record.
pub const WAL_FRAME_RECORD: u8 = 0x02;
/// Frame kind: commit marker (`u64` sequence number payload).
pub const WAL_FRAME_COMMIT: u8 = 0x03;
/// Frame kind: clean end of log (empty payload).
pub const WAL_FRAME_END: u8 = 0x04;

/// Bytes before the first frame (magic + version).
pub const WAL_PREAMBLE_LEN: usize = 7;

/// Per-frame overhead: kind (1) + length (4) + CRC (4).
pub const WAL_FRAME_OVERHEAD: usize = 9;

const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut index = 0;
    while index < 256 {
        let mut crc = index as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[index] = crc;
        index += 1;
    }
    table
};

/// IEEE CRC-32 (the zlib/PNG polynomial) over `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = u32::MAX;
    for &byte in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ u32::from(byte)) & 0xFF) as usize];
    }
    !crc
}

/// Appends one whole frame — kind, length, payload, CRC over the
/// preceding three — to `out`.
fn encode_frame(out: &mut Vec<u8>, kind: u8, payload: &[u8]) {
    let start = out.len();
    put_u8(out, kind);
    put_u32(
        out,
        u32::try_from(payload.len()).expect("frame under 4 GiB"),
    );
    out.extend_from_slice(payload);
    let crc = crc32(&out[start..]);
    put_u32(out, crc);
}

/// When the writer flushes commits to stable storage.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// fsync after every commit marker (strongest durability).
    EveryCommit,
    /// fsync after every N commit markers.
    EveryN(u32),
    /// Never fsync mid-run (the OS flushes when it likes); the clean
    /// end-of-log still syncs.
    Off,
}

impl FsyncPolicy {
    /// Parses the CLI spelling: `commit`, `off`, or `every=N` (N ≥ 1).
    pub fn parse(text: &str) -> Option<FsyncPolicy> {
        match text {
            "commit" => Some(FsyncPolicy::EveryCommit),
            "off" => Some(FsyncPolicy::Off),
            _ => text
                .strip_prefix("every=")
                .and_then(|n| n.parse().ok())
                .filter(|&n| n > 0)
                .map(FsyncPolicy::EveryN),
        }
    }
}

impl std::fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsyncPolicy::EveryCommit => write!(f, "commit"),
            FsyncPolicy::EveryN(n) => write!(f, "every={n}"),
            FsyncPolicy::Off => write!(f, "off"),
        }
    }
}

/// Which WAL operation failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WalOp {
    /// Appending a frame.
    Append,
    /// Flushing commits to stable storage.
    Fsync,
}

/// Why a WAL operation failed.
#[derive(Debug)]
pub enum WalCause {
    /// A chaos fault site fired (deterministic injection).
    Injected(Site),
    /// A real host I/O error.
    Io(std::io::Error),
}

/// A WAL write failed. Carries enough to count and describe the
/// failure; callers degrade to non-durable rather than aborting.
#[derive(Debug)]
pub struct WalIoError {
    /// The operation that failed.
    pub op: WalOp,
    /// Frame index (appends) or commit index (fsyncs) at the failure.
    pub at: u64,
    /// Injected fault or real I/O error.
    pub cause: WalCause,
}

impl std::fmt::Display for WalIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (op, unit) = match self.op {
            WalOp::Append => ("append", "frame"),
            WalOp::Fsync => ("fsync", "commit"),
        };
        match &self.cause {
            WalCause::Injected(site) => {
                write!(f, "wal {op} at {unit} {}: injected {site} fault", self.at)
            }
            WalCause::Io(err) => write!(f, "wal {op} at {unit} {}: {err}", self.at),
        }
    }
}

impl std::error::Error for WalIoError {}

/// Where WAL bytes go. `std::fs::File` is the real sink; [`MemSink`]
/// backs the in-process kill-anywhere tests.
pub trait WalSink: Send {
    /// Appends `bytes` at the end of the log.
    fn write_all(&mut self, bytes: &[u8]) -> std::io::Result<()>;
    /// Flushes everything appended so far to stable storage.
    fn sync(&mut self) -> std::io::Result<()>;
}

impl WalSink for std::fs::File {
    fn write_all(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        std::io::Write::write_all(self, bytes)
    }

    fn sync(&mut self) -> std::io::Result<()> {
        self.sync_data()
    }
}

/// A shared in-memory sink: clone it, hand one clone to the writer,
/// and read the accumulated bytes from the other — the moral
/// equivalent of re-reading the file after a kill.
#[derive(Clone, Debug, Default)]
pub struct MemSink {
    buf: Arc<Mutex<Vec<u8>>>,
}

impl MemSink {
    /// An empty sink.
    pub fn new() -> MemSink {
        MemSink::default()
    }

    /// A sink pre-loaded with `bytes` (resuming an existing log).
    pub fn from_bytes(bytes: Vec<u8>) -> MemSink {
        MemSink {
            buf: Arc::new(Mutex::new(bytes)),
        }
    }

    /// A snapshot of everything written so far.
    pub fn bytes(&self) -> Vec<u8> {
        self.buf.lock().expect("wal buffer lock").clone()
    }
}

impl WalSink for MemSink {
    fn write_all(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.buf
            .lock()
            .expect("wal buffer lock")
            .extend_from_slice(bytes);
        Ok(())
    }

    fn sync(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Streaming WAL writer: appends CRC-framed records incrementally and
/// applies the fsync policy at commit markers.
pub struct WalWriter {
    sink: Box<dyn WalSink>,
    policy: FsyncPolicy,
    chaos: Option<FailpointRegistry>,
    frames: u64,
    commits: u64,
    syncs: u64,
    commits_since_sync: u32,
}

impl WalWriter {
    /// Opens a fresh log on `sink`: writes the magic and version, arms
    /// the host-I/O fault sites from `chaos` (if any).
    ///
    /// # Errors
    ///
    /// [`WalIoError`] if the preamble cannot be written.
    pub fn create(
        sink: Box<dyn WalSink>,
        policy: FsyncPolicy,
        chaos: Option<FailPlan>,
    ) -> Result<WalWriter, WalIoError> {
        let mut writer = WalWriter::resume(sink, policy, chaos, 0, 0);
        let mut preamble = Vec::with_capacity(WAL_PREAMBLE_LEN);
        preamble.extend_from_slice(WAL_MAGIC);
        preamble.extend_from_slice(&WAL_VERSION.to_le_bytes());
        writer.sink.write_all(&preamble).map_err(|err| WalIoError {
            op: WalOp::Append,
            at: 0,
            cause: WalCause::Io(err),
        })?;
        Ok(writer)
    }

    /// Continues an existing log whose sink is already positioned past
    /// the durable prefix. `frames` and `commits` prime the counters so
    /// fault-site keys continue where the interrupted process left off
    /// (rate-mode chaos schedules stay identical to an uninterrupted
    /// run).
    pub fn resume(
        sink: Box<dyn WalSink>,
        policy: FsyncPolicy,
        chaos: Option<FailPlan>,
        frames: u64,
        commits: u64,
    ) -> WalWriter {
        WalWriter {
            sink,
            policy,
            chaos: chaos.map(FailpointRegistry::new),
            frames,
            commits,
            syncs: 0,
            commits_since_sync: 0,
        }
    }

    /// Frames appended so far (header and commits included).
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Commit markers appended so far.
    pub fn commits(&self) -> u64 {
        self.commits
    }

    /// fsyncs performed so far.
    pub fn syncs(&self) -> u64 {
        self.syncs
    }

    /// Appends one CRC-framed record.
    ///
    /// # Errors
    ///
    /// [`WalIoError`] on a real write failure or an injected
    /// `io.disk.full` (nothing written) / `io.wal.append` (a torn
    /// prefix of the frame reaches the sink) fault.
    pub fn append(&mut self, kind: u8, payload: &[u8]) -> Result<(), WalIoError> {
        let frame = self.frames;
        let mut bytes = Vec::with_capacity(payload.len() + WAL_FRAME_OVERHEAD);
        encode_frame(&mut bytes, kind, payload);
        if let Some(registry) = &self.chaos {
            if registry.fire(Site::IoDiskFull, frame) {
                return Err(WalIoError {
                    op: WalOp::Append,
                    at: frame,
                    cause: WalCause::Injected(Site::IoDiskFull),
                });
            }
            if registry.fire(Site::IoWalAppend, frame) {
                // A torn write: only a strict prefix reaches the sink.
                let _ = self.sink.write_all(&bytes[..bytes.len() / 2]);
                return Err(WalIoError {
                    op: WalOp::Append,
                    at: frame,
                    cause: WalCause::Injected(Site::IoWalAppend),
                });
            }
        }
        self.sink.write_all(&bytes).map_err(|err| WalIoError {
            op: WalOp::Append,
            at: frame,
            cause: WalCause::Io(err),
        })?;
        self.frames += 1;
        Ok(())
    }

    /// Appends a commit marker for sequence number `seq` and applies
    /// the fsync policy.
    ///
    /// # Errors
    ///
    /// [`WalIoError`] if the append or the policy-due fsync fails.
    pub fn commit(&mut self, seq: u64) -> Result<(), WalIoError> {
        let mut payload = Vec::with_capacity(8);
        put_u64(&mut payload, seq);
        self.append(WAL_FRAME_COMMIT, &payload)?;
        self.commits += 1;
        self.after_commit()
    }

    /// Appends one CRC-framed record *and* its commit marker for `seq`
    /// in a single sink write, then applies the fsync policy. Byte-for-
    /// byte and fault-key-for-fault-key equivalent to [`Self::append`]
    /// followed by [`Self::commit`] — the only difference is that the
    /// happy path costs one syscall per round instead of two, which is
    /// what keeps the bench's WAL-overhead guard comfortably slack.
    ///
    /// # Errors
    ///
    /// [`WalIoError`] exactly as the split calls would report it: an
    /// injected fault on the record frame leaves the sink as `append`
    /// would (nothing, or a torn record prefix); a fault on the commit
    /// frame lands after the whole record frame is in the sink.
    pub fn append_committed(
        &mut self,
        kind: u8,
        payload: &[u8],
        seq: u64,
    ) -> Result<(), WalIoError> {
        let record_frame = self.frames;
        let mut bytes = Vec::with_capacity(payload.len() + 8 + 2 * WAL_FRAME_OVERHEAD);
        encode_frame(&mut bytes, kind, payload);
        let record_len = bytes.len();
        let mut commit_payload = Vec::with_capacity(8);
        put_u64(&mut commit_payload, seq);
        encode_frame(&mut bytes, WAL_FRAME_COMMIT, &commit_payload);
        if let Some(registry) = &self.chaos {
            // Evaluation order and keys mirror append(record) then
            // append(commit): each frame checks disk-full then torn-
            // append, keyed by its own frame number, so Nth and rate
            // schedules are indistinguishable from the split path.
            if registry.fire(Site::IoDiskFull, record_frame) {
                return Err(WalIoError {
                    op: WalOp::Append,
                    at: record_frame,
                    cause: WalCause::Injected(Site::IoDiskFull),
                });
            }
            if registry.fire(Site::IoWalAppend, record_frame) {
                let _ = self.sink.write_all(&bytes[..record_len / 2]);
                return Err(WalIoError {
                    op: WalOp::Append,
                    at: record_frame,
                    cause: WalCause::Injected(Site::IoWalAppend),
                });
            }
            if registry.fire(Site::IoDiskFull, record_frame + 1) {
                let _ = self.sink.write_all(&bytes[..record_len]);
                self.frames += 1;
                return Err(WalIoError {
                    op: WalOp::Append,
                    at: record_frame + 1,
                    cause: WalCause::Injected(Site::IoDiskFull),
                });
            }
            if registry.fire(Site::IoWalAppend, record_frame + 1) {
                let torn = record_len + (bytes.len() - record_len) / 2;
                let _ = self.sink.write_all(&bytes[..torn]);
                self.frames += 1;
                return Err(WalIoError {
                    op: WalOp::Append,
                    at: record_frame + 1,
                    cause: WalCause::Injected(Site::IoWalAppend),
                });
            }
        }
        self.sink.write_all(&bytes).map_err(|err| WalIoError {
            op: WalOp::Append,
            at: record_frame,
            cause: WalCause::Io(err),
        })?;
        self.frames += 2;
        self.commits += 1;
        self.after_commit()
    }

    /// The fsync-policy step shared by [`Self::commit`] and
    /// [`Self::append_committed`].
    fn after_commit(&mut self) -> Result<(), WalIoError> {
        let due = match self.policy {
            FsyncPolicy::EveryCommit => true,
            FsyncPolicy::EveryN(n) => {
                self.commits_since_sync += 1;
                if self.commits_since_sync >= n {
                    self.commits_since_sync = 0;
                    true
                } else {
                    false
                }
            }
            FsyncPolicy::Off => false,
        };
        if due {
            self.fsync()?;
        }
        Ok(())
    }

    /// Appends the clean end-of-log frame and syncs unconditionally.
    ///
    /// # Errors
    ///
    /// [`WalIoError`] if the append or final fsync fails.
    pub fn end(&mut self) -> Result<(), WalIoError> {
        self.append(WAL_FRAME_END, &[])?;
        self.fsync()
    }

    fn fsync(&mut self) -> Result<(), WalIoError> {
        let commit = self.commits;
        if let Some(registry) = &self.chaos {
            if registry.fire(Site::IoWalFsync, commit) {
                return Err(WalIoError {
                    op: WalOp::Fsync,
                    at: commit,
                    cause: WalCause::Injected(Site::IoWalFsync),
                });
            }
        }
        self.sink.sync().map_err(|err| WalIoError {
            op: WalOp::Fsync,
            at: commit,
            cause: WalCause::Io(err),
        })?;
        self.syncs += 1;
        Ok(())
    }
}

/// Where and how a framed log stops being readable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameDamage {
    /// The file ends mid-frame — the classic kill-mid-write tear.
    Torn {
        /// Byte offset of the torn frame's first byte.
        offset: usize,
    },
    /// A frame is structurally wrong (CRC mismatch, unknown kind,
    /// bytes after the end frame).
    Corrupt {
        /// Byte offset of the offending frame.
        offset: usize,
        /// Human-readable description.
        detail: String,
    },
}

impl std::fmt::Display for FrameDamage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameDamage::Torn { offset } => {
                write!(f, "torn frame at byte {offset} (file ends mid-frame)")
            }
            FrameDamage::Corrupt { offset, detail } => {
                write!(f, "corrupt at byte {offset}: {detail}")
            }
        }
    }
}

/// One intact frame the salvage walk recovered.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalFrame {
    /// Frame kind byte.
    pub kind: u8,
    /// Frame payload.
    pub payload: Vec<u8>,
    /// Byte offset of the frame's first byte in the log.
    pub offset: usize,
}

/// Everything a salvage walk recovered from a (possibly damaged) WAL.
#[derive(Clone, Debug)]
pub struct WalSalvage {
    /// Every intact frame, in log order, up to the first damage.
    pub frames: Vec<WalFrame>,
    /// Sequence number of the last intact commit marker.
    pub last_committed: Option<u64>,
    /// Number of intact commit markers.
    pub commits: u64,
    /// Byte offset just past the last intact commit marker (the
    /// durable prefix — truncate here before resuming). Equals the
    /// preamble length when nothing committed.
    pub committed_len: usize,
    /// Byte offset just past the last intact frame of any kind.
    pub valid_len: usize,
    /// The first damage found, if any.
    pub damage: Option<FrameDamage>,
    /// The log ends with a clean end frame and no trailing bytes.
    pub clean_end: bool,
}

/// Walks a WAL byte stream frame by frame, stopping at the first torn
/// or corrupt frame instead of hard-failing. Never panics on arbitrary
/// input.
///
/// # Errors
///
/// [`CodecError::BadHeader`] only when the preamble itself is unusable
/// (wrong magic, unknown version, or shorter than the preamble) —
/// there is nothing to salvage without it.
pub fn salvage(bytes: &[u8]) -> Result<WalSalvage, CodecError> {
    if bytes.len() < WAL_PREAMBLE_LEN {
        return Err(CodecError::BadHeader {
            detail: format!(
                "{} bytes is shorter than the {WAL_PREAMBLE_LEN}-byte WAL preamble",
                bytes.len()
            ),
        });
    }
    if &bytes[..5] != WAL_MAGIC {
        return Err(CodecError::BadHeader {
            detail: format!("magic {:?} is not SPWAL", &bytes[..5]),
        });
    }
    let version = u16::from_le_bytes([bytes[5], bytes[6]]);
    if version != WAL_VERSION {
        return Err(CodecError::BadHeader {
            detail: format!("WAL version {version}, this build reads {WAL_VERSION}"),
        });
    }

    let mut out = WalSalvage {
        frames: Vec::new(),
        last_committed: None,
        commits: 0,
        committed_len: WAL_PREAMBLE_LEN,
        valid_len: WAL_PREAMBLE_LEN,
        damage: None,
        clean_end: false,
    };
    let mut pos = WAL_PREAMBLE_LEN;
    let mut ended = false;
    while pos < bytes.len() {
        if ended {
            out.damage = Some(FrameDamage::Corrupt {
                offset: pos,
                detail: "bytes after the end frame".to_owned(),
            });
            break;
        }
        let remaining = bytes.len() - pos;
        if remaining < WAL_FRAME_OVERHEAD {
            out.damage = Some(FrameDamage::Torn { offset: pos });
            break;
        }
        let kind = bytes[pos];
        if !(WAL_FRAME_HEADER..=WAL_FRAME_END).contains(&kind) {
            out.damage = Some(FrameDamage::Corrupt {
                offset: pos,
                detail: format!("unknown frame kind 0x{kind:02x}"),
            });
            break;
        }
        let len = u32::from_le_bytes([
            bytes[pos + 1],
            bytes[pos + 2],
            bytes[pos + 3],
            bytes[pos + 4],
        ]) as usize;
        let Some(total) = len.checked_add(WAL_FRAME_OVERHEAD) else {
            out.damage = Some(FrameDamage::Corrupt {
                offset: pos,
                detail: format!("frame length {len} overflows"),
            });
            break;
        };
        if remaining < total {
            out.damage = Some(FrameDamage::Torn { offset: pos });
            break;
        }
        let body_end = pos + 5 + len;
        let stored = u32::from_le_bytes([
            bytes[body_end],
            bytes[body_end + 1],
            bytes[body_end + 2],
            bytes[body_end + 3],
        ]);
        if crc32(&bytes[pos..body_end]) != stored {
            out.damage = Some(FrameDamage::Corrupt {
                offset: pos,
                detail: "frame CRC mismatch".to_owned(),
            });
            break;
        }
        let payload = bytes[pos + 5..body_end].to_vec();
        if kind == WAL_FRAME_COMMIT {
            if payload.len() != 8 {
                out.damage = Some(FrameDamage::Corrupt {
                    offset: pos,
                    detail: format!("commit frame payload is {} bytes, not 8", payload.len()),
                });
                break;
            }
            let mut raw = [0u8; 8];
            raw.copy_from_slice(&payload);
            out.last_committed = Some(u64::from_le_bytes(raw));
            out.commits += 1;
            out.committed_len = pos + total;
        }
        if kind == WAL_FRAME_END {
            ended = true;
        }
        out.frames.push(WalFrame {
            kind,
            payload,
            offset: pos,
        });
        pos += total;
        out.valid_len = pos;
    }
    out.clean_end = ended && out.damage.is_none() && pos == bytes.len();
    Ok(out)
}

/// Writes `bytes` to `path` atomically: everything lands in a
/// temporary sibling first, which is fsynced and then renamed over the
/// target — a crash at any point leaves either the old file or the new
/// one, never a half-written hybrid.
///
/// # Errors
///
/// Any underlying I/O error (the temporary file is removed on
/// failure where possible).
pub fn atomic_write(path: impl AsRef<Path>, bytes: &[u8]) -> std::io::Result<()> {
    let path = path.as_ref();
    let mut tmp_name = path.as_os_str().to_owned();
    tmp_name.push(format!(".tmp.{}", std::process::id()));
    let tmp = std::path::PathBuf::from(tmp_name);
    let result = (|| {
        let mut file = std::fs::File::create(&tmp)?;
        std::io::Write::write_all(&mut file, bytes)?;
        file.sync_data()?;
        drop(file);
        std::fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use superpin_fault::SiteMode;

    #[test]
    fn crc32_matches_known_vectors() {
        // The standard IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn fsync_policy_parses_and_renders() {
        assert_eq!(FsyncPolicy::parse("commit"), Some(FsyncPolicy::EveryCommit));
        assert_eq!(FsyncPolicy::parse("off"), Some(FsyncPolicy::Off));
        assert_eq!(FsyncPolicy::parse("every=8"), Some(FsyncPolicy::EveryN(8)));
        assert_eq!(FsyncPolicy::parse("every=0"), None);
        assert_eq!(FsyncPolicy::parse("sometimes"), None);
        for policy in [
            FsyncPolicy::EveryCommit,
            FsyncPolicy::EveryN(3),
            FsyncPolicy::Off,
        ] {
            assert_eq!(FsyncPolicy::parse(&policy.to_string()), Some(policy));
        }
    }

    fn write_sample(policy: FsyncPolicy) -> (MemSink, WalWriter) {
        let sink = MemSink::new();
        let mut writer =
            WalWriter::create(Box::new(sink.clone()), policy, None).expect("preamble writes");
        writer.append(WAL_FRAME_HEADER, b"recipe").expect("header");
        for round in 1..=3u64 {
            writer
                .append(WAL_FRAME_RECORD, format!("round-{round}").as_bytes())
                .expect("record");
            writer.commit(round).expect("commit");
        }
        (sink, writer)
    }

    #[test]
    fn writer_and_salvage_round_trip() {
        let (sink, mut writer) = write_sample(FsyncPolicy::Off);
        writer.end().expect("end");
        let bytes = sink.bytes();
        let salvaged = salvage(&bytes).expect("preamble ok");
        assert!(salvaged.clean_end);
        assert_eq!(salvaged.damage, None);
        assert_eq!(salvaged.commits, 3);
        assert_eq!(salvaged.last_committed, Some(3));
        assert_eq!(salvaged.valid_len, bytes.len());
        // header + 3 × (record + commit) + end
        assert_eq!(salvaged.frames.len(), 8);
        assert_eq!(salvaged.frames[0].payload, b"recipe");
        // The committed prefix excludes the end frame.
        assert!(salvaged.committed_len < salvaged.valid_len);
    }

    #[test]
    fn fsync_policy_controls_sync_count() {
        let (_, writer) = write_sample(FsyncPolicy::EveryCommit);
        assert_eq!(writer.syncs(), 3);
        let (_, writer) = write_sample(FsyncPolicy::EveryN(2));
        assert_eq!(writer.syncs(), 1);
        let (_, writer) = write_sample(FsyncPolicy::Off);
        assert_eq!(writer.syncs(), 0);
        // end() always syncs.
        let (_, mut writer) = write_sample(FsyncPolicy::Off);
        writer.end().expect("end");
        assert_eq!(writer.syncs(), 1);
    }

    #[test]
    fn salvage_truncation_at_every_offset_never_panics() {
        let (sink, mut writer) = write_sample(FsyncPolicy::Off);
        writer.end().expect("end");
        let bytes = sink.bytes();
        for len in 0..bytes.len() {
            let cut = &bytes[..len];
            match salvage(cut) {
                Ok(salvaged) => {
                    assert!(salvaged.valid_len <= len);
                    assert!(salvaged.committed_len <= salvaged.valid_len);
                    // A cut that is not exactly a frame boundary tears.
                    if salvaged.valid_len < len {
                        assert!(matches!(salvaged.damage, Some(FrameDamage::Torn { .. })));
                    }
                }
                Err(CodecError::BadHeader { .. }) => assert!(len < WAL_PREAMBLE_LEN),
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
    }

    #[test]
    fn salvage_reports_corruption_offset() {
        let (sink, mut writer) = write_sample(FsyncPolicy::Off);
        writer.end().expect("end");
        let full = salvage(&sink.bytes()).expect("clean");
        // Flip one payload byte in the second record frame: everything
        // before it salvages, the damage names its offset.
        let victim = full
            .frames
            .iter()
            .filter(|f| f.kind == WAL_FRAME_RECORD)
            .nth(1)
            .expect("two records")
            .clone();
        let mut bytes = sink.bytes();
        bytes[victim.offset + 6] ^= 0xFF;
        let salvaged = salvage(&bytes).expect("preamble ok");
        assert_eq!(
            salvaged.damage,
            Some(FrameDamage::Corrupt {
                offset: victim.offset,
                detail: "frame CRC mismatch".to_owned(),
            })
        );
        assert_eq!(salvaged.valid_len, victim.offset);
        assert_eq!(salvaged.commits, 1);
        assert_eq!(salvaged.last_committed, Some(1));
    }

    #[test]
    fn injected_append_fault_tears_the_frame() {
        let plan = FailPlan::new(1, 0.0).with_site(Site::IoWalAppend, SiteMode::Nth(4));
        let sink = MemSink::new();
        let mut writer = WalWriter::create(Box::new(sink.clone()), FsyncPolicy::Off, Some(plan))
            .expect("create");
        writer.append(WAL_FRAME_HEADER, b"recipe").expect("header");
        writer.append(WAL_FRAME_RECORD, b"round-1").expect("r1");
        writer.commit(1).expect("c1");
        let before = sink.bytes().len();
        let err = writer
            .append(WAL_FRAME_RECORD, b"round-2")
            .expect_err("nth(4) fires on the fourth append");
        assert_eq!(err.op, WalOp::Append);
        assert!(matches!(err.cause, WalCause::Injected(Site::IoWalAppend)));
        let bytes = sink.bytes();
        assert!(bytes.len() > before, "a torn prefix reached the sink");
        let salvaged = salvage(&bytes).expect("preamble ok");
        assert!(matches!(salvaged.damage, Some(FrameDamage::Torn { .. })));
        assert_eq!(salvaged.commits, 1);
        assert_eq!(salvaged.committed_len, before);
    }

    #[test]
    fn injected_disk_full_is_a_clean_boundary() {
        let plan = FailPlan::new(1, 0.0).with_site(Site::IoDiskFull, SiteMode::Nth(3));
        let sink = MemSink::new();
        let mut writer = WalWriter::create(Box::new(sink.clone()), FsyncPolicy::Off, Some(plan))
            .expect("create");
        writer.append(WAL_FRAME_HEADER, b"recipe").expect("header");
        writer.append(WAL_FRAME_RECORD, b"round-1").expect("r1");
        let before = sink.bytes().len();
        let err = writer.commit(1).expect_err("disk full on the third append");
        assert!(matches!(err.cause, WalCause::Injected(Site::IoDiskFull)));
        let bytes = sink.bytes();
        assert_eq!(bytes.len(), before, "nothing written on disk-full");
        let salvaged = salvage(&bytes).expect("preamble ok");
        assert_eq!(salvaged.damage, None, "disk-full leaves a clean boundary");
    }

    #[test]
    fn injected_fsync_fault_surfaces() {
        let plan = FailPlan::new(1, 0.0).with_site(Site::IoWalFsync, SiteMode::Always);
        let sink = MemSink::new();
        let mut writer =
            WalWriter::create(Box::new(sink.clone()), FsyncPolicy::EveryCommit, Some(plan))
                .expect("create");
        writer.append(WAL_FRAME_RECORD, b"round-1").expect("r1");
        let err = writer.commit(1).expect_err("fsync fails");
        assert_eq!(err.op, WalOp::Fsync);
        // The frames themselves landed; only durability is in doubt.
        let salvaged = salvage(&sink.bytes()).expect("preamble ok");
        assert_eq!(salvaged.commits, 1);
    }

    #[test]
    fn atomic_write_replaces_whole_file() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("superpin-wal-test-{}.txt", std::process::id()));
        atomic_write(&path, b"first").expect("write");
        assert_eq!(std::fs::read(&path).expect("read"), b"first");
        atomic_write(&path, b"second, longer contents").expect("rewrite");
        assert_eq!(
            std::fs::read(&path).expect("read"),
            b"second, longer contents"
        );
        std::fs::remove_file(&path).expect("cleanup");
    }
}

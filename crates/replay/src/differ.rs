//! Divergence diffing: lockstep replay of two runs with an epoch-barrier
//! state comparison that bisects the first divergence to an instruction
//! range.
//!
//! Both runs execute serially (`step_serial`), one epoch at a time, and
//! after every barrier their [`RunProbe`]s are compared component by
//! component: the schedule (virtual time, epoch count, exit state)
//! first, then the master's architectural state, then every live
//! slice, then the merged slice reports. The first mismatch is reported
//! with the quantum window and master instruction range since the last
//! *identical* barrier — the tightest bracket the epoch structure
//! offers — plus the register and memory deltas at the diverging
//! component. A run that refuses its own log ([`SpError::ReplayDivergence`])
//! is itself a divergence, attributed to the side that threw.

use crate::drive::{build_runner, ReplayError};
use crate::log::ReplayLog;
use crate::recipe::RunRecipe;
use std::fmt;
use superpin::{RunProbe, SpError, SuperPinRunner, SuperTool};
use superpin_isa::Reg;

/// One register's disagreement between the two runs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RegDelta {
    /// Register name (`r5`, `sp`, …).
    pub reg: String,
    /// Value in run A.
    pub a: u64,
    /// Value in run B.
    pub b: u64,
}

/// Where and how two runs first disagreed.
#[derive(Clone, Debug, PartialEq)]
pub struct DivergenceReport {
    /// Epochs completed when the divergence surfaced (the diverging
    /// barrier is the end of epoch `epoch`).
    pub epoch: u64,
    /// Quantum window `[from, to)` bracketing the divergence: the last
    /// identical barrier's quantum index to the diverging barrier's.
    pub quantum_window: (u64, u64),
    /// Which component diverged first: `"schedule"`, `"master"`,
    /// `"slice"`, `"merged"`, or a replay-refusal context.
    pub component: String,
    /// The diverging slice number, for slice-scoped components.
    pub slice: Option<u32>,
    /// Guest pc in run A and run B at the diverging component.
    pub pc: (u64, u64),
    /// Master instruction range `[from, to]` bracketing the divergence
    /// (instructions retired at the last identical barrier and at the
    /// diverging barrier, whichever run retired more).
    pub inst_range: (u64, u64),
    /// Registers that disagree at the diverging component.
    pub reg_deltas: Vec<RegDelta>,
    /// Guest-memory digests of the diverging component in each run.
    pub mem_digests: (u64, u64),
    /// Human-readable description of the mismatch.
    pub detail: String,
}

impl fmt::Display for DivergenceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "first divergence at epoch {}, quanta {}..{} ({} component",
            self.epoch, self.quantum_window.0, self.quantum_window.1, self.component
        )?;
        if let Some(slice) = self.slice {
            write!(f, ", slice {slice}")?;
        }
        writeln!(f, ")")?;
        writeln!(
            f,
            "  pc: {:#x} vs {:#x}; master insts {}..{}",
            self.pc.0, self.pc.1, self.inst_range.0, self.inst_range.1
        )?;
        if self.mem_digests.0 != self.mem_digests.1 {
            writeln!(
                f,
                "  mem digest: {:#018x} vs {:#018x}",
                self.mem_digests.0, self.mem_digests.1
            )?;
        }
        for delta in &self.reg_deltas {
            writeln!(f, "  {}: {:#x} vs {:#x}", delta.reg, delta.a, delta.b)?;
        }
        write!(f, "  {}", self.detail)
    }
}

/// Result of a lockstep diff.
#[derive(Clone, Debug, PartialEq)]
pub enum DiffOutcome {
    /// Every barrier compared equal through run end.
    Identical {
        /// Epochs both runs executed.
        epochs: u64,
    },
    /// The runs disagree; here is the first place they do.
    Diverged(Box<DivergenceReport>),
}

fn reg_deltas(a: &[u64], b: &[u64]) -> Vec<RegDelta> {
    a.iter()
        .zip(b)
        .enumerate()
        .filter(|(_, (va, vb))| va != vb)
        .map(|(i, (va, vb))| RegDelta {
            reg: Reg::try_new(i as u8).map_or_else(|| format!("r{i}"), |r| r.to_string()),
            a: *va,
            b: *vb,
        })
        .collect()
}

/// Compares two barrier probes; `prev` is the last identical pair (for
/// the quantum/instruction bracket). `None` means the barriers agree.
fn compare_probes(
    epoch: u64,
    prev: Option<&RunProbe>,
    a: &RunProbe,
    b: &RunProbe,
) -> Option<DivergenceReport> {
    let quantum = a.quantum.max(1);
    let from_quantum = prev.map_or(0, |p| p.now / quantum);
    let from_insts = prev.map_or(0, |p| p.master_insts);
    let bracket = |detail: String,
                   component: &str,
                   slice: Option<u32>,
                   pc: (u64, u64),
                   regs: Vec<RegDelta>,
                   mem: (u64, u64)| {
        DivergenceReport {
            epoch,
            quantum_window: (from_quantum, (a.now.max(b.now)) / quantum),
            component: component.to_string(),
            slice,
            pc,
            inst_range: (from_insts, a.master_insts.max(b.master_insts)),
            reg_deltas: regs,
            mem_digests: mem,
            detail,
        }
    };

    if a.now != b.now || a.epochs != b.epochs || a.master_exited != b.master_exited {
        return Some(bracket(
            format!(
                "schedule state: now {} vs {}, epochs {} vs {}, exited {} vs {}",
                a.now, b.now, a.epochs, b.epochs, a.master_exited, b.master_exited
            ),
            "schedule",
            None,
            (a.master_pc, b.master_pc),
            Vec::new(),
            (a.master_mem_digest, b.master_mem_digest),
        ));
    }
    if a.master_insts != b.master_insts
        || a.master_pc != b.master_pc
        || a.master_regs != b.master_regs
        || a.master_mem_digest != b.master_mem_digest
    {
        return Some(bracket(
            format!(
                "master state: insts {} vs {}",
                a.master_insts, b.master_insts
            ),
            "master",
            None,
            (a.master_pc, b.master_pc),
            reg_deltas(&a.master_regs, &b.master_regs),
            (a.master_mem_digest, b.master_mem_digest),
        ));
    }
    if a.slices.len() != b.slices.len() {
        return Some(bracket(
            format!("live slice count: {} vs {}", a.slices.len(), b.slices.len()),
            "slice",
            None,
            (a.master_pc, b.master_pc),
            Vec::new(),
            (a.master_mem_digest, b.master_mem_digest),
        ));
    }
    for (sa, sb) in a.slices.iter().zip(&b.slices) {
        if sa != sb {
            return Some(bracket(
                format!(
                    "slice state: num {} vs {}, insts {} vs {}",
                    sa.num, sb.num, sa.insts, sb.insts
                ),
                "slice",
                Some(sa.num),
                (sa.pc, sb.pc),
                Vec::new(),
                (sa.mem_digest, sb.mem_digest),
            ));
        }
    }
    if a.merged.len() != b.merged.len() {
        return Some(bracket(
            format!(
                "merged slice count: {} vs {}",
                a.merged.len(),
                b.merged.len()
            ),
            "merged",
            None,
            (a.master_pc, b.master_pc),
            Vec::new(),
            (a.master_mem_digest, b.master_mem_digest),
        ));
    }
    for (ra, rb) in a.merged.iter().zip(&b.merged) {
        if ra != rb {
            return Some(bracket(
                format!(
                    "merged slice report: num {} insts {} vs num {} insts {}",
                    ra.num, ra.insts, rb.num, rb.insts
                ),
                "merged",
                Some(ra.num),
                (a.master_pc, b.master_pc),
                Vec::new(),
                (a.master_mem_digest, b.master_mem_digest),
            ));
        }
    }
    None
}

/// Turns one run's replay refusal into a divergence report bracketed by
/// the other run's probe.
fn refusal(
    epoch: u64,
    prev: Option<&RunProbe>,
    here: &RunProbe,
    side: &str,
    context: &'static str,
    detail: String,
) -> DivergenceReport {
    let quantum = here.quantum.max(1);
    DivergenceReport {
        epoch,
        quantum_window: (prev.map_or(0, |p| p.now / quantum), here.now / quantum),
        component: format!("{side}: {context}"),
        slice: None,
        pc: (here.master_pc, here.master_pc),
        inst_range: (prev.map_or(0, |p| p.master_insts), here.master_insts),
        reg_deltas: Vec::new(),
        mem_digests: (here.master_mem_digest, here.master_mem_digest),
        detail,
    }
}

fn step<T: SuperTool>(runner: &mut SuperPinRunner<T>) -> Result<Result<bool, String>, SpError> {
    match runner.step_serial() {
        Ok(more) => Ok(Ok(more)),
        Err(SpError::ReplayDivergence { context, detail }) => {
            Ok(Err(format!("{context}: {detail}")))
        }
        Err(err) => Err(err),
    }
}

/// Runs two runners in lockstep, comparing barrier probes, until the
/// first divergence or both runs end.
///
/// # Errors
///
/// Simulator errors other than replay refusals (those become
/// [`DiffOutcome::Diverged`]).
pub fn diff_runners<T: SuperTool, U: SuperTool>(
    a: &mut SuperPinRunner<T>,
    b: &mut SuperPinRunner<U>,
) -> Result<DiffOutcome, ReplayError> {
    a.start().map_err(ReplayError::Sim)?;
    b.start().map_err(ReplayError::Sim)?;
    let mut prev: Option<(RunProbe, RunProbe)> = None;
    let mut epoch = 0u64;
    loop {
        let more_a = step(a).map_err(ReplayError::Sim)?;
        let more_b = step(b).map_err(ReplayError::Sim)?;
        epoch += 1;
        let pa = a.probe();
        let pb = b.probe();
        match (more_a, more_b) {
            (Err(detail), _) => {
                return Ok(DiffOutcome::Diverged(Box::new(refusal(
                    epoch,
                    prev.as_ref().map(|(p, _)| p),
                    &pb,
                    "run A refused its log",
                    "replay",
                    detail,
                ))))
            }
            (_, Err(detail)) => {
                return Ok(DiffOutcome::Diverged(Box::new(refusal(
                    epoch,
                    prev.as_ref().map(|(p, _)| p),
                    &pa,
                    "run B refused its log",
                    "replay",
                    detail,
                ))))
            }
            (Ok(more_a), Ok(more_b)) => {
                if let Some(report) = compare_probes(epoch, prev.as_ref().map(|(p, _)| p), &pa, &pb)
                {
                    return Ok(DiffOutcome::Diverged(Box::new(report)));
                }
                if !more_a && !more_b {
                    return Ok(DiffOutcome::Identical { epochs: pa.epochs });
                }
                if more_a != more_b {
                    // Probes compared equal but one run thinks it is
                    // done: a scheduling divergence at the very end.
                    return Ok(DiffOutcome::Diverged(Box::new(
                        compare_probes(epoch, None, &pa, &pb).unwrap_or_else(|| {
                            refusal(
                                epoch,
                                prev.as_ref().map(|(p, _)| p),
                                &pa,
                                "run end",
                                "schedule",
                                format!("run A more={more_a}, run B more={more_b}"),
                            )
                        }),
                    )));
                }
                prev = Some((pa, pb));
            }
        }
    }
}

/// Replays two logs in lockstep (each against its own recording) and
/// reports the first divergence between *the runs they describe*. Both
/// replays run serially at `threads = 1` regardless of the recorded
/// thread counts — report equality across thread counts is the
/// simulator's contract, so the comparison is fair.
///
/// # Errors
///
/// Setup errors as in [`build_runner`]; simulator errors other than
/// replay refusals.
pub fn diff_logs<T: SuperTool, U: SuperTool>(
    log_a: &ReplayLog,
    tool_a: T,
    shared_a: &superpin::SharedMem,
    log_b: &ReplayLog,
    tool_b: U,
    shared_b: &superpin::SharedMem,
) -> Result<DiffOutcome, ReplayError> {
    let mut a = replaying_runner(&log_a.recipe, log_a, tool_a, shared_a)?;
    let mut b = replaying_runner(&log_b.recipe, log_b, tool_b, shared_b)?;
    diff_runners(&mut a, &mut b)
}

fn replaying_runner<T: SuperTool>(
    recipe: &RunRecipe,
    log: &ReplayLog,
    tool: T,
    shared: &superpin::SharedMem,
) -> Result<SuperPinRunner<T>, ReplayError> {
    let mut runner = build_runner(recipe, 1, true, tool, shared)?;
    runner.set_replay(crate::events::EventStream::new(log.events.clone()).boxed());
    Ok(runner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drive::record_run;
    use crate::testutil::Nop;
    use superpin::{NondetEvent, SharedMem};
    use superpin_workloads::Scale;

    fn recorded(name: &str) -> ReplayLog {
        let recipe = crate::recipe::RunRecipe::standard(name, Scale::Tiny);
        record_run(&recipe, Nop, &SharedMem::new()).expect("record")
    }

    #[test]
    fn identical_logs_diff_identical() {
        let log = recorded("gcc");
        let outcome = diff_logs(
            &log,
            Nop,
            &SharedMem::new(),
            &log.clone(),
            Nop,
            &SharedMem::new(),
        )
        .expect("diff");
        assert!(
            matches!(outcome, DiffOutcome::Identical { epochs } if epochs > 0),
            "clean pair must be identical: {outcome:?}"
        );
    }

    #[test]
    fn perturbed_epoch_plan_pinpoints_a_schedule_divergence() {
        let log = recorded("gcc");
        let mut perturbed = log.clone();
        let plan_at = perturbed
            .events
            .iter()
            .position(|e| matches!(e, NondetEvent::EpochPlan { .. }))
            .expect("a planned epoch");
        if let NondetEvent::EpochPlan { planned } = &mut perturbed.events[plan_at] {
            *planned += 1;
        }
        let outcome = diff_logs(
            &log,
            Nop,
            &SharedMem::new(),
            &perturbed,
            Nop,
            &SharedMem::new(),
        )
        .expect("diff");
        match outcome {
            DiffOutcome::Diverged(report) => {
                assert!(report.epoch >= 1);
                // A longer first epoch shows up at the very first
                // barrier as a virtual-time ("schedule") divergence, or
                // as run B refusing its now-misaligned log downstream.
                assert!(
                    report.component.contains("schedule") || report.component.contains("run B"),
                    "unexpected component: {report:?}"
                );
                assert!(report.quantum_window.1 >= report.quantum_window.0);
                let rendered = report.to_string();
                assert!(rendered.contains("first divergence at epoch"));
            }
            DiffOutcome::Identical { .. } => panic!("perturbed log must diverge"),
        }
    }
}

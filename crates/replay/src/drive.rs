//! End-to-end drivers: build a runner from a recipe, record a run into
//! a [`ReplayLog`], re-execute a log, and verify the replayed report.

use crate::events::{EventSink, EventStream};
use crate::json::{first_report_difference, report_to_json};
use crate::log::ReplayLog;
use crate::recipe::RunRecipe;
use crate::wire::CodecError;
use std::fmt;
use std::sync::Arc;
use superpin::{ProgramAnalysis, SharedMem, SpError, SuperPinReport, SuperPinRunner, SuperTool};
use superpin_vm::process::Process;

/// Errors from driving a recorded or replayed run.
#[derive(Clone, Debug, PartialEq)]
pub enum ReplayError {
    /// The recipe names a workload the catalog does not have.
    UnknownWorkload(String),
    /// Whole-program analysis failed while rebuilding the recorded
    /// run's superblock plan.
    Analysis(String),
    /// The simulation failed (a replay that departs from its log
    /// surfaces here as [`SpError::ReplayDivergence`]).
    Sim(SpError),
    /// The log bytes were malformed or truncated.
    Codec(CodecError),
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::UnknownWorkload(name) => {
                write!(f, "workload `{name}` is not in the catalog")
            }
            ReplayError::Analysis(detail) => {
                write!(f, "whole-program analysis failed: {detail}")
            }
            ReplayError::Sim(err) => write!(f, "{err}"),
            ReplayError::Codec(err) => write!(f, "{err}"),
        }
    }
}

impl std::error::Error for ReplayError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReplayError::Sim(err) => Some(err),
            ReplayError::Codec(err) => Some(err),
            _ => None,
        }
    }
}

impl From<SpError> for ReplayError {
    fn from(err: SpError) -> ReplayError {
        ReplayError::Sim(err)
    }
}

impl From<CodecError> for ReplayError {
    fn from(err: CodecError) -> ReplayError {
        ReplayError::Codec(err)
    }
}

/// Builds a runner from a recipe: catalog program, config knobs, and
/// (when the recipe carries plan knobs) the recomputed superblock plan.
/// `threads` and `replaying` deviate deliberately from the recipe — see
/// [`RunRecipe::base_config`]. The caller installs record/replay mode.
///
/// # Errors
///
/// Unknown workloads, analysis failures, and simulator setup errors.
pub fn build_runner<T: SuperTool>(
    recipe: &RunRecipe,
    threads: usize,
    replaying: bool,
    tool: T,
    shared: &SharedMem,
) -> Result<SuperPinRunner<T>, ReplayError> {
    let program = recipe
        .program()
        .ok_or_else(|| ReplayError::UnknownWorkload(recipe.name.clone()))?;
    let mut cfg = recipe.base_config(threads, replaying);
    if let Some(knobs) = recipe.plan {
        let analysis =
            ProgramAnalysis::compute(&program).map_err(|e| ReplayError::Analysis(e.to_string()))?;
        cfg = cfg.with_plan(Arc::new(analysis.plan(knobs)));
    }
    let process = Process::load(1, &program).map_err(SpError::from)?;
    Ok(SuperPinRunner::new(process, tool, shared.clone(), cfg)?)
}

/// Records one run: executes the recipe live at its own thread count
/// with every nondeterministic decision streamed into the log, and
/// packages recipe + events + final report as a [`ReplayLog`].
///
/// # Errors
///
/// [`ReplayError::UnknownWorkload`] and simulator errors.
pub fn record_run<T: SuperTool>(
    recipe: &RunRecipe,
    tool: T,
    shared: &SharedMem,
) -> Result<ReplayLog, ReplayError> {
    let mut runner = build_runner(recipe, recipe.threads, false, tool, shared)?;
    let sink = EventSink::new();
    runner.set_recorder(sink.recorder());
    let report = runner.run()?;
    Ok(ReplayLog {
        recipe: recipe.clone(),
        events: sink.take(),
        report,
    })
}

/// Re-executes a recorded run from the log alone, substituting recorded
/// decisions, at an arbitrary `threads` count. Returns the replayed
/// report; compare with [`verify_replay`].
///
/// # Errors
///
/// [`SpError::ReplayDivergence`] (as [`ReplayError::Sim`]) when the
/// replay departs from the log; setup errors as in [`build_runner`].
pub fn replay_run<T: SuperTool>(
    log: &ReplayLog,
    threads: usize,
    tool: T,
    shared: &SharedMem,
) -> Result<SuperPinReport, ReplayError> {
    let mut runner = build_runner(&log.recipe, threads, true, tool, shared)?;
    runner.set_replay(EventStream::new(log.events.clone()).boxed());
    Ok(runner.run()?)
}

/// Checks a replayed report against the recorded one. `None` means
/// field-for-field equality; otherwise names the first differing field
/// (via the shared JSON helpers, so CLI output and CI byte-diffs agree
/// on what "first" means).
pub fn verify_replay(log: &ReplayLog, replayed: &SuperPinReport) -> Option<String> {
    if &log.report == replayed {
        return None;
    }
    let recorded = report_to_json(&log.report);
    let replayed = report_to_json(replayed);
    Some(
        first_report_difference(&recorded, &replayed)
            .unwrap_or_else(|| "reports differ outside the JSON projection".to_string()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::Nop;
    use superpin::NondetEvent;
    use superpin_workloads::Scale;

    #[test]
    fn unknown_workload_is_a_typed_error() {
        let recipe = RunRecipe::standard("no-such-benchmark", Scale::Tiny);
        let err = record_run(&recipe, Nop, &SharedMem::new()).unwrap_err();
        assert!(matches!(err, ReplayError::UnknownWorkload(_)));
        assert!(err.to_string().contains("no-such-benchmark"));
    }

    #[test]
    fn record_then_replay_through_the_wire_format_is_bit_identical() {
        let recipe = RunRecipe::standard("gcc", Scale::Tiny);
        let log = record_run(&recipe, Nop, &SharedMem::new()).expect("record");
        assert!(
            log.events
                .iter()
                .any(|e| matches!(e, NondetEvent::Syscall(_))),
            "gcc makes syscalls; the log must carry them"
        );
        assert!(matches!(
            log.events.last(),
            Some(NondetEvent::FaultLedger { .. })
        ));

        // Round-trip the bytes: replay must work from the decoded log
        // alone, at a different thread count than the recording.
        let decoded = ReplayLog::decode(&log.encode()).expect("decode");
        assert_eq!(decoded, log);
        let replayed = replay_run(&decoded, 4, Nop, &SharedMem::new()).expect("replay");
        assert_eq!(verify_replay(&decoded, &replayed), None);
        assert_eq!(replayed, log.report);
    }

    #[test]
    fn verify_replay_names_the_first_divergent_field() {
        let recipe = RunRecipe::standard("vortex", Scale::Tiny);
        let log = record_run(&recipe, Nop, &SharedMem::new()).expect("record");
        let mut perturbed = log.report.clone();
        perturbed.epochs += 1;
        assert_eq!(verify_replay(&log, &perturbed).as_deref(), Some("epochs"));
    }
}

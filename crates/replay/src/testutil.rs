//! Test-only helpers shared across this crate's unit tests.
//!
//! The real tool dispatch (icount1/icount2) lives downstream in
//! tools/bench, which depend on this crate — run-driving tests here use
//! a no-op tool instead.

use superpin::{SharedMem, SuperTool};

/// A tool that instruments nothing and merges nothing.
#[derive(Clone)]
pub struct Nop;

impl superpin_dbi::Pintool for Nop {
    fn instrument_trace(&mut self, _: &superpin_dbi::Trace, _: &mut superpin_dbi::Inserter<Self>) {}
}

impl SuperTool for Nop {
    fn reset(&mut self, _: u32) {}
    fn on_slice_end(&mut self, _: u32, _: &SharedMem) {}
}

//! The `.splog` container: magic, version, and framed records.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! "SPLOG"            5-byte magic
//! version: u16       = 1
//! frame*             type: u8, len: u32, payload[len]
//! ```
//!
//! Frame types: `0x01` Header (one [`RunRecipe`], first), `0x02` Event
//! (one [`NondetEvent`], in decision order), `0x03` Report (the recorded
//! run's final [`SuperPinReport`]), `0x04` End (empty; guards against
//! silent truncation). Unknown frame types are a decode error — readers
//! of a future minor version must bump [`VERSION`] instead of relying on
//! skip-forward.

use crate::codec::{get_event, get_report, put_event, put_report};
use crate::recipe::RunRecipe;
use crate::wal::FrameDamage;
use crate::wire::{put_u16, put_u32, put_u8, CodecError, Reader};
use superpin::{NondetEvent, SuperPinReport};

/// Log magic bytes.
pub const MAGIC: &[u8; 5] = b"SPLOG";
/// Current log format version.
pub const VERSION: u16 = 1;

const FRAME_HEADER: u8 = 0x01;
const FRAME_EVENT: u8 = 0x02;
const FRAME_REPORT: u8 = 0x03;
const FRAME_END: u8 = 0x04;

/// A fully parsed recording: recipe, decision stream, final report.
#[derive(Clone, Debug, PartialEq)]
pub struct ReplayLog {
    /// How to reconstruct the run's initial state.
    pub recipe: RunRecipe,
    /// The recorded decision stream, in order.
    pub events: Vec<NondetEvent>,
    /// The recorded run's final report (replay verifies against it).
    pub report: SuperPinReport,
}

fn put_frame(out: &mut Vec<u8>, frame_type: u8, payload: &[u8]) {
    put_u8(out, frame_type);
    put_u32(
        out,
        u32::try_from(payload.len()).expect("frame under 4 GiB"),
    );
    out.extend_from_slice(payload);
}

impl ReplayLog {
    /// Serializes the log to bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        put_u16(&mut out, VERSION);
        let mut payload = Vec::new();
        self.recipe.encode(&mut payload);
        put_frame(&mut out, FRAME_HEADER, &payload);
        for event in &self.events {
            payload.clear();
            put_event(&mut payload, event);
            put_frame(&mut out, FRAME_EVENT, &payload);
        }
        payload.clear();
        put_report(&mut payload, &self.report);
        put_frame(&mut out, FRAME_REPORT, &payload);
        put_frame(&mut out, FRAME_END, &[]);
        out
    }

    /// Parses a log from bytes.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] on a bad magic/version, unknown frame
    /// types, a missing header/report/end frame, or truncation.
    pub fn decode(bytes: &[u8]) -> Result<ReplayLog, CodecError> {
        let mut reader = Reader::new(bytes);
        let magic = [
            reader.u8("magic")?,
            reader.u8("magic")?,
            reader.u8("magic")?,
            reader.u8("magic")?,
            reader.u8("magic")?,
        ];
        if &magic != MAGIC {
            return Err(CodecError::BadHeader {
                detail: format!("magic {magic:?} is not SPLOG"),
            });
        }
        let version = reader.u16("version")?;
        if version != VERSION {
            return Err(CodecError::BadHeader {
                detail: format!("log version {version}, this build reads {VERSION}"),
            });
        }
        let mut recipe = None;
        let mut events = Vec::new();
        let mut report = None;
        let mut ended = false;
        while !reader.is_empty() {
            let frame_type = reader.u8("frame type")?;
            let len = reader.u32("frame length")? as usize;
            if reader.remaining() < len {
                return Err(CodecError::Truncated { what: "frame" });
            }
            let payload = reader.tail();
            let mut frame = Reader::new(&payload[..len]);
            reader.skip(len, "frame")?;
            match frame_type {
                FRAME_HEADER => recipe = Some(RunRecipe::decode(&mut frame)?),
                FRAME_EVENT => events.push(get_event(&mut frame)?),
                FRAME_REPORT => report = Some(get_report(&mut frame)?),
                FRAME_END => {
                    ended = true;
                    break;
                }
                tag => {
                    return Err(CodecError::BadTag {
                        what: "frame type",
                        tag: tag as u64,
                    })
                }
            }
        }
        if !ended {
            return Err(CodecError::Truncated { what: "end frame" });
        }
        Ok(ReplayLog {
            recipe: recipe.ok_or(CodecError::BadHeader {
                detail: "log has no header frame".to_string(),
            })?,
            events,
            report: report.ok_or(CodecError::BadHeader {
                detail: "log has no report frame".to_string(),
            })?,
        })
    }
}

/// A structural census of a `.splog` byte stream, tolerant of damage.
///
/// Unlike [`ReplayLog::decode`], the scan never fails past the
/// preamble: it counts what is structurally intact and reports where
/// (and how) the stream stops being readable. Frame *payloads* are not
/// decoded — a payload-level fault still fails `decode` on a
/// scan-clean log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SplogScan {
    /// Header frames seen (a well-formed log has exactly one).
    pub header_frames: usize,
    /// Event frames seen.
    pub event_frames: usize,
    /// Report frames seen (a well-formed log has exactly one).
    pub report_frames: usize,
    /// The end frame is present.
    pub has_end: bool,
    /// Byte offset just past the last structurally intact frame.
    pub valid_len: usize,
    /// The first damage found, if any.
    pub damage: Option<FrameDamage>,
}

/// Walks a `.splog` frame by frame without decoding payloads, stopping
/// at the first structural damage instead of hard-failing. Never
/// panics on arbitrary input.
///
/// # Errors
///
/// [`CodecError::BadHeader`] only when the magic/version preamble is
/// unusable.
pub fn scan(bytes: &[u8]) -> Result<SplogScan, CodecError> {
    const PREAMBLE: usize = 7; // 5-byte magic + u16 version
    if bytes.len() < PREAMBLE {
        return Err(CodecError::BadHeader {
            detail: format!(
                "{} bytes is shorter than the {PREAMBLE}-byte preamble",
                bytes.len()
            ),
        });
    }
    if &bytes[..5] != MAGIC {
        return Err(CodecError::BadHeader {
            detail: format!("magic {:?} is not SPLOG", &bytes[..5]),
        });
    }
    let version = u16::from_le_bytes([bytes[5], bytes[6]]);
    if version != VERSION {
        return Err(CodecError::BadHeader {
            detail: format!("log version {version}, this build reads {VERSION}"),
        });
    }
    let mut out = SplogScan {
        header_frames: 0,
        event_frames: 0,
        report_frames: 0,
        has_end: false,
        valid_len: PREAMBLE,
        damage: None,
    };
    let mut pos = PREAMBLE;
    while pos < bytes.len() {
        if out.has_end {
            out.damage = Some(FrameDamage::Corrupt {
                offset: pos,
                detail: "bytes after the end frame".to_owned(),
            });
            break;
        }
        let remaining = bytes.len() - pos;
        if remaining < 5 {
            out.damage = Some(FrameDamage::Torn { offset: pos });
            break;
        }
        let frame_type = bytes[pos];
        if !(FRAME_HEADER..=FRAME_END).contains(&frame_type) {
            out.damage = Some(FrameDamage::Corrupt {
                offset: pos,
                detail: format!("unknown frame type 0x{frame_type:02x}"),
            });
            break;
        }
        let len = u32::from_le_bytes([
            bytes[pos + 1],
            bytes[pos + 2],
            bytes[pos + 3],
            bytes[pos + 4],
        ]) as usize;
        let Some(total) = len.checked_add(5) else {
            out.damage = Some(FrameDamage::Corrupt {
                offset: pos,
                detail: format!("frame length {len} overflows"),
            });
            break;
        };
        if remaining < total {
            out.damage = Some(FrameDamage::Torn { offset: pos });
            break;
        }
        match frame_type {
            FRAME_HEADER => out.header_frames += 1,
            FRAME_EVENT => out.event_frames += 1,
            FRAME_REPORT => out.report_frames += 1,
            _ => out.has_end = true,
        }
        pos += total;
        out.valid_len = pos;
    }
    Ok(out)
}

/// Turns a [`ReplayLog::decode`] failure into an actionable message by
/// re-scanning the bytes: "truncated (salvageable …)" when the log is
/// a clean prefix that simply stops (kill mid-write), "corrupt at byte
/// X" when a frame is structurally wrong, and the raw codec error when
/// the structure is fine but a payload is not.
pub fn explain_decode_failure(bytes: &[u8], err: &CodecError) -> String {
    let Ok(scanned) = scan(bytes) else {
        // Preamble-level: the codec error already says it all.
        return err.to_string();
    };
    let census = format!(
        "{} event frame(s) intact, report frame {}",
        scanned.event_frames,
        if scanned.report_frames > 0 {
            "present"
        } else {
            "missing"
        }
    );
    match &scanned.damage {
        Some(FrameDamage::Torn { offset }) => format!(
            "truncated mid-frame at byte {offset} (salvageable: {census}, \
             last good frame ends at byte {})",
            scanned.valid_len
        ),
        Some(corrupt @ FrameDamage::Corrupt { .. }) => format!("{corrupt} ({census})"),
        None if !scanned.has_end => {
            format!("truncated (salvageable: {census}, end frame missing)")
        }
        None => format!("{err} (frames are structurally intact: {census})"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use superpin::{AdmissionDecision, TimeBreakdown};
    use superpin_vm::ptrace::PtraceStats;
    use superpin_workloads::Scale;

    fn empty_report() -> SuperPinReport {
        SuperPinReport {
            total_cycles: 10,
            master_exit_cycles: 8,
            breakdown: TimeBreakdown::default(),
            master_insts: 5,
            master_syscalls: 1,
            ptrace: PtraceStats::default(),
            slices: Vec::new(),
            sig_stats: Default::default(),
            forks_on_timeout: 0,
            forks_on_syscall: 0,
            stall_events: 0,
            master_cow_copies: 0,
            epochs: 2,
            slice_retries: 0,
            slices_degraded: 0,
            peak_resident_bytes: 0,
            slices_deferred: 0,
            checkpoints_dropped: 0,
            caches_evicted: 0,
        }
    }

    fn sample_log() -> ReplayLog {
        ReplayLog {
            recipe: RunRecipe::standard("gcc", Scale::Tiny),
            events: vec![
                NondetEvent::EpochPlan { planned: 4 },
                NondetEvent::Admission {
                    decision: AdmissionDecision::Admit,
                    dropped: vec![],
                    evicted: vec![3],
                },
                NondetEvent::FaultLedger {
                    slice_retries: 0,
                    slices_degraded: 0,
                },
            ],
            report: empty_report(),
        }
    }

    #[test]
    fn log_round_trips() {
        let log = sample_log();
        let bytes = log.encode();
        assert_eq!(&bytes[..5], MAGIC);
        assert_eq!(ReplayLog::decode(&bytes).unwrap(), log);
    }

    #[test]
    fn bad_magic_version_and_truncation_are_rejected() {
        let log = sample_log();
        let bytes = log.encode();

        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert!(matches!(
            ReplayLog::decode(&bad_magic),
            Err(CodecError::BadHeader { .. })
        ));

        let mut bad_version = bytes.clone();
        bad_version[5] = 0xFF;
        assert!(matches!(
            ReplayLog::decode(&bad_version),
            Err(CodecError::BadHeader { .. })
        ));

        // Cutting the end frame off must not silently parse.
        let truncated = &bytes[..bytes.len() - 5];
        assert!(matches!(
            ReplayLog::decode(truncated),
            Err(CodecError::Truncated { .. })
        ));

        let mut bad_frame = bytes.clone();
        bad_frame[7] = 0x7E; // header frame's type byte
        assert!(matches!(
            ReplayLog::decode(&bad_frame),
            Err(CodecError::BadTag { .. })
        ));
    }
}

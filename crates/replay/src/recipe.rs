//! The run recipe: everything needed to *reconstruct* a recorded run's
//! initial state from the log alone — workload identity, tool name, and
//! every config knob that shapes the simulation.
//!
//! The recipe lives in the `.splog` header frame. Replay rebuilds the
//! program from the workload catalog (workloads are deterministic
//! generators, so `name + scale + input` pins the exact binary) and the
//! [`SuperPinConfig`] from the knobs, with two deliberate deviations:
//! the thread count is overridable (the whole point of the design — a
//! `--threads 4` recording replays at `--threads 1`), and chaos is
//! **disarmed** (the recorded [`FaultLedger`](superpin::NondetEvent)
//! substitutes injection's only report-visible effect).

use crate::wire::{put_bool, put_opt_u64, put_str, put_u32, put_u64, put_u8, CodecError, Reader};
use superpin::{FailPlan, PlanKnobs, SuperPinConfig};
use superpin_dbi::CYCLES_PER_SEC;
use superpin_isa::Program;
use superpin_workloads::{find, Scale, WorkloadSpec};

/// Paper-equivalent seconds represented by one full run at a given
/// scale; the standard figure normalization (bench's
/// `PRESENTED_NATIVE_SECS`).
pub const PRESENTED_NATIVE_SECS: f64 = 100.0;

/// A complete, self-contained description of how to start a run.
#[derive(Clone, Debug, PartialEq)]
pub struct RunRecipe {
    /// Workload name from the catalog (e.g. `"gcc"`).
    pub name: String,
    /// Workload scale.
    pub scale: Scale,
    /// Workload input seed (`build_with_input`).
    pub input: u64,
    /// Tool name (e.g. `"icount1"`); dispatched by the CLI/harness.
    pub tool: String,
    /// Timeslice in paper milliseconds (`-spmsec`).
    pub spmsec: u64,
    /// Maximum running slices (`-spmp`).
    pub spmp: usize,
    /// Syscall-record budget per slice (`-spsysrecs`).
    pub spsysrecs: usize,
    /// Host threads of the *recorded* run (replay may override).
    pub threads: usize,
    /// The armed chaos plan, if any. Stored whole: a firing is a pure
    /// function of `(plan, site, key)`, so the plan *is* the schedule.
    pub chaos: Option<FailPlan>,
    /// Watchdog multiplier over the predicted completion.
    pub watchdog_factor: u64,
    /// Per-slice retry budget.
    pub max_slice_retries: u32,
    /// Memory budget in bytes (`--mem-budget`).
    pub mem_budget: Option<u64>,
    /// Whether supervision was enabled (explicitly or implied by chaos).
    pub supervise: bool,
    /// Superblock-plan knobs when the run used whole-program analysis.
    pub plan: Option<PlanKnobs>,
    /// Free-form provenance tag (git describe, CI run id, …).
    pub tag: String,
}

impl RunRecipe {
    /// A recipe with the bench harness's standard knobs (2000 ms
    /// timeslice, paper defaults elsewhere) for `name` at `scale`.
    pub fn standard(name: &str, scale: Scale) -> RunRecipe {
        RunRecipe {
            name: name.to_string(),
            scale,
            input: 0,
            tool: "icount1".to_string(),
            spmsec: 2000,
            spmp: 8,
            spsysrecs: 1000,
            threads: 1,
            chaos: None,
            watchdog_factor: 8,
            max_slice_retries: 2,
            mem_budget: None,
            supervise: false,
            plan: None,
            tag: String::new(),
        }
    }

    /// The scale's time-scale factor (the figure normalization the bench
    /// harness uses; kept equal to `time_scale_for` there by test).
    pub fn time_scale(&self) -> f64 {
        PRESENTED_NATIVE_SECS * CYCLES_PER_SEC as f64 / self.scale.target_insts() as f64
    }

    /// Resolves the workload in the catalog.
    pub fn spec(&self) -> Option<&'static WorkloadSpec> {
        find(&self.name)
    }

    /// Builds the exact program the recorded run executed.
    pub fn program(&self) -> Option<Program> {
        self.spec()
            .map(|spec| spec.build_with_input(self.scale, self.input))
    }

    /// Builds the run configuration. `threads` overrides the recorded
    /// thread count (report equality across thread counts is the
    /// contract being exercised). With `replaying`, chaos is stripped
    /// but supervision stays on if the recorded run had it — checkpoint
    /// retention is report-visible under a memory budget, so the replay
    /// must supervise identically. The superblock plan (if any) is
    /// attached by the caller, which holds the program.
    pub fn base_config(&self, threads: usize, replaying: bool) -> SuperPinConfig {
        let mut cfg = SuperPinConfig::scaled(self.spmsec, self.time_scale())
            .with_max_slices(self.spmp)
            .with_max_sysrecs(self.spsysrecs)
            .with_threads(threads)
            .with_watchdog_factor(self.watchdog_factor)
            .with_max_slice_retries(self.max_slice_retries);
        if let Some(budget) = self.mem_budget {
            cfg = cfg.with_mem_budget(budget);
        }
        // Replay runs injection-free; supervision is preserved below so
        // checkpoint accounting matches the recorded run.
        if let (false, Some(plan)) = (replaying, self.chaos) {
            cfg = cfg.with_chaos(plan);
        }
        if self.supervise || self.chaos.is_some() {
            cfg = cfg.with_supervision();
        }
        cfg
    }

    /// Encodes the recipe.
    pub fn encode(&self, out: &mut Vec<u8>) {
        put_str(out, &self.name);
        put_u8(
            out,
            match self.scale {
                Scale::Tiny => 0,
                Scale::Small => 1,
                Scale::Medium => 2,
                Scale::Large => 3,
            },
        );
        put_u64(out, self.input);
        put_str(out, &self.tool);
        put_u64(out, self.spmsec);
        put_u64(out, self.spmp as u64);
        put_u64(out, self.spsysrecs as u64);
        put_u64(out, self.threads as u64);
        match &self.chaos {
            Some(plan) => {
                put_u8(out, 1);
                plan.encode(out);
            }
            None => put_u8(out, 0),
        }
        put_u64(out, self.watchdog_factor);
        put_u32(out, self.max_slice_retries);
        put_opt_u64(out, self.mem_budget);
        put_bool(out, self.supervise);
        match &self.plan {
            Some(knobs) => {
                put_u8(out, 1);
                put_u32(out, knobs.hot_loop_threshold);
                put_u64(out, knobs.max_trace_len as u64);
            }
            None => put_u8(out, 0),
        }
        put_str(out, &self.tag);
    }

    /// Decodes a recipe.
    pub fn decode(reader: &mut Reader<'_>) -> Result<RunRecipe, CodecError> {
        let name = reader.str("workload name")?;
        let scale = match reader.u8("scale")? {
            0 => Scale::Tiny,
            1 => Scale::Small,
            2 => Scale::Medium,
            3 => Scale::Large,
            tag => {
                return Err(CodecError::BadTag {
                    what: "scale",
                    tag: tag as u64,
                })
            }
        };
        let input = reader.u64("input")?;
        let tool = reader.str("tool")?;
        let spmsec = reader.u64("spmsec")?;
        let spmp = reader.u64("spmp")? as usize;
        let spsysrecs = reader.u64("spsysrecs")? as usize;
        let threads = reader.u64("threads")? as usize;
        let chaos = match reader.u8("chaos flag")? {
            0 => None,
            1 => {
                // Bridge to the fault crate's cursor-based decoder: it
                // reports consumed bytes via its cursor.
                let mut pos = 0usize;
                let plan = FailPlan::decode(reader.tail(), &mut pos)
                    .ok_or(CodecError::Truncated { what: "chaos plan" })?;
                reader.skip(pos, "chaos plan")?;
                Some(plan)
            }
            tag => {
                return Err(CodecError::BadTag {
                    what: "chaos flag",
                    tag: tag as u64,
                })
            }
        };
        let watchdog_factor = reader.u64("watchdog_factor")?;
        let max_slice_retries = reader.u32("max_slice_retries")?;
        let mem_budget = reader.opt_u64("mem_budget")?;
        let supervise = reader.bool("supervise")?;
        let plan = match reader.u8("plan flag")? {
            0 => None,
            1 => Some(PlanKnobs {
                hot_loop_threshold: reader.u32("hot_loop_threshold")?,
                max_trace_len: reader.u64("max_trace_len")? as usize,
            }),
            tag => {
                return Err(CodecError::BadTag {
                    what: "plan flag",
                    tag: tag as u64,
                })
            }
        };
        let tag = reader.str("tag")?;
        Ok(RunRecipe {
            name,
            scale,
            input,
            tool,
            spmsec,
            spmp,
            spsysrecs,
            threads,
            chaos,
            watchdog_factor,
            max_slice_retries,
            mem_budget,
            supervise,
            plan,
            tag,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recipe_round_trips_with_all_options() {
        let mut recipe = RunRecipe::standard("gcc", Scale::Small);
        recipe.input = 42;
        recipe.threads = 4;
        recipe.chaos = Some(FailPlan::new(3, 0.05));
        recipe.mem_budget = Some(64 << 20);
        recipe.supervise = true;
        recipe.plan = Some(PlanKnobs::default());
        recipe.tag = "pr8-test".to_string();

        let mut out = Vec::new();
        recipe.encode(&mut out);
        let mut reader = Reader::new(&out);
        assert_eq!(RunRecipe::decode(&mut reader).unwrap(), recipe);
        assert!(reader.is_empty());
    }

    #[test]
    fn minimal_recipe_round_trips() {
        let recipe = RunRecipe::standard("vortex", Scale::Tiny);
        let mut out = Vec::new();
        recipe.encode(&mut out);
        assert_eq!(RunRecipe::decode(&mut Reader::new(&out)).unwrap(), recipe);
    }

    #[test]
    fn replay_config_strips_chaos_but_keeps_supervision() {
        let mut recipe = RunRecipe::standard("gcc", Scale::Tiny);
        recipe.chaos = Some(FailPlan::new(2, 0.02));
        let live = recipe.base_config(4, false);
        assert!(live.chaos.is_some());
        assert!(live.supervision_enabled());
        let replay = recipe.base_config(1, true);
        assert!(replay.chaos.is_none());
        assert!(replay.supervision_enabled());
        assert_eq!(replay.threads, 1);
        assert_eq!(replay.timeslice_cycles, live.timeslice_cycles);
    }

    #[test]
    fn recipe_builds_the_catalog_program() {
        let recipe = RunRecipe::standard("gcc", Scale::Tiny);
        assert!(recipe.spec().is_some());
        assert!(recipe.program().is_some());
        let missing = RunRecipe::standard("not-a-benchmark", Scale::Tiny);
        assert!(missing.program().is_none());
    }
}

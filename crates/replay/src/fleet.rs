//! Record/replay for **fleet** (multi-tenant service) runs.
//!
//! A `spin-serve` run's nondeterministic surface is tiny by design:
//! every scheduling decision — admission order, fair-share selection,
//! eviction ladder walks, epoch interleaving — is a pure function of
//! the job file and the fleet knobs. So the fleet log records exactly
//! that: the verbatim job-spec text, the knobs, the decision event
//! stream the scheduler emitted, and the final per-job outcome lines.
//! Replay re-parses the stored spec, re-runs the fleet (at *any*
//! `--threads`), and compares the fresh event stream and outcomes
//! byte-for-byte against the log — the fleet analogue of the per-run
//! `.splog` verification.

use superpin_fault::FailPlan;

use crate::wal::{
    salvage, FrameDamage, WalSalvage, WAL_FRAME_COMMIT, WAL_FRAME_END, WAL_FRAME_HEADER,
    WAL_FRAME_OVERHEAD, WAL_FRAME_RECORD,
};
use crate::wire::{
    put_bool, put_opt_u64, put_str, put_u16, put_u32, put_u64, put_u8, CodecError, Reader,
};

/// Magic prefix of an encoded fleet log.
pub const FLEET_MAGIC: &[u8; 4] = b"SPFL";

/// Fleet log format version.
pub const FLEET_VERSION: u16 = 1;

/// Everything needed to rebuild a fleet run's inputs: the job-spec
/// text verbatim plus the CLI knobs that shape scheduling. The
/// recorded thread count is informational only — replay may run at a
/// different `--threads` and must still match.
#[derive(Clone, Debug, PartialEq)]
pub struct FleetRecipe {
    /// The job file exactly as parsed (tenants + jobs + arrivals).
    pub spec_text: String,
    /// Worker threads the recording ran with (informational).
    pub threads: u32,
    /// Fleet round width (`--fleet-slots`).
    pub slots: u32,
    /// Shared fleet memory budget in bytes (`--fleet-budget`).
    pub fleet_budget: Option<u64>,
    /// Fleet-level chaos plan; tenants derive their domains from it.
    pub chaos: Option<FailPlan>,
    /// Paper-time timeslice in milliseconds (`--spmsec`).
    pub spmsec: u64,
}

impl FleetRecipe {
    /// Appends the recipe's wire form (shared by the flat SPFL log and
    /// the WAL header frame).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        put_str(out, &self.spec_text);
        put_u32(out, self.threads);
        put_u32(out, self.slots);
        put_opt_u64(out, self.fleet_budget);
        match &self.chaos {
            Some(plan) => {
                put_bool(out, true);
                plan.encode(out);
            }
            None => put_bool(out, false),
        }
        put_u64(out, self.spmsec);
    }

    /// Decodes a recipe written by [`FleetRecipe::encode_into`].
    ///
    /// # Errors
    ///
    /// [`CodecError`] describing the first malformed field.
    pub fn decode_from(reader: &mut Reader) -> Result<FleetRecipe, CodecError> {
        let spec_text = reader.str("spec text")?;
        let threads = reader.u32("threads")?;
        let slots = reader.u32("slots")?;
        let fleet_budget = reader.opt_u64("fleet budget")?;
        let chaos = if reader.bool("chaos presence")? {
            let tail = reader.tail();
            let mut pos = 0usize;
            let plan = FailPlan::decode(tail, &mut pos)
                .ok_or(CodecError::Truncated { what: "chaos plan" })?;
            reader.skip(pos, "chaos plan")?;
            Some(plan)
        } else {
            None
        };
        let spmsec = reader.u64("spmsec")?;
        Ok(FleetRecipe {
            spec_text,
            threads,
            slots,
            fleet_budget,
            chaos,
            spmsec,
        })
    }
}

/// One scheduling decision at a fleet round barrier, stamped with the
/// fleet virtual clock. The stream of these is the run's complete
/// decision trace; two runs with equal traces and equal outcomes are
/// the same run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FleetEvent {
    /// A job was admitted; `budget` carries the clamp when the
    /// admission was degraded (ladder rung 3), `None` for full-budget.
    Admit {
        /// Job index in spec order.
        job: u32,
        /// Fleet virtual time at the decision.
        fleet_now: u64,
        /// Degraded-admission budget clamp, if any.
        budget: Option<u64>,
    },
    /// A job's first deferral (ladder rung 2); retries are not logged.
    Defer {
        /// Job index in spec order.
        job: u32,
        /// Fleet virtual time at the decision.
        fleet_now: u64,
    },
    /// The fleet evicted code caches from a running job (ladder rung 1).
    Evict {
        /// Job index in spec order.
        job: u32,
        /// Simulated bytes freed.
        bytes: u64,
        /// Fleet virtual time at the decision.
        fleet_now: u64,
    },
    /// A job completed and merged its final report.
    Complete {
        /// Job index in spec order.
        job: u32,
        /// Fleet virtual time at the round barrier observing completion.
        fleet_now: u64,
    },
}

/// Appends one event's wire form (shared by the flat SPFL log and the
/// WAL round frames).
fn put_fleet_event(out: &mut Vec<u8>, event: &FleetEvent) {
    match *event {
        FleetEvent::Admit {
            job,
            fleet_now,
            budget,
        } => {
            put_u8(out, 0);
            put_u32(out, job);
            put_u64(out, fleet_now);
            put_opt_u64(out, budget);
        }
        FleetEvent::Defer { job, fleet_now } => {
            put_u8(out, 1);
            put_u32(out, job);
            put_u64(out, fleet_now);
        }
        FleetEvent::Evict {
            job,
            bytes,
            fleet_now,
        } => {
            put_u8(out, 2);
            put_u32(out, job);
            put_u64(out, bytes);
            put_u64(out, fleet_now);
        }
        FleetEvent::Complete { job, fleet_now } => {
            put_u8(out, 3);
            put_u32(out, job);
            put_u64(out, fleet_now);
        }
    }
}

/// Decodes one event written by [`put_fleet_event`].
fn get_fleet_event(reader: &mut Reader) -> Result<FleetEvent, CodecError> {
    let tag = reader.u8("event tag")?;
    Ok(match tag {
        0 => FleetEvent::Admit {
            job: reader.u32("admit job")?,
            fleet_now: reader.u64("admit time")?,
            budget: reader.opt_u64("admit budget")?,
        },
        1 => FleetEvent::Defer {
            job: reader.u32("defer job")?,
            fleet_now: reader.u64("defer time")?,
        },
        2 => FleetEvent::Evict {
            job: reader.u32("evict job")?,
            bytes: reader.u64("evict bytes")?,
            fleet_now: reader.u64("evict time")?,
        },
        3 => FleetEvent::Complete {
            job: reader.u32("complete job")?,
            fleet_now: reader.u64("complete time")?,
        },
        other => {
            return Err(CodecError::BadTag {
                what: "fleet event",
                tag: u64::from(other),
            })
        }
    })
}

/// A complete fleet log: recipe, decision trace, and the per-job
/// outcome JSON lines in job order.
#[derive(Clone, Debug, PartialEq)]
pub struct FleetLog {
    /// Inputs (see [`FleetRecipe`]).
    pub recipe: FleetRecipe,
    /// The scheduler's decision trace.
    pub events: Vec<FleetEvent>,
    /// Per-job outcome lines (deterministic JSON), job-id order.
    pub outcomes: Vec<String>,
}

impl FleetLog {
    /// Serializes the log to its wire form.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(FLEET_MAGIC);
        put_u16(&mut out, FLEET_VERSION);
        self.recipe.encode_into(&mut out);
        put_u32(&mut out, self.events.len() as u32);
        for event in &self.events {
            put_fleet_event(&mut out, event);
        }
        put_u32(&mut out, self.outcomes.len() as u32);
        for line in &self.outcomes {
            put_str(&mut out, line);
        }
        out
    }

    /// Decodes a log, rejecting unknown magic/version, bad tags, and
    /// truncation.
    ///
    /// # Errors
    ///
    /// [`CodecError`] describing the first malformed field.
    pub fn decode(bytes: &[u8]) -> Result<FleetLog, CodecError> {
        let mut reader = Reader::new(bytes);
        let magic = [
            reader.u8("magic")?,
            reader.u8("magic")?,
            reader.u8("magic")?,
            reader.u8("magic")?,
        ];
        if &magic != FLEET_MAGIC {
            return Err(CodecError::BadHeader {
                detail: format!("magic {magic:?} is not a fleet log"),
            });
        }
        let version = reader.u16("version")?;
        if version != FLEET_VERSION {
            return Err(CodecError::BadHeader {
                detail: format!("fleet log version {version}, this build reads {FLEET_VERSION}"),
            });
        }
        let recipe = FleetRecipe::decode_from(&mut reader)?;
        let event_count = reader.u32("event count")?;
        let mut events = Vec::with_capacity(event_count as usize);
        for _ in 0..event_count {
            events.push(get_fleet_event(&mut reader)?);
        }
        let outcome_count = reader.u32("outcome count")?;
        let mut outcomes = Vec::with_capacity(outcome_count as usize);
        for _ in 0..outcome_count {
            outcomes.push(reader.str("outcome line")?);
        }
        Ok(FleetLog {
            recipe,
            events,
            outcomes,
        })
    }
}

/// First divergence between a recorded fleet log and a fresh re-run's
/// (events, outcomes); `None` means bit-identical. The description
/// names the diverging event index or job line so a CI failure reads
/// without opening the log.
pub fn diff_fleet(
    recorded: &FleetLog,
    events: &[FleetEvent],
    outcomes: &[String],
) -> Option<String> {
    for (index, (old, new)) in recorded.events.iter().zip(events.iter()).enumerate() {
        if old != new {
            return Some(format!(
                "event {index}: recorded {old:?}, replay produced {new:?}"
            ));
        }
    }
    if recorded.events.len() != events.len() {
        return Some(format!(
            "event count: recorded {}, replay produced {}",
            recorded.events.len(),
            events.len()
        ));
    }
    for (index, (old, new)) in recorded.outcomes.iter().zip(outcomes.iter()).enumerate() {
        if old != new {
            let width = old
                .chars()
                .zip(new.chars())
                .take_while(|(a, b)| a == b)
                .count();
            return Some(format!(
                "job {index} outcome diverges at byte {width}: recorded `{}`, replay `{}`",
                &old[width.min(old.len())..(width + 40).min(old.len())],
                &new[width.min(new.len())..(width + 40).min(new.len())],
            ));
        }
    }
    if recorded.outcomes.len() != outcomes.len() {
        return Some(format!(
            "outcome count: recorded {}, replay produced {}",
            recorded.outcomes.len(),
            outcomes.len()
        ));
    }
    None
}

/// Everything one settled fleet round changed, journalled as one WAL
/// record. Re-executing the fleet from round 0 and comparing each
/// fresh frame against the committed one verifies — field by field —
/// that the resumed run walks the recorded run's exact path:
/// `selected`/`deltas` pin the fair-queue virtual times, `events`
/// pin admissions/deferrals/evictions/completions, and `usages` pin
/// the tenant ledger's posted residency.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RoundFrame {
    /// Round number (1-based, matching the service report's count).
    pub round: u64,
    /// Fleet virtual time after the round's settlement.
    pub fleet_now: u64,
    /// Selected job ids, in slot order.
    pub selected: Vec<u32>,
    /// Per-slot virtual-time charges (one per selected job).
    pub deltas: Vec<u64>,
    /// Every decision event since the previous frame (admission
    /// barrier included).
    pub events: Vec<FleetEvent>,
    /// Post-settlement ledger usage per tenant, tenant-id order.
    pub usages: Vec<u64>,
}

impl RoundFrame {
    /// Serializes the frame's payload (the WAL adds its own CRC).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_u64(&mut out, self.round);
        put_u64(&mut out, self.fleet_now);
        put_u32(&mut out, self.selected.len() as u32);
        for &id in &self.selected {
            put_u32(&mut out, id);
        }
        put_u32(&mut out, self.deltas.len() as u32);
        for &delta in &self.deltas {
            put_u64(&mut out, delta);
        }
        put_u32(&mut out, self.events.len() as u32);
        for event in &self.events {
            put_fleet_event(&mut out, event);
        }
        put_u32(&mut out, self.usages.len() as u32);
        for &usage in &self.usages {
            put_u64(&mut out, usage);
        }
        out
    }

    /// Decodes a frame payload.
    ///
    /// # Errors
    ///
    /// [`CodecError`] describing the first malformed field.
    pub fn decode(bytes: &[u8]) -> Result<RoundFrame, CodecError> {
        let mut reader = Reader::new(bytes);
        let round = reader.u64("round")?;
        let fleet_now = reader.u64("fleet time")?;
        let selected_count = reader.u32("selection count")?;
        let mut selected = Vec::with_capacity(selected_count as usize);
        for _ in 0..selected_count {
            selected.push(reader.u32("selected job")?);
        }
        let delta_count = reader.u32("delta count")?;
        let mut deltas = Vec::with_capacity(delta_count as usize);
        for _ in 0..delta_count {
            deltas.push(reader.u64("delta")?);
        }
        let event_count = reader.u32("event count")?;
        let mut events = Vec::with_capacity(event_count as usize);
        for _ in 0..event_count {
            events.push(get_fleet_event(&mut reader)?);
        }
        let usage_count = reader.u32("usage count")?;
        let mut usages = Vec::with_capacity(usage_count as usize);
        for _ in 0..usage_count {
            usages.push(reader.u64("usage")?);
        }
        Ok(RoundFrame {
            round,
            fleet_now,
            selected,
            deltas,
            events,
            usages,
        })
    }
}

/// First divergence between a committed round frame and the re-executed
/// round; `None` means the resumed fleet walked the recorded path
/// exactly. Named fields keep a recovery failure readable without a
/// hex dump.
pub fn diff_round(expected: &RoundFrame, got: &RoundFrame) -> Option<String> {
    if expected == got {
        return None;
    }
    if expected.round != got.round {
        return Some(format!(
            "round number: committed {}, re-executed {}",
            expected.round, got.round
        ));
    }
    if expected.selected != got.selected {
        return Some(format!(
            "selection: committed {:?}, re-executed {:?}",
            expected.selected, got.selected
        ));
    }
    if expected.deltas != got.deltas {
        return Some(format!(
            "charges: committed {:?}, re-executed {:?}",
            expected.deltas, got.deltas
        ));
    }
    if expected.fleet_now != got.fleet_now {
        return Some(format!(
            "fleet clock: committed {}, re-executed {}",
            expected.fleet_now, got.fleet_now
        ));
    }
    for (index, (old, new)) in expected.events.iter().zip(got.events.iter()).enumerate() {
        if old != new {
            return Some(format!(
                "event {index}: committed {old:?}, re-executed {new:?}"
            ));
        }
    }
    if expected.events.len() != got.events.len() {
        return Some(format!(
            "event count: committed {}, re-executed {}",
            expected.events.len(),
            got.events.len()
        ));
    }
    Some(format!(
        "tenant usages: committed {:?}, re-executed {:?}",
        expected.usages, got.usages
    ))
}

/// The committed, replayable prefix recovered from a fleet WAL, plus a
/// census of what was (and was not) recoverable.
#[derive(Clone, Debug)]
pub struct FleetRecovery {
    /// The recorded inputs, from the WAL's header frame.
    pub recipe: FleetRecipe,
    /// The committed rounds, in order. Trailing record frames with no
    /// commit marker are discarded, like unterminated transactions.
    pub rounds: Vec<RoundFrame>,
    /// Byte offset just past the last committed frame — the durable
    /// prefix to truncate to before appending anew.
    pub committed_len: usize,
    /// Byte offset just past the last structurally intact frame.
    pub valid_len: usize,
    /// The first damage found, if any (torn tail, CRC mismatch, or a
    /// structural violation such as an unpaired commit).
    pub damage: Option<FrameDamage>,
    /// The WAL ends with a clean end frame (the run completed).
    pub clean_end: bool,
    /// Intact frames past the durable prefix, discarded on resume.
    pub discarded: usize,
}

/// Recovers the committed prefix of a fleet WAL. Damage past the
/// header is *reported*, never fatal — the longest committed prefix
/// always comes back.
///
/// # Errors
///
/// [`CodecError`] only when the preamble or the header frame is
/// unusable: with no recipe there is nothing to resume.
pub fn recover_fleet_wal(bytes: &[u8]) -> Result<FleetRecovery, CodecError> {
    let salvaged: WalSalvage = salvage(bytes)?;
    let mut frames = salvaged.frames.iter();
    let header = frames.next().ok_or(CodecError::BadHeader {
        detail: "WAL has no intact header frame".to_owned(),
    })?;
    if header.kind != WAL_FRAME_HEADER {
        return Err(CodecError::BadHeader {
            detail: format!(
                "first frame kind is 0x{:02x}, expected the header frame",
                header.kind
            ),
        });
    }
    let mut reader = Reader::new(&header.payload);
    let recipe = FleetRecipe::decode_from(&mut reader)?;

    let mut recovery = FleetRecovery {
        recipe,
        rounds: Vec::new(),
        committed_len: header.offset + header.payload.len() + WAL_FRAME_OVERHEAD,
        valid_len: salvaged.valid_len,
        damage: salvaged.damage.clone(),
        clean_end: salvaged.clean_end,
        discarded: 0,
    };
    let mut pending: Option<RoundFrame> = None;
    for frame in frames {
        // Structural violations downgrade to damage at the offending
        // frame; everything committed before it still recovers.
        let structural = |detail: String| FrameDamage::Corrupt {
            offset: frame.offset,
            detail,
        };
        match frame.kind {
            WAL_FRAME_RECORD => {
                if pending.is_some() {
                    recovery.damage = Some(structural(
                        "record frame follows an uncommitted record".to_owned(),
                    ));
                    break;
                }
                match RoundFrame::decode(&frame.payload) {
                    Ok(round) => pending = Some(round),
                    Err(err) => {
                        recovery.damage = Some(structural(format!("round frame: {err}")));
                        break;
                    }
                }
            }
            WAL_FRAME_COMMIT => {
                let mut raw = [0u8; 8];
                raw.copy_from_slice(&frame.payload);
                let seq = u64::from_le_bytes(raw);
                match pending.take() {
                    Some(round) if round.round == seq => {
                        recovery.committed_len =
                            frame.offset + frame.payload.len() + WAL_FRAME_OVERHEAD;
                        recovery.rounds.push(round);
                    }
                    Some(round) => {
                        recovery.damage = Some(structural(format!(
                            "commit marker {seq} does not match round {}",
                            round.round
                        )));
                        break;
                    }
                    None => {
                        recovery.damage =
                            Some(structural("commit marker with no record".to_owned()));
                        break;
                    }
                }
            }
            WAL_FRAME_END => {}
            _ => {
                recovery.damage = Some(structural(format!(
                    "unexpected frame kind 0x{:02x}",
                    frame.kind
                )));
                break;
            }
        }
    }
    recovery.discarded = salvaged
        .frames
        .iter()
        .filter(|frame| frame.offset >= recovery.committed_len)
        .count();
    Ok(recovery)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FleetLog {
        FleetLog {
            recipe: FleetRecipe {
                spec_text: "tenant a weight=3\njob tenant=a workload=gcc\n".to_owned(),
                threads: 4,
                slots: 2,
                fleet_budget: Some(1 << 20),
                chaos: Some(FailPlan::new(3, 0.02)),
                spmsec: 1000,
            },
            events: vec![
                FleetEvent::Admit {
                    job: 0,
                    fleet_now: 0,
                    budget: None,
                },
                FleetEvent::Defer {
                    job: 1,
                    fleet_now: 500,
                },
                FleetEvent::Evict {
                    job: 0,
                    bytes: 4096,
                    fleet_now: 600,
                },
                FleetEvent::Admit {
                    job: 1,
                    fleet_now: 700,
                    budget: Some(65536),
                },
                FleetEvent::Complete {
                    job: 0,
                    fleet_now: 9000,
                },
            ],
            outcomes: vec!["{\"job\":0}".to_owned(), "{\"job\":1}".to_owned()],
        }
    }

    #[test]
    fn roundtrips() {
        let log = sample();
        let decoded = FleetLog::decode(&log.encode()).expect("decode");
        assert_eq!(decoded, log);
    }

    #[test]
    fn roundtrips_minimal() {
        let log = FleetLog {
            recipe: FleetRecipe {
                spec_text: String::new(),
                threads: 1,
                slots: 1,
                fleet_budget: None,
                chaos: None,
                spmsec: 1000,
            },
            events: Vec::new(),
            outcomes: Vec::new(),
        };
        assert_eq!(FleetLog::decode(&log.encode()).expect("decode"), log);
    }

    #[test]
    fn rejects_bad_magic_and_truncation() {
        let bytes = sample().encode();
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(matches!(
            FleetLog::decode(&bad),
            Err(CodecError::BadHeader { .. })
        ));
        for len in 0..bytes.len() {
            assert!(
                FleetLog::decode(&bytes[..len]).is_err(),
                "prefix of {len} bytes decoded"
            );
        }
    }

    #[test]
    fn diff_pinpoints_first_divergence() {
        let log = sample();
        assert_eq!(diff_fleet(&log, &log.events, &log.outcomes), None);

        let mut events = log.events.clone();
        events[1] = FleetEvent::Defer {
            job: 1,
            fleet_now: 501,
        };
        let report = diff_fleet(&log, &events, &log.outcomes).expect("diverges");
        assert!(report.starts_with("event 1:"), "{report}");

        let mut outcomes = log.outcomes.clone();
        outcomes[1] = "{\"job\":9}".to_owned();
        let report = diff_fleet(&log, &log.events, &outcomes).expect("diverges");
        assert!(report.starts_with("job 1 outcome"), "{report}");

        let short = &log.events[..3];
        let report = diff_fleet(&log, short, &log.outcomes).expect("diverges");
        assert!(report.starts_with("event count"), "{report}");
    }
}

//! Little-endian wire primitives for the `.splog` codec.
//!
//! Deliberately minimal: fixed-width integers, length-prefixed byte
//! strings, and a bounds-checked [`Reader`]. Every multi-byte integer
//! is little-endian; every length prefix is a `u32`. Decoding never
//! panics — truncated or malformed input surfaces as [`CodecError`].

use std::fmt;

/// A malformed or truncated `.splog` byte stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The input ended before the value being decoded.
    Truncated {
        /// What was being decoded.
        what: &'static str,
    },
    /// A tag/discriminant byte had no defined meaning.
    BadTag {
        /// What was being decoded.
        what: &'static str,
        /// The offending tag value.
        tag: u64,
    },
    /// A length-prefixed string was not valid UTF-8.
    BadUtf8,
    /// The log's magic or version did not match this build.
    BadHeader {
        /// Human-readable description.
        detail: String,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { what } => write!(f, "truncated log while decoding {what}"),
            CodecError::BadTag { what, tag } => write!(f, "bad {what} tag {tag}"),
            CodecError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            CodecError::BadHeader { detail } => write!(f, "bad log header: {detail}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Appends a `u8`.
pub fn put_u8(out: &mut Vec<u8>, value: u8) {
    out.push(value);
}

/// Appends a `u16`, little-endian.
pub fn put_u16(out: &mut Vec<u8>, value: u16) {
    out.extend_from_slice(&value.to_le_bytes());
}

/// Appends a `u32`, little-endian.
pub fn put_u32(out: &mut Vec<u8>, value: u32) {
    out.extend_from_slice(&value.to_le_bytes());
}

/// Appends a `u64`, little-endian.
pub fn put_u64(out: &mut Vec<u8>, value: u64) {
    out.extend_from_slice(&value.to_le_bytes());
}

/// Appends an `i64`, little-endian.
pub fn put_i64(out: &mut Vec<u8>, value: i64) {
    out.extend_from_slice(&value.to_le_bytes());
}

/// Appends a `bool` as one byte.
pub fn put_bool(out: &mut Vec<u8>, value: bool) {
    out.push(u8::from(value));
}

/// Appends a `u32` length prefix followed by the bytes.
pub fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    put_u32(out, u32::try_from(bytes.len()).expect("field under 4 GiB"));
    out.extend_from_slice(bytes);
}

/// Appends a length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, value: &str) {
    put_bytes(out, value.as_bytes());
}

/// Appends an `Option<u64>` as a presence byte plus the value.
pub fn put_opt_u64(out: &mut Vec<u8>, value: Option<u64>) {
    match value {
        Some(value) => {
            put_u8(out, 1);
            put_u64(out, value);
        }
        None => put_u8(out, 0),
    }
}

/// Bounds-checked cursor over an encoded byte stream.
#[derive(Clone, Copy, Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wraps a byte slice.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the stream is fully consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// The unconsumed tail of the stream (for bridging to external
    /// cursor-based decoders).
    pub fn tail(&self) -> &'a [u8] {
        &self.buf[self.pos..]
    }

    /// Advances past `len` bytes an external decoder consumed.
    pub fn skip(&mut self, len: usize, what: &'static str) -> Result<(), CodecError> {
        self.take(len, what).map(|_| ())
    }

    fn take(&mut self, len: usize, what: &'static str) -> Result<&'a [u8], CodecError> {
        if self.remaining() < len {
            return Err(CodecError::Truncated { what });
        }
        let chunk = &self.buf[self.pos..self.pos + len];
        self.pos += len;
        Ok(chunk)
    }

    /// Reads a `u8`.
    pub fn u8(&mut self, what: &'static str) -> Result<u8, CodecError> {
        Ok(self.take(1, what)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self, what: &'static str) -> Result<u16, CodecError> {
        let chunk = self.take(2, what)?;
        Ok(u16::from_le_bytes([chunk[0], chunk[1]]))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self, what: &'static str) -> Result<u32, CodecError> {
        let chunk = self.take(4, what)?;
        Ok(u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self, what: &'static str) -> Result<u64, CodecError> {
        let chunk = self.take(8, what)?;
        let mut raw = [0u8; 8];
        raw.copy_from_slice(chunk);
        Ok(u64::from_le_bytes(raw))
    }

    /// Reads a little-endian `i64`.
    pub fn i64(&mut self, what: &'static str) -> Result<i64, CodecError> {
        let chunk = self.take(8, what)?;
        let mut raw = [0u8; 8];
        raw.copy_from_slice(chunk);
        Ok(i64::from_le_bytes(raw))
    }

    /// Reads a `bool` byte (0 or 1; anything else is a bad tag).
    pub fn bool(&mut self, what: &'static str) -> Result<bool, CodecError> {
        match self.u8(what)? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(CodecError::BadTag {
                what,
                tag: tag as u64,
            }),
        }
    }

    /// Reads a `u32`-length-prefixed byte string.
    pub fn bytes(&mut self, what: &'static str) -> Result<&'a [u8], CodecError> {
        let len = self.u32(what)? as usize;
        self.take(len, what)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self, what: &'static str) -> Result<String, CodecError> {
        let bytes = self.bytes(what)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::BadUtf8)
    }

    /// Reads an `Option<u64>` written by [`put_opt_u64`].
    pub fn opt_u64(&mut self, what: &'static str) -> Result<Option<u64>, CodecError> {
        match self.u8(what)? {
            0 => Ok(None),
            1 => Ok(Some(self.u64(what)?)),
            tag => Err(CodecError::BadTag {
                what,
                tag: tag as u64,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut out = Vec::new();
        put_u8(&mut out, 7);
        put_u16(&mut out, 0xBEEF);
        put_u32(&mut out, 0xDEAD_BEEF);
        put_u64(&mut out, u64::MAX - 3);
        put_i64(&mut out, -42);
        put_bool(&mut out, true);
        put_str(&mut out, "gcc");
        put_opt_u64(&mut out, Some(99));
        put_opt_u64(&mut out, None);

        let mut reader = Reader::new(&out);
        assert_eq!(reader.u8("a").unwrap(), 7);
        assert_eq!(reader.u16("b").unwrap(), 0xBEEF);
        assert_eq!(reader.u32("c").unwrap(), 0xDEAD_BEEF);
        assert_eq!(reader.u64("d").unwrap(), u64::MAX - 3);
        assert_eq!(reader.i64("e").unwrap(), -42);
        assert!(reader.bool("f").unwrap());
        assert_eq!(reader.str("g").unwrap(), "gcc");
        assert_eq!(reader.opt_u64("h").unwrap(), Some(99));
        assert_eq!(reader.opt_u64("i").unwrap(), None);
        assert!(reader.is_empty());
    }

    #[test]
    fn truncation_and_bad_tags_are_typed_errors() {
        let mut reader = Reader::new(&[1, 2]);
        assert_eq!(
            reader.u32("len"),
            Err(CodecError::Truncated { what: "len" })
        );
        let mut reader = Reader::new(&[9]);
        assert_eq!(
            reader.bool("flag"),
            Err(CodecError::BadTag {
                what: "flag",
                tag: 9
            })
        );
        // A string whose length prefix overruns the buffer.
        let mut out = Vec::new();
        put_u32(&mut out, 100);
        out.push(b'x');
        let mut reader = Reader::new(&out);
        assert_eq!(
            reader.str("name"),
            Err(CodecError::Truncated { what: "name" })
        );
    }
}

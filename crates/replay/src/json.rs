//! Dependency-free JSON helpers shared by the bench harness and the
//! replay verifier.
//!
//! The repo emits and re-reads its own JSON (tracking files, CI guards,
//! replay verification) without a serde dependency — the build is
//! offline. These helpers are the *reading* half: just enough parsing
//! to pull numbers and arrays back out of JSON this codebase emitted.
//! [`report_to_json`] is the writing half for run reports, used by
//! `spin-replay` so recorded and replayed reports can be byte-diffed.

use std::fmt::Write as _;
use superpin::{SliceEnd, SliceReport, SuperPinReport};

/// Finds the raw text between the brackets of `"field":[...]` in
/// `json`, honoring nesting and string literals. `None` when the field
/// is absent (e.g. a pre-history tracking file).
pub fn extract_array<'a>(json: &'a str, field: &str) -> Option<&'a str> {
    let needle = format!("\"{field}\":[");
    let start = json.find(&needle)? + needle.len();
    let mut depth = 1usize;
    let mut in_string = false;
    let mut escaped = false;
    for (i, ch) in json[start..].char_indices() {
        if in_string {
            match ch {
                _ if escaped => escaped = false,
                '\\' => escaped = true,
                '"' => in_string = false,
                _ => {}
            }
            continue;
        }
        match ch {
            '"' => in_string = true,
            '[' | '{' => depth += 1,
            ']' | '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&json[start..start + i]);
                }
            }
            _ => {}
        }
    }
    None
}

/// Splits a JSON array body into its top-level elements (text slices),
/// honoring nesting and string literals.
pub fn split_top_level(body: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut depth = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    let mut from = 0usize;
    for (i, ch) in body.char_indices() {
        if in_string {
            match ch {
                _ if escaped => escaped = false,
                '\\' => escaped = true,
                '"' => in_string = false,
                _ => {}
            }
            continue;
        }
        match ch {
            '"' => in_string = true,
            '[' | '{' => depth += 1,
            ']' | '}' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => {
                parts.push(&body[from..i]);
                from = i + 1;
            }
            _ => {}
        }
    }
    if from < body.len() {
        parts.push(&body[from..]);
    }
    parts
}

/// Reads the numeric value of a top-level `"field":<number>` pair from
/// emitted JSON — enough parsing for the CI perf guard to compare a
/// fresh run against the checked-in baseline without a JSON dependency.
pub fn extract_number(json: &str, field: &str) -> Option<f64> {
    let needle = format!("\"{field}\":");
    let start = json.find(&needle)? + needle.len();
    let rest = &json[start..];
    let end = rest
        .find(|ch: char| !matches!(ch, '0'..='9' | '-' | '+' | '.' | 'e' | 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn slice_end_name(end: SliceEnd) -> &'static str {
    match end {
        SliceEnd::SignatureDetected => "signature",
        SliceEnd::RecordsExhausted => "records",
        SliceEnd::Exited => "exited",
        SliceEnd::ToolEnded => "tool",
    }
}

fn slice_to_json(out: &mut String, slice: &SliceReport) {
    let _ = write!(
        out,
        "{{\"num\":{},\"insts\":{},\"records_played\":{},\"end\":\"{}\",\
         \"start_cycles\":{},\"wake_cycles\":{},\"end_cycles\":{},\
         \"app\":{},\"analysis\":{},\"jit\":{},\"dispatch\":{},\"syscall\":{},\
         \"insts_executed\":{},\"traces_executed\":{},\"analysis_calls\":{},\
         \"if_checks\":{},\"then_calls\":{},\"shared_adoptions\":{},\
         \"shared_misses\":{},\"shared_contention\":{},\
         \"lookups\":{},\"hits\":{},\"traces_compiled\":{},\"insts_compiled\":{},\
         \"flushes\":{},\"smc_flushes\":{},\"cow_copies\":{}}}",
        slice.num,
        slice.insts,
        slice.records_played,
        slice_end_name(slice.end),
        slice.start_cycles,
        slice.wake_cycles,
        slice.end_cycles,
        slice.engine.cycles.app,
        slice.engine.cycles.analysis,
        slice.engine.cycles.jit,
        slice.engine.cycles.dispatch,
        slice.engine.cycles.syscall,
        slice.engine.insts_executed,
        slice.engine.traces_executed,
        slice.engine.analysis_calls,
        slice.engine.if_checks,
        slice.engine.then_calls,
        slice.engine.shared_cache_adoptions,
        slice.engine.shared_cache_misses,
        slice.engine.shared_cache_contention,
        slice.cache.lookups,
        slice.cache.hits,
        slice.cache.traces_compiled,
        slice.cache.insts_compiled,
        slice.cache.flushes,
        slice.cache.smc_flushes,
        slice.cow_copies,
    );
}

/// The report's top-level numeric fields, in emission order. Replay
/// verification walks this list to *name* the first differing field.
pub const REPORT_FIELDS: &[&str] = &[
    "total_cycles",
    "master_exit_cycles",
    "native_cycles",
    "fork_other_cycles",
    "sleep_cycles",
    "pipeline_cycles",
    "master_insts",
    "master_syscalls",
    "syscall_stops",
    "timeout_stops",
    "quick_checks",
    "full_checks",
    "stack_checks",
    "detections",
    "forks_on_timeout",
    "forks_on_syscall",
    "stall_events",
    "master_cow_copies",
    "epochs",
    "slice_retries",
    "slices_degraded",
    "peak_resident_bytes",
    "slices_deferred",
    "checkpoints_dropped",
    "caches_evicted",
];

/// Serializes a complete run report as one-line JSON. Deterministic
/// field order; two equal reports produce byte-equal JSON, so CI can
/// `diff` recorded vs. replayed report files directly.
pub fn report_to_json(report: &SuperPinReport) -> String {
    let mut out = String::from("{");
    let values = [
        report.total_cycles,
        report.master_exit_cycles,
        report.breakdown.native_cycles,
        report.breakdown.fork_other_cycles,
        report.breakdown.sleep_cycles,
        report.breakdown.pipeline_cycles,
        report.master_insts,
        report.master_syscalls,
        report.ptrace.syscall_stops,
        report.ptrace.timeout_stops,
        report.sig_stats.quick_checks,
        report.sig_stats.full_checks,
        report.sig_stats.stack_checks,
        report.sig_stats.detections,
        report.forks_on_timeout,
        report.forks_on_syscall,
        report.stall_events,
        report.master_cow_copies,
        report.epochs,
        report.slice_retries,
        report.slices_degraded,
        report.peak_resident_bytes,
        report.slices_deferred,
        report.checkpoints_dropped,
        report.caches_evicted,
    ];
    for (field, value) in REPORT_FIELDS.iter().zip(values) {
        let _ = write!(out, "\"{field}\":{value},");
    }
    out.push_str("\"slices\":[");
    for (i, slice) in report.slices.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        slice_to_json(&mut out, slice);
    }
    out.push_str("]}");
    out
}

/// Names the first field where two report JSONs differ: a
/// [`REPORT_FIELDS`] entry, `slices.len`, or `slices[i]`. `None` when
/// they agree everywhere this comparison looks (for byte-equal JSON,
/// always `None`).
pub fn first_report_difference(a: &str, b: &str) -> Option<String> {
    for field in REPORT_FIELDS {
        if extract_number(a, field) != extract_number(b, field) {
            return Some((*field).to_string());
        }
    }
    let slices_a = extract_array(a, "slices")
        .map(split_top_level)
        .unwrap_or_default();
    let slices_b = extract_array(b, "slices")
        .map(split_top_level)
        .unwrap_or_default();
    if slices_a.len() != slices_b.len() {
        return Some("slices.len".to_string());
    }
    for (i, (sa, sb)) in slices_a.iter().zip(&slices_b).enumerate() {
        if sa != sb {
            return Some(format!("slices[{i}]"));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extract_number_reads_emitted_fields() {
        assert_eq!(extract_number("{\"x\":12.5}", "x"), Some(12.5));
        assert_eq!(extract_number("{\"x\":-3e2,\"y\":1}", "x"), Some(-300.0));
        assert_eq!(extract_number("{\"x\":1}", "no_such_field"), None);
        // The needle is exact: a field whose *suffix* matches another
        // name must not satisfy a lookup for the shorter name alone
        // when the shorter name is absent... it does match textually —
        // callers use distinct field names, as the emitters here do.
        assert_eq!(
            extract_number("{\"epochs\":42,\"x\":1}", "epochs"),
            Some(42.0)
        );
    }

    #[test]
    fn array_extraction_honors_strings_and_nesting() {
        let json = "{\"history\":[{\"key\":\"a]b\",\"v\":[1,2]},{\"key\":\"c\"}],\"z\":1}";
        let body = extract_array(json, "history").expect("array present");
        assert_eq!(body, "{\"key\":\"a]b\",\"v\":[1,2]},{\"key\":\"c\"}");
        let parts = split_top_level(body);
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0], "{\"key\":\"a]b\",\"v\":[1,2]}");
        assert_eq!(parts[1], "{\"key\":\"c\"}");
        assert_eq!(extract_array(json, "missing"), None);
    }

    #[test]
    fn escaped_quotes_and_brackets_inside_strings_are_opaque() {
        let json = "{\"a\":[{\"s\":\"q\\\"[}]\",\"n\":1},{\"n\":2}],\"b\":[]}";
        let body = extract_array(json, "a").expect("array present");
        let parts = split_top_level(body);
        assert_eq!(parts.len(), 2);
        assert!(parts[0].contains("\\\""));
        assert_eq!(parts[1], "{\"n\":2}");
        assert_eq!(extract_array(json, "b"), Some(""));
        assert!(split_top_level("").is_empty());
    }

    #[test]
    fn report_json_diffing_names_the_first_divergent_field() {
        use superpin::{SuperPinReport, TimeBreakdown};
        use superpin_vm::ptrace::PtraceStats;
        let base = SuperPinReport {
            total_cycles: 100,
            master_exit_cycles: 90,
            breakdown: TimeBreakdown::default(),
            master_insts: 50,
            master_syscalls: 3,
            ptrace: PtraceStats::default(),
            slices: Vec::new(),
            sig_stats: Default::default(),
            forks_on_timeout: 2,
            forks_on_syscall: 0,
            stall_events: 0,
            master_cow_copies: 0,
            epochs: 7,
            slice_retries: 0,
            slices_degraded: 0,
            peak_resident_bytes: 0,
            slices_deferred: 0,
            checkpoints_dropped: 0,
            caches_evicted: 0,
        };
        let a = report_to_json(&base);
        assert_eq!(first_report_difference(&a, &a), None);
        let mut perturbed = base.clone();
        perturbed.epochs = 8;
        let b = report_to_json(&perturbed);
        assert_eq!(first_report_difference(&a, &b).as_deref(), Some("epochs"));
        let mut reparsed_ok = base;
        reparsed_ok.total_cycles = 101;
        let c = report_to_json(&reparsed_ok);
        assert_eq!(
            first_report_difference(&a, &c).as_deref(),
            Some("total_cycles")
        );
    }
}

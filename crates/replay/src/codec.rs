//! Binary codecs for the payloads the `.splog` framing carries: syscall
//! records, nondeterministic events, and complete run reports.
//!
//! Every codec is a hand-rolled, versioned little-endian layout (the
//! build is offline — no serde). Encoding is infallible; decoding
//! returns [`CodecError`] on truncation or unknown tags, never panics.

use crate::wire::{put_i64, put_opt_u64, put_u32, put_u64, put_u8, CodecError, Reader};
use superpin::{
    AdmissionDecision, NondetEvent, SignatureStats, SliceEnd, SliceReport, SuperPinReport,
    TimeBreakdown,
};
use superpin_dbi::{CacheStats, CycleBreakdown, EngineStats};
use superpin_isa::Reg;
use superpin_vm::kernel::{MapOp, MemDelta, SyscallNo, SyscallRecord};
use superpin_vm::ptrace::PtraceStats;

/// Encodes one syscall record.
pub fn put_syscall_record(out: &mut Vec<u8>, record: &SyscallRecord) {
    put_u8(out, record.number as u64 as u8);
    for arg in record.args {
        put_u64(out, arg);
    }
    put_u64(out, record.ret);
    put_u32(out, record.mem_writes.len() as u32);
    for delta in &record.mem_writes {
        put_u64(out, delta.addr);
        crate::wire::put_bytes(out, &delta.bytes);
    }
    put_u32(out, record.map_ops.len() as u32);
    for op in &record.map_ops {
        match *op {
            MapOp::Map { addr, len } => {
                put_u8(out, 0);
                put_u64(out, addr);
                put_u64(out, len);
            }
            MapOp::Unmap { addr } => {
                put_u8(out, 1);
                put_u64(out, addr);
            }
            MapOp::Brk { brk } => {
                put_u8(out, 2);
                put_u64(out, brk);
            }
        }
    }
    put_u32(out, record.reg_writes.len() as u32);
    for &(reg, value) in &record.reg_writes {
        put_u8(out, reg.raw());
        put_u64(out, value);
    }
    put_opt_u64(out, record.pc_override);
    match record.exited {
        Some(code) => {
            put_u8(out, 1);
            put_i64(out, code);
        }
        None => put_u8(out, 0),
    }
}

/// Decodes one syscall record.
pub fn get_syscall_record(reader: &mut Reader<'_>) -> Result<SyscallRecord, CodecError> {
    let raw = reader.u8("syscall number")?;
    let number = SyscallNo::from_raw(raw as u64).ok_or(CodecError::BadTag {
        what: "syscall number",
        tag: raw as u64,
    })?;
    let mut args = [0u64; 5];
    for arg in &mut args {
        *arg = reader.u64("syscall arg")?;
    }
    let ret = reader.u64("syscall ret")?;
    let mem_count = reader.u32("mem_writes count")?;
    let mut mem_writes = Vec::with_capacity(mem_count.min(1024) as usize);
    for _ in 0..mem_count {
        let addr = reader.u64("mem_write addr")?;
        let bytes = reader.bytes("mem_write bytes")?;
        mem_writes.push(MemDelta {
            addr,
            bytes: bytes.into(),
        });
    }
    let map_count = reader.u32("map_ops count")?;
    let mut map_ops = Vec::with_capacity(map_count.min(1024) as usize);
    for _ in 0..map_count {
        let op = match reader.u8("map_op tag")? {
            0 => MapOp::Map {
                addr: reader.u64("map addr")?,
                len: reader.u64("map len")?,
            },
            1 => MapOp::Unmap {
                addr: reader.u64("unmap addr")?,
            },
            2 => MapOp::Brk {
                brk: reader.u64("brk")?,
            },
            tag => {
                return Err(CodecError::BadTag {
                    what: "map_op tag",
                    tag: tag as u64,
                })
            }
        };
        map_ops.push(op);
    }
    let reg_count = reader.u32("reg_writes count")?;
    let mut reg_writes = Vec::with_capacity(reg_count.min(1024) as usize);
    for _ in 0..reg_count {
        let index = reader.u8("reg index")?;
        let reg = Reg::try_new(index).ok_or(CodecError::BadTag {
            what: "reg index",
            tag: index as u64,
        })?;
        reg_writes.push((reg, reader.u64("reg value")?));
    }
    let pc_override = reader.opt_u64("pc_override")?;
    let exited = match reader.u8("exited flag")? {
        0 => None,
        1 => Some(reader.i64("exit code")?),
        tag => {
            return Err(CodecError::BadTag {
                what: "exited flag",
                tag: tag as u64,
            })
        }
    };
    Ok(SyscallRecord {
        number,
        args,
        ret,
        mem_writes,
        map_ops,
        reg_writes,
        pc_override,
        exited,
    })
}

/// Encodes one nondeterministic event.
pub fn put_event(out: &mut Vec<u8>, event: &NondetEvent) {
    match event {
        NondetEvent::Syscall(record) => {
            put_u8(out, 1);
            put_syscall_record(out, record);
        }
        NondetEvent::EpochPlan { planned } => {
            put_u8(out, 2);
            put_u64(out, *planned);
        }
        NondetEvent::Admission {
            decision,
            dropped,
            evicted,
        } => {
            put_u8(out, 3);
            put_u8(
                out,
                match decision {
                    AdmissionDecision::Admit => 0,
                    AdmissionDecision::AdmitDegraded => 1,
                    AdmissionDecision::Defer => 2,
                },
            );
            put_u32(out, dropped.len() as u32);
            for num in dropped {
                put_u32(out, *num);
            }
            put_u32(out, evicted.len() as u32);
            for num in evicted {
                put_u32(out, *num);
            }
        }
        NondetEvent::FaultLedger {
            slice_retries,
            slices_degraded,
        } => {
            put_u8(out, 4);
            put_u64(out, *slice_retries);
            put_u64(out, *slices_degraded);
        }
    }
}

/// Decodes one nondeterministic event.
pub fn get_event(reader: &mut Reader<'_>) -> Result<NondetEvent, CodecError> {
    match reader.u8("event tag")? {
        1 => Ok(NondetEvent::Syscall(get_syscall_record(reader)?)),
        2 => Ok(NondetEvent::EpochPlan {
            planned: reader.u64("planned quanta")?,
        }),
        3 => {
            let decision = match reader.u8("admission decision")? {
                0 => AdmissionDecision::Admit,
                1 => AdmissionDecision::AdmitDegraded,
                2 => AdmissionDecision::Defer,
                tag => {
                    return Err(CodecError::BadTag {
                        what: "admission decision",
                        tag: tag as u64,
                    })
                }
            };
            let dropped_count = reader.u32("dropped count")?;
            let mut dropped = Vec::with_capacity(dropped_count.min(1024) as usize);
            for _ in 0..dropped_count {
                dropped.push(reader.u32("dropped slice")?);
            }
            let evicted_count = reader.u32("evicted count")?;
            let mut evicted = Vec::with_capacity(evicted_count.min(1024) as usize);
            for _ in 0..evicted_count {
                evicted.push(reader.u32("evicted slice")?);
            }
            Ok(NondetEvent::Admission {
                decision,
                dropped,
                evicted,
            })
        }
        4 => Ok(NondetEvent::FaultLedger {
            slice_retries: reader.u64("slice_retries")?,
            slices_degraded: reader.u64("slices_degraded")?,
        }),
        tag => Err(CodecError::BadTag {
            what: "event tag",
            tag: tag as u64,
        }),
    }
}

fn put_slice_report(out: &mut Vec<u8>, slice: &SliceReport) {
    put_u32(out, slice.num);
    put_u64(out, slice.insts);
    put_u64(out, slice.records_played);
    put_u8(
        out,
        match slice.end {
            SliceEnd::SignatureDetected => 0,
            SliceEnd::RecordsExhausted => 1,
            SliceEnd::Exited => 2,
            SliceEnd::ToolEnded => 3,
        },
    );
    put_u64(out, slice.start_cycles);
    put_u64(out, slice.wake_cycles);
    put_u64(out, slice.end_cycles);
    for value in [
        slice.engine.cycles.app,
        slice.engine.cycles.analysis,
        slice.engine.cycles.jit,
        slice.engine.cycles.dispatch,
        slice.engine.cycles.syscall,
        slice.engine.insts_executed,
        slice.engine.traces_executed,
        slice.engine.analysis_calls,
        slice.engine.if_checks,
        slice.engine.then_calls,
        slice.engine.shared_cache_adoptions,
        slice.engine.shared_cache_misses,
        slice.engine.shared_cache_contention,
        slice.cache.lookups,
        slice.cache.hits,
        slice.cache.traces_compiled,
        slice.cache.insts_compiled,
        slice.cache.flushes,
        slice.cache.smc_flushes,
        slice.cow_copies,
    ] {
        put_u64(out, value);
    }
}

fn get_slice_report(reader: &mut Reader<'_>) -> Result<SliceReport, CodecError> {
    let num = reader.u32("slice num")?;
    let insts = reader.u64("slice insts")?;
    let records_played = reader.u64("records_played")?;
    let end = match reader.u8("slice end")? {
        0 => SliceEnd::SignatureDetected,
        1 => SliceEnd::RecordsExhausted,
        2 => SliceEnd::Exited,
        3 => SliceEnd::ToolEnded,
        tag => {
            return Err(CodecError::BadTag {
                what: "slice end",
                tag: tag as u64,
            })
        }
    };
    let start_cycles = reader.u64("start_cycles")?;
    let wake_cycles = reader.u64("wake_cycles")?;
    let end_cycles = reader.u64("end_cycles")?;
    let mut values = [0u64; 20];
    for value in &mut values {
        *value = reader.u64("slice stat")?;
    }
    Ok(SliceReport {
        num,
        insts,
        records_played,
        end,
        start_cycles,
        wake_cycles,
        end_cycles,
        engine: EngineStats {
            cycles: CycleBreakdown {
                app: values[0],
                analysis: values[1],
                jit: values[2],
                dispatch: values[3],
                syscall: values[4],
            },
            insts_executed: values[5],
            traces_executed: values[6],
            analysis_calls: values[7],
            if_checks: values[8],
            then_calls: values[9],
            shared_cache_adoptions: values[10],
            shared_cache_misses: values[11],
            shared_cache_contention: values[12],
        },
        cache: CacheStats {
            lookups: values[13],
            hits: values[14],
            traces_compiled: values[15],
            insts_compiled: values[16],
            flushes: values[17],
            smc_flushes: values[18],
        },
        cow_copies: values[19],
    })
}

/// Encodes a complete run report.
pub fn put_report(out: &mut Vec<u8>, report: &SuperPinReport) {
    for value in [
        report.total_cycles,
        report.master_exit_cycles,
        report.breakdown.native_cycles,
        report.breakdown.fork_other_cycles,
        report.breakdown.sleep_cycles,
        report.breakdown.pipeline_cycles,
        report.master_insts,
        report.master_syscalls,
        report.ptrace.syscall_stops,
        report.ptrace.timeout_stops,
        report.sig_stats.quick_checks,
        report.sig_stats.full_checks,
        report.sig_stats.stack_checks,
        report.sig_stats.detections,
        report.forks_on_timeout,
        report.forks_on_syscall,
        report.stall_events,
        report.master_cow_copies,
        report.epochs,
        report.slice_retries,
        report.slices_degraded,
        report.peak_resident_bytes,
        report.slices_deferred,
        report.checkpoints_dropped,
        report.caches_evicted,
    ] {
        put_u64(out, value);
    }
    put_u32(out, report.slices.len() as u32);
    for slice in &report.slices {
        put_slice_report(out, slice);
    }
}

/// Decodes a complete run report.
pub fn get_report(reader: &mut Reader<'_>) -> Result<SuperPinReport, CodecError> {
    let mut values = [0u64; 25];
    for value in &mut values {
        *value = reader.u64("report field")?;
    }
    let slice_count = reader.u32("slice count")?;
    let mut slices = Vec::with_capacity(slice_count.min(4096) as usize);
    for _ in 0..slice_count {
        slices.push(get_slice_report(reader)?);
    }
    Ok(SuperPinReport {
        total_cycles: values[0],
        master_exit_cycles: values[1],
        breakdown: TimeBreakdown {
            native_cycles: values[2],
            fork_other_cycles: values[3],
            sleep_cycles: values[4],
            pipeline_cycles: values[5],
        },
        master_insts: values[6],
        master_syscalls: values[7],
        ptrace: PtraceStats {
            syscall_stops: values[8],
            timeout_stops: values[9],
        },
        slices,
        sig_stats: SignatureStats {
            quick_checks: values[10],
            full_checks: values[11],
            stack_checks: values[12],
            detections: values[13],
        },
        forks_on_timeout: values[14],
        forks_on_syscall: values[15],
        stall_events: values[16],
        master_cow_copies: values[17],
        epochs: values[18],
        slice_retries: values[19],
        slices_degraded: values[20],
        peak_resident_bytes: values[21],
        slices_deferred: values[22],
        checkpoints_dropped: values[23],
        caches_evicted: values[24],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record() -> SyscallRecord {
        SyscallRecord {
            number: SyscallNo::Read,
            args: [3, 0x1000, 64, 0, 0],
            ret: 64,
            mem_writes: vec![MemDelta {
                addr: 0x1000,
                bytes: vec![1u8, 2, 3, 4].into(),
            }],
            map_ops: vec![
                MapOp::Map {
                    addr: 0x2000,
                    len: 0x1000,
                },
                MapOp::Unmap { addr: 0x2000 },
                MapOp::Brk { brk: 0x3000 },
            ],
            reg_writes: vec![(Reg::SP, 0xFF00), (Reg::new(1), 7)],
            pc_override: Some(0x400),
            exited: Some(-3),
        }
    }

    fn sample_report() -> SuperPinReport {
        SuperPinReport {
            total_cycles: 123_456,
            master_exit_cycles: 100_000,
            breakdown: TimeBreakdown {
                native_cycles: 90_000,
                fork_other_cycles: 5_000,
                sleep_cycles: 5_000,
                pipeline_cycles: 23_456,
            },
            master_insts: 45_000,
            master_syscalls: 12,
            ptrace: PtraceStats {
                syscall_stops: 12,
                timeout_stops: 4,
            },
            slices: vec![SliceReport {
                num: 1,
                insts: 20_000,
                records_played: 3,
                end: SliceEnd::SignatureDetected,
                start_cycles: 0,
                wake_cycles: 1_000,
                end_cycles: 44_000,
                engine: EngineStats {
                    cycles: CycleBreakdown {
                        app: 1,
                        analysis: 2,
                        jit: 3,
                        dispatch: 4,
                        syscall: 5,
                    },
                    insts_executed: 20_000,
                    traces_executed: 700,
                    analysis_calls: 20_000,
                    if_checks: 0,
                    then_calls: 0,
                    shared_cache_adoptions: 0,
                    shared_cache_misses: 0,
                    shared_cache_contention: 0,
                },
                cache: CacheStats {
                    lookups: 700,
                    hits: 650,
                    traces_compiled: 50,
                    insts_compiled: 400,
                    flushes: 0,
                    smc_flushes: 1,
                },
                cow_copies: 9,
            }],
            sig_stats: SignatureStats {
                quick_checks: 500,
                full_checks: 2,
                stack_checks: 1,
                detections: 1,
            },
            forks_on_timeout: 3,
            forks_on_syscall: 1,
            stall_events: 0,
            master_cow_copies: 17,
            epochs: 88,
            slice_retries: 2,
            slices_degraded: 1,
            peak_resident_bytes: 1 << 20,
            slices_deferred: 1,
            checkpoints_dropped: 2,
            caches_evicted: 1,
        }
    }

    #[test]
    fn syscall_record_round_trips() {
        let record = sample_record();
        let mut out = Vec::new();
        put_syscall_record(&mut out, &record);
        let mut reader = Reader::new(&out);
        assert_eq!(get_syscall_record(&mut reader).unwrap(), record);
        assert!(reader.is_empty());
    }

    #[test]
    fn every_event_kind_round_trips() {
        let events = vec![
            NondetEvent::Syscall(sample_record()),
            NondetEvent::EpochPlan { planned: 17 },
            NondetEvent::Admission {
                decision: AdmissionDecision::AdmitDegraded,
                dropped: vec![2, 5],
                evicted: vec![1],
            },
            NondetEvent::Admission {
                decision: AdmissionDecision::Defer,
                dropped: vec![],
                evicted: vec![],
            },
            NondetEvent::FaultLedger {
                slice_retries: 4,
                slices_degraded: 1,
            },
        ];
        let mut out = Vec::new();
        for event in &events {
            put_event(&mut out, event);
        }
        let mut reader = Reader::new(&out);
        for event in &events {
            assert_eq!(&get_event(&mut reader).unwrap(), event);
        }
        assert!(reader.is_empty());
    }

    #[test]
    fn report_round_trips() {
        let report = sample_report();
        let mut out = Vec::new();
        put_report(&mut out, &report);
        let mut reader = Reader::new(&out);
        assert_eq!(get_report(&mut reader).unwrap(), report);
        assert!(reader.is_empty());
    }

    #[test]
    fn corrupt_event_tag_is_rejected() {
        let mut out = Vec::new();
        put_event(&mut out, &NondetEvent::EpochPlan { planned: 5 });
        out[0] = 0xFF;
        let mut reader = Reader::new(&out);
        assert_eq!(
            get_event(&mut reader),
            Err(CodecError::BadTag {
                what: "event tag",
                tag: 0xFF
            })
        );
    }
}

#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! # superpin-replay
//!
//! First-class record/replay for SuperPin runs, with divergence
//! diffing.
//!
//! A live run's complete nondeterministic surface — syscall effects,
//! epoch plans, governed fork admissions, and the fault-recovery
//! ledger — streams into a versioned binary log (`.splog`); see
//! [`superpin::record`] for what is captured and why fault firings are
//! stored as the plan rather than per firing. A [`ReplayLog`] holds the
//! parsed log: the [`RunRecipe`] (everything needed to rebuild the
//! run's initial state), the event stream, and the recorded run's final
//! report. [`replay_run`] re-executes a run from the log alone —
//! including at a *different* thread count than the recording, the
//! design's headline property — and [`verify_replay`] checks the
//! replayed report field for field. [`diff_logs`] replays two logs in
//! lockstep and bisects their first divergence to an epoch barrier,
//! quantum window, and instruction range.
//!
//! The `spin-replay` CLI (in `superpin-tools`) fronts all of this:
//! `record` emits a `.splog`, `replay` re-executes and verifies, `diff`
//! pinpoints the first divergence between two logs.

pub mod codec;
pub mod differ;
pub mod drive;
pub mod events;
pub mod fleet;
pub mod json;
pub mod log;
pub mod recipe;
pub mod wal;
pub mod wire;

#[cfg(test)]
pub(crate) mod testutil;

pub use differ::{diff_logs, diff_runners};
pub use differ::{DiffOutcome, DivergenceReport, RegDelta};
pub use drive::{build_runner, record_run, replay_run, verify_replay, ReplayError};
pub use events::{EventSink, EventStream};
pub use fleet::{
    diff_fleet, diff_round, recover_fleet_wal, FleetEvent, FleetLog, FleetRecipe, FleetRecovery,
    RoundFrame,
};
pub use log::{ReplayLog, MAGIC, VERSION};
pub use recipe::RunRecipe;
pub use wal::{
    atomic_write, crc32, salvage, FrameDamage, FsyncPolicy, MemSink, WalCause, WalIoError, WalOp,
    WalSink, WalWriter,
};
pub use wire::CodecError;

//! Adversarial-input suite for every on-disk container this crate
//! reads: `SPWAL` fleet journals, `.splog` recordings, and `SPFL`
//! fleet logs.
//!
//! The contract under fuzz: arbitrary byte flips and truncations may
//! make a file undecodable, but they must **never panic a reader** —
//! every path returns a typed error or a salvage that stops at the
//! damage. Plus the salvage invariants recovery leans on: the durable
//! prefix is always structurally clean, and truncating a journal can
//! only shorten (never change) the committed round sequence.

use proptest::prelude::*;
use superpin::FailPlan;
use superpin_replay::fleet::{recover_fleet_wal, FleetEvent, FleetLog, FleetRecipe, RoundFrame};
use superpin_replay::log::{explain_decode_failure, scan};
use superpin_replay::wal::{salvage, FsyncPolicy, MemSink, WalWriter, WAL_FRAME_RECORD};
use superpin_replay::{CodecError, ReplayLog, RunRecipe};
use superpin_workloads::Scale;

fn sample_recipe() -> FleetRecipe {
    FleetRecipe {
        spec_text: "tenant a weight=1\njob tenant=a workload=x\n".to_owned(),
        threads: 2,
        slots: 2,
        fleet_budget: Some(1 << 20),
        chaos: Some(FailPlan::new(3, 0.02)),
        spmsec: 1000,
    }
}

fn sample_round(round: u64) -> RoundFrame {
    RoundFrame {
        round,
        fleet_now: round * 1717,
        selected: vec![0, round as u32 % 3],
        deltas: vec![1500 + round, 900],
        events: vec![
            FleetEvent::Admit {
                job: round as u32,
                fleet_now: round * 1717,
                budget: (round % 2 == 0).then_some(4096),
            },
            FleetEvent::Complete {
                job: round as u32,
                fleet_now: round * 1717 + 3,
            },
        ],
        usages: vec![round * 64, 128],
    }
}

/// A well-formed 12-round WAL, sealed with an end frame.
fn sample_wal() -> Vec<u8> {
    let sink = MemSink::new();
    let mut writer =
        WalWriter::create(Box::new(sink.clone()), FsyncPolicy::Off, None).expect("wal opens");
    let mut header = Vec::new();
    sample_recipe().encode_into(&mut header);
    writer.append(0x01, &header).expect("header");
    for round in 1..=12u64 {
        writer
            .append(WAL_FRAME_RECORD, &sample_round(round).encode())
            .expect("record");
        writer.commit(round).expect("commit");
    }
    writer.end().expect("end");
    sink.bytes()
}

fn sample_splog() -> Vec<u8> {
    use superpin::{AdmissionDecision, NondetEvent, SuperPinReport, TimeBreakdown};
    use superpin_vm::ptrace::PtraceStats;
    let report = SuperPinReport {
        total_cycles: 10,
        master_exit_cycles: 8,
        breakdown: TimeBreakdown::default(),
        master_insts: 5,
        master_syscalls: 1,
        ptrace: PtraceStats::default(),
        slices: Vec::new(),
        sig_stats: Default::default(),
        forks_on_timeout: 0,
        forks_on_syscall: 0,
        stall_events: 0,
        master_cow_copies: 0,
        epochs: 2,
        slice_retries: 0,
        slices_degraded: 0,
        peak_resident_bytes: 0,
        slices_deferred: 0,
        checkpoints_dropped: 0,
        caches_evicted: 0,
    };
    ReplayLog {
        recipe: RunRecipe::standard("gcc", Scale::Tiny),
        events: vec![
            NondetEvent::EpochPlan { planned: 4 },
            NondetEvent::Admission {
                decision: AdmissionDecision::Admit,
                dropped: vec![],
                evicted: vec![3],
            },
        ],
        report,
    }
    .encode()
}

fn sample_fleet_log() -> Vec<u8> {
    FleetLog {
        recipe: sample_recipe(),
        events: vec![
            FleetEvent::Admit {
                job: 0,
                fleet_now: 0,
                budget: None,
            },
            FleetEvent::Complete {
                job: 0,
                fleet_now: 900,
            },
        ],
        outcomes: vec!["{\"job\":0}".to_owned()],
    }
    .encode()
}

/// Exhaustive truncation: a WAL cut at *every* byte offset — every
/// frame boundary and every mid-frame position — either salvages to a
/// clean prefix of the original round sequence or reports a bad
/// preamble; no cut panics.
#[test]
fn wal_truncated_at_every_offset_salvages_or_rejects() {
    let wal = sample_wal();
    let full = recover_fleet_wal(&wal).expect("intact wal recovers");
    assert_eq!(full.rounds.len(), 12);
    assert!(full.clean_end);
    for cut in 0..=wal.len() {
        let prefix = &wal[..cut];
        match salvage(prefix) {
            Err(CodecError::BadHeader { .. }) => {
                assert!(cut < 7, "preamble rejection past the preamble (cut {cut})");
                continue;
            }
            Err(other) => panic!("cut {cut}: unexpected error class {other}"),
            Ok(scanned) => {
                assert!(scanned.committed_len <= scanned.valid_len);
                assert!(scanned.valid_len <= cut);
                // The durable prefix must itself scan clean: salvage is
                // idempotent, so resume never chases its own tail.
                let again = salvage(&prefix[..scanned.committed_len]).expect("prefix scans");
                assert!(again.damage.is_none(), "durable prefix damaged (cut {cut})");
                assert_eq!(again.commits, scanned.commits);
            }
        }
        match recover_fleet_wal(prefix) {
            Err(_) => {} // no intact header frame yet — typed, not a panic
            Ok(recovered) => {
                assert!(
                    recovered.rounds.len() <= full.rounds.len(),
                    "cut {cut}: salvage invented rounds"
                );
                assert_eq!(
                    recovered.rounds[..],
                    full.rounds[..recovered.rounds.len()],
                    "cut {cut}: salvage changed committed history"
                );
            }
        }
    }
}

/// Exhaustive truncation of a `.splog`: every cut either decodes (only
/// the full file) or yields a typed error whose explanation names
/// truncation or corruption; `scan` stays within bounds.
#[test]
fn splog_truncated_at_every_offset_explains_itself() {
    let log = sample_splog();
    for cut in 0..log.len() {
        let prefix = &log[..cut];
        let err = ReplayLog::decode(prefix).expect_err("a cut log cannot decode whole");
        let explained = explain_decode_failure(prefix, &err);
        assert!(!explained.is_empty());
        if cut >= 7 {
            let scanned = scan(prefix).expect("preamble intact");
            assert!(scanned.valid_len <= cut);
            assert!(
                explained.contains("truncated") || explained.contains("corrupt"),
                "cut {cut}: unhelpful explanation `{explained}`"
            );
        }
    }
}

proptest! {
    #![proptest_config(proptest::ProptestConfig::with_cases(256))]

    /// Any single bit flip in a WAL: readers return typed results,
    /// and whatever salvage reports committed is a clean prefix.
    #[test]
    fn prop_wal_survives_bit_flips(pos in 0usize..8192, bit in 0u32..8) {
        let mut wal = sample_wal();
        let index = pos % wal.len();
        wal[index] ^= 1 << bit;
        if let Ok(scanned) = salvage(&wal) {
            prop_assert!(scanned.committed_len <= scanned.valid_len);
            prop_assert!(scanned.valid_len <= wal.len());
        }
        let _ = recover_fleet_wal(&wal); // must not panic
    }

    /// Multi-byte stomp: overwrite a window with arbitrary bytes.
    #[test]
    fn prop_wal_survives_stomps(
        pos in 0usize..8192,
        len in 1usize..64,
        fill in 0u32..256,
    ) {
        let mut wal = sample_wal();
        let start = pos % wal.len();
        let end = (start + len).min(wal.len());
        for byte in &mut wal[start..end] {
            *byte = fill as u8;
        }
        let _ = salvage(&wal);
        let _ = recover_fleet_wal(&wal);
    }

    /// Any single bit flip in a `.splog`: decode returns Ok or a typed
    /// error, and the error's explanation never panics either.
    #[test]
    fn prop_splog_survives_bit_flips(pos in 0usize..8192, bit in 0u32..8) {
        let mut log = sample_splog();
        let index = pos % log.len();
        log[index] ^= 1 << bit;
        if let Err(err) = ReplayLog::decode(&log) {
            let explained = explain_decode_failure(&log, &err);
            prop_assert!(!explained.is_empty());
        }
        let _ = scan(&log);
    }

    /// Any single bit flip or truncation of an `SPFL` fleet log:
    /// typed error or success, never a panic.
    #[test]
    fn prop_fleet_log_survives_damage(
        pos in 0usize..8192,
        bit in 0u32..8,
        cut in 0usize..8192,
    ) {
        let mut log = sample_fleet_log();
        let index = pos % log.len();
        log[index] ^= 1 << bit;
        let _ = FleetLog::decode(&log);
        let log = sample_fleet_log();
        let _ = FleetLog::decode(&log[..cut % (log.len() + 1)]);
    }

    /// WAL frame payloads of arbitrary junk round-trip through the
    /// writer and salvage cleanly (the container is content-agnostic).
    #[test]
    fn prop_wal_roundtrips_arbitrary_payloads(
        payloads in proptest::collection::vec(
            proptest::collection::vec(0u32..256, 0..96),
            1..12,
        ),
    ) {
        let sink = MemSink::new();
        let mut writer = WalWriter::create(Box::new(sink.clone()), FsyncPolicy::Off, None)
            .expect("wal opens");
        for (seq, payload) in payloads.iter().enumerate() {
            let bytes: Vec<u8> = payload.iter().map(|&b| b as u8).collect();
            writer.append(WAL_FRAME_RECORD, &bytes).expect("append");
            writer.commit(seq as u64 + 1).expect("commit");
        }
        writer.end().expect("end");
        let scanned = salvage(&sink.bytes()).expect("scans");
        prop_assert!(scanned.damage.is_none());
        prop_assert!(scanned.clean_end);
        prop_assert_eq!(scanned.commits, payloads.len() as u64);
        let recovered: Vec<Vec<u8>> = scanned
            .frames
            .iter()
            .filter(|frame| frame.kind == WAL_FRAME_RECORD)
            .map(|frame| frame.payload.clone())
            .collect();
        let expected: Vec<Vec<u8>> = payloads
            .iter()
            .map(|payload| payload.iter().map(|&b| b as u8).collect())
            .collect();
        prop_assert_eq!(recovered, expected);
    }
}

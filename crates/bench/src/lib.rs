#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! # superpin-bench
//!
//! The figure-reproduction harness: for every table and figure in the
//! paper's evaluation (§6), this crate computes the same series from the
//! reproduction's simulator and renders it as a text table.
//!
//! | Paper artifact | Function |
//! |---|---|
//! | Figure 3 (icount1, Pin & SuperPin vs native) | [`figures::fig3_icount1`] |
//! | Figure 4 (icount1, SuperPin speedup over Pin) | derived from Fig. 3 data |
//! | Figure 5 (icount2, Pin & SuperPin vs native) | [`figures::fig5_icount2`] |
//! | Figure 6 (gcc runtime vs timeslice, stacked) | [`figures::fig6_timeslice`] |
//! | Figure 7 (gcc runtime vs max slices) | [`figures::fig7_parallelism`] |
//! | §4.4 detection statistics (~2% full-check rate) | [`figures::signature_stats`] |
//! | §3 pipeline-delay model | [`figures::pipeline_model`] |
//! | §6.3 overhead taxonomy | [`figures::overhead_breakdown`] |
//!
//! Run `cargo run --release -p superpin-bench --bin reproduce -- all` to
//! regenerate everything.
//!
//! ## Presented time
//!
//! Workloads are miniatures (see `superpin-workloads`); each figure uses
//! a `time_scale` that maps the benchmark's native run to the paper's
//! ~100 s ballpark, and scales the timeslice identically, so every
//! reported *ratio* (slice counts, overhead fractions, speedups) is in
//! the paper's regime. Tables print paper-equivalent seconds.

pub mod figures;
pub mod fleet;
pub mod json;
pub mod parallel;
pub mod render;
pub mod runs;

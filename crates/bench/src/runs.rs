//! Shared run helpers: native / Pin / SuperPin triples per benchmark.

use superpin::baseline::{run_native, run_pin};
use superpin::{SharedMem, SuperPinConfig, SuperPinReport, SuperPinRunner, SuperTool};
use superpin_dbi::CYCLES_PER_SEC;
use superpin_tools::{ICount1, ICount2};
use superpin_vm::process::Process;
use superpin_workloads::{Scale, WorkloadSpec};

/// Paper-equivalent seconds represented by one full benchmark run at a
/// given scale (all figures map the native run to ~100 s, the ballpark of
/// the paper's single-input gcc run in §6.1).
pub const PRESENTED_NATIVE_SECS: f64 = 100.0;

/// The time-scale factor for a scale: virtual seconds × scale =
/// presented seconds.
pub fn time_scale_for(scale: Scale) -> f64 {
    PRESENTED_NATIVE_SECS * CYCLES_PER_SEC as f64 / scale.target_insts() as f64
}

/// The figures' standard configuration: `paper_msec` timeslice, 8-way
/// SMP (no hyperthreading — Figures 3–6), 8 max slices.
pub fn figure_config(paper_msec: u64, scale: Scale) -> SuperPinConfig {
    SuperPinConfig::scaled(paper_msec, time_scale_for(scale))
}

/// Results of running one benchmark natively, under Pin, and under
/// SuperPin with the same tool.
#[derive(Clone, Debug)]
pub struct TripleResult {
    /// Benchmark name.
    pub name: &'static str,
    /// Native cycles (single core, uninstrumented).
    pub native_cycles: u64,
    /// Ground-truth dynamic instruction count.
    pub native_insts: u64,
    /// Serial Pin cycles with the tool.
    pub pin_cycles: u64,
    /// The tool's count under serial Pin.
    pub pin_count: u64,
    /// Full SuperPin report.
    pub superpin: SuperPinReport,
    /// The tool's merged count under SuperPin.
    pub merged_count: u64,
}

impl TripleResult {
    /// Pin runtime as a percentage of native (Figures 3/5 y-axis).
    pub fn pin_pct(&self) -> f64 {
        100.0 * self.pin_cycles as f64 / self.native_cycles as f64
    }

    /// SuperPin runtime as a percentage of native.
    pub fn superpin_pct(&self) -> f64 {
        100.0 * self.superpin.total_cycles as f64 / self.native_cycles as f64
    }

    /// SuperPin speedup over Pin (Figure 4 y-axis).
    pub fn speedup(&self) -> f64 {
        self.pin_cycles as f64 / self.superpin.total_cycles as f64
    }

    /// Whether all three counts agree (the correctness invariant).
    pub fn counts_agree(&self) -> bool {
        self.pin_count == self.native_insts && self.merged_count == self.native_insts
    }
}

/// Which icount tool a run uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IcountKind {
    /// Per-instruction instrumentation (Figures 3–4).
    Icount1,
    /// Per-basic-block instrumentation (Figure 5).
    Icount2,
}

/// Runs the native/Pin/SuperPin triple for one benchmark with an icount
/// tool.
///
/// # Panics
///
/// Panics if any run fails — harness code treats simulator errors as
/// fatal.
pub fn run_triple(
    spec: &WorkloadSpec,
    scale: Scale,
    cfg: &SuperPinConfig,
    kind: IcountKind,
) -> TripleResult {
    let program = spec.build(scale);
    let native = run_native(Process::load(1, &program).expect("load"))
        .unwrap_or_else(|e| panic!("{} native: {e}", spec.name));

    let (pin_cycles, pin_count) = match kind {
        IcountKind::Icount1 => {
            let shared = SharedMem::new();
            let pin = run_pin(
                Process::load(1, &program).expect("load"),
                ICount1::new(&shared),
            )
            .unwrap_or_else(|e| panic!("{} pin: {e}", spec.name));
            (pin.cycles, pin.tool.local_count())
        }
        IcountKind::Icount2 => {
            let shared = SharedMem::new();
            let pin = run_pin(
                Process::load(1, &program).expect("load"),
                ICount2::new(&shared),
            )
            .unwrap_or_else(|e| panic!("{} pin: {e}", spec.name));
            (pin.cycles, pin.tool.local_count())
        }
    };

    let (superpin, merged_count) = match kind {
        IcountKind::Icount1 => {
            let shared = SharedMem::new();
            let tool = ICount1::new(&shared);
            let report = run_superpin(&program, tool.clone(), &shared, cfg.clone(), spec.name);
            let merged = tool.total(&shared);
            (report, merged)
        }
        IcountKind::Icount2 => {
            let shared = SharedMem::new();
            let tool = ICount2::new(&shared);
            let report = run_superpin(&program, tool.clone(), &shared, cfg.clone(), spec.name);
            let merged = tool.total(&shared);
            (report, merged)
        }
    };

    TripleResult {
        name: spec.name,
        native_cycles: native.cycles,
        native_insts: native.insts,
        pin_cycles,
        pin_count,
        superpin,
        merged_count,
    }
}

/// Runs SuperPin over a program with an arbitrary tool.
///
/// # Panics
///
/// Panics on simulator errors.
pub fn run_superpin<T: SuperTool>(
    program: &superpin_isa::Program,
    tool: T,
    shared: &SharedMem,
    cfg: SuperPinConfig,
    name: &str,
) -> SuperPinReport {
    run_superpin_profiled(program, tool, shared, cfg, name).0
}

/// Like [`run_superpin`], but also returns the host-side wall-clock
/// phase profile (used by the parallel wall-clock tracker).
///
/// # Panics
///
/// Panics on simulator errors.
pub fn run_superpin_profiled<T: SuperTool>(
    program: &superpin_isa::Program,
    tool: T,
    shared: &SharedMem,
    cfg: SuperPinConfig,
    name: &str,
) -> (SuperPinReport, superpin::HostProfile) {
    let process = Process::load(1, program).expect("load");
    SuperPinRunner::new(process, tool, shared.clone(), cfg)
        .unwrap_or_else(|e| panic!("{name} superpin setup: {e}"))
        .run_profiled()
        .unwrap_or_else(|e| panic!("{name} superpin: {e}"))
}

/// Like [`run_superpin_profiled`], but with a run recorder attached
/// streaming the nondeterministic surface into an in-memory sink (the
/// events are dropped) — the wall-clock cost of recording, which the
/// parallel tracker reports as `record_overhead`.
///
/// # Panics
///
/// Panics on simulator errors.
pub fn run_superpin_recorded<T: SuperTool>(
    program: &superpin_isa::Program,
    tool: T,
    shared: &SharedMem,
    cfg: SuperPinConfig,
    name: &str,
) -> (SuperPinReport, superpin::HostProfile) {
    let process = Process::load(1, program).expect("load");
    let mut runner = SuperPinRunner::new(process, tool, shared.clone(), cfg)
        .unwrap_or_else(|e| panic!("{name} superpin setup: {e}"));
    let sink = superpin_replay::EventSink::new();
    runner.set_recorder(sink.recorder());
    runner
        .run_profiled()
        .unwrap_or_else(|e| panic!("{name} superpin (recorded): {e}"))
}

/// Runs a closure over every catalog benchmark on `threads` worker
/// threads, preserving catalog order in the output.
pub fn parallel_over_catalog<R, F>(threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(&'static WorkloadSpec) -> R + Sync,
{
    let specs = superpin_workloads::catalog();
    let mut results: Vec<Option<R>> = (0..specs.len()).map(|_| None).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let results_mutex = std::sync::Mutex::new(&mut results);

    std::thread::scope(|scope| {
        for _ in 0..threads.max(1) {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if index >= specs.len() {
                    break;
                }
                let result = f(&specs[index]);
                results_mutex.lock().expect("no panics hold the lock")[index] = Some(result);
            });
        }
    });

    results
        .into_iter()
        .map(|slot| slot.expect("every index filled"))
        .collect()
}

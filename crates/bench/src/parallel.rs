//! Wall-clock benchmark for the parallel runner (`--emit-json`).
//!
//! Every other module in this crate measures *simulated* cycles — host
//! time never appears in a figure. This module is the exception: it
//! exists to track the tentpole claim that fanning slice execution out
//! over host threads makes the reproduction's wall clock behave like the
//! system it models. Each benchmark runs twice over the identical
//! program — `threads = 1` and `threads = 4` — and the row records both
//! wall-clock times, the (identical) simulated cycle count, and whether
//! the two reports were bit-identical, which the parallel runner
//! guarantees by construction. A third `threads = 1` run with the slice
//! supervisor armed (chaos disabled) tracks the recovery machinery's
//! idle cost — checkpoint clones at slice wake plus journaling — as the
//! `supervisor_overhead` ratio, which `--emit-json` asserts stays within
//! noise of the unsupervised baseline.
//!
//! # Hosts with fewer cores than threads
//!
//! A measured 4-thread speedup requires 4 host cores; on a smaller host
//! (CI containers are often 1–2 vCPUs) the workers timeshare and the
//! measured ratio can only show that the parallel path adds no
//! overhead, not that it scales. The tracker therefore also records the
//! run's **measured phase split** from [`superpin::HostProfile`] — how
//! much of the `threads = 1` wall clock was parallelizable slice work
//! versus serial supervisor work — and the Amdahl projection of that
//! split to [`PARALLEL_THREADS`] cores. `host_cpus` in the JSON says
//! which regime produced the numbers; the projection is labeled as a
//! model, never substituted into the measured column.

use crate::runs::{run_superpin_profiled, run_superpin_recorded, time_scale_for};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;
use superpin::{
    HostProfile, PlanKnobs, ProgramAnalysis, SharedMem, SuperPinConfig, SuperPinReport,
};
// The hand-rolled JSON readers this module grew for the tracking file's
// history merge now live in `superpin-replay`'s shared `json` module
// (replay verification needs the same parsing); re-exported so existing
// callers (the CI perf guard in `bin/superpin.rs`) keep working.
pub use superpin_replay::json::extract_number;
use superpin_replay::json::{extract_array, split_top_level};
use superpin_tools::ICount1;
use superpin_workloads::{find, Scale};

/// Host thread count the parallel column uses.
pub const PARALLEL_THREADS: usize = 4;

/// The benchmarks the parallel tracker runs: a spread of code
/// footprints, syscall rates, and run lengths, all of which fork well
/// over four slices at the tracker's 2 s timeslice.
pub const DEFAULT_SET: &[&str] = &[
    "gcc", "gzip", "mcf", "crafty", "equake", "parser", "swim", "vortex",
];

/// Host cores available to this process (1 if undeterminable).
pub fn host_cpus() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// One benchmark's wall-clock comparison.
#[derive(Clone, Debug)]
pub struct ParallelRow {
    /// Benchmark name.
    pub name: &'static str,
    /// Slices the run forked (same for both thread counts).
    pub slices: usize,
    /// Scheduling epochs the run executed (same for both thread counts).
    pub epochs: u64,
    /// Simulated total cycles (identical across thread counts).
    pub simulated_cycles: u64,
    /// Wall-clock milliseconds at `threads = 1`.
    pub wall_ms_serial: f64,
    /// Wall-clock milliseconds at [`PARALLEL_THREADS`].
    pub wall_ms_parallel: f64,
    /// Wall-clock milliseconds at `threads = 1` with the slice
    /// supervisor armed (checkpoints + journals) and chaos disabled —
    /// the recovery machinery's idle cost.
    pub wall_ms_supervised: f64,
    /// Wall-clock milliseconds at `threads = 1` with the ahead-of-time
    /// superblock plan installed (default knobs, no oracle). The
    /// simulated report is bit-identical to the plan-off run — only
    /// host wall-clock may differ.
    pub wall_ms_planned: f64,
    /// Wall-clock milliseconds at `threads = 1` with a run recorder
    /// attached streaming the nondeterministic surface into memory —
    /// the cost of always-on record/replay. The simulated report is
    /// bit-identical to the plain run.
    pub wall_ms_recorded: f64,
    /// Fraction of the `threads = 1` wall clock spent in the
    /// parallelizable slice phase (measured, [`HostProfile`]).
    pub slice_fraction: f64,
    /// Amdahl projection of the measured split to [`PARALLEL_THREADS`]
    /// cores (a model, not a measurement — see the module docs).
    pub modeled_speedup: f64,
    /// High-water resident footprint in simulated bytes (0 when the
    /// tracker runs without a `--mem-budget`).
    pub peak_resident_bytes: u64,
    /// Fork-deferral episodes under memory pressure (0 unbudgeted).
    pub slices_deferred: u64,
    /// Retained checkpoints reclaimed by the eviction ladder.
    pub checkpoints_dropped: u64,
    /// Slice code caches flushed by the eviction ladder.
    pub caches_evicted: u64,
    /// Whether the two `SuperPinReport`s compared equal field-for-field.
    pub identical: bool,
}

impl ParallelRow {
    /// Measured wall-clock speedup of the parallel run over the serial
    /// run (bounded by `host_cpus`, not by the thread count).
    pub fn speedup(&self) -> f64 {
        self.wall_ms_serial / self.wall_ms_parallel.max(1e-9)
    }

    /// Supervised-over-plain wall-clock ratio at `threads = 1` — the
    /// bench guard asserting supervision is near-free when no fault
    /// fires (1.0 = free; see `--emit-json`).
    pub fn supervisor_overhead(&self) -> f64 {
        self.wall_ms_supervised / self.wall_ms_serial.max(1e-9)
    }

    /// Plan-on over plan-off wall-clock ratio at `threads = 1` (>1.0
    /// means the ahead-of-time superblock plan saved host time).
    pub fn speedup_planned(&self) -> f64 {
        self.wall_ms_serial / self.wall_ms_planned.max(1e-9)
    }

    /// Interpreter throughput without a plan, in millions of simulated
    /// cycles retired per wall-clock second at `threads = 1`.
    pub fn throughput_mcps(&self) -> f64 {
        self.simulated_cycles as f64 / 1e3 / self.wall_ms_serial.max(1e-9)
    }

    /// Interpreter throughput with the superblock plan installed.
    pub fn throughput_mcps_planned(&self) -> f64 {
        self.simulated_cycles as f64 / 1e3 / self.wall_ms_planned.max(1e-9)
    }

    /// Recorded-over-plain wall-clock ratio at `threads = 1` — the cost
    /// of streaming the nondeterministic surface into a log (1.0 =
    /// free; `--emit-json` guards the geomean at 1.25x).
    pub fn record_overhead(&self) -> f64 {
        self.wall_ms_recorded / self.wall_ms_serial.max(1e-9)
    }
}

/// The tracker's configuration: a 2 s paper timeslice (so each epoch
/// spans many quanta and thread-pool synchronization is well amortized)
/// with the standard 8-slice, 8-CPU figure machine.
pub fn bench_config(scale: Scale) -> SuperPinConfig {
    SuperPinConfig::scaled(2000, time_scale_for(scale))
}

/// Timing repetitions per configuration; the row records the *minimum*
/// wall clock. One-shot timing let a single scheduler hiccup in the
/// plan-off run invert the throughput columns (planned < unplanned on a
/// run where the plan can only remove work); the min over three runs is
/// the standard estimator for the noise-free cost of deterministic work.
const TIMING_RUNS: usize = 3;

#[allow(clippy::too_many_arguments)]
fn timed_run(
    program: &superpin_isa::Program,
    scale: Scale,
    threads: usize,
    supervise: bool,
    mem_budget: Option<u64>,
    plan: Option<&ProgramAnalysis>,
    record: bool,
    name: &str,
) -> (f64, SuperPinReport, HostProfile) {
    let mut best: Option<(f64, SuperPinReport, HostProfile)> = None;
    for _ in 0..TIMING_RUNS {
        let shared = SharedMem::new();
        let tool = ICount1::new(&shared);
        let mut cfg = bench_config(scale).with_threads(threads);
        if supervise {
            cfg = cfg.with_supervision();
        }
        if let Some(budget) = mem_budget {
            cfg = cfg.with_mem_budget(budget);
        }
        if let Some(analysis) = plan {
            cfg = cfg.with_plan(Arc::new(analysis.plan(PlanKnobs::default())));
        }
        let start = Instant::now();
        let (report, profile) = if record {
            run_superpin_recorded(program, tool, &shared, cfg, name)
        } else {
            run_superpin_profiled(program, tool, &shared, cfg, name)
        };
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        if let Some((best_ms, best_report, _)) = &best {
            debug_assert_eq!(
                best_report, &report,
                "simulation must be run-to-run identical"
            );
            if wall_ms < *best_ms {
                best = Some((wall_ms, report, profile));
            }
        } else {
            best = Some((wall_ms, report, profile));
        }
    }
    best.expect("TIMING_RUNS >= 1")
}

/// Runs the serial/parallel wall-clock comparison over `names`. A
/// `mem_budget` applies to every run, so the `identical` column also
/// witnesses that governed admission is thread-count invariant.
///
/// # Panics
///
/// Panics on unknown benchmark names or simulator errors.
pub fn run_parallel_bench(
    scale: Scale,
    names: &[&str],
    mem_budget: Option<u64>,
) -> Vec<ParallelRow> {
    names
        .iter()
        .map(|name| {
            let spec = find(name).unwrap_or_else(|| panic!("unknown benchmark `{name}`"));
            let program = spec.build(scale);
            let analysis = ProgramAnalysis::compute(&program)
                .unwrap_or_else(|e| panic!("{name} whole-program analysis: {e}"));
            let (wall_ms_serial, serial, profile) = timed_run(
                &program, scale, 1, false, mem_budget, None, false, spec.name,
            );
            let (wall_ms_parallel, parallel, _) = timed_run(
                &program,
                scale,
                PARALLEL_THREADS,
                false,
                mem_budget,
                None,
                false,
                spec.name,
            );
            let (wall_ms_supervised, supervised, _) =
                timed_run(&program, scale, 1, true, mem_budget, None, false, spec.name);
            let (wall_ms_planned, planned, _) = timed_run(
                &program,
                scale,
                1,
                false,
                mem_budget,
                Some(&analysis),
                false,
                spec.name,
            );
            let (wall_ms_recorded, recorded, _) =
                timed_run(&program, scale, 1, false, mem_budget, None, true, spec.name);
            ParallelRow {
                name: spec.name,
                slices: serial.slice_count(),
                epochs: serial.epochs,
                simulated_cycles: serial.total_cycles,
                wall_ms_serial,
                wall_ms_parallel,
                wall_ms_supervised,
                wall_ms_planned,
                wall_ms_recorded,
                slice_fraction: profile.slice_fraction(),
                modeled_speedup: profile.modeled_speedup(PARALLEL_THREADS),
                peak_resident_bytes: serial.peak_resident_bytes,
                slices_deferred: serial.slices_deferred,
                checkpoints_dropped: serial.checkpoints_dropped,
                caches_evicted: serial.caches_evicted,
                // Thread-count invariance must hold budgeted or not; the
                // supervised run only joins the comparison unbudgeted,
                // because retained checkpoints are *charged* bytes and
                // legitimately shift governed admission decisions. The
                // plan is a pure accelerator, so plan-on must match
                // unconditionally, as must recording (a pure observer).
                identical: serial == parallel
                    && serial == planned
                    && serial == recorded
                    && (mem_budget.is_some() || serial == supervised),
            }
        })
        .collect()
}

fn geomean(values: impl Iterator<Item = f64>) -> f64 {
    let (log_sum, n) = values.fold((0.0f64, 0usize), |(s, n), v| (s + v.ln(), n + 1));
    if n == 0 {
        return 1.0;
    }
    (log_sum / n as f64).exp()
}

/// Geometric-mean measured speedup across rows.
pub fn geomean_speedup(rows: &[ParallelRow]) -> f64 {
    geomean(rows.iter().map(ParallelRow::speedup))
}

/// Geometric-mean modeled (Amdahl) speedup across rows.
pub fn geomean_modeled_speedup(rows: &[ParallelRow]) -> f64 {
    geomean(rows.iter().map(|row| row.modeled_speedup))
}

/// Geometric-mean supervisor overhead ratio across rows (1.0 = free).
pub fn geomean_supervisor_overhead(rows: &[ParallelRow]) -> f64 {
    geomean(rows.iter().map(ParallelRow::supervisor_overhead))
}

/// Geometric-mean record overhead ratio across rows (1.0 = free) — the
/// `--emit-json` guard fails above 1.25x.
pub fn geomean_record_overhead(rows: &[ParallelRow]) -> f64 {
    geomean(rows.iter().map(ParallelRow::record_overhead))
}

/// Geometric-mean plan-on over plan-off wall-clock speedup at
/// `threads = 1` (>1.0 means the superblock plan saved host time).
pub fn geomean_plan_speedup(rows: &[ParallelRow]) -> f64 {
    geomean(
        rows.iter()
            .map(|row| row.wall_ms_serial / row.wall_ms_planned.max(1e-9)),
    )
}

/// Geometric-mean plan-off interpreter throughput in Mcyc/s — the
/// headline number the CI perf guard compares against its baseline.
pub fn geomean_throughput_mcps(rows: &[ParallelRow]) -> f64 {
    geomean(rows.iter().map(ParallelRow::throughput_mcps))
}

/// Geometric-mean plan-on interpreter throughput in Mcyc/s.
pub fn geomean_throughput_mcps_planned(rows: &[ParallelRow]) -> f64 {
    geomean(rows.iter().map(ParallelRow::throughput_mcps_planned))
}

/// Serializes the comparison as the `BENCH_parallel.json` tracking
/// format (same hand-rolled emitter policy as [`crate::json`]).
pub fn parallel_to_json(scale: Scale, rows: &[ParallelRow]) -> String {
    let mut out = String::from("{");
    let _ = write!(
        out,
        "\"scale\":\"{scale:?}\",\"threads_serial\":1,\"threads_parallel\":{PARALLEL_THREADS},\
         \"host_cpus\":{},\"benchmarks\":[",
        host_cpus()
    );
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"slices\":{},\"epochs\":{},\"simulated_cycles\":{},\
             \"wall_ms_threads1\":{:.2},\"wall_ms_threads{}\":{:.2},\
             \"wall_ms_supervised\":{:.2},\"supervisor_overhead\":{:.3},\
             \"wall_ms_recorded\":{:.2},\"record_overhead\":{:.3},\
             \"wall_ms_planned\":{:.2},\"throughput_mcps\":{:.3},\
             \"throughput_mcps_planned\":{:.3},\
             \"speedup\":{:.3},\"slice_fraction\":{:.3},\
             \"modeled_speedup_threads{}\":{:.3},\
             \"peak_resident_bytes\":{},\"slices_deferred\":{},\
             \"checkpoints_dropped\":{},\"caches_evicted\":{},\"identical\":{}}}",
            row.name,
            row.slices,
            row.epochs,
            row.simulated_cycles,
            row.wall_ms_serial,
            PARALLEL_THREADS,
            row.wall_ms_parallel,
            row.wall_ms_supervised,
            row.supervisor_overhead(),
            row.wall_ms_recorded,
            row.record_overhead(),
            row.wall_ms_planned,
            row.throughput_mcps(),
            row.throughput_mcps_planned(),
            row.speedup(),
            row.slice_fraction,
            PARALLEL_THREADS,
            row.modeled_speedup,
            row.peak_resident_bytes,
            row.slices_deferred,
            row.checkpoints_dropped,
            row.caches_evicted,
            row.identical,
        );
    }
    let _ = write!(
        out,
        "],\"geomean_speedup\":{:.3},\"max_speedup\":{:.3},\"geomean_modeled_speedup\":{:.3},\
         \"geomean_supervisor_overhead\":{:.3},\"geomean_record_overhead\":{:.3},\
         \"geomean_plan_speedup\":{:.3},\
         \"geomean_throughput_mcps\":{:.3},\"geomean_throughput_mcps_planned\":{:.3}}}",
        geomean_speedup(rows),
        rows.iter().map(ParallelRow::speedup).fold(0.0, f64::max),
        geomean_modeled_speedup(rows),
        geomean_supervisor_overhead(rows),
        geomean_record_overhead(rows),
        geomean_plan_speedup(rows),
        geomean_throughput_mcps(rows),
        geomean_throughput_mcps_planned(rows),
    );
    out
}

/// [`parallel_to_json`] plus a `history` array: the per-run summary is
/// appended to whatever history the previous file contents carried, so
/// the tracking file accumulates a perf trajectory across PRs instead
/// of clobbering it. Entries are keyed (git SHA or `--tag`); re-running
/// under the same key replaces that entry rather than duplicating it.
pub fn parallel_to_json_with_history(
    scale: Scale,
    rows: &[ParallelRow],
    key: &str,
    previous: Option<&str>,
) -> String {
    let mut out = parallel_to_json(scale, rows);
    let closing = out.pop();
    debug_assert_eq!(closing, Some('}'));
    let entry = format!(
        "{{\"key\":\"{key}\",\"scale\":\"{scale:?}\",\"geomean_speedup\":{:.3},\
         \"geomean_plan_speedup\":{:.3},\"geomean_throughput_mcps\":{:.3},\
         \"geomean_throughput_mcps_planned\":{:.3}}}",
        geomean_speedup(rows),
        geomean_plan_speedup(rows),
        geomean_throughput_mcps(rows),
        geomean_throughput_mcps_planned(rows),
    );
    out.push_str(",\"history\":[");
    let mut first = true;
    if let Some(body) = previous.and_then(|json| extract_array(json, "history")) {
        let same_key = format!("\"key\":\"{key}\"");
        for old in split_top_level(body) {
            let old = old.trim();
            if old.is_empty() || old.contains(same_key.as_str()) {
                continue;
            }
            if !first {
                out.push(',');
            }
            out.push_str(old);
            first = false;
        }
    }
    if !first {
        out.push(',');
    }
    out.push_str(&entry);
    out.push_str("]}");
    out
}

/// Renders the comparison as a text table for the terminal.
pub fn render_parallel(rows: &[ParallelRow]) -> String {
    let cpus = host_cpus();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Parallel runner wall clock (threads=1 vs threads={PARALLEL_THREADS}, host cpus={cpus}):"
    );
    let _ = writeln!(
        out,
        "{:<10} {:>7} {:>7} {:>16} {:>10} {:>10} {:>8} {:>7} {:>8}  identical",
        "benchmark",
        "slices",
        "epochs",
        "sim cycles",
        "t1 ms",
        "tN ms",
        "speedup",
        "par%",
        "modeled"
    );
    for row in rows {
        let _ = writeln!(
            out,
            "{:<10} {:>7} {:>7} {:>16} {:>10.1} {:>10.1} {:>7.2}x {:>6.0}% {:>7.2}x  {}",
            row.name,
            row.slices,
            row.epochs,
            row.simulated_cycles,
            row.wall_ms_serial,
            row.wall_ms_parallel,
            row.speedup(),
            row.slice_fraction * 100.0,
            row.modeled_speedup,
            row.identical,
        );
    }
    let _ = writeln!(
        out,
        "geomean speedup: {:.2}x measured, {:.2}x modeled at {PARALLEL_THREADS} cores",
        geomean_speedup(rows),
        geomean_modeled_speedup(rows)
    );
    let _ = writeln!(
        out,
        "supervisor overhead (chaos off, threads=1): {:.2}x geomean",
        geomean_supervisor_overhead(rows)
    );
    let _ = writeln!(
        out,
        "record overhead (replay log capture, threads=1): {:.2}x geomean",
        geomean_record_overhead(rows)
    );
    let _ = writeln!(
        out,
        "superblock plan (threads=1): {:.2}x geomean wall-clock speedup; throughput {:.1} -> {:.1} Mcyc/s geomean",
        geomean_plan_speedup(rows),
        geomean(rows.iter().map(ParallelRow::throughput_mcps)),
        geomean(rows.iter().map(ParallelRow::throughput_mcps_planned)),
    );
    if cpus < PARALLEL_THREADS {
        let _ = writeln!(
            out,
            "note: host has {cpus} cpu(s) < {PARALLEL_THREADS} threads; measured speedup is \
             an overhead check, the modeled column is the Amdahl projection of the \
             measured phase split"
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_rows() -> Vec<ParallelRow> {
        vec![
            ParallelRow {
                name: "gcc",
                slices: 52,
                epochs: 120,
                simulated_cycles: 3_000_000,
                wall_ms_serial: 400.0,
                wall_ms_parallel: 160.0,
                wall_ms_supervised: 420.0,
                wall_ms_planned: 380.0,
                wall_ms_recorded: 440.0,
                slice_fraction: 0.75,
                modeled_speedup: 2.29,
                peak_resident_bytes: 262_144,
                slices_deferred: 3,
                checkpoints_dropped: 2,
                caches_evicted: 1,
                identical: true,
            },
            ParallelRow {
                name: "swim",
                slices: 51,
                epochs: 110,
                simulated_cycles: 4_000_000,
                wall_ms_serial: 300.0,
                wall_ms_parallel: 200.0,
                wall_ms_supervised: 303.0,
                wall_ms_planned: 250.0,
                wall_ms_recorded: 306.0,
                slice_fraction: 0.60,
                modeled_speedup: 1.82,
                peak_resident_bytes: 0,
                slices_deferred: 0,
                checkpoints_dropped: 0,
                caches_evicted: 0,
                identical: true,
            },
        ]
    }

    #[test]
    fn json_shape_is_well_formed() {
        let json = parallel_to_json(Scale::Medium, &sample_rows());
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"name\":\"gcc\""));
        assert!(json.contains("\"wall_ms_threads1\":400.00"));
        assert!(json.contains("\"wall_ms_threads4\":160.00"));
        assert!(json.contains("\"host_cpus\":"));
        assert!(json.contains("\"slice_fraction\":0.750"));
        assert!(json.contains("\"wall_ms_planned\":380.00"));
        assert!(json.contains("\"throughput_mcps\":"));
        assert!(json.contains("\"throughput_mcps_planned\":"));
        assert!(json.contains("\"geomean_plan_speedup\":"));
        assert!(json.contains("\"modeled_speedup_threads4\":2.290"));
        assert!(json.contains("\"wall_ms_supervised\":420.00"));
        assert!(json.contains("\"supervisor_overhead\":1.050"));
        assert!(json.contains("\"geomean_supervisor_overhead\":"));
        assert!(json.contains("\"wall_ms_recorded\":440.00"));
        assert!(json.contains("\"record_overhead\":1.100"));
        assert!(json.contains("\"geomean_record_overhead\":"));
        assert!(json.contains("\"peak_resident_bytes\":262144"));
        assert!(json.contains("\"slices_deferred\":3"));
        assert!(json.contains("\"checkpoints_dropped\":2"));
        assert!(json.contains("\"caches_evicted\":1"));
        assert!(json.contains("\"identical\":true"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn history_appends_and_replaces_by_key() {
        let rows = sample_rows();
        // First emission: no previous file, history holds one entry.
        let first = parallel_to_json_with_history(Scale::Medium, &rows, "abc1234", None);
        assert!(first.ends_with("]}"), "history must be the last field");
        assert!(first.contains("\"history\":[{\"key\":\"abc1234\""));
        assert_eq!(first.matches("\"key\":").count(), 1);
        assert_eq!(first.matches('{').count(), first.matches('}').count());
        assert_eq!(first.matches('[').count(), first.matches(']').count());

        // Second emission under a new key: the old entry survives.
        let second = parallel_to_json_with_history(Scale::Medium, &rows, "def5678", Some(&first));
        assert!(second.contains("\"key\":\"abc1234\""));
        assert!(second.contains("\"key\":\"def5678\""));
        assert_eq!(second.matches("\"key\":").count(), 2);

        // Re-running the same key replaces its entry, no duplicate.
        let third = parallel_to_json_with_history(Scale::Medium, &rows, "def5678", Some(&second));
        assert_eq!(third.matches("\"key\":\"abc1234\"").count(), 1);
        assert_eq!(third.matches("\"key\":\"def5678\"").count(), 1);
        assert_eq!(third.matches('{').count(), third.matches('}').count());

        // A pre-history tracking file (no history field) starts fresh.
        let legacy = parallel_to_json(Scale::Medium, &rows);
        let upgraded = parallel_to_json_with_history(Scale::Medium, &rows, "tag", Some(&legacy));
        assert_eq!(upgraded.matches("\"key\":").count(), 1);
    }

    #[test]
    fn extract_number_reads_emitted_fields() {
        let rows = sample_rows();
        let json = parallel_to_json(Scale::Medium, &rows);
        let geomean = extract_number(&json, "geomean_throughput_mcps").expect("field present");
        assert!((geomean - geomean_throughput_mcps(&rows)).abs() < 1e-3);
        assert_eq!(extract_number(&json, "no_such_field"), None);
        assert_eq!(extract_number("{\"x\":12.5}", "x"), Some(12.5));
        assert_eq!(extract_number("{\"x\":-3e2,\"y\":1}", "x"), Some(-300.0));
    }

    #[test]
    fn record_overhead_is_the_recorded_ratio() {
        let rows = sample_rows();
        assert!((rows[0].record_overhead() - 1.10).abs() < 1e-9);
        assert!((rows[1].record_overhead() - 1.02).abs() < 1e-9);
        let geo = geomean_record_overhead(&rows);
        assert!(geo > 1.02 && geo < 1.10, "geomean {geo}");
    }

    #[test]
    fn geomean_is_between_min_and_max() {
        let rows = sample_rows();
        let speedups: Vec<f64> = rows.iter().map(ParallelRow::speedup).collect();
        let geomean = geomean_speedup(&rows);
        let min = speedups.iter().copied().fold(f64::INFINITY, f64::min);
        let max = speedups.iter().copied().fold(0.0, f64::max);
        assert!(geomean >= min && geomean <= max, "geomean {geomean}");
        assert!((geomean_speedup(&[]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn modeled_speedup_follows_amdahl() {
        // 75% parallelizable at 4 cores: 1 / (0.25 + 0.75/4) ≈ 2.286.
        let profile = HostProfile {
            supervisor_ns: 250,
            slice_ns: 750,
        };
        assert!((profile.modeled_speedup(4) - 1.0 / (0.25 + 0.75 / 4.0)).abs() < 1e-9);
        assert!((profile.modeled_speedup(1) - 1.0).abs() < 1e-9);
        assert!((profile.slice_fraction() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn supervisor_overhead_is_the_supervised_ratio() {
        let rows = sample_rows();
        assert!((rows[0].supervisor_overhead() - 1.05).abs() < 1e-9);
        assert!((rows[1].supervisor_overhead() - 1.01).abs() < 1e-9);
        let geo = geomean_supervisor_overhead(&rows);
        assert!(geo > 1.01 && geo < 1.05, "geomean {geo}");
    }

    #[test]
    fn plan_speedup_and_throughput_track_planned_wall_clock() {
        let rows = sample_rows();
        // gcc: 400 ms plan-off -> 380 ms plan-on.
        assert!((rows[0].speedup_planned() - 400.0 / 380.0).abs() < 1e-9);
        // 3e6 simulated cycles over 400 ms = 7.5 Mcyc/s plan-off.
        assert!((rows[0].throughput_mcps() - 7.5).abs() < 1e-9);
        assert!(rows[0].throughput_mcps_planned() > rows[0].throughput_mcps());
        let geo = geomean_plan_speedup(&rows);
        let (lo, hi) = (400.0 / 380.0, 300.0 / 250.0);
        assert!(geo >= lo && geo <= hi, "geomean {geo}");
    }

    #[test]
    fn default_set_names_exist_in_catalog() {
        for name in DEFAULT_SET {
            assert!(find(name).is_some(), "`{name}` not in catalog");
        }
    }
}

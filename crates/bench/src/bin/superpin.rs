//! A Pin-style command line for the reproduction, mirroring the paper's
//! invocation and switches (§2.2, §5):
//!
//! ```text
//! superpin [-sp 0|1] [-spmsec MSEC] [-spmp N] [-spsysrecs N] [-threads N]
//!          -t icount1|icount2|dcache|itrace|branch|mem|sampler
//!          -- <benchmark> [tiny|small|medium|large]
//! superpin --emit-json [PATH] [--scale SCALE]
//! ```
//!
//! Examples:
//!
//! ```text
//! superpin -t icount2 -- gzip small
//! superpin -sp 1 -spmsec 500 -spmp 16 -t icount1 -- gcc medium
//! superpin -sp 0 -t dcache -- mcf small        # traditional Pin mode
//! superpin -threads 4 -t icount1 -- gcc medium # 4 host worker threads
//! superpin --emit-json BENCH_parallel.json     # wall-clock tracker
//! ```
//!
//! `-threads N` fans slice execution out over N host worker threads; the
//! report is bit-identical to `-threads 1` (see the parallel-runner
//! section in DESIGN.md). `--emit-json` runs the serial-vs-parallel
//! wall-clock tracker over a fixed benchmark set and writes the
//! `BENCH_parallel.json` tracking file instead of running one tool.
//!
//! Chaos testing (DESIGN.md §4.8): `--chaos-seed N` arms the seeded
//! failpoint registry and slice supervisor; `--chaos-rate F` sets the
//! per-site firing probability (default 0.01); `--watchdog-factor K`
//! condemns a slice whose signature has not fired within K× the
//! scheduler's predicted completion. The report stays bit-identical to
//! the fault-free run except the `slice_retries` / `slices_degraded`
//! counters:
//!
//! ```text
//! superpin --chaos-seed 1 --chaos-rate 0.05 -threads 4 -t icount1 -- gcc tiny
//! ```

use std::sync::Arc;

use superpin::baseline::run_pin;
use superpin::{
    FailPlan, PlanKnobs, ProgramAnalysis, SharedMem, SuperPinConfig, SuperPinRunner, SuperTool,
};
use superpin_bench::runs::time_scale_for;
use superpin_tools::{
    BranchProfile, DCache, DCacheConfig, ICount1, ICount2, ITrace, MemProfile, Sampler,
};
use superpin_vm::process::Process;
use superpin_workloads::{find, Scale};

#[derive(Debug, PartialEq)]
struct Options {
    sp: bool,
    gantt: bool,
    spmsec: u64,
    spmp: usize,
    spsysrecs: usize,
    threads: usize,
    chaos_seed: Option<u64>,
    chaos_rate: Option<f64>,
    watchdog_factor: u64,
    mem_budget: Option<u64>,
    plan: bool,
    plan_knobs: PlanKnobs,
    emit_json: Option<String>,
    tag: Option<String>,
    perf_guard: Option<(String, String)>,
    tool: String,
    benchmark: String,
    scale: Scale,
    scale_explicit: bool,
}

/// Typed command-line rejection. Each variant renders a specific
/// message; `main` prints it with a usage hint and exits 2.
#[derive(Clone, Debug, PartialEq)]
enum ArgError {
    /// A flag was given without its required value.
    MissingValue(&'static str),
    /// A flag's value failed to parse as the expected shape.
    InvalidValue {
        flag: &'static str,
        value: String,
        expected: &'static str,
    },
    /// `--watchdog-factor` must exceed 1: a factor of 1 condemns every
    /// slice whose completion prediction is off by a single quantum.
    WatchdogFactorTooSmall(u64),
    /// `--chaos-rate` is a probability and must lie in [0, 1].
    ChaosRateOutOfRange(f64),
    /// `--threads 0` has no meaning; the minimum is 1 (serial).
    ZeroThreads,
    /// An unrecognized flag.
    UnknownFlag(String),
    /// No benchmark after `--`, or no `-t TOOL`.
    MissingBenchmarkOrTool,
}

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgError::MissingValue(flag) => write!(f, "`{flag}` requires a value"),
            ArgError::InvalidValue {
                flag,
                value,
                expected,
            } => write!(f, "`{flag}` got `{value}`; expected {expected}"),
            ArgError::WatchdogFactorTooSmall(value) => write!(
                f,
                "`--watchdog-factor` must be greater than 1 (got {value}): a factor of 1 \
                 condemns any slice one quantum behind its predicted completion"
            ),
            ArgError::ChaosRateOutOfRange(value) => write!(
                f,
                "`--chaos-rate` is a probability and must be within [0, 1] (got {value})"
            ),
            ArgError::ZeroThreads => {
                write!(f, "`--threads` must be at least 1 (1 = serial execution)")
            }
            ArgError::UnknownFlag(flag) => write!(f, "unknown flag `{flag}`"),
            ArgError::MissingBenchmarkOrTool => {
                write!(f, "a `-t TOOL` and a benchmark after `--` are required")
            }
        }
    }
}

impl std::error::Error for ArgError {}

fn usage() -> ! {
    eprintln!(
        "usage: superpin [-sp 0|1] [-spmsec MSEC] [-spmp N] [-spsysrecs N] [-threads N] [-gantt] \
         [--chaos-seed N] [--chaos-rate F] [--watchdog-factor K] [--mem-budget BYTES[k|m|g]] \
         [--plan on|off] [--hot-loop-threshold N] [--max-trace-len N] \
         -t TOOL -- BENCHMARK [tiny|small|medium|large]\n\
         \x20      superpin --emit-json [PATH] [--tag KEY] [--scale tiny|small|medium|large] \
         [--mem-budget BYTES[k|m|g]]\n\
         \x20      superpin --perf-guard FRESH.json BASELINE.json\n\
         tools: icount1 icount2 dcache dcache-assoc icache bblcount insmix itrace branch mem sampler"
    );
    std::process::exit(2);
}

/// Parses a byte count with an optional binary `k`/`m`/`g` suffix
/// (case-insensitive): `64m` → 64 MiB.
fn parse_bytes(text: &str) -> Option<u64> {
    let lower = text.trim().to_ascii_lowercase();
    let (digits, mult) = if let Some(digits) = lower.strip_suffix('k') {
        (digits, 1u64 << 10)
    } else if let Some(digits) = lower.strip_suffix('m') {
        (digits, 1u64 << 20)
    } else if let Some(digits) = lower.strip_suffix('g') {
        (digits, 1u64 << 30)
    } else {
        (lower.as_str(), 1u64)
    };
    digits.parse::<u64>().ok()?.checked_mul(mult)
}

fn parse_args() -> Options {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_options(&args) {
        Ok(options) => options,
        Err(err) => {
            eprintln!("superpin: {err}");
            usage();
        }
    }
}

fn parse_options(args: &[String]) -> Result<Options, ArgError> {
    let mut options = Options {
        sp: true,
        gantt: false,
        spmsec: 1000,
        spmp: 8,
        spsysrecs: 1000,
        threads: 1,
        chaos_seed: None,
        chaos_rate: None,
        watchdog_factor: 8,
        mem_budget: None,
        plan: false,
        plan_knobs: PlanKnobs::default(),
        emit_json: None,
        tag: None,
        perf_guard: None,
        tool: String::new(),
        benchmark: String::new(),
        scale: Scale::Small,
        scale_explicit: false,
    };
    let mut iter = args.iter().peekable();
    let mut after_dashes = Vec::new();
    // `flag value` with a typed error for missing/unparseable values.
    fn value<'a, I: Iterator<Item = &'a String>, V: std::str::FromStr>(
        iter: &mut I,
        flag: &'static str,
        expected: &'static str,
    ) -> Result<V, ArgError> {
        let text = iter.next().ok_or(ArgError::MissingValue(flag))?;
        text.parse().map_err(|_| ArgError::InvalidValue {
            flag,
            value: text.clone(),
            expected,
        })
    }
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "-sp" => {
                let v = iter.next().ok_or(ArgError::MissingValue("-sp"))?;
                options.sp = v != "0";
            }
            "-spmsec" => options.spmsec = value(&mut iter, "-spmsec", "milliseconds")?,
            "-spmp" => options.spmp = value(&mut iter, "-spmp", "a slice count")?,
            "-spsysrecs" => options.spsysrecs = value(&mut iter, "-spsysrecs", "a record count")?,
            "-gantt" => options.gantt = true,
            "-threads" | "--threads" => {
                let threads: usize = value(&mut iter, "--threads", "a thread count")?;
                if threads == 0 {
                    return Err(ArgError::ZeroThreads);
                }
                options.threads = threads;
            }
            "--chaos-seed" => {
                options.chaos_seed = Some(value(&mut iter, "--chaos-seed", "a seed integer")?)
            }
            "--chaos-rate" => {
                let rate: f64 = value(&mut iter, "--chaos-rate", "a probability in [0, 1]")?;
                if !(0.0..=1.0).contains(&rate) {
                    return Err(ArgError::ChaosRateOutOfRange(rate));
                }
                options.chaos_rate = Some(rate);
            }
            "--watchdog-factor" => {
                let factor: u64 = value(&mut iter, "--watchdog-factor", "an integer multiplier")?;
                if factor <= 1 {
                    return Err(ArgError::WatchdogFactorTooSmall(factor));
                }
                options.watchdog_factor = factor;
            }
            "--plan" => {
                let v = iter.next().ok_or(ArgError::MissingValue("--plan"))?;
                options.plan = match v.as_str() {
                    "on" | "1" => true,
                    "off" | "0" => false,
                    other => {
                        return Err(ArgError::InvalidValue {
                            flag: "--plan",
                            value: other.to_owned(),
                            expected: "on|off",
                        })
                    }
                };
            }
            "--hot-loop-threshold" => {
                options.plan_knobs.hot_loop_threshold =
                    value(&mut iter, "--hot-loop-threshold", "a loop nesting depth")?;
            }
            "--max-trace-len" => {
                options.plan_knobs.max_trace_len =
                    value(&mut iter, "--max-trace-len", "an instruction count")?;
            }
            "--mem-budget" => {
                let text = iter.next().ok_or(ArgError::MissingValue("--mem-budget"))?;
                let bytes = parse_bytes(text).ok_or_else(|| ArgError::InvalidValue {
                    flag: "--mem-budget",
                    value: text.clone(),
                    expected: "a byte count with optional k/m/g suffix (e.g. 64m)",
                })?;
                options.mem_budget = Some(bytes);
            }
            "--emit-json" => {
                // Optional path operand; defaults to BENCH_parallel.json.
                let path = match iter.peek() {
                    Some(next) if !next.starts_with('-') => iter.next().cloned(),
                    _ => None,
                };
                options.emit_json = Some(path.unwrap_or_else(|| "BENCH_parallel.json".to_owned()));
            }
            "--scale" => {
                let v = iter.next().ok_or(ArgError::MissingValue("--scale"))?;
                options.scale = parse_scale(v)?;
                options.scale_explicit = true;
            }
            "--tag" => {
                options.tag = Some(iter.next().ok_or(ArgError::MissingValue("--tag"))?.clone());
            }
            "--perf-guard" => {
                let fresh = iter
                    .next()
                    .ok_or(ArgError::MissingValue("--perf-guard"))?
                    .clone();
                let baseline = iter
                    .next()
                    .ok_or(ArgError::MissingValue("--perf-guard"))?
                    .clone();
                options.perf_guard = Some((fresh, baseline));
            }
            "-t" => {
                options.tool = iter.next().ok_or(ArgError::MissingValue("-t"))?.clone();
            }
            "--" => {
                after_dashes.extend(iter.by_ref().cloned());
            }
            other => return Err(ArgError::UnknownFlag(other.to_owned())),
        }
    }
    if options.emit_json.is_some() || options.perf_guard.is_some() {
        return Ok(options);
    }
    if after_dashes.is_empty() || options.tool.is_empty() {
        return Err(ArgError::MissingBenchmarkOrTool);
    }
    options.benchmark = after_dashes[0].clone();
    if let Some(scale) = after_dashes.get(1) {
        options.scale = parse_scale(scale)?;
        options.scale_explicit = true;
    }
    Ok(options)
}

fn parse_scale(text: &str) -> Result<Scale, ArgError> {
    match text {
        "tiny" => Ok(Scale::Tiny),
        "small" => Ok(Scale::Small),
        "medium" => Ok(Scale::Medium),
        "large" => Ok(Scale::Large),
        other => Err(ArgError::InvalidValue {
            flag: "--scale",
            value: other.to_owned(),
            expected: "tiny|small|medium|large",
        }),
    }
}

/// The SuperPin configuration an invocation's switches describe, chaos
/// plan included (`--chaos-rate` without `--chaos-seed` defaults the
/// seed to 1, and vice versa the rate to 0.01).
fn superpin_config(options: &Options) -> SuperPinConfig {
    let mut cfg = SuperPinConfig::scaled(options.spmsec, time_scale_for(options.scale))
        .with_max_slices(options.spmp)
        .with_max_sysrecs(options.spsysrecs)
        .with_threads(options.threads)
        .with_watchdog_factor(options.watchdog_factor);
    if let Some(budget) = options.mem_budget {
        cfg = cfg.with_mem_budget(budget);
    }
    if options.chaos_seed.is_some() || options.chaos_rate.is_some() {
        cfg = cfg.with_chaos(FailPlan::new(
            options.chaos_seed.unwrap_or(1),
            options.chaos_rate.unwrap_or(0.01),
        ));
    }
    cfg
}

/// [`superpin_config`] plus the program-specific whole-program plan and
/// soundness oracle when `--plan on`: slice engines pre-decode
/// predicted-hot traces and elide provably dead save/restores, and
/// (debug builds) every indirect transfer and code write is validated
/// against the static analysis. Reports are bit-identical to
/// `--plan off`.
fn superpin_config_for(program: &superpin_isa::Program, options: &Options) -> SuperPinConfig {
    let mut cfg = superpin_config(options);
    if options.plan {
        let analysis = ProgramAnalysis::compute(program).expect("whole-program analysis");
        cfg = cfg
            .with_plan(Arc::new(analysis.plan(options.plan_knobs)))
            .with_oracle(Arc::new(analysis.oracle()));
    }
    cfg
}

fn run_super<T: SuperTool>(
    program: &superpin_isa::Program,
    tool: T,
    shared: &SharedMem,
    options: &Options,
) -> superpin::SuperPinReport {
    let cfg = superpin_config_for(program, options);
    let present = cfg.clone();
    let report = SuperPinRunner::new(
        Process::load(1, program).expect("load"),
        tool,
        shared.clone(),
        cfg,
    )
    .expect("setup")
    .run()
    .expect("run");
    println!(
        "superpin: {} slices ({} timer, {} syscall), {} stalls",
        report.slice_count(),
        report.forks_on_timeout,
        report.forks_on_syscall,
        report.stall_events
    );
    println!(
        "runtime {:.2}s presented ({} cycles); breakdown: native {:.2}s, fork&others {:.2}s, sleep {:.2}s, pipeline {:.2}s",
        present.present_secs(report.total_cycles),
        report.total_cycles,
        present.present_secs(report.breakdown.native_cycles),
        present.present_secs(report.breakdown.fork_other_cycles),
        present.present_secs(report.breakdown.sleep_cycles),
        present.present_secs(report.breakdown.pipeline_cycles),
    );
    if present.chaos.is_some() {
        println!(
            "chaos: {} slice retries, {} slices degraded",
            report.slice_retries, report.slices_degraded
        );
    }
    if present.mem_budget.is_some() {
        println!(
            "memory: peak {} bytes resident, {} slices deferred, {} checkpoints dropped, {} caches evicted",
            report.peak_resident_bytes,
            report.slices_deferred,
            report.checkpoints_dropped,
            report.caches_evicted
        );
    }
    if options.gantt {
        print!("{}", superpin_bench::render::render_gantt(&report, 100));
    }
    report
}

/// The history key for an `--emit-json` run: the `--tag` string when
/// given, otherwise the current git short SHA, otherwise `untagged`.
fn history_key(options: &Options) -> String {
    if let Some(tag) = &options.tag {
        return tag.clone();
    }
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|sha| sha.trim().to_owned())
        .filter(|sha| !sha.is_empty())
        .unwrap_or_else(|| "untagged".to_owned())
}

/// `--perf-guard FRESH BASELINE`: compare geomean plan-off throughput
/// in a fresh `--emit-json` file against a checked-in baseline snapshot
/// and fail (exit 1) on a >10% regression. Runs no simulation itself,
/// so CI can reuse the tracker output it just produced.
fn run_perf_guard(fresh_path: &str, baseline_path: &str) -> ! {
    const FIELD: &str = "geomean_throughput_mcps";
    const ALLOWED_REGRESSION: f64 = 0.10;
    let read = |path: &str| {
        std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("perf-guard: read {path}: {e}");
            std::process::exit(1);
        })
    };
    let number = |path: &str, json: &str| {
        superpin_bench::parallel::extract_number(json, FIELD).unwrap_or_else(|| {
            eprintln!("perf-guard: no `{FIELD}` field in {path}");
            std::process::exit(1);
        })
    };
    let fresh = number(fresh_path, &read(fresh_path));
    let baseline = number(baseline_path, &read(baseline_path));
    let floor = baseline * (1.0 - ALLOWED_REGRESSION);
    println!(
        "perf-guard: {FIELD} fresh {fresh:.3} vs baseline {baseline:.3} \
         (floor {floor:.3}, {:.0}% regression allowed)",
        ALLOWED_REGRESSION * 100.0
    );
    if fresh < floor {
        eprintln!(
            "perf-guard: geomean throughput regressed {:.1}% (> {:.0}% allowed)",
            100.0 * (1.0 - fresh / baseline),
            ALLOWED_REGRESSION * 100.0
        );
        std::process::exit(1);
    }
    std::process::exit(0);
}

fn main() {
    let options = parse_args();
    if let Some((fresh, baseline)) = &options.perf_guard {
        run_perf_guard(fresh, baseline);
    }
    if let Some(path) = &options.emit_json {
        // Wall-clock tracker mode: serial vs parallel over a fixed set.
        let scale = if options.scale_explicit {
            options.scale
        } else {
            Scale::Medium
        };
        let rows = superpin_bench::parallel::run_parallel_bench(
            scale,
            superpin_bench::parallel::DEFAULT_SET,
            options.mem_budget,
        );
        print!("{}", superpin_bench::parallel::render_parallel(&rows));
        // Service-mode rows: the fixed two-tenant mix at a tight fleet
        // budget. Always tiny scale — it tracks scheduler cost, not
        // guest throughput.
        let fleet = superpin_bench::fleet::run_fleet_bench();
        print!("{}", superpin_bench::fleet::render_fleet(&fleet));
        // Appending (not clobbering) the history array keeps the perf
        // trajectory across PRs; same-key reruns replace their entry.
        let previous = std::fs::read_to_string(path).ok();
        let json = superpin_bench::parallel::parallel_to_json_with_history(
            scale,
            &rows,
            &history_key(&options),
            previous.as_deref(),
        );
        let json = superpin_bench::fleet::splice_fleet_section(
            &json,
            &superpin_bench::fleet::fleet_to_json(&fleet),
        );
        superpin_replay::atomic_write(path, (json + "\n").as_bytes())
            .unwrap_or_else(|e| panic!("write {path}: {e}"));
        println!("wrote {path}");
        if rows.iter().any(|row| !row.identical) {
            eprintln!("determinism violation: parallel or supervised report differed from serial");
            std::process::exit(1);
        }
        // Bench guard: supervision with chaos disabled must stay within
        // wall-clock noise of the plain serial baseline (checkpointing
        // is one deep clone per slice wake, amortized over the slice's
        // whole life).
        let overhead = superpin_bench::parallel::geomean_supervisor_overhead(&rows);
        if overhead > 1.5 {
            eprintln!("supervisor overhead {overhead:.2}x exceeds the 1.5x noise bound");
            std::process::exit(1);
        }
        // Bench guard: streaming the replay log must stay cheap — the
        // recorded run's wall clock within 1.25x geomean of plain runs.
        let record_overhead = superpin_bench::parallel::geomean_record_overhead(&rows);
        if record_overhead > 1.25 {
            eprintln!("record overhead {record_overhead:.2}x exceeds the 1.25x bound");
            std::process::exit(1);
        }
        // Fleet guards: the service scheduler must be deterministic
        // across thread counts, and must not cost more than 1.5x the
        // same jobs run serially.
        if !fleet.identical {
            eprintln!("determinism violation: fleet reports differed between 1 and 4 threads");
            std::process::exit(1);
        }
        let fleet_overhead = fleet.fleet_overhead();
        if fleet_overhead > 1.5 {
            eprintln!("fleet overhead {fleet_overhead:.2}x vs serial jobs exceeds the 1.5x bound");
            std::process::exit(1);
        }
        // Crash durability must stay cheap: journaling every settled
        // round (commit markers on, fsync off) may not slow the fleet
        // more than 1.15x.
        let wal_overhead = fleet.wal_overhead();
        if wal_overhead > 1.15 {
            eprintln!("wal overhead {wal_overhead:.2}x vs bare fleet exceeds the 1.15x bound");
            std::process::exit(1);
        }
        return;
    }
    let Some(spec) = find(&options.benchmark) else {
        eprintln!("unknown benchmark `{}`", options.benchmark);
        std::process::exit(2);
    };
    let program = spec.build(options.scale);
    println!(
        "{} @ {:?}: {} static instructions",
        spec.name,
        options.scale,
        program.static_inst_count()
    );

    // The tool zoo. Each arm constructs, runs (SuperPin or plain Pin per
    // -sp), and prints its result.
    match options.tool.as_str() {
        "icount1" => {
            let shared = SharedMem::new();
            let tool = ICount1::new(&shared);
            if options.sp {
                let cfg = superpin_config_for(&program, &options);
                SuperPinRunner::new(
                    Process::load(1, &program).expect("load"),
                    tool.clone(),
                    shared.clone(),
                    cfg,
                )
                .expect("setup")
                .run()
                .expect("run");
                println!("Total Count: {}", tool.total(&shared));
            } else {
                let pin = run_pin(Process::load(1, &program).expect("load"), tool).expect("pin");
                println!("Total Count: {}", pin.tool.local_count());
            }
        }
        "icount2" => {
            let shared = SharedMem::new();
            let tool = ICount2::new(&shared);
            if options.sp {
                run_super(&program, tool.clone(), &shared, &options);
                println!("Total Count: {}", tool.total(&shared));
            } else {
                let pin = run_pin(Process::load(1, &program).expect("load"), tool).expect("pin");
                println!("Total Count: {}", pin.tool.local_count());
            }
        }
        "dcache" => {
            let shared = SharedMem::new();
            let tool = DCache::new(&shared, DCacheConfig::small());
            let result = if options.sp {
                run_super(&program, tool.clone(), &shared, &options);
                tool.merged_result(&shared)
            } else {
                run_pin(Process::load(1, &program).expect("load"), tool)
                    .expect("pin")
                    .tool
                    .local_result()
            };
            println!(
                "dcache: {} hits, {} misses (miss ratio {:.2}%)",
                result.hits,
                result.misses,
                100.0 * result.miss_ratio()
            );
        }
        "dcache-assoc" => {
            use superpin_tools::{AssocDCache, AssocDCacheConfig};
            let shared = SharedMem::new();
            let tool = AssocDCache::new(&shared, AssocDCacheConfig::small());
            let result = if options.sp {
                run_super(&program, tool.clone(), &shared, &options);
                tool.merged_result(&shared)
            } else {
                run_pin(Process::load(1, &program).expect("load"), tool)
                    .expect("pin")
                    .tool
                    .local_result()
            };
            println!(
                "dcache-assoc (2-way LRU): {} hits, {} misses (miss ratio {:.2}%)",
                result.hits,
                result.misses,
                100.0 * result.miss_ratio()
            );
        }
        "icache" => {
            use superpin_tools::ICache;
            let shared = SharedMem::new();
            let tool = ICache::new(&shared, DCacheConfig::small());
            let result = if options.sp {
                run_super(&program, tool.clone(), &shared, &options);
                tool.merged_result(&shared)
            } else {
                run_pin(Process::load(1, &program).expect("load"), tool)
                    .expect("pin")
                    .tool
                    .local_result()
            };
            println!(
                "icache: {} hits, {} misses (miss ratio {:.2}%)",
                result.hits,
                result.misses,
                100.0 * result.miss_ratio()
            );
        }
        "bblcount" => {
            use superpin_tools::BblCount;
            let tool = BblCount::new();
            let hottest = if options.sp {
                let shared = SharedMem::new();
                run_super(&program, tool.clone(), &shared, &options);
                tool.hottest(5)
            } else {
                let pin = run_pin(Process::load(1, &program).expect("load"), tool).expect("pin");
                let mut blocks: Vec<(u64, u64)> = pin
                    .tool
                    .local_blocks()
                    .iter()
                    .map(|(&a, &c)| (a, c))
                    .collect();
                blocks.sort_by_key(|&(_, count)| std::cmp::Reverse(count));
                blocks.truncate(5);
                blocks
            };
            println!("bblcount: hottest blocks:");
            for (addr, count) in hottest {
                let name = program
                    .symbol_for_addr(addr)
                    .map(|sym| sym.name.as_str())
                    .unwrap_or("?");
                println!("  {addr:#08x} [{name:<10}] {count:>8} executions");
            }
        }
        "insmix" => {
            use superpin_tools::{InsMix, MixCategory};
            let shared = SharedMem::new();
            let tool = InsMix::new(&shared);
            let counts = if options.sp {
                run_super(&program, tool.clone(), &shared, &options);
                tool.merged_counts(&shared)
            } else {
                run_pin(Process::load(1, &program).expect("load"), tool)
                    .expect("pin")
                    .tool
                    .local_counts()
            };
            println!("insmix ({} instructions):", counts.total());
            for category in MixCategory::ALL {
                println!(
                    "  {:<8} {:>12} ({:>5.1}%)",
                    category.label(),
                    counts.get(category),
                    100.0 * counts.fraction(category)
                );
            }
        }
        "itrace" => {
            let shared = SharedMem::new();
            let tool = ITrace::new();
            let trace = if options.sp {
                run_super(&program, tool, &shared, &options);
                ITrace::merged_trace(&shared)
            } else {
                let pin = run_pin(Process::load(1, &program).expect("load"), tool).expect("pin");
                ITrace::decode(pin.tool.local_buffer())
            };
            println!("itrace: {} instructions traced", trace.len());
        }
        "branch" => {
            let tool = BranchProfile::new();
            let sites = if options.sp {
                let shared = SharedMem::new();
                run_super(&program, tool.clone(), &shared, &options);
                tool.merged_sites()
            } else {
                run_pin(Process::load(1, &program).expect("load"), tool)
                    .expect("pin")
                    .tool
                    .local_sites()
                    .clone()
            };
            println!("branch: {} sites profiled", sites.len());
        }
        "mem" => {
            let shared = SharedMem::new();
            let tool = MemProfile::new(&shared);
            let totals = if options.sp {
                run_super(&program, tool.clone(), &shared, &options);
                tool.merged_totals(&shared)
            } else {
                run_pin(Process::load(1, &program).expect("load"), tool)
                    .expect("pin")
                    .tool
                    .local_totals()
            };
            println!(
                "mem: {} loads ({} B), {} stores ({} B)",
                totals.loads, totals.bytes_read, totals.stores, totals.bytes_written
            );
        }
        "sampler" => {
            let tool = Sampler::new(500);
            if options.sp {
                let shared = SharedMem::new();
                run_super(&program, tool.clone(), &shared, &options);
                println!("sampler: {} samples", tool.merged_samples());
            } else {
                eprintln!("sampler requires -sp 1 (it is a SuperPin tool)");
                std::process::exit(2);
            }
        }
        other => {
            eprintln!("unknown tool `{other}`");
            usage();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(text: &[&str]) -> Vec<String> {
        text.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn valid_command_line_parses() {
        let options = parse_options(&args(&[
            "-t",
            "icount2",
            "--threads",
            "4",
            "--",
            "gcc",
            "tiny",
        ]))
        .expect("parse");
        assert_eq!(options.tool, "icount2");
        assert_eq!(options.threads, 4);
        assert_eq!(options.benchmark, "gcc");
        assert_eq!(options.scale, Scale::Tiny);
        assert!(options.scale_explicit);
        assert_eq!(options.mem_budget, None);
    }

    #[test]
    fn watchdog_factor_must_exceed_one() {
        for bad in ["0", "1"] {
            let err = parse_options(&args(&[
                "--watchdog-factor",
                bad,
                "-t",
                "icount2",
                "--",
                "gcc",
            ]))
            .expect_err("factor <= 1 must be rejected");
            assert_eq!(err, ArgError::WatchdogFactorTooSmall(bad.parse().unwrap()));
            assert!(err.to_string().contains("--watchdog-factor"));
        }
        assert!(parse_options(&args(&[
            "--watchdog-factor",
            "2",
            "-t",
            "icount2",
            "--",
            "gcc"
        ]))
        .is_ok());
    }

    #[test]
    fn chaos_rate_must_be_a_probability() {
        for bad in ["-0.1", "1.5", "nan"] {
            let err = parse_options(&args(&["--chaos-rate", bad, "-t", "icount2", "--", "gcc"]))
                .expect_err("rate outside [0, 1] must be rejected");
            assert!(err.to_string().contains("--chaos-rate"), "{err}");
        }
        let options = parse_options(&args(&[
            "--chaos-rate",
            "1.0",
            "-t",
            "icount2",
            "--",
            "gcc",
        ]))
        .expect("boundary is inclusive");
        assert_eq!(options.chaos_rate, Some(1.0));
    }

    #[test]
    fn zero_threads_is_rejected() {
        let err = parse_options(&args(&["--threads", "0", "-t", "icount2", "--", "gcc"]))
            .expect_err("zero threads must be rejected");
        assert_eq!(err, ArgError::ZeroThreads);
    }

    #[test]
    fn mem_budget_accepts_binary_suffixes() {
        assert_eq!(parse_bytes("4096"), Some(4096));
        assert_eq!(parse_bytes("8k"), Some(8 << 10));
        assert_eq!(parse_bytes("64M"), Some(64 << 20));
        assert_eq!(parse_bytes("2g"), Some(2 << 30));
        assert_eq!(parse_bytes("banana"), None);
        assert_eq!(parse_bytes(""), None);
        let options = parse_options(&args(&["--mem-budget", "1m", "-t", "icount2", "--", "gcc"]))
            .expect("parse");
        assert_eq!(options.mem_budget, Some(1 << 20));
        let err = parse_options(&args(&[
            "--mem-budget",
            "lots",
            "-t",
            "icount2",
            "--",
            "gcc",
        ]))
        .expect_err("non-numeric budget must be rejected");
        assert!(err.to_string().contains("--mem-budget"), "{err}");
    }

    #[test]
    fn plan_flags_parse() {
        let options = parse_options(&args(&[
            "--plan",
            "on",
            "--hot-loop-threshold",
            "2",
            "--max-trace-len",
            "32",
            "-t",
            "icount2",
            "--",
            "gcc",
        ]))
        .expect("parse");
        assert!(options.plan);
        assert_eq!(options.plan_knobs.hot_loop_threshold, 2);
        assert_eq!(options.plan_knobs.max_trace_len, 32);
        let defaults = parse_options(&args(&["-t", "icount2", "--", "gcc"])).expect("parse");
        assert!(!defaults.plan);
        assert_eq!(defaults.plan_knobs, PlanKnobs::default());
        assert!(
            parse_options(&args(&["--plan", "sideways", "-t", "icount2", "--", "gcc"])).is_err()
        );
    }

    #[test]
    fn tag_and_perf_guard_parse() {
        let options =
            parse_options(&args(&["--emit-json", "out.json", "--tag", "pr7"])).expect("parse");
        assert_eq!(options.emit_json.as_deref(), Some("out.json"));
        assert_eq!(options.tag.as_deref(), Some("pr7"));

        let options =
            parse_options(&args(&["--perf-guard", "fresh.json", "base.json"])).expect("parse");
        assert_eq!(
            options.perf_guard,
            Some(("fresh.json".to_owned(), "base.json".to_owned()))
        );

        assert_eq!(
            parse_options(&args(&["--perf-guard", "fresh.json"])),
            Err(ArgError::MissingValue("--perf-guard"))
        );
        assert_eq!(
            parse_options(&args(&["--emit-json", "x.json", "--tag"])),
            Err(ArgError::MissingValue("--tag"))
        );
    }

    #[test]
    fn missing_values_and_unknown_flags_are_typed() {
        assert_eq!(
            parse_options(&args(&["--threads"])),
            Err(ArgError::MissingValue("--threads"))
        );
        assert_eq!(
            parse_options(&args(&["--frobnicate"])),
            Err(ArgError::UnknownFlag("--frobnicate".to_owned()))
        );
        assert_eq!(
            parse_options(&args(&["-t", "icount2"])),
            Err(ArgError::MissingBenchmarkOrTool)
        );
    }
}

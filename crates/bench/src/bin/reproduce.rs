//! Regenerates every table and figure from the paper's evaluation (§6).
//!
//! Usage:
//!
//! ```text
//! reproduce [fig3|fig4|fig5|fig6|fig7|sigstats|pipeline|overhead|ablation|all]
//!           [--scale tiny|small|medium|large] [--threads N] [--json]
//! ```
//!
//! Build with `--release`; `medium` (the default) simulates ~10⁸ guest
//! instructions across the suite.

use superpin_bench::{figures, json, render};
use superpin_workloads::Scale;

fn parse_scale(text: &str) -> Scale {
    match text {
        "tiny" => Scale::Tiny,
        "small" => Scale::Small,
        "medium" => Scale::Medium,
        "large" => Scale::Large,
        other => {
            eprintln!("unknown scale `{other}` (tiny|small|medium|large)");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut what = "all".to_owned();
    let mut scale = Scale::Medium;
    let mut as_json = false;
    let mut threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);

    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--scale" => {
                scale = parse_scale(iter.next().map(String::as_str).unwrap_or(""));
            }
            "--json" => as_json = true,
            "--threads" => {
                threads = iter.next().and_then(|t| t.parse().ok()).unwrap_or(threads);
            }
            other if !other.starts_with('-') => what = other.to_owned(),
            other => {
                eprintln!("unknown option `{other}`");
                std::process::exit(2);
            }
        }
    }

    match what.as_str() {
        "fig3" => {
            let series = figures::fig3_icount1(scale, threads);
            if as_json {
                println!("{}", json::series_to_json(&series));
            } else {
                print!(
                    "{}",
                    render::render_series(
                        "Figure 3: icount1 — Pin and SuperPin runtime relative to native",
                        &series
                    )
                );
            }
        }
        "fig4" => {
            let series = figures::fig3_icount1(scale, threads);
            print!(
                "{}",
                render::render_series(
                    "Figure 4: icount1 — SuperPin speedup over Pin (same data as Fig. 3)",
                    &series
                )
            );
        }
        "fig5" => {
            let series = figures::fig5_icount2(scale, threads);
            if as_json {
                println!("{}", json::series_to_json(&series));
            } else {
                print!(
                    "{}",
                    render::render_series(
                        "Figure 5: icount2 — Pin and SuperPin runtime relative to native",
                        &series
                    )
                );
            }
        }
        "fig6" => {
            let rows = figures::fig6_timeslice(scale, &[500, 1000, 2000, 4000]);
            if as_json {
                println!("{}", json::fig6_to_json(&rows));
            } else {
                print!("{}", render::render_fig6(&rows));
            }
        }
        "fig7" => {
            let rows = figures::fig7_parallelism(scale, &[1, 2, 4, 8, 12, 16]);
            if as_json {
                println!("{}", json::fig7_to_json(&rows));
            } else {
                print!("{}", render::render_fig7(&rows));
            }
        }
        "sigstats" => {
            let summary = figures::signature_stats(scale, threads);
            if as_json {
                println!("{}", json::sigstats_to_json(&summary));
            } else {
                print!("{}", render::render_sigstats(&summary));
            }
        }
        "pipeline" => {
            let checks = figures::pipeline_model(scale, &[1000, 2000, 4000]);
            print!("{}", render::render_pipeline(&checks));
        }
        "overhead" => {
            let report = figures::overhead_breakdown(scale);
            print!("{}", render::render_overhead(&report));
        }
        "ablation" => {
            let rows = figures::ablations(scale);
            print!("{}", render::render_ablations(&rows));
        }
        "all" => {
            let icount1 = figures::fig3_icount1(scale, threads);
            print!(
                "{}",
                render::render_series(
                    "Figure 3: icount1 — Pin and SuperPin runtime relative to native",
                    &icount1
                )
            );
            println!();
            print!(
                "{}",
                render::render_series(
                    "Figure 4: icount1 — SuperPin speedup over Pin (same data)",
                    &icount1
                )
            );
            println!();
            let icount2 = figures::fig5_icount2(scale, threads);
            print!(
                "{}",
                render::render_series(
                    "Figure 5: icount2 — Pin and SuperPin runtime relative to native",
                    &icount2
                )
            );
            println!();
            print!(
                "{}",
                render::render_fig6(&figures::fig6_timeslice(scale, &[500, 1000, 2000, 4000]))
            );
            println!();
            print!(
                "{}",
                render::render_fig7(&figures::fig7_parallelism(scale, &[1, 2, 4, 8, 12, 16]))
            );
            println!();
            print!(
                "{}",
                render::render_sigstats(&figures::signature_stats(scale, threads))
            );
            println!();
            print!(
                "{}",
                render::render_pipeline(&figures::pipeline_model(scale, &[1000, 2000, 4000]))
            );
            println!();
            print!(
                "{}",
                render::render_overhead(&figures::overhead_breakdown(scale))
            );
            println!();
            print!("{}", render::render_ablations(&figures::ablations(scale)));
        }
        other => {
            eprintln!(
                "unknown figure `{other}` (fig3|fig4|fig5|fig6|fig7|sigstats|pipeline|overhead|ablation|all)"
            );
            std::process::exit(2);
        }
    }
}

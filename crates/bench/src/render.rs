//! Plain-text rendering of figure data.

use crate::figures::{Fig6Row, Fig7Row, FigSeries, OverheadReport, PipelineCheck, SigStatsSummary};
use std::fmt::Write as _;

/// Renders a Figure 3/5-style series (runtime % of native + speedup).
pub fn render_series(title: &str, series: &FigSeries) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = writeln!(
        out,
        "{:<10} {:>10} {:>12} {:>9} {:>7} {:>7}",
        "benchmark", "pin %", "superpin %", "speedup", "slices", "counts"
    );
    for row in &series.rows {
        let _ = writeln!(
            out,
            "{:<10} {:>9.0}% {:>11.0}% {:>8.2}x {:>7} {:>7}",
            row.benchmark,
            row.pin_pct,
            row.superpin_pct,
            row.speedup,
            row.slices,
            if row.counts_ok { "ok" } else { "MISMATCH" }
        );
    }
    let _ = writeln!(
        out,
        "{:<10} {:>9.0}% {:>11.0}% {:>8.2}x",
        "AVG", series.avg_pin_pct, series.avg_superpin_pct, series.avg_speedup
    );
    out
}

/// Renders Figure 6's stacked breakdown.
pub fn render_fig6(rows: &[Fig6Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 6: gcc runtime vs timeslice interval (presented seconds)"
    );
    let _ = writeln!(
        out,
        "{:>10} {:>8} {:>12} {:>8} {:>10} {:>8} {:>7}",
        "timeslice", "native", "fork&others", "sleep", "pipeline", "total", "slices"
    );
    for row in rows {
        let _ = writeln!(
            out,
            "{:>9.1}s {:>8.1} {:>12.1} {:>8.1} {:>10.1} {:>8.1} {:>7}",
            row.timeslice_secs,
            row.native_secs,
            row.fork_other_secs,
            row.sleep_secs,
            row.pipeline_secs,
            row.total_secs,
            row.slices
        );
    }
    out
}

/// Renders Figure 7's parallelism sweep.
pub fn render_fig7(rows: &[Fig7Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 7: gcc runtime vs max running slices (16 virtual CPUs)"
    );
    let _ = writeln!(
        out,
        "{:>12} {:>12} {:>8}",
        "max slices", "runtime", "stalls"
    );
    for row in rows {
        let _ = writeln!(
            out,
            "{:>12} {:>11.1}s {:>8}",
            row.max_slices, row.runtime_secs, row.stall_events
        );
    }
    out
}

/// Renders the §4.4 signature-detection statistics.
pub fn render_sigstats(summary: &SigStatsSummary) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Signature detection statistics (paper §4.4)");
    let _ = writeln!(
        out,
        "  quick checks:            {}",
        summary.stats.quick_checks
    );
    let _ = writeln!(
        out,
        "  full (arch) checks:      {}",
        summary.stats.full_checks
    );
    let _ = writeln!(
        out,
        "  stack checks:            {}",
        summary.stats.stack_checks
    );
    let _ = writeln!(
        out,
        "  detections:              {}",
        summary.stats.detections
    );
    let _ = writeln!(
        out,
        "  quick→full rate:         {:.2}%  (paper: ~2%)",
        100.0 * summary.full_check_rate
    );
    let _ = writeln!(
        out,
        "  stack checks/detection:  {:.2}  (paper: usually once)",
        summary.stack_checks_per_detection
    );
    out
}

/// Renders the §3 pipeline-delay model check.
pub fn render_pipeline(checks: &[PipelineCheck]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Pipeline-delay model (paper §3): gcc");
    let _ = writeln!(
        out,
        "{:>10} {:>10} {:>12} {:>8}",
        "timeslice", "measured", "(F+1)*s", "N*s"
    );
    for check in checks {
        let _ = writeln!(
            out,
            "{:>9.1}s {:>9.1}s {:>11.1}s {:>7.1}s",
            check.timeslice_secs,
            check.measured_secs,
            check.model_f_plus_1_secs,
            check.model_n_secs
        );
    }
    out
}

/// Renders the design-choice ablation table.
pub fn render_ablations(rows: &[crate::figures::AblationRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Ablations: gcc, 1 s timeslice (presented seconds)");
    let _ = writeln!(
        out,
        "{:<20} {:>9} {:>9} {:>11} {:>11}",
        "variant", "total", "sleep", "slice JIT", "sys forks"
    );
    for row in rows {
        let _ = writeln!(
            out,
            "{:<20} {:>8.1}s {:>8.1}s {:>10.1}s {:>11}",
            row.variant, row.total_secs, row.sleep_secs, row.slice_jit_secs, row.forks_on_syscall
        );
    }
    out
}

/// Renders an ASCII Gantt chart of a SuperPin run: the master's lifetime
/// on the first row, then every slice's sleep (`.`) and run (`#`) span,
/// visualizing Figure 1's pipeline of overlapping instrumented slices.
pub fn render_gantt(report: &superpin::SuperPinReport, width: usize) -> String {
    let width = width.clamp(20, 200);
    let total = report.total_cycles.max(1);
    let scale =
        |cycles: u64| -> usize { ((cycles as u128 * width as u128) / total as u128) as usize };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "gantt ({} cycles across {width} cols; '=' master, '.' asleep, '#' running)",
        report.total_cycles
    );
    let master_end = scale(report.master_exit_cycles);
    let mut master_row = String::new();
    master_row.push_str(&"=".repeat(master_end));
    master_row.push_str(&" ".repeat(width.saturating_sub(master_end)));
    let _ = writeln!(out, "master   |{master_row}|");

    // Print at most 24 slices, evenly sampled, to keep the chart readable.
    let step = (report.slices.len() / 24).max(1);
    for slice in report.slices.iter().step_by(step) {
        let fork_col = scale(slice.start_cycles);
        let wake_col = scale(slice.wake_cycles).max(fork_col);
        let end_col = scale(slice.end_cycles).max(wake_col + 1).min(width);
        let wake_col = wake_col.min(end_col);
        let mut row = String::new();
        row.push_str(&" ".repeat(fork_col));
        row.push_str(&".".repeat(wake_col - fork_col));
        row.push_str(&"#".repeat(end_col - wake_col));
        row.push_str(&" ".repeat(width.saturating_sub(end_col)));
        let _ = writeln!(out, "slice {:>3}|{row}|", slice.num);
    }
    out
}

/// Renders the §6.3 overhead taxonomy.
pub fn render_overhead(report: &OverheadReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Overhead taxonomy (paper §6.3): gcc");
    let _ = writeln!(
        out,
        "  ptrace overhead:      {:.3}% of native  (paper: < a few tenths of a percent)",
        100.0 * report.ptrace_fraction
    );
    let _ = writeln!(out, "  master COW copies:    {}", report.master_cow_copies);
    let _ = writeln!(out, "  slice COW copies:     {}", report.slice_cow_copies);
    let _ = writeln!(
        out,
        "  mean slice JIT share: {:.1}% of slice cycles (compilation slowdown)",
        100.0 * report.mean_slice_jit_fraction
    );
    let _ = writeln!(
        out,
        "  syscall-forced forks: {:.1}% of all forks",
        100.0 * report.syscall_fork_fraction
    );
    out
}

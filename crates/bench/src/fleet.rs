//! Fleet (service-mode) wall-clock tracking.
//!
//! Runs a fixed two-tenant adversarial mix through `superpin-serve`
//! at 1 and 4 worker threads, plus the same jobs **serially** (each in
//! its own single-job fleet, back to back), and derives:
//!
//! * **jobs/sec** — host throughput of the 4-thread fleet;
//! * **p50/p95 job turnaround** — in *simulated* fleet cycles, so the
//!   percentiles are bit-stable across hosts;
//! * **per-tenant deferral counts** — the mix runs under a deliberately
//!   tight fleet budget so the admission ladder is exercised, not idle;
//! * **fleet overhead** — fleet wall clock at 1 thread over the summed
//!   serial wall clocks: what the scheduler itself costs. Guarded in
//!   the `--emit-json` path.
//! * **WAL overhead** — the 1-thread fleet with a per-round journal
//!   (commit markers on, fsync off) over the bare 1-thread fleet: what
//!   crash durability costs. Guarded at 1.15× in `--emit-json`.
//!
//! The mix always runs at `tiny` scale regardless of the tracker's
//! `--scale`: the point is scheduler overhead and fairness accounting,
//! not guest throughput, and CI pays for it on every push.

use std::fmt::Write as _;
use std::time::Instant;

use superpin_replay::fleet::FleetRecipe;
use superpin_replay::wal::FsyncPolicy;
use superpin_serve::durable::{Durability, FleetWal};
use superpin_serve::{
    parse_jobs, run_service, run_service_durable, FleetConfig, JobFile, ServiceReport,
};

/// The mix's tight fleet budget in bytes — small enough that admission
/// walks the ladder (defer/degrade/evict), large enough that every job
/// completes (see the serve determinism suite, which uses the same
/// value).
pub const FLEET_BENCH_BUDGET: u64 = 64 << 10;

/// The fixed mix's job-file text (the WAL header journals it).
pub fn fleet_bench_text() -> String {
    let catalog = superpin_workloads::catalog();
    let (w0, w1) = (catalog[0].name, catalog[1].name);
    format!(
        "tenant alpha weight=3\n\
         tenant beta weight=1\n\
         job tenant=alpha workload={w0} scale=tiny tool=icount2 arrive=0\n\
         job tenant=beta workload={w1} scale=tiny tool=icount1 arrive=0\n\
         job tenant=alpha workload={w1} scale=tiny tool=bblcount arrive=2000\n\
         job tenant=beta workload={w0} scale=tiny tool=branch arrive=4000\n\
         job tenant=alpha workload={w0} scale=tiny tool=mem arrive=4000\n\
         job tenant=beta workload={w1} scale=tiny tool=insmix arrive=6000\n"
    )
}

/// The fixed two-tenant mix: a heavy tenant (weight 3) and a light one
/// (weight 1), staggered arrivals, varied tools.
pub fn fleet_bench_file() -> JobFile {
    parse_jobs(&fleet_bench_text()).expect("fleet bench spec parses")
}

fn config(threads: usize) -> FleetConfig {
    FleetConfig {
        threads,
        slots: 2,
        fleet_budget: Some(FLEET_BENCH_BUDGET),
        chaos: None,
        spmsec: 1000,
    }
}

/// One fleet tracking measurement.
#[derive(Clone, Debug)]
pub struct FleetBenchResult {
    /// Jobs in the mix.
    pub jobs: usize,
    /// Fleet wall clock at 1 worker thread, milliseconds.
    pub wall_ms_threads1: f64,
    /// Fleet wall clock at 4 worker threads, milliseconds.
    pub wall_ms_threads4: f64,
    /// Summed wall clock of the same jobs run serially, each in its own
    /// single-job fleet, milliseconds.
    pub wall_ms_serial_jobs: f64,
    /// Fleet wall clock at 1 worker thread with a per-round WAL
    /// (commit markers on, fsync off), milliseconds.
    pub wall_ms_wal: f64,
    /// Median job turnaround in simulated fleet cycles (nearest rank).
    pub turnaround_p50: u64,
    /// 95th-percentile job turnaround in simulated fleet cycles.
    pub turnaround_p95: u64,
    /// `(tenant, deferral count)` pairs, tenant order.
    pub deferrals: Vec<(String, u64)>,
    /// Final fleet virtual time in cycles.
    pub fleet_cycles: u64,
    /// Whether the 1- and 4-thread runs were byte-identical (JSONL).
    pub identical: bool,
}

impl FleetBenchResult {
    /// Host job throughput of the 4-thread fleet.
    pub fn jobs_per_sec(&self) -> f64 {
        self.jobs as f64 / (self.wall_ms_threads4 / 1000.0).max(1e-9)
    }

    /// Scheduler cost: the 1-thread fleet's wall clock over the summed
    /// serial runs. ~1.0 means the fleet adds nothing; the `--emit-json`
    /// guard holds this under 1.5×.
    pub fn fleet_overhead(&self) -> f64 {
        self.wall_ms_threads1 / self.wall_ms_serial_jobs.max(1e-9)
    }

    /// Durability cost: the WAL-on 1-thread fleet over the WAL-off one.
    /// Journaling is one encode + two buffered appends per settled
    /// round; the `--emit-json` guard holds this under 1.15×.
    pub fn wal_overhead(&self) -> f64 {
        self.wall_ms_wal / self.wall_ms_threads1.max(1e-9)
    }
}

/// Best-of-N wall clock, like the parallel tracker's `timed_run`: the
/// minimum is the least-noisy estimate of the code's actual cost, and
/// the run is deterministic so every repeat returns the same report.
fn timed_ms<T>(mut run: impl FnMut() -> T) -> (T, f64) {
    const REPEATS: usize = 3;
    let mut best = f64::INFINITY;
    let mut result = None;
    for _ in 0..REPEATS {
        let start = Instant::now();
        let out = run();
        best = best.min(start.elapsed().as_secs_f64() * 1000.0);
        result = Some(out);
    }
    (result.expect("at least one repeat"), best)
}

/// Runs the fixed mix at 1 and 4 threads plus the serial baseline.
///
/// # Panics
///
/// Panics if any fleet run fails — harness code treats simulator
/// errors as fatal.
pub fn run_fleet_bench() -> FleetBenchResult {
    let file = fleet_bench_file();

    let (t1, wall_ms_threads1) = timed_ms(|| run_service(&file, &config(1)).expect("fleet t1"));
    let (t4, wall_ms_threads4) = timed_ms(|| run_service(&file, &config(4)).expect("fleet t4"));

    // Serial baseline: every job alone in its own fleet, back to back
    // — same stack, no contention, no shared budget.
    let ((), wall_ms_serial_jobs) = timed_ms(|| {
        for job in 0..file.jobs.len() {
            let solo = solo_file(&file, job);
            run_service(&solo, &solo_config()).expect("serial job");
        }
    });

    // Durable run: same 1-thread fleet, journaling every settled round
    // to a real file with commit markers but fsync off — the cost of
    // the WAL encode/append path itself, not of the disk.
    let wal_path =
        std::env::temp_dir().join(format!("superpin-fleet-bench-{}.spwal", std::process::id()));
    let cfg1 = config(1);
    let recipe = FleetRecipe {
        spec_text: fleet_bench_text(),
        threads: 1,
        slots: cfg1.slots as u32,
        fleet_budget: cfg1.fleet_budget,
        chaos: None,
        spmsec: cfg1.spmsec,
    };
    let (degraded, wall_ms_wal) = timed_ms(|| {
        let sink = std::fs::File::create(&wal_path).expect("bench wal file");
        let wal = FleetWal::create(Box::new(sink), &recipe, FsyncPolicy::Off, None)
            .expect("bench wal opens");
        let mut dur = Durability {
            wal: Some(wal),
            resume: Default::default(),
        };
        run_service_durable(&file, &cfg1, &mut dur).expect("fleet t1 + wal");
        dur.status().expect("wal attached").degraded
    });
    let _ = std::fs::remove_file(&wal_path);
    assert!(!degraded, "bench WAL degraded without fault injection");

    FleetBenchResult {
        jobs: file.jobs.len(),
        wall_ms_threads1,
        wall_ms_threads4,
        wall_ms_serial_jobs,
        wall_ms_wal,
        turnaround_p50: t1.turnaround_percentile(50.0),
        turnaround_p95: t1.turnaround_percentile(95.0),
        deferrals: t1
            .tenants
            .iter()
            .map(|t| (t.name.clone(), t.counters.deferred))
            .collect(),
        fleet_cycles: t1.fleet_cycles,
        identical: t1.jsonl() == t4.jsonl() && identical_counters(&t1, &t4),
    }
}

fn identical_counters(a: &ServiceReport, b: &ServiceReport) -> bool {
    a.tenants.len() == b.tenants.len()
        && a.tenants.iter().zip(&b.tenants).all(|(ta, tb)| {
            ta.counters.admitted == tb.counters.admitted
                && ta.counters.deferred == tb.counters.deferred
                && ta.counters.degraded == tb.counters.degraded
                && ta.counters.evicted == tb.counters.evicted
        })
}

/// A single-job copy of `file` keeping only job `index` (arrival reset
/// to 0) and its tenant.
fn solo_file(file: &JobFile, index: usize) -> JobFile {
    let spec = &file.jobs[index];
    let mut job = spec.clone();
    job.arrive = 0;
    job.tenant = 0;
    JobFile {
        tenants: vec![file.tenants[spec.tenant as usize].clone()],
        jobs: vec![job],
    }
}

fn solo_config() -> FleetConfig {
    FleetConfig {
        threads: 1,
        slots: 1,
        fleet_budget: None,
        chaos: None,
        spmsec: 1000,
    }
}

/// The fleet section for `BENCH_parallel.json` (hand-rolled, fixed
/// field order, same emitter policy as [`crate::parallel`]).
pub fn fleet_to_json(result: &FleetBenchResult) -> String {
    let mut out = String::from("{");
    let _ = write!(
        out,
        "\"jobs\":{},\"jobs_per_sec\":{:.3},\"turnaround_p50_cycles\":{},\
         \"turnaround_p95_cycles\":{},\"fleet_cycles\":{},\
         \"wall_ms_threads1\":{:.2},\"wall_ms_threads4\":{:.2},\
         \"wall_ms_serial_jobs\":{:.2},\"fleet_overhead\":{:.3},\
         \"wall_ms_wal\":{:.2},\"wal_overhead\":{:.3},\"deferrals\":{{",
        result.jobs,
        result.jobs_per_sec(),
        result.turnaround_p50,
        result.turnaround_p95,
        result.fleet_cycles,
        result.wall_ms_threads1,
        result.wall_ms_threads4,
        result.wall_ms_serial_jobs,
        result.fleet_overhead(),
        result.wall_ms_wal,
        result.wal_overhead(),
    );
    for (i, (tenant, deferred)) in result.deferrals.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{tenant}\":{deferred}");
    }
    let _ = write!(out, "}},\"identical\":{}}}", result.identical);
    out
}

/// Splices a `"fleet":{…}` section into a top-level JSON object (the
/// output of `parallel_to_json_with_history`), just before the closing
/// brace.
pub fn splice_fleet_section(json: &str, fleet_json: &str) -> String {
    let trimmed = json.trim_end();
    let body = trimmed
        .strip_suffix('}')
        .expect("tracker JSON is a top-level object");
    format!("{body},\"fleet\":{fleet_json}}}")
}

/// One-line text rendering for the tracker's terminal output.
pub fn render_fleet(result: &FleetBenchResult) -> String {
    let deferrals: Vec<String> = result
        .deferrals
        .iter()
        .map(|(tenant, deferred)| format!("{tenant}={deferred}"))
        .collect();
    format!(
        "fleet: {} jobs, {:.1} jobs/s (t4), turnaround p50 {} p95 {} cycles, \
         overhead {:.2}x vs serial, wal {:.2}x, deferrals {}, identical {}\n",
        result.jobs,
        result.jobs_per_sec(),
        result.turnaround_p50,
        result.turnaround_p95,
        result.fleet_overhead(),
        result.wal_overhead(),
        deferrals.join(" "),
        result.identical,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_json_shape_and_splice() {
        let result = FleetBenchResult {
            jobs: 6,
            wall_ms_threads1: 120.0,
            wall_ms_threads4: 60.0,
            wall_ms_serial_jobs: 100.0,
            wall_ms_wal: 126.0,
            turnaround_p50: 5000,
            turnaround_p95: 9000,
            deferrals: vec![("alpha".to_owned(), 2), ("beta".to_owned(), 0)],
            fleet_cycles: 12345,
            identical: true,
        };
        let json = fleet_to_json(&result);
        assert!(json.starts_with("{\"jobs\":6,"));
        assert!(json.contains("\"deferrals\":{\"alpha\":2,\"beta\":0}"));
        assert!(json.contains("\"wall_ms_wal\":126.00,\"wal_overhead\":1.050"));
        assert!(json.ends_with("\"identical\":true}"));
        assert!((result.fleet_overhead() - 1.2).abs() < 1e-9);
        assert!((result.wal_overhead() - 1.05).abs() < 1e-9);
        assert!((result.jobs_per_sec() - 100.0).abs() < 1e-9);

        let spliced = splice_fleet_section("{\"scale\":\"Tiny\"}", &json);
        assert!(spliced.starts_with("{\"scale\":\"Tiny\",\"fleet\":{"));
        assert!(spliced.ends_with("}}"));
        assert_eq!(
            crate::parallel::extract_number(&spliced, "turnaround_p95_cycles"),
            Some(9000.0)
        );
    }

    #[test]
    fn the_mix_parses_and_solo_files_are_wellformed() {
        let file = fleet_bench_file();
        assert_eq!(file.tenants.len(), 2);
        assert!(file.jobs.len() >= 5);
        let solo = solo_file(&file, 3);
        assert_eq!(solo.jobs.len(), 1);
        assert_eq!(solo.jobs[0].tenant, 0);
        assert_eq!(solo.jobs[0].arrive, 0);
        assert_eq!(
            solo.tenants[0].name,
            file.tenants[file.jobs[3].tenant as usize].name
        );
    }
}

//! Figure and table computations (paper §6).

use crate::runs::{figure_config, run_superpin, run_triple, IcountKind, TripleResult};
use superpin::{SharedMem, SignatureStats};
use superpin_sched::Machine;
use superpin_tools::ICount2;
use superpin_workloads::{find, Scale};

/// One benchmark's bar in Figures 3/4/5.
#[derive(Clone, Debug)]
pub struct FigRow {
    /// Benchmark name.
    pub benchmark: &'static str,
    /// Pin runtime, % of native.
    pub pin_pct: f64,
    /// SuperPin runtime, % of native.
    pub superpin_pct: f64,
    /// SuperPin speedup over Pin (Figure 4).
    pub speedup: f64,
    /// Number of slices SuperPin created.
    pub slices: usize,
    /// Whether native, Pin, and merged SuperPin counts all agree.
    pub counts_ok: bool,
}

/// A full Figure 3/5 series with averages.
#[derive(Clone, Debug)]
pub struct FigSeries {
    /// Per-benchmark rows, catalog order.
    pub rows: Vec<FigRow>,
    /// Arithmetic mean of Pin %.
    pub avg_pin_pct: f64,
    /// Arithmetic mean of SuperPin %.
    pub avg_superpin_pct: f64,
    /// Arithmetic mean speedup.
    pub avg_speedup: f64,
}

fn series_from(results: Vec<TripleResult>) -> FigSeries {
    let rows: Vec<FigRow> = results
        .iter()
        .map(|r| FigRow {
            benchmark: r.name,
            pin_pct: r.pin_pct(),
            superpin_pct: r.superpin_pct(),
            speedup: r.speedup(),
            slices: r.superpin.slice_count(),
            counts_ok: r.counts_agree(),
        })
        .collect();
    let n = rows.len().max(1) as f64;
    FigSeries {
        avg_pin_pct: rows.iter().map(|r| r.pin_pct).sum::<f64>() / n,
        avg_superpin_pct: rows.iter().map(|r| r.superpin_pct).sum::<f64>() / n,
        avg_speedup: rows.iter().map(|r| r.speedup).sum::<f64>() / n,
        rows,
    }
}

/// Figure 3 (+ Figure 4's speedups): `icount1` across the suite, 8-way
/// SMP, 2 s timeslice, 8 max slices.
pub fn fig3_icount1(scale: Scale, threads: usize) -> FigSeries {
    let cfg = figure_config(2000, scale);
    series_from(crate::runs::parallel_over_catalog(threads, |spec| {
        run_triple(spec, scale, &cfg, IcountKind::Icount1)
    }))
}

/// Figure 5: `icount2` across the suite, same configuration.
pub fn fig5_icount2(scale: Scale, threads: usize) -> FigSeries {
    let cfg = figure_config(2000, scale);
    series_from(crate::runs::parallel_over_catalog(threads, |spec| {
        run_triple(spec, scale, &cfg, IcountKind::Icount2)
    }))
}

/// One bar of Figure 6 (gcc, varying timeslice), decomposed as in the
/// paper: native + fork&others + sleep + pipeline. All values in
/// presented (paper-equivalent) seconds.
#[derive(Clone, Debug)]
pub struct Fig6Row {
    /// Timeslice interval in presented seconds.
    pub timeslice_secs: f64,
    /// Native component.
    pub native_secs: f64,
    /// Fork-and-other overhead component.
    pub fork_other_secs: f64,
    /// Master sleep (max-slice stalls) component.
    pub sleep_secs: f64,
    /// Pipeline-delay component.
    pub pipeline_secs: f64,
    /// Total runtime.
    pub total_secs: f64,
    /// Slices created.
    pub slices: usize,
}

/// Figure 6: gcc runtime vs timeslice interval (default: the paper's
/// 0.5 s–4 s sweep), with the runtime breakdown.
pub fn fig6_timeslice(scale: Scale, timeslices_msec: &[u64]) -> Vec<Fig6Row> {
    let spec = find("gcc").expect("gcc in catalog");
    let program = spec.build(scale);
    timeslices_msec
        .iter()
        .map(|&msec| {
            let cfg = figure_config(msec, scale);
            let shared = SharedMem::new();
            let tool = ICount2::new(&shared);
            let report = run_superpin(&program, tool, &shared, cfg.clone(), spec.name);
            let b = &report.breakdown;
            Fig6Row {
                timeslice_secs: msec as f64 / 1000.0,
                native_secs: cfg.present_secs(b.native_cycles),
                fork_other_secs: cfg.present_secs(b.fork_other_cycles),
                sleep_secs: cfg.present_secs(b.sleep_cycles),
                pipeline_secs: cfg.present_secs(b.pipeline_cycles),
                total_secs: cfg.present_secs(report.total_cycles),
                slices: report.slice_count(),
            }
        })
        .collect()
}

/// One point of Figure 7 (gcc, varying max running slices on the 16
/// virtual-processor hyperthreaded machine).
#[derive(Clone, Debug)]
pub struct Fig7Row {
    /// `-spmp` value.
    pub max_slices: usize,
    /// Total runtime in presented seconds.
    pub runtime_secs: f64,
    /// Times the master stalled on the slice limit.
    pub stall_events: u64,
}

/// Figure 7: gcc runtime as the slice limit sweeps 1–16. The machine is
/// the paper's 8-way SMP with hyperthreading enabled (16 virtual
/// processors); beyond 8 slices the master shares a physical core. The
/// timeslice is the `-spmsec` default (1 s), so slice demand exceeds the
/// physical core count and the hyperthread knee is visible.
pub fn fig7_parallelism(scale: Scale, slice_limits: &[usize]) -> Vec<Fig7Row> {
    let spec = find("gcc").expect("gcc in catalog");
    let program = spec.build(scale);
    slice_limits
        .iter()
        .map(|&limit| {
            let cfg = figure_config(1000, scale)
                .with_machine(Machine::paper_testbed())
                .with_max_slices(limit);
            let shared = SharedMem::new();
            let tool = ICount2::new(&shared);
            let report = run_superpin(&program, tool, &shared, cfg.clone(), spec.name);
            Fig7Row {
                max_slices: limit,
                runtime_secs: cfg.present_secs(report.total_cycles),
                stall_events: report.stall_events,
            }
        })
        .collect()
}

/// Aggregated signature-detection statistics (paper §4.4's "only about
/// 2% of the time does the quick detector trigger a full architectural
/// state check").
#[derive(Clone, Copy, Debug, Default)]
pub struct SigStatsSummary {
    /// Aggregate counters across the suite.
    pub stats: SignatureStats,
    /// quick → full escalation rate.
    pub full_check_rate: f64,
    /// stack checks per detection (paper: "a stack check is usually only
    /// called once and succeeds").
    pub stack_checks_per_detection: f64,
}

/// Runs the suite under SuperPin/icount2 and aggregates detection stats.
pub fn signature_stats(scale: Scale, threads: usize) -> SigStatsSummary {
    let cfg = figure_config(2000, scale);
    let reports = crate::runs::parallel_over_catalog(threads, |spec| {
        let program = spec.build(scale);
        let shared = SharedMem::new();
        let tool = ICount2::new(&shared);
        run_superpin(&program, tool, &shared, cfg.clone(), spec.name)
    });
    let mut stats = SignatureStats::default();
    for report in &reports {
        stats.absorb(&report.sig_stats);
    }
    SigStatsSummary {
        stats,
        full_check_rate: stats.full_check_rate(),
        stack_checks_per_detection: if stats.detections == 0 {
            0.0
        } else {
            stats.stack_checks as f64 / stats.detections as f64
        },
    }
}

/// Measured pipeline delay vs the paper's §3 model.
#[derive(Clone, Copy, Debug)]
pub struct PipelineCheck {
    /// Timeslice in presented seconds.
    pub timeslice_secs: f64,
    /// Measured pipeline delay in presented seconds.
    pub measured_secs: f64,
    /// The paper's not-fully-loaded model `(F+1)·s` with `F` = max
    /// slices.
    pub model_f_plus_1_secs: f64,
    /// The fully-loaded model `N·s` with `N` = processors.
    pub model_n_secs: f64,
}

/// Evaluates the §3 pipeline-delay model on gcc across timeslices.
pub fn pipeline_model(scale: Scale, timeslices_msec: &[u64]) -> Vec<PipelineCheck> {
    let spec = find("gcc").expect("gcc in catalog");
    let program = spec.build(scale);
    timeslices_msec
        .iter()
        .map(|&msec| {
            let cfg = figure_config(msec, scale);
            let shared = SharedMem::new();
            let tool = ICount2::new(&shared);
            let report = run_superpin(&program, tool, &shared, cfg.clone(), spec.name);
            let s = msec as f64 / 1000.0;
            PipelineCheck {
                timeslice_secs: s,
                measured_secs: cfg.present_secs(report.breakdown.pipeline_cycles),
                model_f_plus_1_secs: (cfg.max_slices as f64 + 1.0) * s,
                model_n_secs: cfg.machine.physical_cores as f64 * s,
            }
        })
        .collect()
}

/// One design-choice ablation row: gcc runtime with a variant toggled.
#[derive(Clone, Debug)]
pub struct AblationRow {
    /// Variant name.
    pub variant: &'static str,
    /// Total runtime in presented seconds.
    pub total_secs: f64,
    /// Master sleep component in presented seconds.
    pub sleep_secs: f64,
    /// Sum of slice JIT cycles, presented seconds.
    pub slice_jit_secs: f64,
    /// Syscall-forced forks.
    pub forks_on_syscall: u64,
}

/// Ablations of the design choices DESIGN.md calls out, all on gcc at a
/// 1 s timeslice: baseline, shared code cache (paper §8), adaptive
/// timeslice throttling (paper §8), master-pinned scheduling, and
/// disabled syscall recording.
pub fn ablations(scale: Scale) -> Vec<AblationRow> {
    let gcc = find("gcc").expect("gcc in catalog");
    let gcc_program = gcc.build(scale);
    let base_cfg = figure_config(1000, scale);

    let run_variant = |variant: &'static str,
                       program: &superpin_isa::Program,
                       name: &str,
                       cfg: superpin::SuperPinConfig|
     -> (AblationRow, superpin::SuperPinReport) {
        let shared = SharedMem::new();
        let tool = ICount2::new(&shared);
        let report = run_superpin(program, tool, &shared, cfg.clone(), name);
        (
            AblationRow {
                variant,
                total_secs: cfg.present_secs(report.total_cycles),
                sleep_secs: cfg.present_secs(report.breakdown.sleep_cycles),
                slice_jit_secs: cfg
                    .present_secs(report.slices.iter().map(|s| s.engine.cycles.jit).sum()),
                forks_on_syscall: report.forks_on_syscall,
            },
            report,
        )
    };

    let (baseline, baseline_report) =
        run_variant("baseline", &gcc_program, gcc.name, base_cfg.clone());

    let mut shared_cache_cfg = base_cfg.clone();
    shared_cache_cfg.shared_code_cache = true;
    let (shared_cache, _) = run_variant(
        "shared-code-cache",
        &gcc_program,
        gcc.name,
        shared_cache_cfg,
    );

    // Adaptive throttling needs a run-length estimate; use the baseline's
    // master-exit time (the paper imagines automatic prediction).
    let mut adaptive_cfg = base_cfg.clone();
    adaptive_cfg.adaptive_estimate = Some(baseline_report.master_exit_cycles);
    let (adaptive, _) = run_variant("adaptive-timeslice", &gcc_program, gcc.name, adaptive_cfg);

    let mut pinned_cfg = base_cfg.clone();
    pinned_cfg.policy = superpin_sched::Policy::MasterFirst;
    let (pinned, _) = run_variant("master-pinned", &gcc_program, gcc.name, pinned_cfg);

    // gcc's brk churn never forces slices (Duplicate class), so the
    // recording ablation uses the write-heavy vortex.
    let vortex = find("vortex").expect("vortex in catalog");
    let vortex_program = vortex.build(scale);
    let (recs_on, _) = run_variant(
        "vortex-sysrecs-on",
        &vortex_program,
        vortex.name,
        base_cfg.clone(),
    );
    let (recs_off, _) = run_variant(
        "vortex-sysrecs-off",
        &vortex_program,
        vortex.name,
        base_cfg.with_max_sysrecs(0),
    );

    vec![baseline, shared_cache, adaptive, pinned, recs_on, recs_off]
}

/// §6.3 overhead taxonomy for one benchmark run.
#[derive(Clone, Copy, Debug)]
pub struct OverheadReport {
    /// Ptrace overhead as a fraction of native time (paper: "less than a
    /// few tenths of a percent").
    pub ptrace_fraction: f64,
    /// Master-side copy-on-write page copies.
    pub master_cow_copies: u64,
    /// Total slice-side COW copies.
    pub slice_cow_copies: u64,
    /// Mean fraction of a slice's cycles spent in JIT compilation
    /// ("compilation slowdown").
    pub mean_slice_jit_fraction: f64,
    /// Syscall-forced slice fraction of all forks.
    pub syscall_fork_fraction: f64,
}

/// Measures the §6.3 overhead components on gcc.
pub fn overhead_breakdown(scale: Scale) -> OverheadReport {
    let spec = find("gcc").expect("gcc in catalog");
    let program = spec.build(scale);
    let cfg = figure_config(2000, scale);
    let shared = SharedMem::new();
    let tool = ICount2::new(&shared);
    let report = run_superpin(&program, tool, &shared, cfg.clone(), spec.name);

    let ptrace_cycles = report.ptrace.syscall_stops * cfg.cost.ptrace_stop;
    let jit_fractions: Vec<f64> = report
        .slices
        .iter()
        .map(|s| {
            let total = s.engine.cycles.total().max(1);
            s.engine.cycles.jit as f64 / total as f64
        })
        .collect();
    let forks = (report.forks_on_timeout + report.forks_on_syscall).max(1);
    OverheadReport {
        ptrace_fraction: ptrace_cycles as f64 / report.breakdown.native_cycles.max(1) as f64,
        master_cow_copies: report.master_cow_copies,
        slice_cow_copies: report.slices.iter().map(|s| s.cow_copies).sum(),
        mean_slice_jit_fraction: jit_fractions.iter().sum::<f64>()
            / jit_fractions.len().max(1) as f64,
        syscall_fork_fraction: report.forks_on_syscall as f64 / forks as f64,
    }
}

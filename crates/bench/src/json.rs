//! Minimal JSON emission for figure data.
//!
//! The workspace's dependency policy does not include a JSON crate, and
//! the figure records are flat, so a small hand-rolled emitter keeps the
//! output machine-readable (for plotting scripts) without a new
//! dependency.

use crate::figures::{Fig6Row, Fig7Row, FigSeries, SigStatsSummary};
use std::fmt::Write as _;

fn push_f64(out: &mut String, value: f64) {
    if value.is_finite() {
        let _ = write!(out, "{value:.4}");
    } else {
        out.push_str("null");
    }
}

/// Serializes a Figure 3/5 series.
pub fn series_to_json(series: &FigSeries) -> String {
    let mut out = String::from("{\"rows\":[");
    for (i, row) in series.rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"benchmark\":\"{}\",\"pin_pct\":", row.benchmark);
        push_f64(&mut out, row.pin_pct);
        out.push_str(",\"superpin_pct\":");
        push_f64(&mut out, row.superpin_pct);
        out.push_str(",\"speedup\":");
        push_f64(&mut out, row.speedup);
        let _ = write!(
            out,
            ",\"slices\":{},\"counts_ok\":{}}}",
            row.slices, row.counts_ok
        );
    }
    out.push_str("],\"avg_pin_pct\":");
    push_f64(&mut out, series.avg_pin_pct);
    out.push_str(",\"avg_superpin_pct\":");
    push_f64(&mut out, series.avg_superpin_pct);
    out.push_str(",\"avg_speedup\":");
    push_f64(&mut out, series.avg_speedup);
    out.push('}');
    out
}

/// Serializes Figure 6 rows.
pub fn fig6_to_json(rows: &[Fig6Row]) -> String {
    let mut out = String::from("[");
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"timeslice_secs\":");
        push_f64(&mut out, row.timeslice_secs);
        out.push_str(",\"native_secs\":");
        push_f64(&mut out, row.native_secs);
        out.push_str(",\"fork_other_secs\":");
        push_f64(&mut out, row.fork_other_secs);
        out.push_str(",\"sleep_secs\":");
        push_f64(&mut out, row.sleep_secs);
        out.push_str(",\"pipeline_secs\":");
        push_f64(&mut out, row.pipeline_secs);
        out.push_str(",\"total_secs\":");
        push_f64(&mut out, row.total_secs);
        let _ = write!(out, ",\"slices\":{}}}", row.slices);
    }
    out.push(']');
    out
}

/// Serializes Figure 7 rows.
pub fn fig7_to_json(rows: &[Fig7Row]) -> String {
    let mut out = String::from("[");
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"max_slices\":{},\"runtime_secs\":", row.max_slices);
        push_f64(&mut out, row.runtime_secs);
        let _ = write!(out, ",\"stall_events\":{}}}", row.stall_events);
    }
    out.push(']');
    out
}

/// Serializes the §4.4 signature statistics.
pub fn sigstats_to_json(summary: &SigStatsSummary) -> String {
    let mut out = String::from("{");
    let _ = write!(
        out,
        "\"quick_checks\":{},\"full_checks\":{},\"stack_checks\":{},\"detections\":{},\"full_check_rate\":",
        summary.stats.quick_checks,
        summary.stats.full_checks,
        summary.stats.stack_checks,
        summary.stats.detections,
    );
    push_f64(&mut out, summary.full_check_rate);
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::FigRow;

    #[test]
    fn series_json_is_well_formed() {
        let series = FigSeries {
            rows: vec![FigRow {
                benchmark: "gcc",
                pin_pct: 896.0,
                superpin_pct: 217.5,
                speedup: 4.12,
                slices: 85,
                counts_ok: true,
            }],
            avg_pin_pct: 896.0,
            avg_superpin_pct: 217.5,
            avg_speedup: 4.12,
        };
        let json = series_to_json(&series);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"benchmark\":\"gcc\""));
        assert!(json.contains("\"pin_pct\":896.0000"));
        assert!(json.contains("\"counts_ok\":true"));
        // Balanced braces/brackets.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn fig6_and_fig7_json_shapes() {
        let f6 = fig6_to_json(&[Fig6Row {
            timeslice_secs: 0.5,
            native_secs: 98.2,
            fork_other_secs: 100.0,
            sleep_secs: 111.5,
            pipeline_secs: 5.1,
            total_secs: 314.8,
            slices: 397,
        }]);
        assert!(f6.starts_with('[') && f6.ends_with(']'));
        assert!(f6.contains("\"sleep_secs\":111.5000"));

        let f7 = fig7_to_json(&[Fig7Row {
            max_slices: 8,
            runtime_secs: 190.4,
            stall_events: 67,
        }]);
        assert!(f7.contains("\"max_slices\":8"));
        assert!(f7.contains("\"stall_events\":67"));
    }

    #[test]
    fn non_finite_values_become_null() {
        let mut out = String::new();
        push_f64(&mut out, f64::NAN);
        assert_eq!(out, "null");
    }
}

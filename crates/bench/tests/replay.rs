//! Record/replay acceptance over the whole workload catalog.
//!
//! The contract under test: a run recorded at any `--threads N` — with
//! or without fault injection armed — re-executes **bit-identically**
//! from the log alone at a *different* thread count. Every workload in
//! the catalog runs through record → encode → decode → replay for
//! threads {1, 4} × chaos {off, seed 3 rate 0.05}, and the replayed
//! `SuperPinReport` must equal the recorded one field for field.
//! Alongside, the divergence differ's regression: an intentionally
//! perturbed log is pinpointed, a clean pair reports identical, and a
//! perturbed syscall record makes the replay refuse its log.

use superpin::{FailPlan, NondetEvent, SharedMem, SpError};
use superpin_bench::runs::{parallel_over_catalog, time_scale_for};
use superpin_replay::{
    diff_logs, record_run, replay_run, verify_replay, DiffOutcome, ReplayError, ReplayLog,
    RunRecipe,
};
use superpin_tools::ICount1;
use superpin_workloads::Scale;

const SCALE: Scale = Scale::Tiny;

fn recipe_for(name: &str, threads: usize, chaos: Option<FailPlan>) -> RunRecipe {
    let mut recipe = RunRecipe::standard(name, SCALE);
    recipe.threads = threads;
    recipe.chaos = chaos;
    recipe
}

fn recorded_log(name: &str, threads: usize, chaos: Option<FailPlan>) -> ReplayLog {
    let recipe = recipe_for(name, threads, chaos);
    let shared = SharedMem::new();
    record_run(&recipe, ICount1::new(&shared), &shared)
        .unwrap_or_else(|e| panic!("{name} record at threads={threads}: {e}"))
}

/// Records at `threads`, round-trips the log through the wire format,
/// and replays at the *other* thread count; the replayed report must
/// equal the recorded one field for field.
fn record_and_replay(name: &str, threads: usize, chaos: Option<FailPlan>) {
    let log = recorded_log(name, threads, chaos);
    let decoded = ReplayLog::decode(&log.encode())
        .unwrap_or_else(|e| panic!("{name}: log wire round-trip: {e}"));
    assert_eq!(decoded, log, "{name}: decode(encode(log)) != log");

    let other_threads = if threads == 1 { 4 } else { 1 };
    let shared = SharedMem::new();
    let replayed = replay_run(&decoded, other_threads, ICount1::new(&shared), &shared)
        .unwrap_or_else(|e| panic!("{name} replay at threads={other_threads}: {e}"));
    if let Some(field) = verify_replay(&decoded, &replayed) {
        panic!(
            "{name} recorded at threads={threads} (chaos={}), replayed at \
             threads={other_threads}: first differing report field `{field}`",
            chaos.is_some(),
        );
    }
    assert_eq!(replayed, log.report, "{name}: full-struct equality");
}

#[test]
fn catalog_replays_bit_identically_across_thread_counts() {
    let failures: Vec<String> = parallel_over_catalog(4, |spec| {
        for threads in [1usize, 4] {
            for chaos in [None, Some(FailPlan::new(3, 0.05))] {
                record_and_replay(spec.name, threads, chaos);
            }
        }
        spec.name.to_string()
    });
    assert_eq!(failures.len(), superpin_workloads::catalog().len());
}

#[test]
fn clean_log_pair_diffs_identical() {
    let log = recorded_log("gcc", 1, None);
    let shared_a = SharedMem::new();
    let shared_b = SharedMem::new();
    let outcome = diff_logs(
        &log,
        ICount1::new(&shared_a),
        &shared_a,
        &log.clone(),
        ICount1::new(&shared_b),
        &shared_b,
    )
    .expect("diff");
    assert!(
        matches!(outcome, DiffOutcome::Identical { epochs } if epochs > 0),
        "clean pair must diff identical: {outcome:?}"
    );
}

#[test]
fn perturbed_log_divergence_is_pinpointed() {
    let log = recorded_log("vortex", 1, None);
    let mut perturbed = log.clone();
    let plan_at = perturbed
        .events
        .iter()
        .position(|e| matches!(e, NondetEvent::EpochPlan { .. }))
        .expect("a planned epoch");
    if let NondetEvent::EpochPlan { planned } = &mut perturbed.events[plan_at] {
        *planned += 1;
    }
    let shared_a = SharedMem::new();
    let shared_b = SharedMem::new();
    let outcome = diff_logs(
        &log,
        ICount1::new(&shared_a),
        &shared_a,
        &perturbed,
        ICount1::new(&shared_b),
        &shared_b,
    )
    .expect("diff");
    let DiffOutcome::Diverged(report) = outcome else {
        panic!("perturbed log must diverge");
    };
    // The report bisects the divergence: an epoch, a quantum window,
    // and a component (the longer first epoch shows up as schedule
    // state, or as the perturbed side refusing its misaligned log).
    assert!(report.epoch >= 1);
    assert!(report.quantum_window.1 >= report.quantum_window.0);
    assert!(report.inst_range.1 >= report.inst_range.0);
    assert!(
        report.component.contains("schedule") || report.component.contains("run B"),
        "unexpected component: {report:?}"
    );
    assert!(report.to_string().contains("first divergence at epoch"));
}

#[test]
fn perturbed_syscall_record_makes_replay_refuse_the_log() {
    let log = recorded_log("gcc", 1, None);
    let mut perturbed = log.clone();
    let syscall_at = perturbed
        .events
        .iter()
        .position(|e| matches!(e, NondetEvent::Syscall(_)))
        .expect("gcc makes syscalls");
    if let NondetEvent::Syscall(record) = &mut perturbed.events[syscall_at] {
        record.args[0] = record.args[0].wrapping_add(1);
    }
    let shared = SharedMem::new();
    let err = replay_run(&perturbed, 1, ICount1::new(&shared), &shared)
        .expect_err("a perturbed syscall record must refuse to replay");
    assert!(
        matches!(err, ReplayError::Sim(SpError::ReplayDivergence { .. })),
        "unexpected error: {err:?}"
    );
}

#[test]
fn recipe_time_scale_matches_the_bench_normalization() {
    for scale in [Scale::Tiny, Scale::Small, Scale::Medium, Scale::Large] {
        let recipe = RunRecipe::standard("gcc", scale);
        assert!(
            (recipe.time_scale() - time_scale_for(scale)).abs() < 1e-12,
            "recipe and bench disagree on the {scale:?} time scale"
        );
    }
}

//! Harness-level tests: figure data sanity at tiny scale and table
//! rendering.

use superpin_bench::figures::{Fig6Row, Fig7Row, FigRow, FigSeries};
use superpin_bench::render;
use superpin_bench::runs::{figure_config, run_triple, IcountKind};
use superpin_workloads::{find, Scale};

#[test]
fn triple_runs_are_consistent_for_both_tools() {
    let spec = find("gzip").expect("gzip");
    let cfg = figure_config(2000, Scale::Tiny);
    for kind in [IcountKind::Icount1, IcountKind::Icount2] {
        let triple = run_triple(spec, Scale::Tiny, &cfg, kind);
        assert!(triple.counts_agree(), "{kind:?}");
        assert!(
            triple.pin_pct() > 100.0,
            "{kind:?}: Pin must cost something"
        );
        assert!(triple.speedup() > 0.0);
        assert_eq!(triple.superpin.slice_inst_total(), triple.native_insts);
    }
}

#[test]
fn icount1_costs_more_than_icount2_under_pin() {
    let spec = find("swim").expect("swim");
    let cfg = figure_config(2000, Scale::Tiny);
    let i1 = run_triple(spec, Scale::Tiny, &cfg, IcountKind::Icount1);
    let i2 = run_triple(spec, Scale::Tiny, &cfg, IcountKind::Icount2);
    assert!(
        i1.pin_cycles > 2 * i2.pin_cycles,
        "icount1 ({}) must dwarf icount2 ({}) under Pin",
        i1.pin_cycles,
        i2.pin_cycles
    );
    assert_eq!(i1.pin_count, i2.pin_count, "identical output (paper §5.1)");
}

fn sample_series() -> FigSeries {
    FigSeries {
        rows: vec![
            FigRow {
                benchmark: "gcc",
                pin_pct: 896.0,
                superpin_pct: 217.0,
                speedup: 4.12,
                slices: 85,
                counts_ok: true,
            },
            FigRow {
                benchmark: "swim",
                pin_pct: 1104.0,
                superpin_pct: 215.0,
                speedup: 5.13,
                slices: 64,
                counts_ok: false,
            },
        ],
        avg_pin_pct: 1000.0,
        avg_superpin_pct: 216.0,
        avg_speedup: 4.6,
    }
}

#[test]
fn series_rendering_contains_rows_and_average() {
    let text = render::render_series("Figure X", &sample_series());
    assert!(text.starts_with("Figure X"));
    assert!(text.contains("gcc"));
    assert!(text.contains("4.12x"));
    assert!(text.contains("MISMATCH"), "count failures must be loud");
    assert!(text.lines().last().expect("avg line").starts_with("AVG"));
}

#[test]
fn fig6_rendering_lists_components() {
    let rows = vec![Fig6Row {
        timeslice_secs: 0.5,
        native_secs: 98.2,
        fork_other_secs: 100.0,
        sleep_secs: 111.5,
        pipeline_secs: 5.1,
        total_secs: 314.8,
        slices: 397,
    }];
    let text = render::render_fig6(&rows);
    assert!(text.contains("fork&others"));
    assert!(text.contains("0.5s"));
    assert!(text.contains("314.8"));
}

#[test]
fn fig7_rendering_lists_limits() {
    let rows = vec![
        Fig7Row {
            max_slices: 1,
            runtime_secs: 1068.1,
            stall_events: 140,
        },
        Fig7Row {
            max_slices: 16,
            runtime_secs: 192.8,
            stall_events: 0,
        },
    ];
    let text = render::render_fig7(&rows);
    assert!(text.contains("1068.1s"));
    assert!(text.contains("192.8s"));
}

#[test]
fn gantt_renders_master_and_slices() {
    use superpin::{SharedMem, SuperPinConfig, SuperPinRunner};
    use superpin_tools::ICount2;
    use superpin_vm::process::Process;
    let program = find("swim").expect("swim").build(Scale::Tiny);
    let shared = SharedMem::new();
    let mut cfg = SuperPinConfig::paper_default();
    cfg.timeslice_cycles = 4_000;
    cfg.quantum_cycles = 250;
    let report = SuperPinRunner::new(
        Process::load(1, &program).expect("load"),
        ICount2::new(&shared),
        shared,
        cfg,
    )
    .expect("setup")
    .run()
    .expect("run");
    let chart = render::render_gantt(&report, 80);
    assert!(chart.contains("master   |"));
    assert!(chart.contains("slice   1|"));
    assert!(chart.contains('#'), "slices must show run spans");
    // Every row is the same width.
    let widths: Vec<usize> = chart
        .lines()
        .skip(1)
        .map(|line| line.chars().count())
        .collect();
    assert!(
        widths.windows(2).all(|w| w[0] == w[1]),
        "ragged chart: {widths:?}"
    );
}

#[test]
fn parallel_over_catalog_preserves_order() {
    let names = superpin_bench::runs::parallel_over_catalog(4, |spec| spec.name);
    let expected: Vec<&str> = superpin_workloads::catalog()
        .iter()
        .map(|spec| spec.name)
        .collect();
    assert_eq!(names, expected);
}

//! Decoded-page invalidation under self-modifying code.
//!
//! The fast interpreter core memoizes decoded instructions per code
//! page ([`superpin_vm::decode::DecodeCache`]) and the engine fuses
//! compiled traces — both caches must observe a guest that rewrites its
//! own code page on the very next execution of the patched address.
//! These property tests generate random self-patching countdown loops
//! (random bound, patch iteration, and patched increment), then require
//!
//! * the decode-cache interpreter to finish in the exact machine state
//!   of a never-cached fetch-decode-execute loop, and
//! * the full runner's report to be bit-identical across threads {1,4}
//!   and plan {off,on}, with the analytically expected result.
//!
//! If a stale decode were ever served the patched increment would not
//! take effect, the final counter register would differ, and every
//! assertion below names the diverging quantity.

use proptest::prelude::*;
use superpin::{SharedMem, SuperPinConfig, SuperPinReport};
use superpin_bench::runs::{run_superpin, time_scale_for};
use superpin_isa::asm::assemble;
use superpin_isa::{encode, AluOp, Inst, Program, Reg};
use superpin_tools::ICount1;
use superpin_vm::cpu::{self, CpuState, ExecOutcome};
use superpin_vm::decode::{DecodeCache, RunStop};
use superpin_vm::process::Process;
use superpin_workloads::Scale;

/// A countdown loop that patches its own increment instruction:
/// `addi r2, r2, 1` at `patch:` is overwritten with `addi r2, r2, step`
/// by the guest itself after `patch_at` iterations. The counter lives
/// in `r2` because the `exit` pseudo-instruction clobbers `r1` with the
/// exit code.
fn smc_program(bound: u64, patch_at: u64, step: u64) -> Program {
    let mut patched = Vec::new();
    encode(
        Inst::AluImm {
            op: AluOp::Add,
            rd: Reg::R2,
            rs1: Reg::R2,
            imm: step as i32,
        },
        &mut patched,
    );
    assert_eq!(patched.len(), 8, "patch must replace exactly one word");
    let patch_word = u64::from_le_bytes(patched[..8].try_into().expect("8 bytes"));
    let src = format!(
        ".entry main\n\
         main:\n\
         \x20 li   r6, patch\n\
         \x20 li   r3, 0x{patch_word:x}\n\
         \x20 li   r2, 0\n\
         \x20 li   r4, {bound}\n\
         \x20 li   r7, {patch_at}\n\
         loop:\n\
         patch:\n\
         \x20 addi r2, r2, 1\n\
         \x20 subi r7, r7, 1\n\
         \x20 bne  r7, r0, skip\n\
         \x20 std  r3, 0(r6)\n\
         skip:\n\
         \x20 blt  r2, r4, loop\n\
         \x20 exit 0\n"
    );
    assemble(&src).expect("assemble smc program")
}

/// The final value of `r2` and the retired-instruction count, computed
/// by a host-side re-statement of the guest loop: increments of 1 until
/// the patch lands, `step` afterwards.
fn expected(bound: u64, patch_at: u64, step: u64) -> (u64, u64) {
    let mut r2 = 0u64;
    let mut r7 = patch_at as i64;
    let mut increment = 1u64;
    // li r6/r3/r2/r4/r7 = 5 instructions before the loop.
    let mut retired = 5u64;
    loop {
        r2 += increment;
        r7 -= 1;
        // addi + subi + bne (+ std when the bne falls through) + blt.
        retired += 4;
        if r7 == 0 {
            retired += 1;
            increment = step;
        }
        if r2 >= bound {
            break;
        }
    }
    // The `exit 0` pseudo retires two `li`s before parking on `syscall`.
    (r2, retired + 2)
}

/// Runs the program to its `exit` syscall through `cpu::step` — a
/// fetch-decode-execute loop that never caches a decode — and returns
/// the final CPU state and retired count.
fn run_never_cached(program: &Program) -> (CpuState, u64) {
    let process = Process::load(1, program).expect("load");
    let mut cpu_state = process.cpu;
    let mut mem = process.mem;
    let mut retired = 0u64;
    loop {
        match cpu::step(&mut cpu_state, &mut mem).expect("step") {
            ExecOutcome::Next | ExecOutcome::Jumped => retired += 1,
            ExecOutcome::Syscall | ExecOutcome::Halt => break,
        }
    }
    (cpu_state, retired)
}

/// Same run through the per-page decode cache.
fn run_decode_cached(program: &Program) -> (CpuState, u64) {
    let process = Process::load(1, program).expect("load");
    let mut cpu_state = process.cpu;
    let mut mem = process.mem;
    let mut cache = DecodeCache::new();
    let mut retired = 0u64;
    let stop = cache
        .run(&mut cpu_state, &mut mem, u64::MAX, &mut retired)
        .expect("cached run");
    assert_eq!(stop, RunStop::Syscall, "program must park on its exit");
    (cpu_state, retired)
}

fn runner_config(threads: usize) -> SuperPinConfig {
    SuperPinConfig::scaled(1000, time_scale_for(Scale::Tiny)).with_threads(threads)
}

fn run_full(program: &Program, threads: usize, plan: bool) -> (SuperPinReport, u64) {
    let mut cfg = runner_config(threads);
    if plan {
        let analysis = superpin::ProgramAnalysis::compute(program).expect("whole-program analysis");
        cfg = cfg.with_plan(std::sync::Arc::new(
            analysis.plan(superpin::PlanKnobs::default()),
        ));
    }
    let shared = SharedMem::new();
    let tool = ICount1::new(&shared);
    let report = run_superpin(program, tool.clone(), &shared, cfg, "smc");
    (report, tool.total(&shared))
}

proptest::proptest! {
    #![proptest_config(proptest::ProptestConfig::with_cases(24))]

    /// VM level: the decode cache serves the patched bytes on the very
    /// next execution — machine state identical to never caching.
    #[test]
    fn decode_cache_matches_never_cached_interpreter(
        bound in 16u64..200,
        patch_at in 1u64..8,
        step in 2u64..6,
    ) {
        let program = smc_program(bound, patch_at, step);
        let (plain_cpu, plain_retired) = run_never_cached(&program);
        let (cached_cpu, cached_retired) = run_decode_cached(&program);
        prop_assert_eq!(
            cached_cpu.regs.snapshot(),
            plain_cpu.regs.snapshot(),
            "registers diverged: stale decode served after SMC"
        );
        prop_assert_eq!(cached_cpu.pc, plain_cpu.pc, "final pc diverged");
        prop_assert_eq!(cached_retired, plain_retired, "retired count diverged");
        let (want_r2, want_retired) = expected(bound, patch_at, step);
        prop_assert_eq!(plain_cpu.regs.get(Reg::R2), want_r2, "patched increment lost");
        prop_assert_eq!(plain_retired, want_retired, "retired count off");
    }

    /// Report level: threads {1,4} x plan {off,on} are bit-identical to
    /// each other and retire exactly the never-cached instruction count.
    #[test]
    fn smc_reports_are_bit_identical_across_threads_and_plan(
        bound in 64u64..256,
        patch_at in 1u64..8,
        step in 2u64..6,
    ) {
        let program = smc_program(bound, patch_at, step);
        let (_, never_cached_retired) = run_never_cached(&program);
        let (base_report, base_count) = run_full(&program, 1, false);
        let base_insts: u64 = base_report.slices.iter().map(|s| s.insts).sum();
        // +1: the runner services the `exit` syscall and retires the
        // syscall instruction; the never-cached loop parks before it.
        prop_assert_eq!(
            base_insts,
            never_cached_retired + 1,
            "runner retired a different stream than the never-cached interpreter"
        );
        prop_assert_eq!(base_count, never_cached_retired + 1, "icount1 total diverged");
        for (threads, plan) in [(1, true), (4, false), (4, true)] {
            let (report, count) = run_full(&program, threads, plan);
            prop_assert_eq!(
                &report,
                &base_report,
                "report differs at threads={} plan={}",
                threads,
                plan
            );
            prop_assert_eq!(
                count, base_count,
                "tool count differs at threads={} plan={}",
                threads, plan
            );
        }
    }
}

//! The memory-pressure governance suite (DESIGN.md §4.9).
//!
//! A `--mem-budget` arms the [`superpin::MemoryGovernor`]: fork
//! admission is checked against a simulated resident-byte ledger, and
//! sustained pressure walks a three-rung eviction ladder (drop retained
//! checkpoints → evict cold code caches → defer or degrade the fork).
//! Every decision is a pure function of simulated state taken on the
//! supervisor thread, so the suite asserts the two properties the design
//! promises:
//!
//! 1. **No budget, no change** — an unset (or unreachable) budget
//!    reproduces the ungoverned report field-for-field.
//! 2. **Thread invariance** — for any fixed budget, reports are
//!    bit-identical across `--threads {1, 2, 4}`, and merged tool
//!    results always equal the ungoverned baseline: the ladder may move
//!    work, never drop or duplicate it.

use superpin::{SharedMem, SuperPinConfig, SuperPinReport};
use superpin_bench::runs::{run_superpin, time_scale_for};
use superpin_tools::ICount1;
use superpin_workloads::{catalog, Scale, WorkloadSpec};

const SCALE: Scale = Scale::Tiny;

/// Far above any tiny-scale guest's dynamic footprint (so guest `brk` /
/// `mmap` never fail and workload semantics are untouched) but below
/// the governed resident peak of the larger workloads, which is
/// dominated by slice pages, code caches, and retained checkpoints —
/// tight enough to force all three ladder rungs under supervision.
const TIGHT_BUDGET: u64 = 192 * 1024;

/// Tight enough that, under supervision, deferral alone cannot save the
/// larger workloads and rung 3 pins new slices inline.
const STARVATION_BUDGET: u64 = 64 * 1024;

fn config() -> SuperPinConfig {
    SuperPinConfig::scaled(1000, time_scale_for(SCALE))
}

fn run(spec: &WorkloadSpec, cfg: SuperPinConfig) -> (SuperPinReport, u64) {
    let program = spec.build(SCALE);
    let shared = SharedMem::new();
    let tool = ICount1::new(&shared);
    let report = run_superpin(&program, tool.clone(), &shared, cfg, spec.name);
    (report, tool.total(&shared))
}

#[test]
fn an_unreachable_budget_reproduces_the_ungoverned_report() {
    // `u64::MAX` arms the governor but can never trip it: the only
    // field allowed to move is the peak gauge itself, which the
    // ungoverned run doesn't measure.
    for spec in catalog().iter().step_by(5) {
        let (base, count_base) = run(spec, config());
        let (got, count) = run(spec, config().with_mem_budget(u64::MAX));
        assert!(
            got.peak_resident_bytes > 0,
            "{}: gauge never read",
            spec.name
        );
        assert_eq!(got.slices_deferred, 0, "{}: spurious deferral", spec.name);
        assert_eq!(got.checkpoints_dropped, 0, "{}: spurious drop", spec.name);
        assert_eq!(got.caches_evicted, 0, "{}: spurious eviction", spec.name);
        let mut scrubbed = got.clone();
        scrubbed.peak_resident_bytes = base.peak_resident_bytes;
        assert_eq!(
            base, scrubbed,
            "{}: an unreachable budget changed the report",
            spec.name
        );
        assert_eq!(count_base, count, "{}: merged icount differs", spec.name);
    }
}

#[test]
fn governed_reports_are_thread_invariant() {
    for name in ["gcc", "gzip", "vortex"] {
        let spec = catalog().iter().find(|s| s.name == name).expect("catalog");
        let (_, count_base) = run(spec, config());
        for budget in [TIGHT_BUDGET, STARVATION_BUDGET] {
            for supervise in [false, true] {
                let make = |threads: usize| {
                    let mut cfg = config().with_threads(threads).with_mem_budget(budget);
                    if supervise {
                        cfg = cfg.with_supervision();
                    }
                    cfg
                };
                let (one, count1) = run(spec, make(1));
                for threads in [2usize, 4] {
                    let (got, count) = run(spec, make(threads));
                    assert_eq!(
                        one, got,
                        "{name}: budget={budget} supervise={supervise} report differs at \
                         threads={threads}"
                    );
                    assert_eq!(count1, count, "{name}: merged icount not thread-invariant");
                }
                assert_eq!(
                    count_base, count1,
                    "{name}: budget={budget} supervise={supervise} changed the merged icount"
                );
            }
        }
    }
}

#[test]
fn a_tight_supervised_budget_walks_the_ladder_and_every_workload_completes() {
    let (mut deferred, mut dropped, mut evicted) = (0u64, 0u64, 0u64);
    for spec in catalog() {
        let (_, count_base) = run(spec, config());
        let cfg = config()
            .with_supervision()
            .with_mem_budget(TIGHT_BUDGET)
            .with_threads(4);
        let (got, count) = run(spec, cfg);
        assert!(
            got.peak_resident_bytes > 0,
            "{}: gauge never read",
            spec.name
        );
        assert_eq!(
            count_base, count,
            "{}: pressure changed the merged icount",
            spec.name
        );
        deferred += got.slices_deferred;
        dropped += got.checkpoints_dropped;
        evicted += got.caches_evicted;
    }
    // The ladder must actually be exercised somewhere in the catalog,
    // not vacuously absent (summed so small workloads that never feel
    // pressure don't flake the assertion).
    assert!(
        deferred > 0,
        "no fork was ever deferred under {TIGHT_BUDGET}B"
    );
    assert!(
        dropped > 0,
        "no checkpoint was ever dropped under {TIGHT_BUDGET}B"
    );
    assert!(
        evicted > 0,
        "no code cache was ever evicted under {TIGHT_BUDGET}B"
    );
}

#[test]
fn starvation_reaches_the_degrade_rung_and_stays_correct() {
    let spec = catalog().iter().find(|s| s.name == "gcc").expect("catalog");
    let (_, count_base) = run(spec, config());
    let cfg = config()
        .with_supervision()
        .with_mem_budget(STARVATION_BUDGET);
    let (got, count) = run(spec, cfg);
    assert!(
        got.slices_degraded > 0,
        "starvation never pinned a slice inline"
    );
    assert!(got.slices_deferred > 0, "starvation never deferred a fork");
    assert_eq!(count_base, count, "degraded slices corrupted the merge");
}

//! Static↔dynamic soundness properties for the whole-program analysis.
//!
//! Two contracts tie `superpin-analysis` to the simulator:
//!
//! 1. **Oracle soundness** — the static results *over-approximate* the
//!    dynamic behavior. For every catalog workload and input, a run
//!    with the [`SoundnessOracle`] installed records zero violations:
//!    every dynamic indirect transfer lands inside its static target
//!    set, and every dynamic code-region write lands inside a static
//!    SMC region.
//! 2. **Plan transparency** — the ahead-of-time superblock plan is a
//!    pure host-side accelerator. Installing it (at any knob setting)
//!    changes no simulated quantity: the `SuperPinReport` is
//!    bit-identical plan-on vs plan-off at threads 1, 2 and 4, and the
//!    merged tool counts agree.

use std::sync::Arc;

use superpin::{PlanKnobs, ProgramAnalysis, SharedMem, SuperPinConfig, SuperPinReport};
use superpin_bench::runs::{run_superpin, time_scale_for};
use superpin_tools::ICount1;
use superpin_workloads::{catalog, Scale};

const SCALE: Scale = Scale::Tiny;

fn config() -> SuperPinConfig {
    SuperPinConfig::scaled(1000, time_scale_for(SCALE))
}

fn run(name: &str, program: &superpin_isa::Program, cfg: SuperPinConfig) -> (SuperPinReport, u64) {
    let shared = SharedMem::new();
    let tool = ICount1::new(&shared);
    let report = run_superpin(program, tool.clone(), &shared, cfg, name);
    (report, tool.total(&shared))
}

/// Property 1: static target sets and SMC regions contain every dynamic
/// observation — the oracle stays clean across the catalog and across
/// distinct workload inputs (different inputs steer indirect branches
/// down different paths, so each input is an independent witness).
#[test]
fn oracle_is_clean_across_catalog_and_inputs() {
    for spec in catalog() {
        for input in [0, 1, 7] {
            let program = spec.build_with_input(SCALE, input);
            let analysis = ProgramAnalysis::compute(&program)
                .unwrap_or_else(|e| panic!("{} input {input}: analysis: {e}", spec.name));
            let oracle = Arc::new(analysis.oracle());
            let cfg = config().with_oracle(Arc::clone(&oracle));
            run(spec.name, &program, cfg);
            assert!(
                oracle.is_clean(),
                "{} input {input}: dynamic behavior escaped the static \
                 over-approximation: {:?}",
                spec.name,
                oracle.violations(),
            );
        }
    }
}

/// Property 2: plan-on reports are bit-identical to the plan-off
/// baseline at every thread count, and the plan does not disturb the
/// oracle (both installed together is the debug-build default).
#[test]
fn plan_on_reports_match_plan_off_at_all_thread_counts() {
    for spec in catalog() {
        let program = spec.build(SCALE);
        let analysis = ProgramAnalysis::compute(&program)
            .unwrap_or_else(|e| panic!("{}: analysis: {e}", spec.name));
        let plan = Arc::new(analysis.plan(PlanKnobs::default()));
        let oracle = Arc::new(analysis.oracle());

        let (base, count_base) = run(spec.name, &program, config().with_threads(1));
        for threads in [1, 2, 4] {
            let cfg = config()
                .with_threads(threads)
                .with_plan(Arc::clone(&plan))
                .with_oracle(Arc::clone(&oracle));
            let (got, count) = run(spec.name, &program, cfg);
            assert_eq!(
                base, got,
                "{}: plan-on report differs from plan-off at threads={threads}",
                spec.name
            );
            assert_eq!(
                count_base, count,
                "{}: merged icount differs at threads={threads}",
                spec.name
            );
        }
        assert!(
            oracle.is_clean(),
            "{}: oracle violations under plan: {:?}",
            spec.name,
            oracle.violations(),
        );
    }
}

/// Plan transparency must hold at *any* knob setting, not just the
/// default: a hair-trigger hot threshold (everything planned) and a
/// tiny trace cap (nothing fits, constant fallback) are the two
/// extremes of the planner's decision space.
#[test]
fn plan_is_transparent_at_extreme_knob_settings() {
    let knob_grid = [
        PlanKnobs {
            hot_loop_threshold: 1,
            max_trace_len: 1,
        },
        PlanKnobs {
            hot_loop_threshold: 1,
            max_trace_len: 1024,
        },
        PlanKnobs {
            hot_loop_threshold: 99,
            max_trace_len: 96,
        },
    ];
    for name in ["gcc", "vortex", "perlbmk"] {
        let spec = catalog().iter().find(|s| s.name == name).expect("catalog");
        let program = spec.build(SCALE);
        let analysis =
            ProgramAnalysis::compute(&program).unwrap_or_else(|e| panic!("{name}: analysis: {e}"));
        let (base, count_base) = run(name, &program, config().with_threads(1));
        for knobs in knob_grid {
            let plan = Arc::new(analysis.plan(knobs));
            let cfg = config().with_threads(2).with_plan(plan);
            let (got, count) = run(name, &program, cfg);
            assert_eq!(base, got, "{name}: report differs with knobs {knobs:?}");
            assert_eq!(count_base, count, "{name}: icount differs with {knobs:?}");
        }
    }
}

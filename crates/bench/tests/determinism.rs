//! The parallel runner's contract: `threads = N` produces a
//! `SuperPinReport` **bit-identical** to `threads = 1` on every workload
//! in the catalog.
//!
//! Epoch batching fixes every scheduling decision (budgets, epoch
//! length, fork points) before slice workers start, and every
//! cross-slice effect (merges, shared-cache publication) is applied in
//! slice order at epoch barriers — so host thread count and host timing
//! must be invisible in all simulated quantities. These tests enforce
//! that field by field and then on the whole report, for the normal
//! epoch configuration, for the degenerate barrier-per-quantum serial
//! baseline, and with the shared code cache (the one cross-slice data
//! structure) enabled.

use superpin::{SharedMem, SuperPinConfig, SuperPinReport};
use superpin_bench::runs::{run_superpin, time_scale_for};
use superpin_tools::ICount1;
use superpin_workloads::{catalog, Scale, WorkloadSpec};

const SCALE: Scale = Scale::Tiny;

fn config() -> SuperPinConfig {
    SuperPinConfig::scaled(1000, time_scale_for(SCALE))
}

fn run(spec: &WorkloadSpec, cfg: SuperPinConfig) -> (SuperPinReport, u64) {
    let program = spec.build(SCALE);
    let shared = SharedMem::new();
    let tool = ICount1::new(&shared);
    let report = run_superpin(&program, tool.clone(), &shared, cfg, spec.name);
    (report, tool.total(&shared))
}

/// Field-by-field comparison before the whole-struct assert, so a
/// determinism regression names the first field that diverged instead
/// of dumping two full reports.
fn assert_identical(name: &str, threads: usize, base: &SuperPinReport, got: &SuperPinReport) {
    let what = |field: &str| format!("{name}: `{field}` differs at threads={threads}");
    assert_eq!(
        base.total_cycles,
        got.total_cycles,
        "{}",
        what("total_cycles")
    );
    assert_eq!(
        base.master_exit_cycles,
        got.master_exit_cycles,
        "{}",
        what("master_exit_cycles")
    );
    assert_eq!(base.breakdown, got.breakdown, "{}", what("breakdown"));
    assert_eq!(
        base.master_insts,
        got.master_insts,
        "{}",
        what("master_insts")
    );
    assert_eq!(
        base.master_syscalls,
        got.master_syscalls,
        "{}",
        what("master_syscalls")
    );
    assert_eq!(base.ptrace, got.ptrace, "{}", what("ptrace"));
    assert_eq!(base.sig_stats, got.sig_stats, "{}", what("sig_stats"));
    assert_eq!(
        base.slices.len(),
        got.slices.len(),
        "{}",
        what("slices.len")
    );
    for (a, b) in base.slices.iter().zip(&got.slices) {
        let slice = |field: &str| format!("{name} slice {}: {field}", a.num);
        assert_eq!(a.num, b.num, "{}", slice("num"));
        assert_eq!(a.insts, b.insts, "{}", slice("insts"));
        assert_eq!(
            a.records_played,
            b.records_played,
            "{}",
            slice("records_played")
        );
        assert_eq!(a.end, b.end, "{}", slice("end"));
        assert_eq!(a.start_cycles, b.start_cycles, "{}", slice("start_cycles"));
        assert_eq!(a.wake_cycles, b.wake_cycles, "{}", slice("wake_cycles"));
        assert_eq!(a.end_cycles, b.end_cycles, "{}", slice("end_cycles"));
        assert_eq!(a.engine, b.engine, "{}", slice("engine"));
        assert_eq!(a.cache, b.cache, "{}", slice("cache"));
        assert_eq!(a.cow_copies, b.cow_copies, "{}", slice("cow_copies"));
    }
    // Belt and braces: any field added later is still covered.
    assert_eq!(base, got, "{name}: reports differ at threads={threads}");
}

#[test]
fn catalog_is_bit_identical_across_thread_counts() {
    for spec in catalog() {
        let (base, count_base) = run(spec, config().with_threads(1));
        for threads in [2, 4] {
            let (got, count) = run(spec, config().with_threads(threads));
            assert_identical(spec.name, threads, &base, &got);
            assert_eq!(count_base, count, "{}: merged icount differs", spec.name);
        }
    }
}

#[test]
fn serial_baseline_with_barrier_per_quantum_is_thread_invariant() {
    // epoch_max_quanta = 1 degenerates to the classic quantum loop
    // (every quantum a barrier) — worst case for sync frequency, and the
    // parallel path must still match it thread-for-thread.
    for spec in catalog().iter().step_by(5) {
        let (base, count_base) = run(spec, config().with_epoch_max_quanta(1).with_threads(1));
        let (got, count) = run(spec, config().with_epoch_max_quanta(1).with_threads(4));
        assert_identical(spec.name, 4, &base, &got);
        assert_eq!(count_base, count, "{}: merged icount differs", spec.name);
    }
}

#[test]
fn shared_code_cache_stays_deterministic_across_threads() {
    // The shared-trace index is the only cross-slice structure workers
    // touch; epoch snapshots + in-order publication must hide all host
    // interleaving. gcc has the largest footprint (most traces shared).
    for name in ["gcc", "vortex", "mcf"] {
        let spec = catalog().iter().find(|s| s.name == name).expect("catalog");
        let mut cfg = config();
        cfg.shared_code_cache = true;
        let (base, count_base) = run(spec, cfg.clone().with_threads(1));
        for threads in [2, 4] {
            let (got, count) = run(spec, cfg.clone().with_threads(threads));
            assert_identical(spec.name, threads, &base, &got);
            assert_eq!(count_base, count, "{}: merged icount differs", spec.name);
        }
    }
}

//! The chaos determinism suite (DESIGN.md §4.8): a run with fault
//! injection armed must produce a `SuperPinReport` **field-by-field
//! identical** to the fault-free run — the only fields recovery may
//! change are the `slice_retries` / `slices_degraded` counters.
//!
//! Injected faults (COW fork failures, dispatch aborts, suppressed or
//! corrupted signature checks, dropped index publications, killed
//! workers) are repaired by the slice supervisor: transient retry at the
//! site, or checkpoint-replay of the condemned slice, or — once the
//! retry budget is spent — degradation to injection-free inline
//! execution. All of those paths land on the same simulated state, so
//! host-visible recovery must be invisible in every simulated quantity.

use superpin::{FailPlan, SharedMem, Site, SiteMode, SuperPinConfig, SuperPinReport};
use superpin_bench::runs::{run_superpin, time_scale_for};
use superpin_tools::ICount1;
use superpin_workloads::{catalog, Scale, WorkloadSpec};

const SCALE: Scale = Scale::Tiny;

fn config() -> SuperPinConfig {
    SuperPinConfig::scaled(1000, time_scale_for(SCALE))
}

fn run(spec: &WorkloadSpec, cfg: SuperPinConfig) -> (SuperPinReport, u64) {
    let program = spec.build(SCALE);
    let shared = SharedMem::new();
    let tool = ICount1::new(&shared);
    let report = run_superpin(&program, tool.clone(), &shared, cfg, spec.name);
    (report, tool.total(&shared))
}

/// Asserts a chaos report equals the fault-free baseline everywhere but
/// the recovery counters, which are zeroed out before the whole-struct
/// compare so any *other* divergence still fails loudly.
fn assert_recovery_invisible(
    name: &str,
    label: &str,
    base: &SuperPinReport,
    chaos: &SuperPinReport,
) {
    let mut scrubbed = chaos.clone();
    scrubbed.slice_retries = base.slice_retries;
    scrubbed.slices_degraded = base.slices_degraded;
    assert_eq!(
        base, &scrubbed,
        "{name}: chaos run ({label}) differs from fault-free run beyond the recovery counters"
    );
}

#[test]
fn chaos_runs_are_bit_identical_for_every_workload() {
    let mut total_retries = 0u64;
    for spec in catalog() {
        let (base, count_base) = run(spec, config());
        for seed in [1u64, 2, 3] {
            for threads in [1usize, 4] {
                let cfg = config()
                    .with_threads(threads)
                    .with_chaos(FailPlan::new(seed, 0.05));
                let (got, count) = run(spec, cfg);
                let label = format!("seed={seed} threads={threads}");
                assert_recovery_invisible(spec.name, &label, &base, &got);
                assert_eq!(
                    count_base, count,
                    "{}: merged icount differs ({label})",
                    spec.name
                );
                total_retries += got.slice_retries;
            }
        }
    }
    // The suite must actually exercise recovery, not vacuously pass with
    // zero faults fired.
    assert!(
        total_retries > 0,
        "no failpoint fired across the whole catalog — chaos is not armed"
    );
}

#[test]
fn forced_runaway_slice_recovers_bit_identically() {
    // Suppress the first true quick-signature match: the slice overruns
    // its boundary (a runaway), is condemned at the barrier, and is
    // rebuilt from its checkpoint.
    let spec = catalog().iter().find(|s| s.name == "gcc").expect("catalog");
    let (base, count_base) = run(spec, config());
    for threads in [1usize, 4] {
        let plan = FailPlan::new(1, 0.0).with_site(Site::CoreSignatureQuickMiss, SiteMode::Nth(1));
        let (got, count) = run(spec, config().with_threads(threads).with_chaos(plan));
        assert!(
            got.slice_retries >= 1,
            "runaway slice was never condemned (threads={threads})"
        );
        assert_eq!(got.slices_degraded, 0);
        assert_recovery_invisible(spec.name, "forced runaway", &base, &got);
        assert_eq!(count_base, count, "merged icount differs");
    }
}

#[test]
fn corrupted_full_signature_recovers_bit_identically() {
    // The dual of the runaway: the quick check passes, then the full
    // register comparison is forced to report a mismatch, so the slice
    // sails past its true boundary.
    let spec = catalog().iter().find(|s| s.name == "mcf").expect("catalog");
    let (base, count_base) = run(spec, config());
    let plan = FailPlan::new(2, 0.0).with_site(Site::CoreSignatureFullMismatch, SiteMode::Nth(1));
    let (got, count) = run(spec, config().with_chaos(plan));
    assert!(
        got.slice_retries >= 1,
        "corrupted slice was never condemned"
    );
    assert_recovery_invisible(spec.name, "full mismatch", &base, &got);
    assert_eq!(count_base, count, "merged icount differs");
}

#[test]
fn killed_worker_recovers_bit_identically() {
    // A worker thread dies mid-epoch (its batch and channels dropped);
    // every slice it held is condemned and replayed, and later epochs
    // route around the dead worker.
    let spec = catalog().iter().find(|s| s.name == "gcc").expect("catalog");
    let (base, count_base) = run(spec, config());
    let plan = FailPlan::new(3, 0.0).with_site(Site::ParallelWorkerChannel, SiteMode::Nth(1));
    let (got, count) = run(spec, config().with_threads(4).with_chaos(plan));
    assert!(got.slice_retries >= 1, "lost batch was never repaired");
    assert_recovery_invisible(spec.name, "killed worker", &base, &got);
    assert_eq!(count_base, count, "merged icount differs");
}

#[test]
fn retry_exhaustion_degrades_to_serial_and_stays_correct() {
    // Every armed incarnation re-hits the always-on signature fault, so
    // each slice burns its single retry and degrades to injection-free
    // inline execution — the graceful-degradation floor.
    let spec = catalog()
        .iter()
        .find(|s| s.name == "gzip")
        .expect("catalog");
    let (base, count_base) = run(spec, config());
    let plan = FailPlan::new(4, 0.0).with_site(Site::CoreSignatureQuickMiss, SiteMode::Always);
    let (got, count) = run(
        spec,
        config()
            .with_threads(4)
            .with_max_slice_retries(1)
            .with_chaos(plan),
    );
    assert!(got.slices_degraded >= 1, "no slice was ever degraded");
    assert!(got.slice_retries >= got.slices_degraded);
    assert_recovery_invisible(spec.name, "retry exhaustion", &base, &got);
    assert_eq!(count_base, count, "merged icount differs");
}

#[test]
fn fork_and_publish_failpoints_are_absorbed_in_place() {
    // COW fork failures retry the fork; dropped index publications
    // republish (the shared index is idempotent). Both are transient —
    // counted as retries, no slice condemned.
    let spec = catalog().iter().find(|s| s.name == "gcc").expect("catalog");
    let mut cfg = config();
    cfg.shared_code_cache = true;
    let (base, count_base) = run(spec, cfg.clone());
    let plan = FailPlan::new(5, 0.0)
        .with_site(Site::VmForkCow, SiteMode::Nth(1))
        .with_site(Site::SharedIndexPublish, SiteMode::Nth(1));
    let (got, count) = run(spec, cfg.with_threads(4).with_chaos(plan));
    assert!(
        got.slice_retries >= 2,
        "fork/publish failpoints never fired"
    );
    assert_eq!(got.slices_degraded, 0);
    assert_recovery_invisible(spec.name, "fork+publish", &base, &got);
    assert_eq!(count_base, count, "merged icount differs");
}

#[test]
fn allocation_chaos_under_memory_pressure_recovers_bit_identically() {
    // The chaos × pressure interaction: `vm.mem.alloc` injects a
    // transient allocation failure into the COW fork path while a tight
    // `--mem-budget` is simultaneously walking the eviction ladder
    // (dropping checkpoints, evicting caches, deferring forks). The
    // retry ladder must absorb the fault without perturbing a single
    // governed decision — the baseline here is the *budgeted* supervised
    // run, and the memory counters are compared unscrubbed.
    let budget = 192 * 1024;
    let spec = catalog().iter().find(|s| s.name == "gcc").expect("catalog");
    let (_, count_plain) = run(spec, config());
    let base_cfg = config().with_supervision().with_mem_budget(budget);
    let (base, count_base) = run(spec, base_cfg);
    assert!(
        base.caches_evicted > 0 && base.checkpoints_dropped > 0,
        "budget too loose: the ladder never engaged, the test is vacuous"
    );
    assert_eq!(count_plain, count_base, "pressure alone changed the merge");
    for threads in [1usize, 4] {
        // A pinpoint transient fault on the first allocation...
        let plan = FailPlan::new(6, 0.0).with_site(Site::VmMemAlloc, SiteMode::Nth(1));
        let cfg = config()
            .with_mem_budget(budget)
            .with_threads(threads)
            .with_chaos(plan);
        let (got, count) = run(spec, cfg);
        assert!(
            got.slice_retries >= 1,
            "vm.mem.alloc failpoint never fired (threads={threads})"
        );
        assert_recovery_invisible(spec.name, "alloc fault under pressure", &base, &got);
        assert_eq!(count_base, count, "merged icount differs under pressure");

        // ...and broadband random chaos over every site at once.
        let cfg = config()
            .with_mem_budget(budget)
            .with_threads(threads)
            .with_chaos(FailPlan::new(7, 0.05));
        let (got, count) = run(spec, cfg);
        assert_recovery_invisible(spec.name, "random chaos under pressure", &base, &got);
        assert_eq!(
            count_base, count,
            "merged icount differs under random chaos"
        );
    }
}

#[test]
fn supervision_without_chaos_changes_nothing() {
    // The supervisor alone (checkpoints, journals, watchdogs) must be
    // invisible: same report, zero retries.
    for spec in catalog().iter().step_by(7) {
        let (base, count_base) = run(spec, config());
        for threads in [1usize, 4] {
            let (got, count) = run(spec, config().with_threads(threads).with_supervision());
            assert_eq!(got.slice_retries, 0, "{}: spurious retry", spec.name);
            assert_eq!(got.slices_degraded, 0, "{}: spurious degrade", spec.name);
            assert_eq!(
                &base, &got,
                "{}: supervised run differs at threads={threads}",
                spec.name
            );
            assert_eq!(count_base, count, "{}: merged icount differs", spec.name);
        }
    }
}

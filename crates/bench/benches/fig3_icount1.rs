//! Figure 3 bench: icount1 under Pin vs SuperPin across the suite.
//!
//! Criterion measures harness wall time; the *figure data* (virtual-time
//! ratios) is printed once at startup. Run the `reproduce` binary at
//! `--scale medium` for the full-fidelity series.

use criterion::{criterion_group, criterion_main, Criterion};
use superpin_bench::{figures, render};
use superpin_workloads::Scale;

fn bench(c: &mut Criterion) {
    let series = figures::fig3_icount1(Scale::Tiny, 4);
    println!(
        "{}",
        render::render_series("Figure 3 (tiny scale): icount1 vs native", &series)
    );
    assert!(series.rows.iter().all(|row| row.counts_ok));

    let mut group = c.benchmark_group("fig3_icount1");
    group.sample_size(10);
    group.bench_function("suite_tiny", |b| {
        b.iter(|| figures::fig3_icount1(Scale::Tiny, 4))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

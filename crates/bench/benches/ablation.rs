//! Ablations of SuperPin design choices called out in DESIGN.md:
//!
//! * **adaptive timeslice throttling** (paper §8 future work) vs the
//!   fixed timeslice — pipeline-delay reduction;
//! * **scheduler policy**: fair-share (paper behaviour) vs an idealized
//!   master-pinned scheduler;
//! * **syscall recording** on vs off (`-spsysrecs 0`) — fork-rate blowup.

use criterion::{criterion_group, criterion_main, Criterion};
use superpin::{SharedMem, SuperPinConfig};
use superpin_bench::runs::{figure_config, run_superpin, time_scale_for};
use superpin_sched::Policy;
use superpin_tools::ICount2;
use superpin_workloads::{find, Scale};

fn run_gcc(cfg: SuperPinConfig) -> superpin::SuperPinReport {
    let spec = find("gcc").expect("gcc");
    let program = spec.build(Scale::Small);
    let shared = SharedMem::new();
    let tool = ICount2::new(&shared);
    run_superpin(&program, tool, &shared, cfg, spec.name)
}

fn bench(c: &mut Criterion) {
    let scale = Scale::Small;

    // Adaptive throttling ablation.
    let fixed = run_gcc(figure_config(2000, scale));
    let mut adaptive_cfg = figure_config(2000, scale);
    adaptive_cfg.adaptive_estimate = Some(fixed.master_exit_cycles);
    let adaptive = run_gcc(adaptive_cfg.clone());
    println!(
        "ablation/adaptive: fixed pipeline {:.2}s vs adaptive {:.2}s (total {:.1}s vs {:.1}s)",
        adaptive_cfg.present_secs(fixed.breakdown.pipeline_cycles),
        adaptive_cfg.present_secs(adaptive.breakdown.pipeline_cycles),
        adaptive_cfg.present_secs(fixed.total_cycles),
        adaptive_cfg.present_secs(adaptive.total_cycles),
    );

    // Scheduler-policy ablation.
    let mut master_first = figure_config(2000, scale);
    master_first.policy = Policy::MasterFirst;
    let pinned = run_gcc(master_first.clone());
    println!(
        "ablation/policy: fair-share total {:.1}s vs master-first {:.1}s",
        master_first.present_secs(fixed.total_cycles),
        master_first.present_secs(pinned.total_cycles),
    );

    // Shared code cache ablation (paper §8).
    let mut shared_cache_cfg = figure_config(500, scale);
    shared_cache_cfg.shared_code_cache = true;
    let shared_cache = run_gcc(shared_cache_cfg.clone());
    let short_private = run_gcc(figure_config(500, scale));
    println!(
        "ablation/shared-cache @0.5s: private total {:.1}s vs shared {:.1}s",
        shared_cache_cfg.present_secs(short_private.total_cycles),
        shared_cache_cfg.present_secs(shared_cache.total_cycles),
    );
    assert!(shared_cache.total_cycles < short_private.total_cycles);

    // Syscall-recording ablation — on vortex: gcc's brk churn is
    // Duplicate-class and never forces a slice, but vortex's writes are
    // recordable, so disabling recording forks at each of them.
    let run_vortex = |cfg: SuperPinConfig| {
        let spec = find("vortex").expect("vortex");
        let program = spec.build(Scale::Small);
        let shared = SharedMem::new();
        let tool = ICount2::new(&shared);
        run_superpin(&program, tool, &shared, cfg, spec.name)
    };
    let recs_on = run_vortex(figure_config(2000, scale));
    let recs_off =
        run_vortex(SuperPinConfig::scaled(2000, time_scale_for(scale)).with_max_sysrecs(0));
    println!(
        "ablation/sysrecs (vortex): recording forks(syscall)={} vs disabled forks(syscall)={}",
        recs_on.forks_on_syscall, recs_off.forks_on_syscall,
    );
    assert!(recs_off.forks_on_syscall > recs_on.forks_on_syscall);

    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);
    group.bench_function("gcc_fixed_timeslice", |b| {
        b.iter(|| run_gcc(figure_config(2000, scale)))
    });
    group.bench_function("gcc_adaptive_timeslice", |b| {
        b.iter(|| run_gcc(adaptive_cfg.clone()))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Figure 5 bench: icount2 under Pin vs SuperPin across the suite.

use criterion::{criterion_group, criterion_main, Criterion};
use superpin_bench::{figures, render};
use superpin_workloads::Scale;

fn bench(c: &mut Criterion) {
    let series = figures::fig5_icount2(Scale::Tiny, 4);
    println!(
        "{}",
        render::render_series("Figure 5 (tiny scale): icount2 vs native", &series)
    );
    assert!(series.rows.iter().all(|row| row.counts_ok));

    let mut group = c.benchmark_group("fig5_icount2");
    group.sample_size(10);
    group.bench_function("suite_tiny", |b| {
        b.iter(|| figures::fig5_icount2(Scale::Tiny, 4))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

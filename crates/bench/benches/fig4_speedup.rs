//! Figure 4 bench: SuperPin speedup over Pin for icount1 (single
//! benchmark, to keep the bench loop tight; the full series comes from
//! the shared Fig. 3 data in the `reproduce` binary).

use criterion::{criterion_group, criterion_main, Criterion};
use superpin_bench::runs::{figure_config, run_triple, IcountKind};
use superpin_workloads::{find, Scale};

fn bench(c: &mut Criterion) {
    let spec = find("swim").expect("swim in catalog");
    let cfg = figure_config(2000, Scale::Tiny);
    let triple = run_triple(spec, Scale::Tiny, &cfg, IcountKind::Icount1);
    println!(
        "Figure 4 sample (tiny): swim speedup {:.2}x (pin {:.0}%, superpin {:.0}%)",
        triple.speedup(),
        triple.pin_pct(),
        triple.superpin_pct()
    );
    assert!(triple.counts_agree());

    let mut group = c.benchmark_group("fig4_speedup");
    group.sample_size(10);
    group.bench_function("swim_triple_tiny", |b| {
        b.iter(|| run_triple(spec, Scale::Tiny, &cfg, IcountKind::Icount1))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Substrate micro-benchmarks: raw host-side costs of the building
//! blocks (interpreter throughput, COW fork, signature capture, trace
//! compilation, slice spawn). These measure the *simulator's* speed, not
//! virtual time — useful when optimizing the reproduction itself.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use superpin::bubble::Bubble;
use superpin::signature::Signature;
use superpin::slice::SliceRuntime;
use superpin::SuperPinConfig;
use superpin_dbi::{discover_trace, Engine, NullTool};
use superpin_isa::asm::assemble;
use superpin_tools::ICount2;
use superpin_vm::process::Process;
use superpin_workloads::{find, Scale};

fn bench(c: &mut Criterion) {
    let loop_src = "main:\n li r1, 10000\nloop:\n subi r1, r1, 1\n bne r1, r0, loop\n exit 0\n";
    let loop_program = assemble(loop_src).expect("assemble");

    let mut group = c.benchmark_group("micro");
    group.sample_size(20);

    // Interpreter throughput: ~20k instructions per iteration.
    group.bench_function("interp_20k_insts", |b| {
        b.iter_batched(
            || Process::load(1, &loop_program).expect("load"),
            |mut process| process.run(u64::MAX, 0).expect("run"),
            BatchSize::SmallInput,
        )
    });

    // Engine (instrumented) throughput over the same program.
    group.bench_function("engine_icount2_20k_insts", |b| {
        b.iter_batched(
            || {
                let shared = superpin::SharedMem::new();
                Engine::new(
                    Process::load(1, &loop_program).expect("load"),
                    ICount2::new(&shared),
                )
            },
            |mut engine| engine.run_to_exit().expect("run"),
            BatchSize::SmallInput,
        )
    });

    // COW fork of a gcc-sized process image.
    let gcc = find("gcc").expect("gcc").build(Scale::Tiny);
    let mut gcc_process = Process::load(1, &gcc).expect("load");
    gcc_process.run_until_syscall(5_000).expect("warm up");
    group.bench_function("cow_fork_gcc_image", |b| {
        b.iter(|| std::hint::black_box(gcc_process.fork(2)))
    });

    // Signature capture (registers + 100 stack words + quick-reg scan).
    group.bench_function("signature_capture", |b| {
        b.iter(|| std::hint::black_box(Signature::capture(&gcc_process)))
    });

    // Trace discovery on gcc's entry.
    group.bench_function("trace_discovery", |b| {
        b.iter(|| discover_trace(&gcc_process.mem, gcc.entry()).expect("trace"))
    });

    // Full slice spawn (fork + trampoline + bubble + engine setup).
    let mut master = Process::load(1, &gcc).expect("load");
    let bubble = Bubble::reserve(&mut master.mem).expect("bubble");
    let cfg = SuperPinConfig::paper_default();
    let shared = superpin::SharedMem::new();
    let tool = ICount2::new(&shared);
    group.bench_function("slice_spawn", |b| {
        b.iter(|| SliceRuntime::spawn(1, &master, &tool, &bubble, &cfg, 0).expect("spawn"))
    });

    // Null-tool engine startup cost (cold JIT of the whole loop).
    group.bench_function("engine_cold_start", |b| {
        b.iter_batched(
            || Process::load(1, &loop_program).expect("load"),
            |process| {
                let mut engine = Engine::new(process, NullTool);
                engine.run(5_000).expect("run")
            },
            BatchSize::SmallInput,
        )
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

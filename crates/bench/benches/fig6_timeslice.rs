//! Figure 6 bench: gcc runtime vs timeslice interval with the
//! native / fork&others / sleep / pipeline breakdown.

use criterion::{criterion_group, criterion_main, Criterion};
use superpin_bench::{figures, render};
use superpin_workloads::Scale;

fn bench(c: &mut Criterion) {
    let rows = figures::fig6_timeslice(Scale::Small, &[500, 1000, 2000, 4000]);
    println!("{}", render::render_fig6(&rows));

    let mut group = c.benchmark_group("fig6_timeslice");
    group.sample_size(10);
    group.bench_function("gcc_sweep_small", |b| {
        b.iter(|| figures::fig6_timeslice(Scale::Small, &[1000, 2000]))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

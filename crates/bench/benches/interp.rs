//! Interpreter hot-path micro-benchmarks, isolating the two unit-level
//! wins of the fast-core work independent of the benchmark catalog:
//!
//! * **decode-once vs decode-per-step** — the per-page [`DecodeCache`]
//!   against a loop that re-decodes every instruction through
//!   [`cpu::fetch_at`] on every execution;
//! * **dispatch-table vs match** — the direct-threaded
//!   [`cpu::exec_decoded`] against the match-based reference
//!   [`cpu::exec_decoded_match`], both fed from the same warm decode
//!   cache so only the dispatch mechanism differs.
//!
//! All four variants execute the same ~20k-instruction countdown loop
//! and are cross-checked to retire the same instruction count.

use criterion::{criterion_group, criterion_main, Criterion};
use superpin_isa::Inst;
use superpin_vm::cpu::{self, CpuState, ExecOutcome};
use superpin_vm::decode::DecodeCache;
use superpin_vm::mem::AddressSpace;
use superpin_vm::process::Process;
use superpin_vm::VmError;

type ExecFn = fn(&mut CpuState, &mut AddressSpace, Inst, u64) -> Result<ExecOutcome, VmError>;

/// Runs until halt, decoding every step through the given fetcher and
/// executing through the given dispatcher; returns instructions retired.
fn run_loop(
    cpu: &mut CpuState,
    mem: &mut AddressSpace,
    mut fetch: impl FnMut(&AddressSpace, u64) -> Result<(Inst, u64), VmError>,
    exec: ExecFn,
) -> u64 {
    let mut retired = 0u64;
    loop {
        let (inst, size) = fetch(mem, cpu.pc).expect("fetch");
        match exec(cpu, mem, inst, size).expect("exec") {
            ExecOutcome::Next | ExecOutcome::Jumped => retired += 1,
            ExecOutcome::Syscall | ExecOutcome::Halt => break retired,
        }
    }
}

fn bench(c: &mut Criterion) {
    let src = "main:\n li r1, 10000\nloop:\n subi r1, r1, 1\n bne r1, r0, loop\n halt\n";
    let program = superpin_isa::asm::assemble(src).expect("assemble");
    let process = Process::load(1, &program).expect("load");
    let entry = process.cpu.pc;
    let mut mem = process.mem;

    // Reference count from the never-cached, match-dispatched loop.
    let mut cpu_state = CpuState::at(entry);
    let expected = run_loop(
        &mut cpu_state,
        &mut mem,
        cpu::fetch_at,
        cpu::exec_decoded_match,
    );
    assert_eq!(expected, 20_001, "li + 10000 x (subi, bne)");

    let mut group = c.benchmark_group("interp");
    group.sample_size(20);

    // Decode-per-step: the pre-decode-cache interpreter shape.
    group.bench_function("decode_per_step_20k", |b| {
        b.iter(|| {
            let mut cpu_state = CpuState::at(entry);
            let retired = run_loop(&mut cpu_state, &mut mem, cpu::fetch_at, cpu::exec_decoded);
            assert_eq!(retired, expected);
        })
    });

    // Decode-once: same loop through a persistent decode cache, so the
    // steady state is an array read per instruction.
    let mut cache = DecodeCache::new();
    group.bench_function("decode_once_20k", |b| {
        b.iter(|| {
            let mut cpu_state = CpuState::at(entry);
            let retired = run_loop(
                &mut cpu_state,
                &mut mem,
                |mem, pc| cache.fetch(mem, pc),
                cpu::exec_decoded,
            );
            assert_eq!(retired, expected);
        })
    });

    // Dispatch comparison: identical warm-cache fetch path, only the
    // execute dispatch differs (direct-threaded table vs match).
    let mut cache = DecodeCache::new();
    group.bench_function("dispatch_table_20k", |b| {
        b.iter(|| {
            let mut cpu_state = CpuState::at(entry);
            let retired = run_loop(
                &mut cpu_state,
                &mut mem,
                |mem, pc| cache.fetch(mem, pc),
                cpu::exec_decoded,
            );
            assert_eq!(retired, expected);
        })
    });
    let mut cache = DecodeCache::new();
    group.bench_function("dispatch_match_20k", |b| {
        b.iter(|| {
            let mut cpu_state = CpuState::at(entry);
            let retired = run_loop(
                &mut cpu_state,
                &mut mem,
                |mem, pc| cache.fetch(mem, pc),
                cpu::exec_decoded_match,
            );
            assert_eq!(retired, expected);
        })
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Figure 7 bench: gcc runtime vs the max-running-slices limit on the
//! hyperthreaded 16-virtual-CPU machine.

use criterion::{criterion_group, criterion_main, Criterion};
use superpin_bench::{figures, render};
use superpin_workloads::Scale;

fn bench(c: &mut Criterion) {
    let rows = figures::fig7_parallelism(Scale::Small, &[1, 2, 4, 8, 12, 16]);
    println!("{}", render::render_fig7(&rows));

    let mut group = c.benchmark_group("fig7_parallelism");
    group.sample_size(10);
    group.bench_function("gcc_spmp_sweep_small", |b| {
        b.iter(|| figures::fig7_parallelism(Scale::Small, &[2, 8]))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

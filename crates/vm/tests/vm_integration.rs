//! Cross-module VM scenarios: fork chains, COW accounting under load,
//! record/playback congruence, and address-space digests.

use superpin_isa::asm::assemble;
use superpin_isa::{Program, Reg};
use superpin_vm::kernel::SyscallNo;
use superpin_vm::process::{Process, RunExit};

fn program(src: &str) -> Program {
    assemble(src).expect("assemble")
}

#[test]
fn fork_chain_isolates_three_generations() {
    let src = r#"
        .data
        buf: .space 64
        .text
        main:
            la r2, buf
            li r3, 1
            st r3, 0(r2)
            exit 0
    "#;
    let mut parent = Process::load(1, &program(src)).expect("load");
    parent.run(u64::MAX, 0).expect("run parent");
    let base = superpin_isa::DATA_BASE;
    assert_eq!(parent.mem.read_u64(base).expect("read"), 1);

    let mut child = parent.fork(2);
    child.mem.write_u64(base, 2).expect("write child");
    let mut grandchild = child.fork(3);
    grandchild.mem.write_u64(base, 3).expect("write grandchild");

    assert_eq!(parent.mem.read_u64(base).expect("read"), 1);
    assert_eq!(child.mem.read_u64(base).expect("read"), 2);
    assert_eq!(grandchild.mem.read_u64(base).expect("read"), 3);
}

#[test]
fn cow_accounting_under_page_storm() {
    // Touch 16 pages in the parent, fork, dirty all of them in the child.
    let mut b = superpin_isa::ProgramBuilder::new();
    b.bss("arena", 16 * 4096);
    b.label("main");
    b.exit(0);
    let program = b.build().expect("build");
    let mut parent = Process::load(1, &program).expect("load");
    let arena = superpin_isa::DATA_BASE;
    for page in 0..16u64 {
        parent
            .mem
            .write_u64(arena + page * 4096, page)
            .expect("touch");
    }
    let mut child = parent.fork(2);
    assert_eq!(child.mem.stats().cow_copies, 0);
    for page in 0..16u64 {
        child
            .mem
            .write_u64(arena + page * 4096, 100 + page)
            .expect("dirty");
    }
    assert_eq!(
        child.mem.stats().cow_copies,
        16,
        "one copy per dirtied page"
    );
    // Re-dirtying costs nothing further.
    for page in 0..16u64 {
        child
            .mem
            .write_u64(arena + page * 4096, 200 + page)
            .expect("re-dirty");
    }
    assert_eq!(child.mem.stats().cow_copies, 16);
}

#[test]
fn replayed_process_digest_matches_executed_process() {
    // A program that reads stdin, maps memory, writes a file, and exits.
    let src = r#"
        .data
        name: .byte 102, 46, 116          ; "f.t"
        buf:  .space 64
        .text
        main:
            li r0, 2                      ; read(stdin)
            li r1, 0
            la r2, buf
            li r3, 8
            syscall
            li r0, 6                      ; mmap(NULL, 8192)
            li r1, 0
            li r2, 8192
            syscall
            mov r6, r0                    ; keep address
            li r3, 0x77
            st r3, 0(r6)
            li r0, 3                      ; open("f.t")
            la r1, name
            li r2, 3
            syscall
            exit 0
    "#;
    let prog = program(src);
    let mut master = Process::load(1, &prog).expect("load");
    master.kernel.fds.set_stdin(b"abcdefgh".to_vec());
    let mut replica = master.fork(2);

    // Master executes; every syscall record is played back in the
    // replica, which never consults the kernel.
    let mut records = Vec::new();
    loop {
        match master.run_until_syscall(u64::MAX).expect("run") {
            RunExit::SyscallEntry => {
                let record = master.do_syscall(7).expect("svc");
                let exited = record.exited.is_some();
                records.push(record);
                if exited {
                    break;
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }
    let mut iter = records.iter();
    loop {
        match replica.run_until_syscall(u64::MAX).expect("run") {
            RunExit::SyscallEntry => {
                let record = iter.next().expect("record available");
                replica.playback_syscall(record).expect("playback");
                if record.exited.is_some() {
                    break;
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }
    assert_eq!(master.inst_count(), replica.inst_count());
    assert_eq!(master.cpu, replica.cpu);
    assert_eq!(
        master.mem.content_digest(),
        replica.mem.content_digest(),
        "playback must reproduce the exact address-space contents"
    );
}

#[test]
fn gettime_returns_supplied_clock() {
    let src = "main:\n li r0, 8\n syscall\n mov r5, r0\n exit 0\n";
    let mut p = Process::load(1, &program(src)).expect("load");
    p.run_until_syscall(u64::MAX).expect("run");
    let record = p.do_syscall(123_456).expect("gettime");
    assert_eq!(record.ret, 123_456);
    p.run(u64::MAX, 0).expect("finish");
    assert_eq!(p.cpu.regs.get(Reg::R5), 123_456);
}

#[test]
fn mmap_then_munmap_round_trip_through_guest() {
    let src = r#"
        main:
            li r0, 6          ; mmap(NULL, 4096)
            li r1, 0
            li r2, 4096
            syscall
            mov r6, r0
            li r3, 9
            st r3, 0(r6)      ; touch the mapping
            li r0, 7          ; munmap(addr)
            mov r1, r6
            syscall
            exit 0
    "#;
    let mut p = Process::load(1, &program(src)).expect("load");
    assert_eq!(p.run(u64::MAX, 0).expect("run"), RunExit::Exited(0));
    // The mapping is gone afterwards.
    let regions = p.mem.regions().to_vec();
    assert!(regions
        .iter()
        .all(|r| r.kind != superpin_vm::mem::RegionKind::Mmap));
}

#[test]
fn stack_grows_within_reserved_region() {
    // Deep call chain pushing frames: sp descends but stays mapped.
    let mut b = superpin_isa::ProgramBuilder::new();
    b.label("main");
    b.li(Reg::R2, 64);
    b.call("recurse");
    b.exit(0);
    b.label("recurse");
    b.subi(Reg::SP, Reg::SP, 32);
    b.st(Reg::RA, Reg::SP, 0);
    b.subi(Reg::R2, Reg::R2, 1);
    b.beq(Reg::R2, Reg::R0, "unwind");
    b.call("recurse");
    b.label("unwind");
    b.ld(Reg::RA, Reg::SP, 0);
    b.addi(Reg::SP, Reg::SP, 32);
    b.ret();
    let program = b.build().expect("build");
    let mut p = Process::load(1, &program).expect("load");
    assert_eq!(p.run(u64::MAX, 0).expect("run"), RunExit::Exited(0));
    assert_eq!(
        p.cpu.regs.get(Reg::SP),
        superpin_isa::STACK_TOP - 64,
        "stack fully unwound"
    );
}

#[test]
fn syscall_numbers_round_trip_names() {
    for raw in 0..=13u64 {
        let number = SyscallNo::from_raw(raw).expect("valid");
        assert_eq!(number as u64, raw);
        assert!(!number.name().is_empty());
    }
    assert!(SyscallNo::from_raw(14).is_none());
}

//! Ptrace-style supervision of a guest process.
//!
//! SuperPin "employs a special control process that monitors the
//! application via the ptrace mechanism" (paper §4.2): the master stops at
//! every system-call entry, and a timer can interrupt it between
//! syscalls. [`Controller`] reproduces that interface: `resume` runs the
//! tracee until the next syscall entry, exit, or budget expiry (our
//! virtual-time analogue of the timer signal), and keeps the stop
//! statistics used for the paper's "ptrace overhead" accounting (§6.3).

use crate::error::VmError;
use crate::kernel::SyscallRecord;
use crate::process::{Process, RunExit};

/// Why the tracee stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// Parked at a syscall entry; service it with
    /// [`Controller::step_over_syscall`].
    SyscallEntry,
    /// The instruction budget expired — the analogue of SuperPin's timer
    /// signal interrupting the master (paper §4.3).
    Timeout,
    /// The tracee exited with this code.
    Exited(i64),
    /// The tracee executed `halt`.
    Halted,
}

/// Stop counters, for ptrace-overhead accounting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PtraceStats {
    /// Stops at syscall entries.
    pub syscall_stops: u64,
    /// Stops due to budget (timer) expiry.
    pub timeout_stops: u64,
}

/// Supervises a [`Process`], stopping it at syscall entries and timeouts.
#[derive(Clone, Debug)]
pub struct Controller {
    process: Process,
    stats: PtraceStats,
}

impl Controller {
    /// Attaches to (takes ownership of) a process.
    pub fn new(process: Process) -> Controller {
        Controller {
            process,
            stats: PtraceStats::default(),
        }
    }

    /// The supervised process.
    pub fn process(&self) -> &Process {
        &self.process
    }

    /// Mutable access to the supervised process (register/memory
    /// peek-poke, forking slices).
    pub fn process_mut(&mut self) -> &mut Process {
        &mut self.process
    }

    /// Consumes the controller, returning the process.
    pub fn into_process(self) -> Process {
        self.process
    }

    /// Stop statistics so far.
    pub fn stats(&self) -> PtraceStats {
        self.stats
    }

    /// Resumes the tracee for at most `budget` instructions.
    ///
    /// # Errors
    ///
    /// Propagates execution errors from the tracee.
    pub fn resume(&mut self, budget: u64) -> Result<StopReason, VmError> {
        match self.process.run_until_syscall(budget)? {
            RunExit::SyscallEntry => {
                self.stats.syscall_stops += 1;
                Ok(StopReason::SyscallEntry)
            }
            RunExit::BudgetExhausted => {
                self.stats.timeout_stops += 1;
                Ok(StopReason::Timeout)
            }
            RunExit::Exited(code) => Ok(StopReason::Exited(code)),
            RunExit::Halted => Ok(StopReason::Halted),
        }
    }

    /// Services the syscall the tracee is parked at and returns its full
    /// effect record (the controller sees every syscall, paper §4.2).
    ///
    /// # Errors
    ///
    /// Propagates kernel/memory errors.
    pub fn step_over_syscall(&mut self, now_ns: u64) -> Result<SyscallRecord, VmError> {
        self.process.do_syscall(now_ns)
    }

    /// Applies a previously recorded syscall's effects to the parked
    /// tracee instead of re-executing the kernel — the replay twin of
    /// [`step_over_syscall`](Controller::step_over_syscall). The caller
    /// is responsible for checking that the tracee is parked at the
    /// matching syscall.
    ///
    /// # Errors
    ///
    /// Propagates memory errors while applying the record.
    pub fn playback_syscall(&mut self, record: &SyscallRecord) -> Result<(), VmError> {
        self.process.playback_syscall(record)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::SyscallNo;
    use superpin_isa::asm::assemble;

    fn controller(src: &str) -> Controller {
        Controller::new(Process::load(1, &assemble(src).expect("assemble")).expect("load"))
    }

    #[test]
    fn stops_at_each_syscall() {
        let mut ctl = controller("main:\n li r0, 9\n syscall\n li r0, 9\n syscall\n exit 0\n");
        assert_eq!(
            ctl.resume(u64::MAX).expect("resume"),
            StopReason::SyscallEntry
        );
        let rec = ctl.step_over_syscall(0).expect("syscall");
        assert_eq!(rec.number, SyscallNo::GetPid);
        assert_eq!(
            ctl.resume(u64::MAX).expect("resume"),
            StopReason::SyscallEntry
        );
        ctl.step_over_syscall(0).expect("syscall");
        assert_eq!(
            ctl.resume(u64::MAX).expect("resume"),
            StopReason::SyscallEntry
        );
        let rec = ctl.step_over_syscall(0).expect("exit");
        assert_eq!(rec.exited, Some(0));
        assert_eq!(ctl.stats().syscall_stops, 3);
    }

    #[test]
    fn timeout_stop_counts() {
        let mut ctl =
            controller("main:\n li r1, 1000\nloop:\n subi r1, r1, 1\n bne r1, r0, loop\n exit 0\n");
        assert_eq!(ctl.resume(10).expect("resume"), StopReason::Timeout);
        assert_eq!(ctl.resume(10).expect("resume"), StopReason::Timeout);
        assert_eq!(ctl.stats().timeout_stops, 2);
        // Resume to completion: exit is a syscall stop first.
        loop {
            match ctl.resume(u64::MAX).expect("resume") {
                StopReason::SyscallEntry => {
                    if ctl.step_over_syscall(0).expect("svc").exited.is_some() {
                        break;
                    }
                }
                StopReason::Exited(_) => break,
                other => panic!("unexpected stop {other:?}"),
            }
        }
        assert_eq!(ctl.process().exited(), Some(0));
    }
}

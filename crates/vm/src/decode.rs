//! Per-page pre-decoded instruction streams.
//!
//! The baseline interpreter decodes every instruction on every execution:
//! `cpu::fetch` pays a region binary-search, a `BTreeMap` page lookup, a
//! byte copy, and a full `decode` per step. For a hot loop that is pure
//! waste — the bytes have not changed. A [`DecodeCache`] memoizes the
//! decode per 8-byte code word, so each guest instruction is decoded once
//! and every later execution is an array read.
//!
//! # Invalidation
//!
//! The cache is keyed on [`AddressSpace::code_version`], the monotonic
//! counter the address space bumps on every write into (or unmap of) a
//! [`RegionKind::Code`] region. Any mismatch clears the whole cache, so
//! self-modifying code observes its new bytes on the very next fetch —
//! the version is re-checked before *every* cached read, including
//! mid-run, because a store can rewrite the instruction directly after
//! itself.
//!
//! # What is (not) cached
//!
//! Only pages inside `RegionKind::Code` regions are cached: writes
//! elsewhere do not bump `code_version`, so caching a data page would go
//! stale silently. Regions are page-aligned, so a page is either wholly
//! code or not cacheable. Two deliberate holes fall back to a plain
//! [`cpu::fetch_at`]:
//!
//! * a 16-byte `li` occupying the *last* word of a page — its payload
//!   word lives on the next page, which may not be code;
//! * faulting or undecodable words — mappings can change without a
//!   `code_version` bump, so negative results are never memoized.

use crate::cpu::{self, CpuState, ExecOutcome};
use crate::error::VmError;
use crate::mem::{AddressSpace, RegionKind, PAGE_MASK, PAGE_SHIFT, PAGE_SIZE};
use std::sync::Arc;
use superpin_isa::Inst;

/// Instruction words (8-byte slots) per page.
const WORDS_PER_PAGE: usize = PAGE_SIZE / 8;

/// One lazily-filled pre-decoded code page: a decode memo per 8-byte
/// word, `None` until that word is first executed.
#[derive(Clone)]
struct DecodedPage {
    slots: Box<[Option<(Inst, u8)>; WORDS_PER_PAGE]>,
}

impl DecodedPage {
    fn new() -> DecodedPage {
        DecodedPage {
            slots: Box::new([None; WORDS_PER_PAGE]),
        }
    }
}

impl std::fmt::Debug for DecodedPage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let filled = self.slots.iter().filter(|slot| slot.is_some()).count();
        f.debug_struct("DecodedPage")
            .field("filled", &filled)
            .finish()
    }
}

/// Why a decoded run stopped, for the caller's outer loop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunStop {
    /// The instruction budget was exhausted mid-stream.
    Budget,
    /// A `syscall` was reached; `pc` parks on it.
    Syscall,
    /// A `halt` was reached; `pc` parks on it.
    Halt,
}

/// A per-process decode cache: pre-decoded code pages plus the
/// `code_version` they were decoded under.
///
/// Guest programs touch a handful of code pages, so the store is a small
/// vector scanned linearly with a last-hit memo — cheaper than any hash
/// map for the page counts involved, and the memo alone answers almost
/// every fetch in straight-line code.
#[derive(Clone, Debug, Default)]
pub struct DecodeCache {
    /// `code_version` the cached decodes were taken under.
    version: u64,
    /// `(page index, decoded page)`, unordered; scanned linearly. Pages
    /// sit behind `Arc` so cloning a cache (per-slice process
    /// checkpoints) shares the decoded arrays; a clone that fills a new
    /// slot copies-on-write via [`Arc::make_mut`].
    pages: Vec<(u64, Arc<DecodedPage>)>,
    /// Index into `pages` of the most recent hit.
    last: usize,
}

impl DecodeCache {
    /// An empty cache.
    pub fn new() -> DecodeCache {
        DecodeCache::default()
    }

    /// Number of pages currently cached (test/diagnostic aid).
    pub fn cached_pages(&self) -> usize {
        self.pages.len()
    }

    /// Drops every cached page (the `code_version` key makes this
    /// automatic on self-modifying code; this is for tests).
    pub fn clear(&mut self) {
        self.pages.clear();
        self.last = 0;
    }

    /// Index into `pages` for `page_idx`, if cached. The last-hit memo
    /// answers nearly every call; the linear scan only runs on page
    /// transitions, over a handful of entries.
    #[inline]
    fn locate(&self, page_idx: u64) -> Option<usize> {
        match self.pages.get(self.last) {
            Some(&(cached, _)) if cached == page_idx => Some(self.last),
            _ => self
                .pages
                .iter()
                .position(|&(cached, _)| cached == page_idx),
        }
    }

    /// Fetches and decodes the instruction at `pc`, consulting and
    /// filling the cache.
    ///
    /// Exactly equivalent to [`cpu::fetch_at`] — same results, same
    /// errors — just memoized.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::Mem`] for unmapped fetches or
    /// [`VmError::Decode`] for invalid encodings.
    #[inline]
    pub fn fetch(&mut self, mem: &AddressSpace, pc: u64) -> Result<(Inst, u64), VmError> {
        if self.version != mem.code_version() {
            self.pages.clear();
            self.last = 0;
            self.version = mem.code_version();
        }
        if pc & 7 != 0 {
            // Misaligned pc: never cached (slots are per 8-byte word).
            return cpu::fetch_at(mem, pc);
        }
        let page_idx = pc >> PAGE_SHIFT;
        let word = ((pc & PAGE_MASK) >> 3) as usize;
        let slot_idx = match self.locate(page_idx) {
            Some(idx) => idx,
            None => {
                if !is_code_page(mem, pc) {
                    return cpu::fetch_at(mem, pc);
                }
                self.pages.push((page_idx, Arc::new(DecodedPage::new())));
                self.pages.len() - 1
            }
        };
        self.last = slot_idx;
        if let Some((inst, size)) = self.pages[slot_idx].1.slots[word] {
            return Ok((inst, size as u64));
        }
        let (inst, size) = cpu::fetch_at(mem, pc)?;
        // A 16-byte `li` in the last word spills its payload onto the
        // next page, which may not be covered by `code_version`; leave
        // that one slot uncached.
        if !(size == 16 && word == WORDS_PER_PAGE - 1) {
            Arc::make_mut(&mut self.pages[slot_idx].1).slots[word] = Some((inst, size as u8));
        }
        Ok((inst, size))
    }

    /// Executes decoded instructions starting at `cpu.pc` until a
    /// syscall, halt, fault, or `budget` instructions — the "whole
    /// decoded run" interpreter loop. Every retired instruction is added
    /// to `*retired` as it executes, so a caller's dynamic instruction
    /// count stays exact even when the run ends in an error — identical
    /// to a step loop that counted per iteration.
    ///
    /// Consecutive instructions on the same page hit the last-page memo,
    /// so straight-line and loop code streams out of the decoded array;
    /// `code_version` is still re-checked every step, so self-modifying
    /// code (even rewriting the very next instruction) stays exact.
    ///
    /// # Errors
    ///
    /// Propagates fetch, decode, and memory errors; `cpu.pc` is left on
    /// the faulting instruction.
    pub fn run(
        &mut self,
        cpu: &mut CpuState,
        mem: &mut AddressSpace,
        budget: u64,
        retired: &mut u64,
    ) -> Result<RunStop, VmError> {
        let mut executed = 0u64;
        let result = loop {
            if executed >= budget {
                break Ok(RunStop::Budget);
            }
            let (inst, size) = match self.fetch(mem, cpu.pc) {
                Ok(decoded) => decoded,
                Err(err) => break Err(err),
            };
            match cpu::exec_decoded(cpu, mem, inst, size) {
                Ok(ExecOutcome::Next | ExecOutcome::Jumped) => executed += 1,
                Ok(ExecOutcome::Syscall) => break Ok(RunStop::Syscall),
                Ok(ExecOutcome::Halt) => break Ok(RunStop::Halt),
                Err(err) => break Err(err),
            }
        };
        *retired += executed;
        result
    }
}

/// Whether the page containing `addr` lies inside a code region. Regions
/// are page-aligned, so checking the page's first byte covers the page.
fn is_code_page(mem: &AddressSpace, addr: u64) -> bool {
    let page_start = addr & !PAGE_MASK;
    mem.regions()
        .iter()
        .any(|region| region.kind == RegionKind::Code && region.contains(page_start))
}

#[cfg(test)]
mod tests {
    use super::*;
    use superpin_isa::{encode, AluOp, Reg};

    fn space_with_code(insts: &[Inst]) -> (AddressSpace, u64) {
        let mut code = Vec::new();
        for &inst in insts {
            encode(inst, &mut code);
        }
        let mut mem = AddressSpace::new(0x0100_0000);
        mem.map_region(0x1000, code.len().max(1) as u64, RegionKind::Code)
            .expect("map code");
        mem.map_region(0x8000, 4096, RegionKind::Data)
            .expect("map data");
        mem.write(0x1000, &code).expect("write code");
        (mem, 0x1000)
    }

    #[test]
    fn cached_fetch_matches_plain_fetch() {
        let (mem, entry) = space_with_code(&[
            Inst::Li {
                rd: Reg::R1,
                imm: 7,
            },
            Inst::AluImm {
                op: AluOp::Add,
                rd: Reg::R1,
                rs1: Reg::R1,
                imm: 1,
            },
            Inst::Halt,
        ]);
        let mut cache = DecodeCache::new();
        let mut pc = entry;
        for _ in 0..3 {
            let plain = cpu::fetch_at(&mem, pc).expect("plain fetch");
            let cached = cache.fetch(&mem, pc).expect("cached fetch");
            assert_eq!(plain, cached);
            // Second fetch comes from the memo.
            assert_eq!(cache.fetch(&mem, pc).expect("memo fetch"), plain);
            pc += plain.1;
        }
        assert_eq!(cache.cached_pages(), 1);
    }

    #[test]
    fn code_write_invalidates_cache() {
        let (mut mem, entry) = space_with_code(&[Inst::Nop, Inst::Halt]);
        let mut cache = DecodeCache::new();
        assert_eq!(cache.fetch(&mem, entry).expect("fetch").0, Inst::Nop);
        // Overwrite the nop with a halt.
        let mut halt = Vec::new();
        encode(Inst::Halt, &mut halt);
        mem.write(entry, &halt).expect("smc write");
        assert_eq!(
            cache.fetch(&mem, entry).expect("fetch after smc").0,
            Inst::Halt,
            "cache must observe self-modified code"
        );
    }

    #[test]
    fn code_unmap_invalidates_cache() {
        let (mut mem, entry) = space_with_code(&[Inst::Nop, Inst::Halt]);
        let mut cache = DecodeCache::new();
        cache.fetch(&mem, entry).expect("fetch");
        assert_eq!(cache.cached_pages(), 1);
        mem.unmap(entry).expect("unmap code");
        assert!(
            cache.fetch(&mem, entry).is_err(),
            "fetch from unmapped ex-code page must fault, not serve stale decode"
        );
    }

    #[test]
    fn data_pages_are_not_cached() {
        let (mut mem, _) = space_with_code(&[Inst::Halt]);
        // Place a decodable word in the data region and execute it.
        let mut nop = Vec::new();
        encode(Inst::Nop, &mut nop);
        mem.write(0x8000, &nop).expect("write data");
        let mut cache = DecodeCache::new();
        assert_eq!(cache.fetch(&mem, 0x8000).expect("fetch").0, Inst::Nop);
        assert_eq!(cache.cached_pages(), 0, "data pages must not be cached");
        // Rewrite the data word (no code_version bump) — the fetch must
        // see the new bytes because data words are never memoized.
        let mut halt = Vec::new();
        encode(Inst::Halt, &mut halt);
        mem.write(0x8000, &halt).expect("rewrite data");
        assert_eq!(cache.fetch(&mem, 0x8000).expect("refetch").0, Inst::Halt);
    }

    #[test]
    fn li_in_last_page_word_is_not_memoized() {
        // Map two pages of code; place a 16-byte li so its opcode word is
        // the last word of page one and its payload the first word of
        // page two.
        let mut mem = AddressSpace::new(0x0100_0000);
        mem.map_region(0x1000, 2 * PAGE_SIZE as u64, RegionKind::Code)
            .expect("map code");
        let li = Inst::Li {
            rd: Reg::R1,
            imm: 0x1234_5678,
        };
        let mut bytes = Vec::new();
        encode(li, &mut bytes);
        let addr = 0x1000 + PAGE_SIZE as u64 - 8;
        mem.write(addr, &bytes).expect("write li");
        let mut cache = DecodeCache::new();
        assert_eq!(cache.fetch(&mem, addr).expect("fetch"), (li, 16));
        // Fetch again: still correct (served by plain decode each time).
        assert_eq!(cache.fetch(&mem, addr).expect("refetch"), (li, 16));
    }

    #[test]
    fn run_retires_and_stops_like_step_loop() {
        let (mut mem, entry) = space_with_code(&[
            Inst::Li {
                rd: Reg::R1,
                imm: 3,
            },
            // loop: subi r1, r1, 1; bne r1, r0, loop
            Inst::AluImm {
                op: AluOp::Sub,
                rd: Reg::R1,
                rs1: Reg::R1,
                imm: 1,
            },
            Inst::Branch {
                kind: superpin_isa::BranchKind::Ne,
                rs1: Reg::R1,
                rs2: Reg::R0,
                target: 0x1000 + 16,
            },
            Inst::Halt,
        ]);
        let mut cache = DecodeCache::new();
        let mut cpu = CpuState::at(entry);
        let mut retired = 0u64;
        // li + 3 × (subi, bne) = 7 instructions, then halt.
        let stop = cache
            .run(&mut cpu, &mut mem, u64::MAX, &mut retired)
            .expect("run");
        assert_eq!((retired, stop), (7, RunStop::Halt));
        // Budget stop mid-loop.
        let mut cpu = CpuState::at(entry);
        let mut cache = DecodeCache::new();
        let mut retired = 0u64;
        let stop = cache.run(&mut cpu, &mut mem, 4, &mut retired).expect("run");
        assert_eq!((retired, stop), (4, RunStop::Budget));
    }

    #[test]
    fn run_observes_store_to_next_instruction() {
        // A store rewrites the instruction immediately after itself:
        // st writes a halt over the nop at entry+24 — the run must stop
        // there instead of executing the stale nop.
        let mut halt_bytes = Vec::new();
        encode(Inst::Halt, &mut halt_bytes);
        let halt_word = u64::from_le_bytes(halt_bytes[..8].try_into().unwrap());
        let (mut mem, entry) = space_with_code(&[
            Inst::Li {
                rd: Reg::R1,
                imm: halt_word as i64,
            },
            Inst::St {
                rs: Reg::R1,
                base: Reg::R2,
                offset: 0,
                width: superpin_isa::MemWidth::D,
            },
            Inst::Nop,
            Inst::Nop,
        ]);
        let mut cache = DecodeCache::new();
        let mut cpu = CpuState::at(entry);
        cpu.regs.set(Reg::R2, entry + 24);
        // Warm the cache over the whole stream first.
        for pc in [entry, entry + 16, entry + 24, entry + 32] {
            cache.fetch(&mem, pc).expect("warm");
        }
        let mut retired = 0u64;
        let stop = cache
            .run(&mut cpu, &mut mem, u64::MAX, &mut retired)
            .expect("run");
        // li, st, then the freshly-written halt parks: 2 retired.
        assert_eq!((retired, stop), (2, RunStop::Halt));
        assert_eq!(cpu.pc, entry + 24);
    }
}

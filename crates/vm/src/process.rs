//! Guest processes: CPU state + address space + kernel state, with `fork`.

use crate::cpu::{self, CpuState, ExecOutcome};
use crate::decode::{DecodeCache, RunStop};
use crate::error::VmError;
use crate::kernel::{self, KernelState, SyscallRecord};
use crate::mem::{AddressSpace, RegionKind};
use std::sync::Arc;
use superpin_fault::{FailpointRegistry, Site};
use superpin_isa::{Program, Reg, HEAP_BASE, STACK_TOP};

/// Default stack reservation (1 MiB), mapped just below [`STACK_TOP`].
pub const STACK_LEN: u64 = 1 << 20;

/// Why [`Process::run`] / [`Process::run_until_syscall`] returned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunExit {
    /// The instruction budget was used up; the process is still runnable.
    BudgetExhausted,
    /// Parked at a `syscall` instruction awaiting service
    /// (only from [`Process::run_until_syscall`]).
    SyscallEntry,
    /// The process called `exit` with this code.
    Exited(i64),
    /// The process executed `halt` (only injected runtime stubs do this).
    Halted,
}

/// A guest process.
///
/// `fork` produces a copy-on-write duplicate, mirroring how SuperPin forks
/// instrumentation slices from the master application.
#[derive(Clone, Debug)]
pub struct Process {
    pid: u64,
    /// Architectural CPU state.
    pub cpu: CpuState,
    /// The process's virtual memory.
    pub mem: AddressSpace,
    /// Per-process kernel state (fds, RNG).
    pub kernel: KernelState,
    exited: Option<i64>,
    inst_count: u64,
    /// Armed chaos failpoint registry, if any ([`Site::VmForkCow`] fires
    /// in [`try_fork`](Process::try_fork)). `None` — the default — is
    /// zero-cost: no registry is consulted anywhere on the hot path.
    fault: Option<Arc<FailpointRegistry>>,
    /// Pre-decoded code pages for the native run loop. Purely a host-side
    /// accelerator: keyed on `mem.code_version()`, so guest-visible
    /// behaviour (including self-modifying code) is identical to
    /// re-decoding every step. Forks inherit the parent's decoded pages,
    /// which stay valid because the fork shares the same code bytes.
    decode: DecodeCache,
}

impl Process {
    /// Loads a program image into a fresh address space: code and data
    /// sections copied in, a 1 MiB stack mapped below [`STACK_TOP`], `pc`
    /// at the entry point, and `sp` just under the stack top.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::Mem`] if the image's sections overlap.
    pub fn load(pid: u64, program: &Program) -> Result<Process, VmError> {
        let mut mem = AddressSpace::new(HEAP_BASE);
        mem.map_region(
            program.code_base(),
            program.code_len().max(1),
            RegionKind::Code,
        )?;
        mem.write(program.code_base(), program.code())?;
        let data_len = program.data().len() as u64 + program.bss_len();
        if data_len > 0 {
            mem.map_region(program.data_base(), data_len, RegionKind::Data)?;
            mem.write(program.data_base(), program.data())?;
        }
        let stack_base = STACK_TOP - STACK_LEN;
        mem.map_region(stack_base, STACK_LEN, RegionKind::Stack)?;

        let mut cpu = CpuState::at(program.entry());
        cpu.regs.set(Reg::SP, STACK_TOP - 64);
        cpu.regs.set(Reg::FP, STACK_TOP - 64);

        Ok(Process {
            pid,
            cpu,
            mem,
            kernel: KernelState::new(pid),
            exited: None,
            inst_count: 0,
            fault: None,
            decode: DecodeCache::new(),
        })
    }

    /// Process id.
    pub fn pid(&self) -> u64 {
        self.pid
    }

    /// Exit code, if the process has exited.
    pub fn exited(&self) -> Option<i64> {
        self.exited
    }

    /// Dynamic instructions executed so far (syscall instructions count
    /// once, when serviced).
    pub fn inst_count(&self) -> u64 {
        self.inst_count
    }

    /// Everything written to stdout/stderr.
    pub fn output(&self) -> &[u8] {
        self.kernel.fds.stdout()
    }

    /// Copy-on-write duplicate with a new pid. The child shares all page
    /// frames until one side writes. Fault counters and the instruction
    /// count start at zero in the child.
    pub fn fork(&self, child_pid: u64) -> Process {
        let mut child = self.clone();
        child.pid = child_pid;
        child.kernel.pid = child_pid;
        child.mem = self.mem.fork();
        child.inst_count = 0;
        child
    }

    /// Arms (or with `None` disarms) chaos fault injection on this
    /// process. Only [`try_fork`](Process::try_fork) consults the
    /// registry; the plain [`fork`](Process::fork) stays infallible.
    pub fn set_fault_registry(&mut self, registry: Option<Arc<FailpointRegistry>>) {
        self.fault = registry;
    }

    /// The armed fault registry, if any.
    pub fn fault_registry(&self) -> Option<&Arc<FailpointRegistry>> {
        self.fault.as_ref()
    }

    /// The native run loop's decode cache (diagnostics/tests).
    pub fn decode_cache(&self) -> &DecodeCache {
        &self.decode
    }

    /// Fetches and decodes the instruction at `pc` through the decode
    /// cache — equivalent to [`cpu::fetch_at`] on this process's memory,
    /// just memoized. A DBI engine's trace discovery uses this so a
    /// forked slice re-decodes nothing its master already decoded.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::Mem`] for unmapped fetches or
    /// [`VmError::Decode`] for invalid encodings.
    pub fn fetch_decoded(&mut self, pc: u64) -> Result<(superpin_isa::Inst, u64), VmError> {
        self.decode.fetch(&self.mem, pc)
    }

    /// Fallible fork: like [`fork`](Process::fork), but consults the
    /// [`Site::VmForkCow`] and [`Site::VmMemAlloc`] failpoints first when
    /// a registry is armed.
    /// `chaos_key` must be derived from deterministic simulation state
    /// (e.g. child pid and retry attempt) so the schedule replays
    /// identically for a given seed.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::FaultInjected`] when the failpoint fires.
    pub fn try_fork(&self, child_pid: u64, chaos_key: u64) -> Result<Process, VmError> {
        if let Some(registry) = &self.fault {
            if registry.fire(Site::VmForkCow, chaos_key) {
                return Err(VmError::FaultInjected {
                    site: Site::VmForkCow.name(),
                });
            }
            // Transient kernel allocation failure while building the
            // child (page tables, kernel structures): an ENOMEM the
            // caller absorbs through the same retry ladder as a failed
            // COW fork.
            if registry.fire(Site::VmMemAlloc, chaos_key) {
                return Err(VmError::FaultInjected {
                    site: Site::VmMemAlloc.name(),
                });
            }
        }
        Ok(self.fork(child_pid))
    }

    /// Runs up to `max_insts` instructions, servicing syscalls inline
    /// (plain uninstrumented execution).
    ///
    /// # Errors
    ///
    /// Propagates fetch/decode/memory/kernel errors.
    pub fn run(&mut self, max_insts: u64, now_ns: u64) -> Result<RunExit, VmError> {
        let mut used = 0u64;
        loop {
            let start = self.inst_count;
            match self.run_until_syscall(max_insts - used)? {
                RunExit::SyscallEntry => {
                    used += self.inst_count - start;
                    let record = self.do_syscall(now_ns)?;
                    used += 1;
                    if let Some(code) = record.exited {
                        return Ok(RunExit::Exited(code));
                    }
                    if used >= max_insts {
                        return Ok(RunExit::BudgetExhausted);
                    }
                }
                other => return Ok(other),
            }
        }
    }

    /// Runs up to `max_insts` instructions, stopping *at* (before) any
    /// `syscall` instruction so a supervisor can service or replay it —
    /// the ptrace-style syscall-entry stop.
    ///
    /// # Errors
    ///
    /// Propagates fetch/decode/memory errors and
    /// [`VmError::ProcessExited`] if called after exit.
    pub fn run_until_syscall(&mut self, max_insts: u64) -> Result<RunExit, VmError> {
        if self.exited.is_some() {
            return Err(VmError::ProcessExited);
        }
        // Stream whole decoded runs out of the per-page decode cache
        // instead of fetch+decode per outer-loop iteration. Semantically
        // identical to a `cpu::step` loop (the cache re-validates
        // `code_version` on every fetch), just without redundant decodes.
        let stop = self.decode.run(
            &mut self.cpu,
            &mut self.mem,
            max_insts,
            &mut self.inst_count,
        )?;
        match stop {
            RunStop::Syscall => Ok(RunExit::SyscallEntry),
            RunStop::Halt => Ok(RunExit::Halted),
            RunStop::Budget => Ok(RunExit::BudgetExhausted),
        }
    }

    /// Executes one already-decoded instruction, updating the dynamic
    /// instruction count. This is the execution primitive used by the DBI
    /// engine, which decodes instructions out of its code cache rather
    /// than re-fetching them from guest memory.
    ///
    /// # Errors
    ///
    /// Propagates memory errors; [`VmError::ProcessExited`] after exit.
    pub fn exec_decoded(
        &mut self,
        inst: superpin_isa::Inst,
        size: u64,
    ) -> Result<ExecOutcome, VmError> {
        if self.exited.is_some() {
            return Err(VmError::ProcessExited);
        }
        let outcome = cpu::exec_decoded(&mut self.cpu, &mut self.mem, inst, size)?;
        if matches!(outcome, ExecOutcome::Next | ExecOutcome::Jumped) {
            self.inst_count += 1;
        }
        Ok(outcome)
    }

    /// Services the syscall the process is parked at, returning its full
    /// effect record. Counts the syscall instruction.
    ///
    /// # Errors
    ///
    /// Propagates kernel errors; [`VmError::ProcessExited`] after exit.
    pub fn do_syscall(&mut self, now_ns: u64) -> Result<SyscallRecord, VmError> {
        if self.exited.is_some() {
            return Err(VmError::ProcessExited);
        }
        let record =
            kernel::execute_syscall(&mut self.cpu, &mut self.mem, &mut self.kernel, now_ns)?;
        self.inst_count += 1;
        if let Some(code) = record.exited {
            self.exited = Some(code);
        }
        Ok(record)
    }

    /// Plays back a previously recorded syscall instead of executing it
    /// (the slice-side half of record-and-playback, paper §4.2). Counts
    /// the syscall instruction. Marks the process exited if the record
    /// was an `exit`.
    ///
    /// # Errors
    ///
    /// Propagates memory errors from re-applying recorded writes.
    pub fn playback_syscall(&mut self, record: &SyscallRecord) -> Result<(), VmError> {
        if self.exited.is_some() {
            return Err(VmError::ProcessExited);
        }
        kernel::apply_record(&mut self.cpu, &mut self.mem, record)?;
        self.inst_count += 1;
        if let Some(code) = record.exited {
            self.exited = Some(code);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use superpin_isa::asm::assemble;

    fn load(src: &str) -> Process {
        Process::load(1, &assemble(src).expect("assemble")).expect("load")
    }

    #[test]
    fn runs_to_exit() {
        let mut p = load("main:\n li r1, 1\n exit 7\n");
        let exit = p.run(u64::MAX, 0).expect("run");
        assert_eq!(exit, RunExit::Exited(7));
        assert_eq!(p.exited(), Some(7));
        // li + (li, li, syscall) = 4 dynamic instructions.
        assert_eq!(p.inst_count(), 4);
    }

    #[test]
    fn budget_exhaustion_pauses_and_resumes() {
        let mut p =
            load("main:\n li r1, 100\nloop:\n subi r1, r1, 1\n bne r1, r0, loop\n exit 0\n");
        assert_eq!(p.run(10, 0).expect("run"), RunExit::BudgetExhausted);
        assert_eq!(p.inst_count(), 10);
        assert_eq!(p.run(u64::MAX, 0).expect("run"), RunExit::Exited(0));
        // 1 li + 100*(subi+bne) + 3 exit insts.
        assert_eq!(p.inst_count(), 204);
    }

    #[test]
    fn run_until_syscall_parks_at_entry() {
        let mut p = load("main:\n li r0, 9\n syscall\n exit 0\n");
        assert_eq!(
            p.run_until_syscall(u64::MAX).expect("run"),
            RunExit::SyscallEntry
        );
        let before = p.cpu.pc;
        let record = p.do_syscall(0).expect("syscall");
        assert_eq!(record.ret, 1, "getpid returns pid");
        assert_eq!(p.cpu.pc, before + 8);
    }

    #[test]
    fn run_after_exit_is_an_error() {
        let mut p = load("main:\n exit 0\n");
        p.run(u64::MAX, 0).expect("run");
        assert!(matches!(
            p.run_until_syscall(1),
            Err(VmError::ProcessExited)
        ));
    }

    #[test]
    fn fork_isolates_memory() {
        // brk(HEAP_BASE + 0x100) so the heap exists, then exit.
        let mut parent = load("main:\n li r0, 5\n li r1, 0x1000100\n syscall\n exit 0\n");
        parent.run_until_syscall(u64::MAX).expect("run");
        parent.do_syscall(0).expect("brk");
        parent
            .mem
            .write_u64(superpin_isa::HEAP_BASE, 11)
            .expect("write heap");

        let mut child = parent.fork(2);
        assert_eq!(child.pid(), 2);
        assert_eq!(
            child.mem.read_u64(superpin_isa::HEAP_BASE).expect("read"),
            11
        );
        child
            .mem
            .write_u64(superpin_isa::HEAP_BASE, 22)
            .expect("write");
        assert_eq!(
            parent.mem.read_u64(superpin_isa::HEAP_BASE).expect("read"),
            11
        );
        assert_eq!(child.mem.stats().cow_copies, 1);
    }

    #[test]
    fn fork_preserves_cpu_and_fds() {
        let mut parent = load("main:\n li r5, 77\n exit 0\n");
        parent.run_until_syscall(2).ok();
        parent.kernel.fds.set_stdin(b"in".to_vec());
        let child = parent.fork(9);
        assert_eq!(child.cpu, parent.cpu);
        assert_eq!(child.kernel.pid, 9);
        assert_eq!(child.inst_count(), 0);
    }

    #[test]
    fn stdout_capture() {
        let mut p = load(
            r#"
            .data
            msg: .byte 104, 105
            .text
            main:
                li r0, 1
                li r1, 1
                la r2, msg
                li r3, 2
                syscall
                exit 0
            "#,
        );
        // ABI: r0=number(write=1), r1=fd, r2=buf, r3=len.
        p.run(u64::MAX, 0).expect("run");
        assert_eq!(p.output(), b"hi");
    }

    #[test]
    fn halt_surfaces_as_halted() {
        let mut p = load("main:\n halt\n");
        assert_eq!(p.run(u64::MAX, 0).expect("run"), RunExit::Halted);
    }
}

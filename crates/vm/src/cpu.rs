//! The interpreter core: architectural state and single-step execution.

use crate::error::VmError;
use crate::mem::AddressSpace;
use superpin_isa::{decode, DecodeError, Inst, MemWidth, Opcode, Reg, NUM_REGS};

/// The general-purpose register file.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct RegFile([u64; NUM_REGS]);

impl RegFile {
    /// A zero-filled register file.
    pub fn new() -> RegFile {
        RegFile::default()
    }

    /// Reads a register.
    pub fn get(&self, reg: Reg) -> u64 {
        self.0[reg.index()]
    }

    /// Writes a register.
    pub fn set(&mut self, reg: Reg, value: u64) {
        self.0[reg.index()] = value;
    }

    /// The raw register array, `r0` first — the "architectural register
    /// state" captured by SuperPin signatures (paper §4.4).
    pub fn snapshot(&self) -> [u64; NUM_REGS] {
        self.0
    }
}

impl From<[u64; NUM_REGS]> for RegFile {
    fn from(regs: [u64; NUM_REGS]) -> RegFile {
        RegFile(regs)
    }
}

/// Architectural CPU state: register file plus program counter.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CpuState {
    /// General-purpose registers.
    pub regs: RegFile,
    /// Program counter.
    pub pc: u64,
}

impl CpuState {
    /// Creates CPU state with the program counter at `pc`.
    pub fn at(pc: u64) -> CpuState {
        CpuState {
            regs: RegFile::new(),
            pc,
        }
    }
}

/// Outcome of executing a single already-decoded instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecOutcome {
    /// Fell through; `pc` has advanced past the instruction.
    Next,
    /// Control transferred; `pc` holds the new target.
    Jumped,
    /// A `syscall` was reached; `pc` still points *at* the syscall so a
    /// supervisor can service it (ptrace-style syscall-entry stop).
    Syscall,
    /// A `halt` was reached; `pc` still points at it.
    Halt,
}

/// Fetches and decodes the instruction at `cpu.pc` from guest memory.
///
/// # Errors
///
/// Returns [`VmError::Mem`] for unmapped fetches or [`VmError::Decode`]
/// for invalid encodings.
pub fn fetch(cpu: &CpuState, mem: &AddressSpace) -> Result<(Inst, u64), VmError> {
    fetch_at(mem, cpu.pc)
}

/// Fetches and decodes the instruction at an arbitrary address.
///
/// This is [`fetch`] without the CPU: the decode cache uses it to
/// pre-decode whole pages independent of the current program counter.
///
/// # Errors
///
/// Returns [`VmError::Mem`] for unmapped fetches or [`VmError::Decode`]
/// for invalid encodings.
pub fn fetch_at(mem: &AddressSpace, pc: u64) -> Result<(Inst, u64), VmError> {
    let mut buf = [0u8; 16];
    mem.read(pc, &mut buf[..8]).map_err(VmError::from)?;
    match decode(&buf[..8]) {
        Ok((inst, len)) => Ok((inst, len as u64)),
        Err(DecodeError::Truncated) => {
            // Two-word instruction (`li`): fetch the payload word.
            mem.read(pc + 8, &mut buf[8..]).map_err(VmError::from)?;
            let (inst, len) = decode(&buf).map_err(|source| VmError::Decode { pc, source })?;
            Ok((inst, len as u64))
        }
        Err(source) => Err(VmError::Decode { pc, source }),
    }
}

/// Handler signature for one opcode in the dispatch table.
type ExecFn = fn(&mut CpuState, &mut AddressSpace, Inst, u64) -> Result<ExecOutcome, VmError>;

/// Direct-threaded dispatch table, indexed by [`Opcode`] byte. Each entry
/// is a monomorphic handler for exactly one instruction form, so the hot
/// loop does one indexed indirect call instead of walking a 13-arm match.
const DISPATCH: [ExecFn; Opcode::COUNT] = [
    exec_nop,     // 0x00 Nop
    exec_alu,     // 0x01 Alu
    exec_alu_imm, // 0x02 AluImm
    exec_li,      // 0x03 Li
    exec_mov,     // 0x04 Mov
    exec_ld,      // 0x05 Ld
    exec_st,      // 0x06 St
    exec_jmp,     // 0x07 Jmp
    exec_jal,     // 0x08 Jal
    exec_jalr,    // 0x09 Jalr
    exec_branch,  // 0x0a Branch
    exec_stop,    // 0x0b Syscall
    exec_stop,    // 0x0c Halt
];

fn exec_nop(
    cpu: &mut CpuState,
    _mem: &mut AddressSpace,
    _inst: Inst,
    size: u64,
) -> Result<ExecOutcome, VmError> {
    cpu.pc += size;
    Ok(ExecOutcome::Next)
}

fn exec_alu(
    cpu: &mut CpuState,
    _mem: &mut AddressSpace,
    inst: Inst,
    size: u64,
) -> Result<ExecOutcome, VmError> {
    let Inst::Alu { op, rd, rs1, rs2 } = inst else {
        unreachable!("dispatch table routed a non-alu instruction here")
    };
    let value = op.apply(cpu.regs.get(rs1), cpu.regs.get(rs2));
    cpu.regs.set(rd, value);
    cpu.pc += size;
    Ok(ExecOutcome::Next)
}

fn exec_alu_imm(
    cpu: &mut CpuState,
    _mem: &mut AddressSpace,
    inst: Inst,
    size: u64,
) -> Result<ExecOutcome, VmError> {
    let Inst::AluImm { op, rd, rs1, imm } = inst else {
        unreachable!("dispatch table routed a non-alu-imm instruction here")
    };
    let value = op.apply(cpu.regs.get(rs1), imm as i64 as u64);
    cpu.regs.set(rd, value);
    cpu.pc += size;
    Ok(ExecOutcome::Next)
}

fn exec_li(
    cpu: &mut CpuState,
    _mem: &mut AddressSpace,
    inst: Inst,
    size: u64,
) -> Result<ExecOutcome, VmError> {
    let Inst::Li { rd, imm } = inst else {
        unreachable!("dispatch table routed a non-li instruction here")
    };
    cpu.regs.set(rd, imm as u64);
    cpu.pc += size;
    Ok(ExecOutcome::Next)
}

fn exec_mov(
    cpu: &mut CpuState,
    _mem: &mut AddressSpace,
    inst: Inst,
    size: u64,
) -> Result<ExecOutcome, VmError> {
    let Inst::Mov { rd, rs } = inst else {
        unreachable!("dispatch table routed a non-mov instruction here")
    };
    let value = cpu.regs.get(rs);
    cpu.regs.set(rd, value);
    cpu.pc += size;
    Ok(ExecOutcome::Next)
}

fn exec_ld(
    cpu: &mut CpuState,
    mem: &mut AddressSpace,
    inst: Inst,
    size: u64,
) -> Result<ExecOutcome, VmError> {
    let Inst::Ld {
        rd,
        base,
        offset,
        width,
    } = inst
    else {
        unreachable!("dispatch table routed a non-load instruction here")
    };
    let addr = cpu.regs.get(base).wrapping_add(offset as i64 as u64);
    let value = load(mem, addr, width)?;
    cpu.regs.set(rd, value);
    cpu.pc += size;
    Ok(ExecOutcome::Next)
}

fn exec_st(
    cpu: &mut CpuState,
    mem: &mut AddressSpace,
    inst: Inst,
    size: u64,
) -> Result<ExecOutcome, VmError> {
    let Inst::St {
        rs,
        base,
        offset,
        width,
    } = inst
    else {
        unreachable!("dispatch table routed a non-store instruction here")
    };
    let addr = cpu.regs.get(base).wrapping_add(offset as i64 as u64);
    store(mem, addr, cpu.regs.get(rs), width)?;
    cpu.pc += size;
    Ok(ExecOutcome::Next)
}

fn exec_jmp(
    cpu: &mut CpuState,
    _mem: &mut AddressSpace,
    inst: Inst,
    _size: u64,
) -> Result<ExecOutcome, VmError> {
    let Inst::Jmp { target } = inst else {
        unreachable!("dispatch table routed a non-jmp instruction here")
    };
    cpu.pc = target;
    Ok(ExecOutcome::Jumped)
}

fn exec_jal(
    cpu: &mut CpuState,
    _mem: &mut AddressSpace,
    inst: Inst,
    size: u64,
) -> Result<ExecOutcome, VmError> {
    let Inst::Jal { rd, target } = inst else {
        unreachable!("dispatch table routed a non-jal instruction here")
    };
    cpu.regs.set(rd, cpu.pc + size);
    cpu.pc = target;
    Ok(ExecOutcome::Jumped)
}

fn exec_jalr(
    cpu: &mut CpuState,
    _mem: &mut AddressSpace,
    inst: Inst,
    size: u64,
) -> Result<ExecOutcome, VmError> {
    let Inst::Jalr { rd, rs, offset } = inst else {
        unreachable!("dispatch table routed a non-jalr instruction here")
    };
    // Read the target before linking so `jalr ra, 0(ra)` (the
    // conventional `ret`) works.
    let target = cpu.regs.get(rs).wrapping_add(offset as i64 as u64);
    cpu.regs.set(rd, cpu.pc + size);
    cpu.pc = target;
    Ok(ExecOutcome::Jumped)
}

fn exec_branch(
    cpu: &mut CpuState,
    _mem: &mut AddressSpace,
    inst: Inst,
    size: u64,
) -> Result<ExecOutcome, VmError> {
    let Inst::Branch {
        kind,
        rs1,
        rs2,
        target,
    } = inst
    else {
        unreachable!("dispatch table routed a non-branch instruction here")
    };
    if kind.test(cpu.regs.get(rs1), cpu.regs.get(rs2)) {
        cpu.pc = target;
        Ok(ExecOutcome::Jumped)
    } else {
        cpu.pc += size;
        Ok(ExecOutcome::Next)
    }
}

fn exec_stop(
    _cpu: &mut CpuState,
    _mem: &mut AddressSpace,
    inst: Inst,
    _size: u64,
) -> Result<ExecOutcome, VmError> {
    // Syscall and Halt both park: `pc` stays on the instruction so a
    // supervisor can service it (ptrace-style stop).
    match inst {
        Inst::Syscall => Ok(ExecOutcome::Syscall),
        Inst::Halt => Ok(ExecOutcome::Halt),
        _ => unreachable!("dispatch table routed a non-stop instruction here"),
    }
}

/// Executes one already-decoded instruction against the CPU and memory.
///
/// `size` must be the instruction's encoded size (used to advance `pc`).
/// Dispatches through the direct-threaded [`DISPATCH`] table; the
/// match-based reference implementation is kept as
/// [`exec_decoded_match`] for differential tests and microbenchmarks.
///
/// # Errors
///
/// Returns [`VmError::Mem`] for faulting loads/stores.
#[inline]
pub fn exec_decoded(
    cpu: &mut CpuState,
    mem: &mut AddressSpace,
    inst: Inst,
    size: u64,
) -> Result<ExecOutcome, VmError> {
    DISPATCH[inst.opcode() as usize](cpu, mem, inst, size)
}

/// Match-based reference implementation of [`exec_decoded`].
///
/// Kept so the dispatch-table hot path has a same-semantics baseline to
/// diff against (tests) and race against (`benches/interp.rs`).
///
/// # Errors
///
/// Returns [`VmError::Mem`] for faulting loads/stores.
pub fn exec_decoded_match(
    cpu: &mut CpuState,
    mem: &mut AddressSpace,
    inst: Inst,
    size: u64,
) -> Result<ExecOutcome, VmError> {
    match inst {
        Inst::Nop => {
            cpu.pc += size;
            Ok(ExecOutcome::Next)
        }
        Inst::Alu { op, rd, rs1, rs2 } => {
            let value = op.apply(cpu.regs.get(rs1), cpu.regs.get(rs2));
            cpu.regs.set(rd, value);
            cpu.pc += size;
            Ok(ExecOutcome::Next)
        }
        Inst::AluImm { op, rd, rs1, imm } => {
            let value = op.apply(cpu.regs.get(rs1), imm as i64 as u64);
            cpu.regs.set(rd, value);
            cpu.pc += size;
            Ok(ExecOutcome::Next)
        }
        Inst::Li { rd, imm } => {
            cpu.regs.set(rd, imm as u64);
            cpu.pc += size;
            Ok(ExecOutcome::Next)
        }
        Inst::Mov { rd, rs } => {
            let value = cpu.regs.get(rs);
            cpu.regs.set(rd, value);
            cpu.pc += size;
            Ok(ExecOutcome::Next)
        }
        Inst::Ld {
            rd,
            base,
            offset,
            width,
        } => {
            let addr = cpu.regs.get(base).wrapping_add(offset as i64 as u64);
            let value = load(mem, addr, width)?;
            cpu.regs.set(rd, value);
            cpu.pc += size;
            Ok(ExecOutcome::Next)
        }
        Inst::St {
            rs,
            base,
            offset,
            width,
        } => {
            let addr = cpu.regs.get(base).wrapping_add(offset as i64 as u64);
            store(mem, addr, cpu.regs.get(rs), width)?;
            cpu.pc += size;
            Ok(ExecOutcome::Next)
        }
        Inst::Jmp { target } => {
            cpu.pc = target;
            Ok(ExecOutcome::Jumped)
        }
        Inst::Jal { rd, target } => {
            cpu.regs.set(rd, cpu.pc + size);
            cpu.pc = target;
            Ok(ExecOutcome::Jumped)
        }
        Inst::Jalr { rd, rs, offset } => {
            // Read the target before linking so `jalr ra, 0(ra)` (the
            // conventional `ret`) works.
            let target = cpu.regs.get(rs).wrapping_add(offset as i64 as u64);
            cpu.regs.set(rd, cpu.pc + size);
            cpu.pc = target;
            Ok(ExecOutcome::Jumped)
        }
        Inst::Branch {
            kind,
            rs1,
            rs2,
            target,
        } => {
            if kind.test(cpu.regs.get(rs1), cpu.regs.get(rs2)) {
                cpu.pc = target;
                Ok(ExecOutcome::Jumped)
            } else {
                cpu.pc += size;
                Ok(ExecOutcome::Next)
            }
        }
        Inst::Syscall => Ok(ExecOutcome::Syscall),
        Inst::Halt => Ok(ExecOutcome::Halt),
    }
}

/// Fetches, decodes, and executes one instruction.
///
/// # Errors
///
/// Propagates fetch, decode, and memory errors.
pub fn step(cpu: &mut CpuState, mem: &mut AddressSpace) -> Result<ExecOutcome, VmError> {
    let (inst, size) = fetch(cpu, mem)?;
    exec_decoded(cpu, mem, inst, size)
}

fn load(mem: &AddressSpace, addr: u64, width: MemWidth) -> Result<u64, VmError> {
    let mut buf = [0u8; 8];
    let n = width.bytes();
    mem.read(addr, &mut buf[..n]).map_err(VmError::from)?;
    Ok(u64::from_le_bytes(buf))
}

fn store(mem: &mut AddressSpace, addr: u64, value: u64, width: MemWidth) -> Result<(), VmError> {
    let bytes = value.to_le_bytes();
    mem.write(addr, &bytes[..width.bytes()])
        .map_err(VmError::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::RegionKind;
    use superpin_isa::{encode, AluOp};

    fn space_with_code(insts: &[Inst]) -> (AddressSpace, u64) {
        let mut code = Vec::new();
        for &inst in insts {
            encode(inst, &mut code);
        }
        let mut mem = AddressSpace::new(0x0100_0000);
        mem.map_region(0x1000, code.len().max(1) as u64, RegionKind::Code)
            .expect("map code");
        mem.map_region(0x8000, 4096, RegionKind::Data)
            .expect("map data");
        mem.write(0x1000, &code).expect("write code");
        (mem, 0x1000)
    }

    #[test]
    fn alu_and_li_execute() {
        let (mut mem, entry) = space_with_code(&[
            Inst::Li {
                rd: Reg::R1,
                imm: 40,
            },
            Inst::AluImm {
                op: AluOp::Add,
                rd: Reg::R1,
                rs1: Reg::R1,
                imm: 2,
            },
        ]);
        let mut cpu = CpuState::at(entry);
        assert_eq!(step(&mut cpu, &mut mem).expect("step"), ExecOutcome::Next);
        assert_eq!(cpu.pc, entry + 16);
        assert_eq!(step(&mut cpu, &mut mem).expect("step"), ExecOutcome::Next);
        assert_eq!(cpu.regs.get(Reg::R1), 42);
    }

    #[test]
    fn loads_and_stores_round_trip() {
        let (mut mem, entry) = space_with_code(&[
            Inst::Li {
                rd: Reg::R2,
                imm: 0x8000,
            },
            Inst::Li {
                rd: Reg::R3,
                imm: 0x1_0000,
            },
            Inst::St {
                rs: Reg::R3,
                base: Reg::R2,
                offset: 8,
                width: MemWidth::D,
            },
            Inst::Ld {
                rd: Reg::R4,
                base: Reg::R2,
                offset: 8,
                width: MemWidth::B,
            },
        ]);
        let mut cpu = CpuState::at(entry);
        for _ in 0..4 {
            step(&mut cpu, &mut mem).expect("step");
        }
        assert_eq!(mem.read_u64(0x8008).expect("read"), 0x1_0000);
        // Byte load of 0x10000's low byte is zero.
        assert_eq!(cpu.regs.get(Reg::R4), 0);
    }

    #[test]
    fn sub_word_store_truncates() {
        let (mut mem, entry) = space_with_code(&[
            Inst::Li {
                rd: Reg::R2,
                imm: 0x8000,
            },
            Inst::Li {
                rd: Reg::R3,
                imm: 0x1234_5678_9abc_def0,
            },
            Inst::St {
                rs: Reg::R3,
                base: Reg::R2,
                offset: 0,
                width: MemWidth::H,
            },
        ]);
        let mut cpu = CpuState::at(entry);
        for _ in 0..3 {
            step(&mut cpu, &mut mem).expect("step");
        }
        assert_eq!(mem.read_u64(0x8000).expect("read"), 0xdef0);
    }

    #[test]
    fn branch_taken_and_not_taken() {
        let target = 0x1000 + 32;
        let (mut mem, entry) = space_with_code(&[
            Inst::Branch {
                kind: superpin_isa::BranchKind::Eq,
                rs1: Reg::R1,
                rs2: Reg::R2,
                target,
            },
            Inst::Nop,
            Inst::Nop,
            Inst::Nop,
        ]);
        // r1 == r2 == 0: taken.
        let mut cpu = CpuState::at(entry);
        assert_eq!(step(&mut cpu, &mut mem).expect("step"), ExecOutcome::Jumped);
        assert_eq!(cpu.pc, target);
        // Not taken.
        let mut cpu = CpuState::at(entry);
        cpu.regs.set(Reg::R1, 1);
        assert_eq!(step(&mut cpu, &mut mem).expect("step"), ExecOutcome::Next);
        assert_eq!(cpu.pc, entry + 8);
    }

    #[test]
    fn jal_links_and_jalr_returns() {
        let (mut mem, entry) = space_with_code(&[
            Inst::Jal {
                rd: Reg::RA,
                target: 0x1000 + 16,
            },
            Inst::Nop,
            Inst::Jalr {
                rd: Reg::RA,
                rs: Reg::RA,
                offset: 0,
            },
        ]);
        let mut cpu = CpuState::at(entry);
        step(&mut cpu, &mut mem).expect("jal");
        assert_eq!(cpu.pc, entry + 16);
        assert_eq!(cpu.regs.get(Reg::RA), entry + 8);
        step(&mut cpu, &mut mem).expect("jalr");
        assert_eq!(cpu.pc, entry + 8, "ret through ra");
    }

    #[test]
    fn syscall_and_halt_stop_without_advancing() {
        let (mut mem, entry) = space_with_code(&[Inst::Syscall, Inst::Halt]);
        let mut cpu = CpuState::at(entry);
        assert_eq!(
            step(&mut cpu, &mut mem).expect("step"),
            ExecOutcome::Syscall
        );
        assert_eq!(cpu.pc, entry, "pc parked at syscall for the supervisor");
        cpu.pc = entry + 8;
        assert_eq!(step(&mut cpu, &mut mem).expect("step"), ExecOutcome::Halt);
        assert_eq!(cpu.pc, entry + 8);
    }

    #[test]
    fn fetch_fault_on_unmapped_pc() {
        let (mut mem, _) = space_with_code(&[Inst::Nop]);
        let mut cpu = CpuState::at(0xdead_0000);
        assert!(matches!(step(&mut cpu, &mut mem), Err(VmError::Mem(_))));
    }

    #[test]
    fn load_fault_reports_address() {
        let (mut mem, entry) = space_with_code(&[Inst::Ld {
            rd: Reg::R1,
            base: Reg::R0,
            offset: 0,
            width: MemWidth::D,
        }]);
        let mut cpu = CpuState::at(entry);
        let err = step(&mut cpu, &mut mem).unwrap_err();
        assert!(matches!(
            err,
            VmError::Mem(crate::mem::MemError::Unmapped(0))
        ));
    }
}

//! Paged virtual memory with copy-on-write sharing.
//!
//! An [`AddressSpace`] maps page-aligned regions (code, data, stack, heap,
//! `mmap` areas, and SuperPin's *bubble*, see paper §4.1) onto 4 KiB page
//! frames. Frames are reference-counted; [`AddressSpace::fork`] shares
//! every frame with the child, and the first write to a shared frame takes
//! a counted copy-on-write fault — the dominant fork cost in SuperPin's
//! overhead breakdown (paper §6.3).

mod page;
mod space;

pub use page::{PageFrame, PAGE_MASK, PAGE_SHIFT, PAGE_SIZE};
pub use space::{AddressSpace, MemError, MemStats, Region, RegionKind};

//! Virtual address spaces.

use super::page::{PageFrame, PAGE_MASK, PAGE_SHIFT, PAGE_SIZE};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Classification of a mapped region.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RegionKind {
    /// Executable program code.
    Code,
    /// Initialized data + BSS.
    Data,
    /// The main stack.
    Stack,
    /// The `brk`-managed heap.
    Heap,
    /// An anonymous `mmap` area.
    Mmap,
    /// SuperPin's pre-reserved *bubble* placeholder for instrumentation
    /// allocations (paper §4.1).
    Bubble,
}

/// A contiguous page-aligned mapping.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Region {
    /// First virtual address of the region (page aligned).
    pub start: u64,
    /// Length in bytes (page aligned).
    pub len: u64,
    /// What the region is used for.
    pub kind: RegionKind,
}

impl Region {
    /// Whether `addr` falls inside this region.
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.start && addr < self.start + self.len
    }

    /// One past the last address of the region.
    pub fn end(&self) -> u64 {
        self.start + self.len
    }
}

/// Memory access errors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemError {
    /// Address not covered by any mapped region.
    Unmapped(u64),
    /// A requested mapping overlaps an existing region.
    Overlap {
        /// Requested base address.
        addr: u64,
        /// Requested length in bytes.
        len: u64,
    },
    /// A mapping request was not page aligned.
    Unaligned {
        /// The misaligned address.
        addr: u64,
    },
    /// An unmap request did not match a mapped region.
    NoSuchMapping {
        /// The address no mapping starts at.
        addr: u64,
    },
    /// A dynamic allocation (`brk` grow or anonymous `mmap`) would push
    /// the space past its configured byte budget — the emulated kernel's
    /// ENOMEM.
    OutOfMemory {
        /// Bytes the allocation asked for.
        requested: u64,
        /// The per-space dynamic-memory budget in bytes.
        limit: u64,
    },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::Unmapped(addr) => write!(f, "access to unmapped address {addr:#x}"),
            MemError::Overlap { addr, len } => {
                write!(f, "mapping {addr:#x}+{len:#x} overlaps an existing region")
            }
            MemError::Unaligned { addr } => write!(f, "address {addr:#x} is not page aligned"),
            MemError::NoSuchMapping { addr } => {
                write!(f, "no mapping starts at {addr:#x}")
            }
            MemError::OutOfMemory { requested, limit } => {
                write!(
                    f,
                    "out of memory: {requested:#x} bytes requested against a {limit:#x}-byte budget"
                )
            }
        }
    }
}

impl std::error::Error for MemError {}

/// Counters exposed for the fork/COW cost model (paper §6.3, "Fork
/// Overhead").
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Demand-zero page allocations (first touch of a fresh page).
    pub minor_faults: u64,
    /// Copy-on-write page copies: first write on *this* side to a page
    /// that was resident at this side's most recent fork boundary. This
    /// deliberately mirrors Linux semantics — after `fork(2)` every
    /// shared page is mapped read-only in both parent and child, so each
    /// side pays exactly one COW fault on its first write regardless of
    /// which side writes first. Counting first-writes (rather than
    /// observing `Arc` reference counts) keeps the counter a pure
    /// function of this space's own write history, independent of
    /// sibling lifetimes and write interleaving.
    pub cow_copies: u64,
}

/// A paged virtual address space with copy-on-write [`fork`].
///
/// Pages are allocated lazily on first touch within a mapped region.
/// Reads of never-touched pages observe zeroes without allocating.
///
/// [`fork`]: AddressSpace::fork
#[derive(Clone, Debug)]
pub struct AddressSpace {
    regions: Vec<Region>,
    pages: BTreeMap<u64, PageFrame>,
    brk: u64,
    heap_base: u64,
    /// Next address tried for hint-less `mmap`.
    mmap_cursor: u64,
    /// Page indices still write-shared since the last fork boundary on
    /// this side: the first write to each charges one COW fault (see
    /// [`MemStats::cow_copies`]). Populated for the child by [`fork`]
    /// and for the parent by [`mark_cow_shared`]; drained by writes,
    /// [`unmap`] and `brk` shrinks.
    ///
    /// [`fork`]: AddressSpace::fork
    /// [`mark_cow_shared`]: AddressSpace::mark_cow_shared
    /// [`unmap`]: AddressSpace::unmap
    cow_pending: BTreeSet<u64>,
    stats: MemStats,
    /// Bumped on every write into a [`RegionKind::Code`] region, so a
    /// DBI engine can detect self-modifying code and invalidate its
    /// translations.
    code_version: u64,
    /// Optional budget for *dynamic* memory (the `brk` heap plus
    /// anonymous `mmap` regions), in bytes. `None` (the default) never
    /// fails an allocation; `Some(limit)` makes `brk` grows and `mmap`s
    /// past the budget return [`MemError::OutOfMemory`] — the emulated
    /// kernel turns that into an errno for the guest. Inherited across
    /// [`fork`](AddressSpace::fork), so slices observe the master's
    /// budget deterministically.
    mem_limit: Option<u64>,
    /// When `Some`, every write into a code region is also logged as
    /// `(addr, len)` for a static↔dynamic soundness oracle to audit
    /// alongside the [`code_version`](AddressSpace::code_version) bump.
    /// `None` (the default) costs one branch per write. Bounded: the
    /// consumer drains it at every code-version mismatch.
    code_write_log: Option<Vec<(u64, usize)>>,
}

/// Base address for hint-less anonymous mappings.
const MMAP_BASE: u64 = 0x2000_0000;

fn page_index(addr: u64) -> u64 {
    addr >> PAGE_SHIFT
}

fn page_align_up(value: u64) -> u64 {
    (value + PAGE_MASK) & !PAGE_MASK
}

impl AddressSpace {
    /// Creates an empty address space with the heap rooted at `heap_base`.
    pub fn new(heap_base: u64) -> AddressSpace {
        AddressSpace {
            regions: Vec::new(),
            pages: BTreeMap::new(),
            brk: heap_base,
            heap_base,
            mmap_cursor: MMAP_BASE,
            cow_pending: BTreeSet::new(),
            stats: MemStats::default(),
            code_version: 0,
            mem_limit: None,
            code_write_log: None,
        }
    }

    /// Sets (or clears) the dynamic-memory budget. Existing mappings are
    /// never retroactively failed; only future `brk` grows and `mmap`s
    /// check the budget.
    pub fn set_mem_limit(&mut self, limit: Option<u64>) {
        self.mem_limit = limit;
    }

    /// The dynamic-memory budget, if one is set.
    pub fn mem_limit(&self) -> Option<u64> {
        self.mem_limit
    }

    /// Bytes currently committed to dynamic memory: the page-aligned
    /// `brk` heap plus every anonymous `mmap` region. This is the
    /// quantity charged against [`mem_limit`](AddressSpace::mem_limit).
    pub fn dynamic_bytes(&self) -> u64 {
        self.regions
            .iter()
            .filter(|region| matches!(region.kind, RegionKind::Heap | RegionKind::Mmap))
            .map(|region| region.len)
            .sum()
    }

    /// Bytes of resident (allocated) pages — the simulated physical
    /// footprint the memory governor charges.
    pub fn resident_bytes(&self) -> u64 {
        self.pages.len() as u64 * PAGE_SIZE as u64
    }

    /// Monotonic counter bumped by every write into a code region.
    /// Translation caches compare it to detect self-modifying code.
    pub fn code_version(&self) -> u64 {
        self.code_version
    }

    /// Enables (or with `false` disables and discards) the code-write
    /// log: subsequent writes that bump
    /// [`code_version`](AddressSpace::code_version) also record their
    /// `(addr, len)` for [`take_code_writes`](Self::take_code_writes).
    pub fn log_code_writes(&mut self, enable: bool) {
        self.code_write_log = if enable {
            Some(self.code_write_log.take().unwrap_or_default())
        } else {
            None
        };
    }

    /// Drains the logged code writes since the last drain. Empty unless
    /// [`log_code_writes`](Self::log_code_writes) is enabled.
    pub fn take_code_writes(&mut self) -> Vec<(u64, usize)> {
        match &mut self.code_write_log {
            Some(log) => std::mem::take(log),
            None => Vec::new(),
        }
    }

    /// Current program break.
    pub fn brk(&self) -> u64 {
        self.brk
    }

    /// Cumulative fault counters.
    pub fn stats(&self) -> MemStats {
        self.stats
    }

    /// Resets the fault counters (used after fork to measure a child's own
    /// COW behaviour).
    pub fn reset_stats(&mut self) {
        self.stats = MemStats::default();
    }

    /// Number of resident (allocated) pages.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// All mapped regions in ascending address order.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// Copy-on-write duplicate of this space. O(resident pages); no page
    /// contents are copied until one side writes.
    ///
    /// Every page resident at the fork becomes COW-pending in the child:
    /// its first write there charges one [`MemStats::cow_copies`] fault.
    /// The *parent's* pending set is untouched because `fork` takes
    /// `&self`; a supervisor that wants parent-side fork faults calls
    /// [`mark_cow_shared`](AddressSpace::mark_cow_shared) as well.
    pub fn fork(&self) -> AddressSpace {
        let mut child = self.clone();
        child.reset_stats();
        child.cow_pending = child.pages.keys().copied().collect();
        child
    }

    /// Marks every resident page COW-pending on *this* side, as a real
    /// `fork(2)` does when it write-protects the parent's mappings. The
    /// SuperPin runner calls this on the master at each slice fork so the
    /// master's subsequent first-writes charge fork overhead exactly like
    /// the child's — deterministically, whatever the sibling does.
    pub fn mark_cow_shared(&mut self) {
        self.cow_pending = self.pages.keys().copied().collect();
    }

    /// Rebuilds every resident page frame as an exclusive copy, dropping
    /// shared `Arc` references to sibling spaces. Checkpoints call this
    /// so a stored snapshot neither keeps a live slice's frames
    /// artificially shared nor mutates under it. Purely a host-memory
    /// hygiene operation: guest-visible contents and all counters are
    /// unchanged.
    pub fn materialize(&mut self) {
        for frame in self.pages.values_mut() {
            *frame = PageFrame::from_bytes(frame.bytes());
        }
    }

    /// Maps a page-aligned region.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::Unaligned`] or [`MemError::Overlap`].
    pub fn map_region(&mut self, start: u64, len: u64, kind: RegionKind) -> Result<(), MemError> {
        if start & PAGE_MASK != 0 {
            return Err(MemError::Unaligned { addr: start });
        }
        let len = page_align_up(len.max(1));
        let candidate = Region { start, len, kind };
        for existing in &self.regions {
            if candidate.start < existing.end() && existing.start < candidate.end() {
                return Err(MemError::Overlap { addr: start, len });
            }
        }
        self.regions.push(candidate);
        self.regions.sort_by_key(|region| region.start);
        Ok(())
    }

    /// Maps an anonymous region of `len` bytes. With `Some(hint)` the
    /// mapping is placed exactly at the (page-aligned) hint, which is how
    /// SuperPin replays `mmap` in slices "given the same address" (paper
    /// §4.2); with `None` the kernel chooses the next free address above
    /// the mmap base.
    ///
    /// # Errors
    ///
    /// With a hint, fails like [`map_region`](Self::map_region). Without a
    /// hint, only alignment errors are possible (the search skips used
    /// space). With a [`mem_limit`](AddressSpace::mem_limit) set, a
    /// request past the budget fails with [`MemError::OutOfMemory`].
    pub fn map_anonymous(&mut self, hint: Option<u64>, len: u64) -> Result<u64, MemError> {
        let len = page_align_up(len.max(1));
        if let Some(limit) = self.mem_limit {
            if self.dynamic_bytes().saturating_add(len) > limit {
                return Err(MemError::OutOfMemory {
                    requested: len,
                    limit,
                });
            }
        }
        if let Some(addr) = hint {
            self.map_region(addr, len, RegionKind::Mmap)?;
            return Ok(addr);
        }
        let mut addr = self.mmap_cursor;
        loop {
            match self.map_region(addr, len, RegionKind::Mmap) {
                Ok(()) => {
                    self.mmap_cursor = addr + len;
                    return Ok(addr);
                }
                Err(MemError::Overlap { .. }) => {
                    // Skip past the colliding region.
                    let next = self
                        .regions
                        .iter()
                        .filter(|region| region.end() > addr)
                        .map(Region::end)
                        .min()
                        .unwrap_or(addr + len);
                    addr = page_align_up(next.max(addr + PAGE_SIZE as u64));
                }
                Err(other) => return Err(other),
            }
        }
    }

    /// Unmaps the region starting exactly at `start`, discarding its pages.
    ///
    /// Unmapping a [`RegionKind::Code`] region bumps
    /// [`code_version`](AddressSpace::code_version): removing code is
    /// self-modification as far as any decode or translation cache is
    /// concerned, so the same invalidation channel covers it.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::NoSuchMapping`] if no region starts there.
    pub fn unmap(&mut self, start: u64) -> Result<(), MemError> {
        let pos = self
            .regions
            .iter()
            .position(|region| region.start == start)
            .ok_or(MemError::NoSuchMapping { addr: start })?;
        let region = self.regions.remove(pos);
        if region.kind == RegionKind::Code {
            self.code_version += 1;
        }
        let first = page_index(region.start);
        let last = page_index(region.end() - 1);
        let keys: Vec<u64> = self
            .pages
            .range(first..=last)
            .map(|(&index, _)| index)
            .collect();
        for key in keys {
            self.pages.remove(&key);
            self.cow_pending.remove(&key);
        }
        Ok(())
    }

    /// Budget-checked [`set_brk`](AddressSpace::set_brk): a grow past the
    /// [`mem_limit`](AddressSpace::mem_limit) fails without changing any
    /// state, so the kernel can hand the guest an errno. Shrinks and
    /// unbudgeted spaces never fail. The infallible `set_brk` remains the
    /// replay path — a recorded successful `brk` re-applies unchecked.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfMemory`] when the grow exceeds the budget.
    pub fn try_set_brk(&mut self, new_brk: u64) -> Result<u64, MemError> {
        if let Some(limit) = self.mem_limit {
            let new_heap = page_align_up(new_brk.max(self.heap_base)) - self.heap_base;
            let old_heap = page_align_up(self.brk) - self.heap_base;
            if new_heap > old_heap {
                let other = self.dynamic_bytes() - old_heap;
                if other.saturating_add(new_heap) > limit {
                    return Err(MemError::OutOfMemory {
                        requested: new_heap - old_heap,
                        limit,
                    });
                }
            }
        }
        Ok(self.set_brk(new_brk))
    }

    /// Adjusts the program break. Growing maps heap pages; shrinking
    /// releases them. Returns the new break (mirroring Linux `brk`).
    pub fn set_brk(&mut self, new_brk: u64) -> u64 {
        let new_brk = new_brk.max(self.heap_base);
        let old_end = page_align_up(self.brk);
        let new_end = page_align_up(new_brk);
        // Rebuild the heap region to span [heap_base, new_end).
        self.regions
            .retain(|region| region.kind != RegionKind::Heap);
        if new_end > self.heap_base {
            self.regions.push(Region {
                start: self.heap_base,
                len: new_end - self.heap_base,
                kind: RegionKind::Heap,
            });
            self.regions.sort_by_key(|region| region.start);
        }
        if new_end < old_end {
            let first = page_index(new_end);
            let last = page_index(old_end - 1);
            let keys: Vec<u64> = self
                .pages
                .range(first..=last)
                .map(|(&index, _)| index)
                .collect();
            for key in keys {
                self.pages.remove(&key);
                self.cow_pending.remove(&key);
            }
        }
        self.brk = new_brk;
        self.brk
    }

    fn region_for(&self, addr: u64) -> Option<&Region> {
        // Regions are sorted; binary search by start.
        let idx = self.regions.partition_point(|region| region.start <= addr);
        idx.checked_sub(1)
            .map(|i| &self.regions[i])
            .filter(|region| region.contains(addr))
    }

    /// Whether `addr` is covered by a mapping.
    pub fn is_mapped(&self, addr: u64) -> bool {
        self.region_for(addr).is_some()
    }

    /// Reads `buf.len()` bytes starting at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::Unmapped`] if any byte is outside a region.
    pub fn read(&self, addr: u64, buf: &mut [u8]) -> Result<(), MemError> {
        let mut addr = addr;
        let mut buf = buf;
        while !buf.is_empty() {
            if !self.is_mapped(addr) {
                return Err(MemError::Unmapped(addr));
            }
            let offset = (addr & PAGE_MASK) as usize;
            let chunk = buf.len().min(PAGE_SIZE - offset);
            match self.pages.get(&page_index(addr)) {
                Some(frame) => buf[..chunk].copy_from_slice(&frame.bytes()[offset..offset + chunk]),
                None => buf[..chunk].fill(0),
            }
            addr += chunk as u64;
            buf = &mut buf[chunk..];
        }
        Ok(())
    }

    /// Writes `data` starting at `addr`, taking COW/minor faults as needed.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::Unmapped`] if any byte is outside a region.
    pub fn write(&mut self, addr: u64, data: &[u8]) -> Result<(), MemError> {
        let mut addr = addr;
        let mut data = data;
        while !data.is_empty() {
            match self.region_for(addr) {
                None => return Err(MemError::Unmapped(addr)),
                Some(region) if region.kind == RegionKind::Code => {
                    self.code_version += 1;
                    if let Some(log) = &mut self.code_write_log {
                        let chunk = data.len().min(PAGE_SIZE - (addr & PAGE_MASK) as usize);
                        log.push((addr, chunk));
                    }
                }
                Some(_) => {}
            }
            let offset = (addr & PAGE_MASK) as usize;
            let chunk = data.len().min(PAGE_SIZE - offset);
            let index = page_index(addr);
            let minor_faults = &mut self.stats.minor_faults;
            let frame = self.pages.entry(index).or_insert_with(|| {
                *minor_faults += 1;
                PageFrame::zeroed()
            });
            // `make_mut` still copies the frame when a sibling shares it
            // (memory isolation), but the *charge* comes from the
            // deterministic pending set, not the Arc refcount.
            let (bytes, _copied) = frame.make_mut();
            bytes[offset..offset + chunk].copy_from_slice(&data[..chunk]);
            if self.cow_pending.remove(&index) {
                self.stats.cow_copies += 1;
            }
            addr += chunk as u64;
            data = &data[chunk..];
        }
        Ok(())
    }

    /// Reads a little-endian u64.
    ///
    /// # Errors
    ///
    /// See [`read`](Self::read).
    pub fn read_u64(&self, addr: u64) -> Result<u64, MemError> {
        let mut buf = [0u8; 8];
        self.read(addr, &mut buf)?;
        Ok(u64::from_le_bytes(buf))
    }

    /// Writes a little-endian u64.
    ///
    /// # Errors
    ///
    /// See [`write`](Self::write).
    pub fn write_u64(&mut self, addr: u64, value: u64) -> Result<(), MemError> {
        self.write(addr, &value.to_le_bytes())
    }

    /// Reads `len` bytes into a fresh buffer.
    ///
    /// # Errors
    ///
    /// See [`read`](Self::read).
    pub fn read_bytes(&self, addr: u64, len: usize) -> Result<Vec<u8>, MemError> {
        let mut buf = vec![0u8; len];
        self.read(addr, &mut buf)?;
        Ok(buf)
    }

    /// A FNV-1a digest of all resident page contents plus region layout —
    /// used by tests to compare master and slice address spaces.
    pub fn content_digest(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut hash = FNV_OFFSET;
        let mut mix = |byte: u8| {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(FNV_PRIME);
        };
        for region in &self.regions {
            for byte in region.start.to_le_bytes() {
                mix(byte);
            }
            for byte in region.len.to_le_bytes() {
                mix(byte);
            }
        }
        for (&index, frame) in &self.pages {
            // Skip pages that are all zero: a never-touched page and an
            // explicitly zeroed page must digest identically.
            if frame.bytes().iter().all(|&b| b == 0) {
                continue;
            }
            for byte in index.to_le_bytes() {
                mix(byte);
            }
            for &byte in frame.bytes().iter() {
                mix(byte);
            }
        }
        hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space_with_one_region() -> AddressSpace {
        let mut space = AddressSpace::new(0x0100_0000);
        space
            .map_region(0x1000, 3 * PAGE_SIZE as u64, RegionKind::Data)
            .expect("map");
        space
    }

    #[test]
    fn read_of_untouched_page_is_zero() {
        let space = space_with_one_region();
        assert_eq!(space.read_u64(0x1000).expect("read"), 0);
        assert_eq!(space.resident_pages(), 0, "reads must not allocate");
    }

    #[test]
    fn write_then_read_round_trips() {
        let mut space = space_with_one_region();
        space.write_u64(0x1008, 0xdead_beef).expect("write");
        assert_eq!(space.read_u64(0x1008).expect("read"), 0xdead_beef);
        assert_eq!(space.resident_pages(), 1);
    }

    #[test]
    fn cross_page_access() {
        let mut space = space_with_one_region();
        let addr = 0x1000 + PAGE_SIZE as u64 - 4;
        space.write_u64(addr, 0x0123_4567_89ab_cdef).expect("write");
        assert_eq!(space.read_u64(addr).expect("read"), 0x0123_4567_89ab_cdef);
        assert_eq!(space.resident_pages(), 2);
    }

    #[test]
    fn unmapped_access_faults() {
        let mut space = space_with_one_region();
        assert_eq!(space.read_u64(0x0), Err(MemError::Unmapped(0)));
        assert_eq!(
            space.write_u64(0x1000 + 3 * PAGE_SIZE as u64, 1),
            Err(MemError::Unmapped(0x1000 + 3 * PAGE_SIZE as u64))
        );
    }

    #[test]
    fn fork_shares_pages_until_write() {
        let mut parent = space_with_one_region();
        parent.write_u64(0x1000, 42).expect("write");
        let mut child = parent.fork();
        assert_eq!(child.read_u64(0x1000).expect("read"), 42);
        assert_eq!(child.stats().cow_copies, 0);

        child.write_u64(0x1000, 7).expect("write");
        assert_eq!(child.stats().cow_copies, 1, "first write must COW");
        assert_eq!(child.read_u64(0x1000).expect("read"), 7);
        assert_eq!(parent.read_u64(0x1000).expect("read"), 42);

        // The parent was never marked shared (`fork` takes `&self`), so
        // its writes charge nothing until a supervisor opts it in with
        // `mark_cow_shared`.
        parent.write_u64(0x1000, 43).expect("write");
        assert_eq!(parent.stats().cow_copies, 0);
    }

    #[test]
    fn fork_cow_counted_on_parent_when_parent_writes_first() {
        let mut parent = space_with_one_region();
        parent.write_u64(0x1000, 1).expect("write");
        parent.reset_stats();
        let child = parent.fork();
        parent.mark_cow_shared();
        parent.write_u64(0x1000, 2).expect("write");
        assert_eq!(parent.stats().cow_copies, 1);
        // Second write to the same page is free: the fault fired.
        parent.write_u64(0x1000, 3).expect("write");
        assert_eq!(parent.stats().cow_copies, 1);
        assert_eq!(child.read_u64(0x1000).expect("read"), 1);
    }

    #[test]
    fn cow_charges_are_independent_of_sibling_write_order() {
        // Linux semantics: both sides fault on their first write to a
        // shared page, whichever writes first. The charge must not
        // depend on the interleaving (SuperPin's bit-identical recovery
        // relies on this).
        let run = |child_first: bool| {
            let mut parent = space_with_one_region();
            parent.write_u64(0x1000, 1).expect("write");
            parent.reset_stats();
            let mut child = parent.fork();
            parent.mark_cow_shared();
            if child_first {
                child.write_u64(0x1000, 2).expect("write");
                parent.write_u64(0x1000, 3).expect("write");
            } else {
                parent.write_u64(0x1000, 3).expect("write");
                child.write_u64(0x1000, 2).expect("write");
            }
            (parent.stats().cow_copies, child.stats().cow_copies)
        };
        assert_eq!(run(true), run(false));
        assert_eq!(run(true), (1, 1));
    }

    #[test]
    fn materialize_preserves_contents_and_counters() {
        let mut parent = space_with_one_region();
        parent.write_u64(0x1000, 42).expect("write");
        let mut snapshot = parent.fork();
        let stats_before = snapshot.stats();
        snapshot.materialize();
        assert_eq!(snapshot.stats(), stats_before);
        assert_eq!(snapshot.content_digest(), parent.content_digest());
        // The snapshot still owes a COW fault on first write.
        snapshot.write_u64(0x1000, 7).expect("write");
        assert_eq!(snapshot.stats().cow_copies, 1);
        assert_eq!(parent.read_u64(0x1000).expect("read"), 42);
    }

    #[test]
    fn mapping_overlap_rejected() {
        let mut space = space_with_one_region();
        assert!(matches!(
            space.map_region(0x1000, 1, RegionKind::Mmap),
            Err(MemError::Overlap { .. })
        ));
        assert!(matches!(
            space.map_region(0x1001, 1, RegionKind::Mmap),
            Err(MemError::Unaligned { .. })
        ));
    }

    #[test]
    fn anonymous_mmap_skips_collisions() {
        let mut space = AddressSpace::new(0x0100_0000);
        let a = space.map_anonymous(None, PAGE_SIZE as u64).expect("map a");
        let b = space.map_anonymous(None, PAGE_SIZE as u64).expect("map b");
        assert_ne!(a, b);
        assert!(space.is_mapped(a));
        assert!(space.is_mapped(b));
        // Hinted mapping at an occupied address fails.
        assert!(space.map_anonymous(Some(a), 1).is_err());
    }

    #[test]
    fn unmap_releases_pages() {
        let mut space = AddressSpace::new(0x0100_0000);
        let addr = space
            .map_anonymous(None, 2 * PAGE_SIZE as u64)
            .expect("map");
        space.write_u64(addr, 1).expect("write");
        assert_eq!(space.resident_pages(), 1);
        space.unmap(addr).expect("unmap");
        assert_eq!(space.resident_pages(), 0);
        assert!(!space.is_mapped(addr));
        assert_eq!(space.unmap(addr), Err(MemError::NoSuchMapping { addr }));
    }

    #[test]
    fn brk_grows_and_shrinks_heap() {
        let heap_base = 0x0100_0000;
        let mut space = AddressSpace::new(heap_base);
        assert!(!space.is_mapped(heap_base));
        let new_brk = space.set_brk(heap_base + 100);
        assert_eq!(new_brk, heap_base + 100);
        assert!(space.is_mapped(heap_base));
        space.write_u64(heap_base, 5).expect("write");
        assert_eq!(space.resident_pages(), 1);
        // Shrink back to base: heap unmapped, pages gone.
        space.set_brk(heap_base);
        assert!(!space.is_mapped(heap_base));
        assert_eq!(space.resident_pages(), 0);
        // Growing again observes fresh zeroes.
        space.set_brk(heap_base + 8);
        assert_eq!(space.read_u64(heap_base).expect("read"), 0);
    }

    #[test]
    fn brk_never_goes_below_heap_base() {
        let heap_base = 0x0100_0000;
        let mut space = AddressSpace::new(heap_base);
        assert_eq!(space.set_brk(0), heap_base);
    }

    #[test]
    fn digest_equal_for_identical_spaces() {
        let mut a = space_with_one_region();
        a.write_u64(0x1010, 123).expect("write");
        let b = a.fork();
        assert_eq!(a.content_digest(), b.content_digest());
        let mut c = a.fork();
        c.write_u64(0x1010, 124).expect("write");
        assert_ne!(a.content_digest(), c.content_digest());
    }

    #[test]
    fn digest_ignores_explicit_zero_pages() {
        let mut a = space_with_one_region();
        let b = a.fork();
        // Touch a page with zeroes: logically identical content.
        a.write_u64(0x1000, 0).expect("write");
        assert_eq!(a.content_digest(), b.content_digest());
    }

    #[test]
    fn mem_limit_fails_dynamic_allocations_past_budget() {
        let heap_base = 0x0100_0000;
        let mut space = AddressSpace::new(heap_base);
        space.set_mem_limit(Some(2 * PAGE_SIZE as u64));

        // One page of heap and one page of mmap fit exactly.
        let brk = space
            .try_set_brk(heap_base + PAGE_SIZE as u64)
            .expect("brk within budget");
        assert_eq!(brk, heap_base + PAGE_SIZE as u64);
        let addr = space
            .map_anonymous(None, PAGE_SIZE as u64)
            .expect("mmap within budget");

        // A third page fails either way, without changing state.
        assert!(matches!(
            space.try_set_brk(heap_base + 2 * PAGE_SIZE as u64),
            Err(MemError::OutOfMemory { .. })
        ));
        assert_eq!(space.brk(), heap_base + PAGE_SIZE as u64);
        assert!(matches!(
            space.map_anonymous(None, 1),
            Err(MemError::OutOfMemory { .. })
        ));

        // Releasing the mmap frees budget for the heap to grow — the
        // guest can recover from ENOMEM.
        space.unmap(addr).expect("unmap");
        space
            .try_set_brk(heap_base + 2 * PAGE_SIZE as u64)
            .expect("brk after recovery");
    }

    #[test]
    fn mem_limit_allows_shrink_and_is_inherited_by_fork() {
        let heap_base = 0x0100_0000;
        let mut space = AddressSpace::new(heap_base);
        space.set_mem_limit(Some(PAGE_SIZE as u64));
        space.try_set_brk(heap_base + 8).expect("grow");
        // Shrinks always succeed, even at a 0-byte budget.
        space.set_mem_limit(Some(0));
        assert_eq!(space.try_set_brk(heap_base).expect("shrink"), heap_base);

        let child = space.fork();
        assert_eq!(child.mem_limit(), Some(0));
        assert!(matches!(
            space.fork().try_set_brk(heap_base + 1),
            Err(MemError::OutOfMemory { .. })
        ));
    }

    #[test]
    fn unbudgeted_space_never_fails_allocations() {
        let heap_base = 0x0100_0000;
        let mut space = AddressSpace::new(heap_base);
        assert_eq!(space.mem_limit(), None);
        let brk = space
            .try_set_brk(heap_base + (1 << 20))
            .expect("unbudgeted brk");
        assert_eq!(brk, space.brk());
        space.map_anonymous(None, 1 << 20).expect("unbudgeted mmap");
    }

    #[test]
    fn bubble_region_reserves_and_releases() {
        let mut space = AddressSpace::new(0x0100_0000);
        space
            .map_region(0x4000_0000, 16 * PAGE_SIZE as u64, RegionKind::Bubble)
            .expect("map bubble");
        assert!(space.is_mapped(0x4000_0000));
        space.unmap(0x4000_0000).expect("unmap bubble");
        // After release the space is free for application mmaps at the
        // same address — preserving precise memory mappings (paper §4.1).
        let addr = space
            .map_anonymous(Some(0x4000_0000), PAGE_SIZE as u64)
            .expect("remap");
        assert_eq!(addr, 0x4000_0000);
    }
}

//! Page frames.

use std::fmt;
use std::sync::Arc;

/// Page size in bytes (4 KiB, matching the Linux systems the paper ran on).
pub const PAGE_SIZE: usize = 4096;

/// log2 of [`PAGE_SIZE`].
pub const PAGE_SHIFT: u32 = 12;

/// Mask selecting the offset-within-page bits of an address.
pub const PAGE_MASK: u64 = (PAGE_SIZE as u64) - 1;

/// A reference-counted 4 KiB page frame.
///
/// Cloning a `PageFrame` is O(1) and shares the underlying bytes; frames
/// become *copy-on-write* when shared between address spaces after a
/// [`fork`](super::AddressSpace::fork).
#[derive(Clone)]
pub struct PageFrame {
    bytes: Arc<[u8; PAGE_SIZE]>,
}

impl PageFrame {
    /// A fresh zero-filled frame.
    pub fn zeroed() -> PageFrame {
        PageFrame {
            bytes: Arc::new([0u8; PAGE_SIZE]),
        }
    }

    /// A frame initialized from up to [`PAGE_SIZE`] bytes (the remainder is
    /// zero-filled).
    pub fn from_bytes(src: &[u8]) -> PageFrame {
        let mut buf = [0u8; PAGE_SIZE];
        let len = src.len().min(PAGE_SIZE);
        buf[..len].copy_from_slice(&src[..len]);
        PageFrame {
            bytes: Arc::new(buf),
        }
    }

    /// Read-only view of the page contents.
    pub fn bytes(&self) -> &[u8; PAGE_SIZE] {
        &self.bytes
    }

    /// Whether this frame is shared with another address space (or another
    /// mapping) and would need a copy before writing.
    pub fn is_shared(&self) -> bool {
        Arc::strong_count(&self.bytes) > 1
    }

    /// Mutable access to the page contents, copying the frame first if it
    /// is shared. Returns `true` if a copy-on-write copy was performed.
    pub fn make_mut(&mut self) -> (&mut [u8; PAGE_SIZE], bool) {
        let copied = self.is_shared();
        // `Arc::make_mut` clones the inner array when the refcount > 1.
        (Arc::make_mut(&mut self.bytes), copied)
    }
}

impl fmt::Debug for PageFrame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PageFrame")
            .field("shared", &self.is_shared())
            .field("first_bytes", &&self.bytes[..8])
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_frame_is_zero() {
        let frame = PageFrame::zeroed();
        assert!(frame.bytes().iter().all(|&b| b == 0));
        assert!(!frame.is_shared());
    }

    #[test]
    fn from_bytes_pads_with_zeroes() {
        let frame = PageFrame::from_bytes(&[1, 2, 3]);
        assert_eq!(&frame.bytes()[..4], &[1, 2, 3, 0]);
    }

    #[test]
    fn clone_shares_until_write() {
        let mut a = PageFrame::from_bytes(&[9]);
        let b = a.clone();
        assert!(a.is_shared());
        let (bytes, copied) = a.make_mut();
        assert!(copied, "write to shared frame must copy");
        bytes[0] = 7;
        assert_eq!(a.bytes()[0], 7);
        assert_eq!(b.bytes()[0], 9, "sibling frame must keep original data");
        assert!(!a.is_shared());
    }

    #[test]
    fn exclusive_write_does_not_copy() {
        let mut a = PageFrame::zeroed();
        let (_, copied) = a.make_mut();
        assert!(!copied);
    }
}

#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! # superpin-vm
//!
//! The operating-system substrate for the SuperPin reproduction: everything
//! the original system obtained from Linux, rebuilt as a deterministic
//! library.
//!
//! * [`mem`] — paged virtual address spaces with genuine copy-on-write
//!   sharing. [`mem::AddressSpace::fork`] clones a space in O(mapped
//!   pages) by sharing page frames; the first write to a shared page takes
//!   a counted COW fault and copies it, exactly the cost SuperPin's fork
//!   overhead analysis reasons about (paper §6.3).
//! * [`cpu`] — the interpreter core executing `superpin-isa` instructions
//!   fetched from guest memory, dispatching through a direct-threaded
//!   opcode table.
//! * [`decode`] — per-page pre-decoded instruction streams keyed on the
//!   code-page generation, so each instruction is decoded once rather
//!   than once per execution; self-modifying code invalidates the cache
//!   through the same `code_version` channel the DBI engine uses.
//! * [`kernel`] — an emulated kernel: `exit`, `write`, `read`, `open`,
//!   `close`, `brk`, `mmap`, `munmap`, `gettime`, `getpid`, `getrandom`.
//!   Every syscall execution produces a [`kernel::SyscallRecord`]
//!   capturing its register result and memory side effects, which is what
//!   makes SuperPin's record-and-playback mechanism (paper §4.2) possible.
//! * [`process`] — a process = CPU state + address space + kernel state;
//!   supports `fork`.
//! * [`ptrace`] — run-until-event control of a process, mirroring how the
//!   SuperPin control process supervises the master application.
//!
//! # Example
//!
//! ```
//! use superpin_isa::asm::assemble;
//! use superpin_vm::process::{Process, RunExit};
//!
//! let program = assemble(
//!     "main:\n  li r1, 41\n  addi r1, r1, 1\n  exit 0\n",
//! )?;
//! let mut process = Process::load(1, &program)?;
//! let exit = process.run(u64::MAX, 0)?;
//! assert!(matches!(exit, RunExit::Exited(0)));
//! assert_eq!(process.inst_count(), 5); // li + addi + (li,li,syscall) of exit
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod cpu;
pub mod decode;
pub mod kernel;
pub mod mem;
pub mod process;
pub mod ptrace;

mod error;

pub use error::VmError;

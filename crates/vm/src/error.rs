//! Top-level error type for VM operations.

use crate::mem::MemError;
use std::fmt;
use superpin_isa::DecodeError;

/// Errors surfaced while executing guest code.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VmError {
    /// A memory access faulted.
    Mem(MemError),
    /// The bytes at `pc` did not decode to a valid instruction.
    Decode {
        /// Program counter of the invalid encoding.
        pc: u64,
        /// The underlying decode failure.
        source: DecodeError,
    },
    /// The guest issued a syscall number the kernel does not implement.
    BadSyscall {
        /// Program counter of the offending `syscall`.
        pc: u64,
        /// The unrecognized syscall number.
        number: u64,
    },
    /// An operation was attempted on a process that has already exited.
    ProcessExited,
    /// The guest executed `halt`, which only injected runtime stubs may do.
    UnexpectedHalt {
        /// Program counter of the `halt`.
        pc: u64,
    },
    /// A chaos failpoint fired at this host-runtime site (only produced
    /// when fault injection is armed; see `superpin-fault`).
    FaultInjected {
        /// Dotted name of the failpoint site that fired.
        site: &'static str,
    },
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::Mem(err) => write!(f, "memory fault: {err}"),
            VmError::Decode { pc, source } => {
                write!(f, "instruction decode failed at {pc:#x}: {source}")
            }
            VmError::BadSyscall { pc, number } => {
                write!(f, "unknown syscall number {number} at {pc:#x}")
            }
            VmError::ProcessExited => write!(f, "process has already exited"),
            VmError::UnexpectedHalt { pc } => write!(f, "unexpected halt at {pc:#x}"),
            VmError::FaultInjected { site } => {
                write!(f, "chaos fault injected at failpoint `{site}`")
            }
        }
    }
}

impl std::error::Error for VmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            VmError::Mem(err) => Some(err),
            VmError::Decode { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<MemError> for VmError {
    fn from(err: MemError) -> VmError {
        VmError::Mem(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn mem_and_decode_variants_chain_their_source() {
        let err = VmError::Mem(MemError::OutOfMemory {
            requested: 4096,
            limit: 0,
        });
        assert!(err
            .source()
            .expect("mem source")
            .to_string()
            .contains("out of memory"));
        assert!(err.to_string().contains("memory fault"));
    }

    #[test]
    fn leaf_variants_have_no_source() {
        assert!(VmError::ProcessExited.source().is_none());
        assert!(VmError::UnexpectedHalt { pc: 8 }.source().is_none());
        assert!(VmError::BadSyscall { pc: 8, number: 99 }.source().is_none());
        assert!(VmError::FaultInjected {
            site: "vm.mem.alloc"
        }
        .source()
        .is_none());
    }
}

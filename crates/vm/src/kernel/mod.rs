//! The emulated kernel.
//!
//! Syscalls follow a simple ABI: the number is passed in `r0`, arguments
//! in `r1`–`r5`, and the result is returned in `r0`.
//!
//! Executing a syscall yields a [`SyscallRecord`] that captures the
//! complete architectural effect — return value, guest-memory writes, and
//! address-space operations. A record can later be *played back* against
//! another process with [`apply_record`], reproducing the effect without
//! re-running the kernel. This is the primitive behind SuperPin's
//! record-and-playback slice handling (paper §4.2): "The memory
//! modifications and results of system calls are recorded. The slices then
//! playback the system call by changing the registers and modifying memory
//! in an identical manner."

mod fs;

pub use fs::{FdTable, FsError};

use crate::cpu::CpuState;
use crate::error::VmError;
use crate::mem::AddressSpace;
/// Cheaply-clonable immutable byte buffer for recorded syscall
/// effects (stand-in for `bytes::Bytes`; the build is offline).
pub type Bytes = std::sync::Arc<[u8]>;
use std::fmt;
use superpin_isa::Reg;

/// System call numbers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u64)]
pub enum SyscallNo {
    /// `exit(code)` — terminate the process.
    Exit = 0,
    /// `write(fd, buf, len) -> written`.
    Write = 1,
    /// `read(fd, buf, len) -> read` — writes guest memory.
    Read = 2,
    /// `open(path_ptr, path_len) -> fd` — creates the file if absent.
    Open = 3,
    /// `close(fd) -> 0`.
    Close = 4,
    /// `brk(addr) -> new_brk`.
    Brk = 5,
    /// `mmap(hint, len) -> addr` — anonymous mapping.
    Mmap = 6,
    /// `munmap(addr) -> 0`.
    Munmap = 7,
    /// `gettime() -> virtual nanoseconds`.
    GetTime = 8,
    /// `getpid() -> pid`.
    GetPid = 9,
    /// `getrandom() -> deterministic pseudo-random u64`.
    GetRandom = 10,
    /// `sigaction(sig, handler_addr) -> 0` — install a handler.
    SigAction = 11,
    /// `raise(sig) -> 0` — deliver a signal to the calling process. If a
    /// handler is installed, control transfers to it with a return frame
    /// pushed on the stack; otherwise the signal is ignored.
    Raise = 12,
    /// `sigreturn() -> 0` — return from a handler, restoring the frame
    /// `raise` pushed.
    SigReturn = 13,
}

impl SyscallNo {
    /// Every syscall number, in raw-number order. Lets policy code (and
    /// property tests) iterate the full set so exhaustiveness survives
    /// the addition of new syscalls.
    pub const ALL: [SyscallNo; 14] = [
        SyscallNo::Exit,
        SyscallNo::Write,
        SyscallNo::Read,
        SyscallNo::Open,
        SyscallNo::Close,
        SyscallNo::Brk,
        SyscallNo::Mmap,
        SyscallNo::Munmap,
        SyscallNo::GetTime,
        SyscallNo::GetPid,
        SyscallNo::GetRandom,
        SyscallNo::SigAction,
        SyscallNo::Raise,
        SyscallNo::SigReturn,
    ];

    /// Decodes a syscall number from the guest's `r0`.
    pub fn from_raw(raw: u64) -> Option<SyscallNo> {
        Some(match raw {
            0 => SyscallNo::Exit,
            1 => SyscallNo::Write,
            2 => SyscallNo::Read,
            3 => SyscallNo::Open,
            4 => SyscallNo::Close,
            5 => SyscallNo::Brk,
            6 => SyscallNo::Mmap,
            7 => SyscallNo::Munmap,
            8 => SyscallNo::GetTime,
            9 => SyscallNo::GetPid,
            10 => SyscallNo::GetRandom,
            11 => SyscallNo::SigAction,
            12 => SyscallNo::Raise,
            13 => SyscallNo::SigReturn,
            _ => return None,
        })
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            SyscallNo::Exit => "exit",
            SyscallNo::Write => "write",
            SyscallNo::Read => "read",
            SyscallNo::Open => "open",
            SyscallNo::Close => "close",
            SyscallNo::Brk => "brk",
            SyscallNo::Mmap => "mmap",
            SyscallNo::Munmap => "munmap",
            SyscallNo::GetTime => "gettime",
            SyscallNo::GetPid => "getpid",
            SyscallNo::GetRandom => "getrandom",
            SyscallNo::SigAction => "sigaction",
            SyscallNo::Raise => "raise",
            SyscallNo::SigReturn => "sigreturn",
        }
    }
}

impl fmt::Display for SyscallNo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error return value used by the kernel (`-1` in two's complement).
pub const SYSCALL_ERROR: u64 = u64::MAX;

/// Number of guest-visible signals.
pub const NUM_SIGNALS: usize = 8;

/// Bytes of the stack frame `raise` pushes (resume pc + saved ra).
pub const SIGNAL_FRAME_BYTES: u64 = 16;

/// A recorded guest-memory write performed by a syscall.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MemDelta {
    /// Destination guest address.
    pub addr: u64,
    /// Bytes written.
    pub bytes: Bytes,
}

/// A recorded address-space operation performed by a syscall.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MapOp {
    /// An anonymous mapping was created at `addr`.
    Map {
        /// Base address of the new mapping.
        addr: u64,
        /// Requested length in bytes.
        len: u64,
    },
    /// The mapping at `addr` was removed.
    Unmap {
        /// Base address of the removed mapping.
        addr: u64,
    },
    /// The program break moved to `brk`.
    Brk {
        /// The new break.
        brk: u64,
    },
}

/// The complete architectural effect of one syscall execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SyscallRecord {
    /// Which syscall ran.
    pub number: SyscallNo,
    /// Arguments as read from `r1`–`r5`.
    pub args: [u64; 5],
    /// Value returned in `r0`.
    pub ret: u64,
    /// Guest-memory writes (e.g. `read` filling a buffer).
    pub mem_writes: Vec<MemDelta>,
    /// Address-space operations (`mmap`/`munmap`/`brk`).
    pub map_ops: Vec<MapOp>,
    /// Registers (beyond `r0`) the syscall wrote — signal delivery and
    /// return adjust `sp`/`ra`.
    pub reg_writes: Vec<(superpin_isa::Reg, u64)>,
    /// Where execution continues if not at the fall-through pc (signal
    /// handler entry / handler return).
    pub pc_override: Option<u64>,
    /// Exit code if the syscall terminated the process.
    pub exited: Option<i64>,
}

/// Per-process kernel state: file descriptors plus a deterministic RNG.
#[derive(Clone, Debug)]
pub struct KernelState {
    /// Process id reported by `getpid`.
    pub pid: u64,
    /// Open files, stdin, stdout.
    pub fds: FdTable,
    rng_state: u64,
    /// Installed signal handlers, indexed by signal number (0 = none).
    handlers: [u64; NUM_SIGNALS],
}

impl KernelState {
    /// Creates kernel state for process `pid` with an empty filesystem.
    pub fn new(pid: u64) -> KernelState {
        KernelState {
            pid,
            fds: FdTable::new(),
            rng_state: 0x9e37_79b9_7f4a_7c15 ^ pid,
            handlers: [0; NUM_SIGNALS],
        }
    }

    /// The installed handler for `sig` (0 = none).
    pub fn handler(&self, sig: usize) -> u64 {
        self.handlers.get(sig).copied().unwrap_or(0)
    }

    fn next_random(&mut self) -> u64 {
        // xorshift64*: deterministic, non-zero state maintained by seeding.
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

/// Executes the syscall the guest is parked at (`cpu.pc` must point at a
/// `syscall` instruction). Advances `pc` past it, writes the result into
/// `r0`, applies all side effects, and returns the full [`SyscallRecord`].
///
/// `now_ns` supplies the virtual time returned by `gettime`.
///
/// # Errors
///
/// Returns [`VmError::BadSyscall`] for unknown numbers and [`VmError::Mem`]
/// if a syscall faults reading or writing guest memory.
pub fn execute_syscall(
    cpu: &mut CpuState,
    mem: &mut AddressSpace,
    state: &mut KernelState,
    now_ns: u64,
) -> Result<SyscallRecord, VmError> {
    let number_raw = cpu.regs.get(Reg::R0);
    let number = SyscallNo::from_raw(number_raw).ok_or(VmError::BadSyscall {
        pc: cpu.pc,
        number: number_raw,
    })?;
    let args = [
        cpu.regs.get(Reg::R1),
        cpu.regs.get(Reg::R2),
        cpu.regs.get(Reg::R3),
        cpu.regs.get(Reg::R4),
        cpu.regs.get(Reg::R5),
    ];
    let mut record = SyscallRecord {
        number,
        args,
        ret: 0,
        mem_writes: Vec::new(),
        map_ops: Vec::new(),
        reg_writes: Vec::new(),
        pc_override: None,
        exited: None,
    };

    match number {
        SyscallNo::Exit => {
            record.exited = Some(args[0] as i64);
            record.ret = 0;
        }
        SyscallNo::Write => {
            let (fd, buf, len) = (args[0], args[1], args[2] as usize);
            let data = mem.read_bytes(buf, len)?;
            record.ret = match state.fds.write(fd, &data) {
                Ok(n) => n as u64,
                Err(_) => SYSCALL_ERROR,
            };
        }
        SyscallNo::Read => {
            let (fd, buf, len) = (args[0], args[1], args[2] as usize);
            match state.fds.read(fd, len) {
                Ok(data) => {
                    mem.write(buf, &data)?;
                    record.ret = data.len() as u64;
                    if !data.is_empty() {
                        record.mem_writes.push(MemDelta {
                            addr: buf,
                            bytes: Bytes::from(data),
                        });
                    }
                }
                Err(_) => record.ret = SYSCALL_ERROR,
            }
        }
        SyscallNo::Open => {
            let (ptr, len) = (args[0], args[1] as usize);
            let name_bytes = mem.read_bytes(ptr, len)?;
            record.ret = match String::from_utf8(name_bytes) {
                Ok(name) => state.fds.open(&name),
                Err(_) => SYSCALL_ERROR,
            };
        }
        SyscallNo::Close => {
            record.ret = match state.fds.close(args[0]) {
                Ok(()) => 0,
                Err(_) => SYSCALL_ERROR,
            };
        }
        SyscallNo::Brk => {
            // A grow past the space's budget is the kernel's ENOMEM: the
            // guest sees an errno and no map op is recorded, so slice
            // playback replays the failure as a no-op — exactly like a
            // failed mmap.
            match mem.try_set_brk(args[0]) {
                Ok(new_brk) => {
                    record.ret = new_brk;
                    record.map_ops.push(MapOp::Brk { brk: new_brk });
                }
                Err(_) => record.ret = SYSCALL_ERROR,
            }
        }
        SyscallNo::Mmap => {
            let hint = if args[0] == 0 { None } else { Some(args[0]) };
            match mem.map_anonymous(hint, args[1]) {
                Ok(addr) => {
                    record.ret = addr;
                    record.map_ops.push(MapOp::Map { addr, len: args[1] });
                }
                Err(_) => record.ret = SYSCALL_ERROR,
            }
        }
        SyscallNo::Munmap => {
            record.ret = match mem.unmap(args[0]) {
                Ok(()) => {
                    record.map_ops.push(MapOp::Unmap { addr: args[0] });
                    0
                }
                Err(_) => SYSCALL_ERROR,
            };
        }
        SyscallNo::GetTime => {
            record.ret = now_ns;
        }
        SyscallNo::GetPid => {
            record.ret = state.pid;
        }
        SyscallNo::GetRandom => {
            record.ret = state.next_random();
        }
        SyscallNo::SigAction => {
            let sig = args[0] as usize;
            if sig < NUM_SIGNALS {
                state.handlers[sig] = args[1];
                record.ret = 0;
            } else {
                record.ret = SYSCALL_ERROR;
            }
        }
        SyscallNo::Raise => {
            let sig = args[0] as usize;
            let handler = state.handler(sig);
            record.ret = 0;
            if sig >= NUM_SIGNALS {
                record.ret = SYSCALL_ERROR;
            } else if handler != 0 {
                // Push the signal frame: [resume_pc, saved_ra].
                let sp = cpu.regs.get(Reg::SP);
                let frame = sp - SIGNAL_FRAME_BYTES;
                let resume_pc = cpu.pc + 8;
                let saved_ra = cpu.regs.get(Reg::RA);
                let mut bytes = Vec::with_capacity(16);
                bytes.extend_from_slice(&resume_pc.to_le_bytes());
                bytes.extend_from_slice(&saved_ra.to_le_bytes());
                mem.write(frame, &bytes)?;
                record.mem_writes.push(MemDelta {
                    addr: frame,
                    bytes: Bytes::from(bytes),
                });
                record.reg_writes.push((Reg::SP, frame));
                record.pc_override = Some(handler);
            }
        }
        SyscallNo::SigReturn => {
            // Pop the signal frame `raise` pushed.
            let frame = cpu.regs.get(Reg::SP);
            let resume_pc = mem.read_u64(frame)?;
            let saved_ra = mem.read_u64(frame + 8)?;
            record.ret = 0;
            record.reg_writes.push((Reg::RA, saved_ra));
            record
                .reg_writes
                .push((Reg::SP, frame + SIGNAL_FRAME_BYTES));
            record.pc_override = Some(resume_pc);
        }
    }

    cpu.regs.set(Reg::R0, record.ret);
    cpu.pc += 8; // syscall is a single 8-byte word
    for &(reg, value) in &record.reg_writes {
        cpu.regs.set(reg, value);
    }
    if let Some(pc) = record.pc_override {
        cpu.pc = pc;
    }
    Ok(record)
}

/// Plays a previously captured [`SyscallRecord`] back against a process:
/// sets `r0`, advances `pc`, and re-applies memory writes and map
/// operations — without consulting the kernel. The mechanism SuperPin
/// slices use instead of re-executing syscalls (paper §4.2).
///
/// # Errors
///
/// Returns [`VmError::Mem`] if a recorded write no longer fits the child's
/// address space (which would indicate divergence between master and
/// slice).
pub fn apply_record(
    cpu: &mut CpuState,
    mem: &mut AddressSpace,
    record: &SyscallRecord,
) -> Result<(), VmError> {
    for op in &record.map_ops {
        match *op {
            MapOp::Map { addr, len } => {
                // Replay "given the same address" (paper §4.2).
                mem.map_anonymous(Some(addr), len)?;
            }
            MapOp::Unmap { addr } => {
                mem.unmap(addr)?;
            }
            MapOp::Brk { brk } => {
                mem.set_brk(brk);
            }
        }
    }
    for delta in &record.mem_writes {
        mem.write(delta.addr, &delta.bytes)?;
    }
    cpu.regs.set(Reg::R0, record.ret);
    cpu.pc += 8;
    for &(reg, value) in &record.reg_writes {
        cpu.regs.set(reg, value);
    }
    if let Some(pc) = record.pc_override {
        cpu.pc = pc;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::RegionKind;

    fn setup() -> (CpuState, AddressSpace, KernelState) {
        let mut mem = AddressSpace::new(0x0100_0000);
        mem.map_region(0x8000, 4096, RegionKind::Data).expect("map");
        let cpu = CpuState::at(0x1000);
        (cpu, mem, KernelState::new(7))
    }

    fn call(
        cpu: &mut CpuState,
        mem: &mut AddressSpace,
        state: &mut KernelState,
        number: SyscallNo,
        args: &[u64],
    ) -> SyscallRecord {
        cpu.regs.set(Reg::R0, number as u64);
        for (i, &arg) in args.iter().enumerate() {
            cpu.regs.set(Reg::new(1 + i as u8), arg);
        }
        execute_syscall(cpu, mem, state, 123).expect("syscall")
    }

    #[test]
    fn exit_records_code() {
        let (mut cpu, mut mem, mut state) = setup();
        let record = call(&mut cpu, &mut mem, &mut state, SyscallNo::Exit, &[9]);
        assert_eq!(record.exited, Some(9));
    }

    #[test]
    fn write_to_stdout_collects_output() {
        let (mut cpu, mut mem, mut state) = setup();
        mem.write(0x8000, b"hi").expect("write");
        let record = call(
            &mut cpu,
            &mut mem,
            &mut state,
            SyscallNo::Write,
            &[1, 0x8000, 2],
        );
        assert_eq!(record.ret, 2);
        assert_eq!(state.fds.stdout(), b"hi");
        assert!(record.mem_writes.is_empty());
    }

    #[test]
    fn read_from_stdin_records_memory_delta() {
        let (mut cpu, mut mem, mut state) = setup();
        state.fds.set_stdin(b"abcdef".to_vec());
        let record = call(
            &mut cpu,
            &mut mem,
            &mut state,
            SyscallNo::Read,
            &[0, 0x8000, 4],
        );
        assert_eq!(record.ret, 4);
        assert_eq!(mem.read_bytes(0x8000, 4).expect("read"), b"abcd");
        assert_eq!(record.mem_writes.len(), 1);
        assert_eq!(record.mem_writes[0].addr, 0x8000);
        assert_eq!(&record.mem_writes[0].bytes[..], b"abcd");
    }

    #[test]
    fn open_write_read_file_round_trip() {
        let (mut cpu, mut mem, mut state) = setup();
        mem.write(0x8000, b"f.txt").expect("write name");
        let open = call(
            &mut cpu,
            &mut mem,
            &mut state,
            SyscallNo::Open,
            &[0x8000, 5],
        );
        let fd = open.ret;
        assert!(fd >= 3);
        mem.write(0x8100, b"data").expect("write payload");
        call(
            &mut cpu,
            &mut mem,
            &mut state,
            SyscallNo::Write,
            &[fd, 0x8100, 4],
        );
        call(&mut cpu, &mut mem, &mut state, SyscallNo::Close, &[fd]);
        // Re-open and read back.
        let fd2 = call(
            &mut cpu,
            &mut mem,
            &mut state,
            SyscallNo::Open,
            &[0x8000, 5],
        )
        .ret;
        let read = call(
            &mut cpu,
            &mut mem,
            &mut state,
            SyscallNo::Read,
            &[fd2, 0x8200, 16],
        );
        assert_eq!(read.ret, 4);
        assert_eq!(mem.read_bytes(0x8200, 4).expect("read"), b"data");
    }

    #[test]
    fn brk_and_mmap_record_map_ops() {
        let (mut cpu, mut mem, mut state) = setup();
        let brk = call(
            &mut cpu,
            &mut mem,
            &mut state,
            SyscallNo::Brk,
            &[0x0100_2000],
        );
        assert_eq!(brk.ret, 0x0100_2000);
        assert_eq!(brk.map_ops, vec![MapOp::Brk { brk: 0x0100_2000 }]);

        let mmap = call(&mut cpu, &mut mem, &mut state, SyscallNo::Mmap, &[0, 8192]);
        let addr = mmap.ret;
        assert_ne!(addr, SYSCALL_ERROR);
        assert_eq!(mmap.map_ops, vec![MapOp::Map { addr, len: 8192 }]);

        let munmap = call(&mut cpu, &mut mem, &mut state, SyscallNo::Munmap, &[addr]);
        assert_eq!(munmap.ret, 0);
        assert_eq!(munmap.map_ops, vec![MapOp::Unmap { addr }]);
    }

    #[test]
    fn gettime_and_getpid() {
        let (mut cpu, mut mem, mut state) = setup();
        let time = call(&mut cpu, &mut mem, &mut state, SyscallNo::GetTime, &[]);
        assert_eq!(time.ret, 123);
        let pid = call(&mut cpu, &mut mem, &mut state, SyscallNo::GetPid, &[]);
        assert_eq!(pid.ret, 7);
    }

    #[test]
    fn getrandom_is_deterministic_per_pid() {
        let (mut cpu, mut mem, mut state) = setup();
        let a = call(&mut cpu, &mut mem, &mut state, SyscallNo::GetRandom, &[]).ret;
        let b = call(&mut cpu, &mut mem, &mut state, SyscallNo::GetRandom, &[]).ret;
        assert_ne!(a, b);
        let mut state2 = KernelState::new(7);
        let mut cpu2 = CpuState::at(0x1000);
        let a2 = call(&mut cpu2, &mut mem, &mut state2, SyscallNo::GetRandom, &[]).ret;
        assert_eq!(a, a2, "same pid ⇒ same stream");
    }

    #[test]
    fn unknown_syscall_number_is_an_error() {
        let (mut cpu, mut mem, mut state) = setup();
        cpu.regs.set(Reg::R0, 999);
        let err = execute_syscall(&mut cpu, &mut mem, &mut state, 0).unwrap_err();
        assert!(matches!(err, VmError::BadSyscall { number: 999, .. }));
    }

    #[test]
    fn playback_reproduces_read_effects() {
        let (mut cpu, mut mem, mut state) = setup();
        state.fds.set_stdin(b"xyz".to_vec());
        // Fork "slice" before the syscall runs in the master.
        let mut slice_cpu = cpu;
        let mut slice_mem = mem.fork();
        let record = call(
            &mut cpu,
            &mut mem,
            &mut state,
            SyscallNo::Read,
            &[0, 0x8000, 3],
        );

        // Slice plays back instead of executing.
        slice_cpu.regs.set(Reg::R0, SyscallNo::Read as u64);
        apply_record(&mut slice_cpu, &mut slice_mem, &record).expect("playback");
        assert_eq!(slice_cpu.regs.get(Reg::R0), 3);
        assert_eq!(slice_cpu.pc, cpu.pc);
        assert_eq!(
            slice_mem.read_bytes(0x8000, 3).expect("read"),
            mem.read_bytes(0x8000, 3).expect("read")
        );
        assert_eq!(slice_mem.content_digest(), mem.content_digest());
    }

    #[test]
    fn playback_reproduces_mmap_at_same_address() {
        let (mut cpu, mut mem, mut state) = setup();
        let mut slice_cpu = cpu;
        let mut slice_mem = mem.fork();
        let record = call(&mut cpu, &mut mem, &mut state, SyscallNo::Mmap, &[0, 4096]);
        apply_record(&mut slice_cpu, &mut slice_mem, &record).expect("playback");
        assert_eq!(slice_cpu.regs.get(Reg::R0), record.ret);
        assert!(slice_mem.is_mapped(record.ret));
        assert_eq!(slice_mem.content_digest(), mem.content_digest());
    }
}

#[cfg(test)]
mod signal_tests {
    use super::*;
    use crate::mem::RegionKind;

    fn setup() -> (CpuState, AddressSpace, KernelState) {
        let mut mem = AddressSpace::new(0x0100_0000);
        mem.map_region(0x8000, 4096, RegionKind::Data).expect("map");
        let mut cpu = CpuState::at(0x1000);
        cpu.regs.set(Reg::SP, 0x8800);
        (cpu, mem, KernelState::new(1))
    }

    fn call(
        cpu: &mut CpuState,
        mem: &mut AddressSpace,
        state: &mut KernelState,
        number: SyscallNo,
        args: &[u64],
    ) -> SyscallRecord {
        cpu.regs.set(Reg::R0, number as u64);
        for (i, &arg) in args.iter().enumerate() {
            cpu.regs.set(Reg::new(1 + i as u8), arg);
        }
        execute_syscall(cpu, mem, state, 0).expect("syscall")
    }

    #[test]
    fn sigaction_installs_handler() {
        let (mut cpu, mut mem, mut state) = setup();
        let rec = call(
            &mut cpu,
            &mut mem,
            &mut state,
            SyscallNo::SigAction,
            &[3, 0x2000],
        );
        assert_eq!(rec.ret, 0);
        assert_eq!(state.handler(3), 0x2000);
        // Out-of-range signal errors.
        let rec = call(
            &mut cpu,
            &mut mem,
            &mut state,
            SyscallNo::SigAction,
            &[NUM_SIGNALS as u64, 0x2000],
        );
        assert_eq!(rec.ret, SYSCALL_ERROR);
    }

    #[test]
    fn raise_without_handler_is_ignored() {
        let (mut cpu, mut mem, mut state) = setup();
        let pc_before = cpu.pc;
        let rec = call(&mut cpu, &mut mem, &mut state, SyscallNo::Raise, &[3]);
        assert_eq!(rec.ret, 0);
        assert!(rec.pc_override.is_none());
        assert_eq!(cpu.pc, pc_before + 8, "falls through");
    }

    #[test]
    fn raise_transfers_to_handler_and_sigreturn_resumes() {
        let (mut cpu, mut mem, mut state) = setup();
        cpu.regs.set(Reg::RA, 0x5555);
        call(
            &mut cpu,
            &mut mem,
            &mut state,
            SyscallNo::SigAction,
            &[2, 0x3000],
        );
        let raise_pc = cpu.pc;
        let sp_before = cpu.regs.get(Reg::SP);

        let rec = call(&mut cpu, &mut mem, &mut state, SyscallNo::Raise, &[2]);
        assert_eq!(cpu.pc, 0x3000, "control at the handler");
        assert_eq!(cpu.regs.get(Reg::SP), sp_before - SIGNAL_FRAME_BYTES);
        assert_eq!(rec.pc_override, Some(0x3000));
        assert_eq!(rec.mem_writes.len(), 1, "frame push recorded");

        // Handler body would run here; now return.
        let rec = call(&mut cpu, &mut mem, &mut state, SyscallNo::SigReturn, &[]);
        assert_eq!(cpu.pc, raise_pc + 8, "resumed past the raise");
        assert_eq!(cpu.regs.get(Reg::SP), sp_before, "frame popped");
        assert_eq!(cpu.regs.get(Reg::RA), 0x5555, "ra restored");
        assert_eq!(rec.pc_override, Some(raise_pc + 8));
    }

    #[test]
    fn signal_records_replay_exactly() {
        let (mut cpu, mut mem, mut state) = setup();
        cpu.regs.set(Reg::RA, 0x7777);
        let mut replica_cpu = cpu;
        let mut replica_mem = mem.fork();

        let install = call(
            &mut cpu,
            &mut mem,
            &mut state,
            SyscallNo::SigAction,
            &[1, 0x4000],
        );
        let deliver = call(&mut cpu, &mut mem, &mut state, SyscallNo::Raise, &[1]);
        let ret = call(&mut cpu, &mut mem, &mut state, SyscallNo::SigReturn, &[]);

        for record in [&install, &deliver, &ret] {
            // In a real slice the guest re-executes the argument setup;
            // mirror it here.
            for (i, &arg) in record.args.iter().enumerate() {
                replica_cpu.regs.set(Reg::new(1 + i as u8), arg);
            }
            replica_cpu.regs.set(Reg::R0, record.number as u64);
            apply_record(&mut replica_cpu, &mut replica_mem, record).expect("playback");
        }
        assert_eq!(replica_cpu, cpu);
        assert_eq!(replica_mem.content_digest(), mem.content_digest());
    }
}

#[cfg(test)]
mod enomem_tests {
    use super::*;
    use crate::mem::{RegionKind, PAGE_SIZE};

    const HEAP_BASE: u64 = 0x0100_0000;

    fn setup(limit: Option<u64>) -> (CpuState, AddressSpace, KernelState) {
        let mut mem = AddressSpace::new(HEAP_BASE);
        mem.map_region(0x8000, 4096, RegionKind::Data).expect("map");
        mem.set_mem_limit(limit);
        let cpu = CpuState::at(0x1000);
        (cpu, mem, KernelState::new(7))
    }

    fn call(
        cpu: &mut CpuState,
        mem: &mut AddressSpace,
        state: &mut KernelState,
        number: SyscallNo,
        args: &[u64],
    ) -> SyscallRecord {
        cpu.regs.set(Reg::R0, number as u64);
        for (i, &arg) in args.iter().enumerate() {
            cpu.regs.set(Reg::new(1 + i as u8), arg);
        }
        execute_syscall(cpu, mem, state, 0).expect("syscall")
    }

    #[test]
    fn brk_past_the_budget_is_errno_and_the_guest_recovers() {
        let limit = 4 * PAGE_SIZE as u64;
        let (mut cpu, mut mem, mut state) = setup(Some(limit));
        let brk_before = mem.brk();

        // One page over budget: the guest observes errno, the heap is
        // untouched, and no map op leaks into the record.
        let rec = call(
            &mut cpu,
            &mut mem,
            &mut state,
            SyscallNo::Brk,
            &[HEAP_BASE + limit + PAGE_SIZE as u64],
        );
        assert_eq!(rec.ret, SYSCALL_ERROR);
        assert!(rec.map_ops.is_empty());
        assert_eq!(mem.brk(), brk_before);

        // The same guest can retry with a smaller request and proceed.
        let rec = call(
            &mut cpu,
            &mut mem,
            &mut state,
            SyscallNo::Brk,
            &[HEAP_BASE + limit],
        );
        assert_eq!(rec.ret, HEAP_BASE + limit);
        assert_eq!(mem.brk(), HEAP_BASE + limit);
    }

    #[test]
    fn mmap_past_the_budget_is_errno_and_the_guest_recovers() {
        let limit = 4 * PAGE_SIZE as u64;
        let (mut cpu, mut mem, mut state) = setup(Some(limit));

        let rec = call(
            &mut cpu,
            &mut mem,
            &mut state,
            SyscallNo::Mmap,
            &[0, limit + 1],
        );
        assert_eq!(rec.ret, SYSCALL_ERROR);
        assert!(rec.map_ops.is_empty());
        assert_eq!(mem.dynamic_bytes(), 0);

        // A request inside the budget still succeeds afterwards, and
        // unmapping frees budget for the previously impossible size.
        let rec = call(&mut cpu, &mut mem, &mut state, SyscallNo::Mmap, &[0, limit]);
        assert_ne!(rec.ret, SYSCALL_ERROR);
        let addr = rec.ret;
        call(&mut cpu, &mut mem, &mut state, SyscallNo::Munmap, &[addr]);
        let rec = call(&mut cpu, &mut mem, &mut state, SyscallNo::Mmap, &[0, limit]);
        assert_ne!(rec.ret, SYSCALL_ERROR);
    }

    #[test]
    fn failed_allocation_replays_as_a_no_op() {
        let (mut cpu, mut mem, mut state) = setup(Some(0));
        let mut slice_cpu = cpu;
        let mut slice_mem = mem.fork();

        let rec = call(
            &mut cpu,
            &mut mem,
            &mut state,
            SyscallNo::Brk,
            &[HEAP_BASE + PAGE_SIZE as u64],
        );
        assert_eq!(rec.ret, SYSCALL_ERROR);

        slice_cpu.regs.set(Reg::R1, HEAP_BASE + PAGE_SIZE as u64);
        slice_cpu.regs.set(Reg::R0, SyscallNo::Brk as u64);
        apply_record(&mut slice_cpu, &mut slice_mem, &rec).expect("playback");
        assert_eq!(slice_cpu.regs.get(Reg::R0), SYSCALL_ERROR);
        assert_eq!(slice_cpu, cpu);
        assert_eq!(slice_mem.content_digest(), mem.content_digest());
        assert_eq!(slice_mem.brk(), mem.brk());
    }

    #[test]
    fn no_syscall_panics_under_a_zero_budget() {
        // Every syscall must degrade to a clean return value or a typed
        // VmError under a 0-byte budget — never a panic. Arguments are
        // all zero, the hostile-but-representable baseline.
        for number in SyscallNo::ALL {
            let (mut cpu, mut mem, mut state) = setup(Some(0));
            cpu.regs.set(Reg::R0, number as u64);
            for i in 1..6u8 {
                cpu.regs.set(Reg::new(i), 0);
            }
            let _ = execute_syscall(&mut cpu, &mut mem, &mut state, 0);
        }
    }
}

//! In-memory file descriptors and files.

use std::collections::BTreeMap;
use std::fmt;

/// File-descriptor errors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsError {
    /// The descriptor is not open.
    BadFd(u64),
    /// The descriptor does not support the attempted operation.
    Unsupported(u64),
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::BadFd(fd) => write!(f, "bad file descriptor {fd}"),
            FsError::Unsupported(fd) => {
                write!(f, "operation not supported on descriptor {fd}")
            }
        }
    }
}

impl std::error::Error for FsError {}

#[derive(Clone, Debug)]
struct OpenFile {
    name: String,
    pos: usize,
}

/// A process's file-descriptor table over an in-memory filesystem.
///
/// Layout mirrors Unix conventions: fd 0 is stdin (a preset input buffer),
/// fd 1 is stdout, fd 2 is stderr (merged into stdout), and `open` hands
/// out descriptors from 3. The whole table is `Clone`, so `fork`
/// duplicates it — including per-descriptor file positions.
#[derive(Clone, Debug, Default)]
pub struct FdTable {
    stdin: Vec<u8>,
    stdin_pos: usize,
    stdout: Vec<u8>,
    files: BTreeMap<String, Vec<u8>>,
    open: BTreeMap<u64, OpenFile>,
    next_fd: u64,
}

impl FdTable {
    /// Creates a table with empty stdin/stdout and no files.
    pub fn new() -> FdTable {
        FdTable {
            next_fd: 3,
            ..FdTable::default()
        }
    }

    /// Replaces the stdin buffer (and rewinds it).
    pub fn set_stdin(&mut self, data: Vec<u8>) {
        self.stdin = data;
        self.stdin_pos = 0;
    }

    /// Everything the process has written to stdout/stderr so far.
    pub fn stdout(&self) -> &[u8] {
        &self.stdout
    }

    /// Pre-populates a named file (test and workload setup).
    pub fn put_file(&mut self, name: &str, data: Vec<u8>) {
        self.files.insert(name.to_owned(), data);
    }

    /// The current contents of a named file, if it exists.
    pub fn file(&self, name: &str) -> Option<&[u8]> {
        self.files.get(name).map(Vec::as_slice)
    }

    /// Opens (creating if necessary) the named file; returns the new fd.
    pub fn open(&mut self, name: &str) -> u64 {
        self.files.entry(name.to_owned()).or_default();
        let fd = self.next_fd;
        self.next_fd += 1;
        self.open.insert(
            fd,
            OpenFile {
                name: name.to_owned(),
                pos: 0,
            },
        );
        fd
    }

    /// Closes a descriptor.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::BadFd`] for unknown or standard descriptors.
    pub fn close(&mut self, fd: u64) -> Result<(), FsError> {
        self.open.remove(&fd).map(|_| ()).ok_or(FsError::BadFd(fd))
    }

    /// Reads up to `len` bytes from a descriptor, advancing its position.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::BadFd`] for unknown descriptors or
    /// [`FsError::Unsupported`] when reading stdout.
    pub fn read(&mut self, fd: u64, len: usize) -> Result<Vec<u8>, FsError> {
        match fd {
            0 => {
                let available = self.stdin.len().saturating_sub(self.stdin_pos);
                let n = len.min(available);
                let data = self.stdin[self.stdin_pos..self.stdin_pos + n].to_vec();
                self.stdin_pos += n;
                Ok(data)
            }
            1 | 2 => Err(FsError::Unsupported(fd)),
            _ => {
                let handle = self.open.get_mut(&fd).ok_or(FsError::BadFd(fd))?;
                let contents = self
                    .files
                    .get(&handle.name)
                    .map(Vec::as_slice)
                    .unwrap_or(&[]);
                let available = contents.len().saturating_sub(handle.pos);
                let n = len.min(available);
                let data = contents[handle.pos..handle.pos + n].to_vec();
                handle.pos += n;
                Ok(data)
            }
        }
    }

    /// Writes bytes to a descriptor; returns the count written.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::BadFd`] for unknown descriptors or
    /// [`FsError::Unsupported`] when writing stdin.
    pub fn write(&mut self, fd: u64, data: &[u8]) -> Result<usize, FsError> {
        match fd {
            0 => Err(FsError::Unsupported(fd)),
            1 | 2 => {
                self.stdout.extend_from_slice(data);
                Ok(data.len())
            }
            _ => {
                let handle = self.open.get_mut(&fd).ok_or(FsError::BadFd(fd))?;
                let contents = self.files.entry(handle.name.clone()).or_default();
                // Writes go at the handle position, extending as needed.
                if handle.pos > contents.len() {
                    contents.resize(handle.pos, 0);
                }
                let end = handle.pos + data.len();
                if end > contents.len() {
                    contents.resize(end, 0);
                }
                contents[handle.pos..end].copy_from_slice(data);
                handle.pos = end;
                Ok(data.len())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stdin_reads_consume() {
        let mut fds = FdTable::new();
        fds.set_stdin(b"hello".to_vec());
        assert_eq!(fds.read(0, 3).expect("read"), b"hel");
        assert_eq!(fds.read(0, 10).expect("read"), b"lo");
        assert_eq!(fds.read(0, 10).expect("read"), b"");
    }

    #[test]
    fn stdout_accumulates() {
        let mut fds = FdTable::new();
        fds.write(1, b"a").expect("write");
        fds.write(2, b"b").expect("write");
        assert_eq!(fds.stdout(), b"ab");
    }

    #[test]
    fn file_positions_are_per_descriptor() {
        let mut fds = FdTable::new();
        fds.put_file("x", b"0123456789".to_vec());
        let fd1 = fds.open("x");
        let fd2 = fds.open("x");
        assert_eq!(fds.read(fd1, 4).expect("read"), b"0123");
        assert_eq!(fds.read(fd2, 2).expect("read"), b"01");
        assert_eq!(fds.read(fd1, 2).expect("read"), b"45");
    }

    #[test]
    fn write_extends_file() {
        let mut fds = FdTable::new();
        let fd = fds.open("new");
        fds.write(fd, b"abc").expect("write");
        fds.write(fd, b"def").expect("write");
        assert_eq!(fds.file("new"), Some(&b"abcdef"[..]));
    }

    #[test]
    fn bad_descriptor_errors() {
        let mut fds = FdTable::new();
        assert_eq!(fds.read(42, 1), Err(FsError::BadFd(42)));
        assert_eq!(fds.write(0, b"x"), Err(FsError::Unsupported(0)));
        assert_eq!(fds.read(1, 1), Err(FsError::Unsupported(1)));
        assert_eq!(fds.close(3), Err(FsError::BadFd(3)));
    }

    #[test]
    fn close_then_use_is_an_error() {
        let mut fds = FdTable::new();
        let fd = fds.open("f");
        fds.close(fd).expect("close");
        assert_eq!(fds.read(fd, 1), Err(FsError::BadFd(fd)));
    }

    #[test]
    fn clone_duplicates_positions() {
        let mut fds = FdTable::new();
        fds.put_file("x", b"0123".to_vec());
        let fd = fds.open("x");
        fds.read(fd, 2).expect("read");
        let mut forked = fds.clone();
        assert_eq!(forked.read(fd, 2).expect("read"), b"23");
        assert_eq!(fds.read(fd, 2).expect("read"), b"23");
    }
}

//! Save/restore elision wired through the full stack: a [`LiveMap`]
//! installed via [`SuperPinConfig::with_liveness`] reaches every slice
//! engine (and [`baseline::run_pin_configured`] for serial Pin),
//! shrinking modeled analysis overhead while the merged instruction
//! counts stay exactly equal to native.

use std::sync::Arc;
use superpin::baseline::{self, run_native};
use superpin::{SharedMem, SuperPinConfig, SuperPinRunner, SuperTool};
use superpin_dbi::{CostModel, IPoint, Inserter, LiveMap, Pintool, Trace};
use superpin_isa::{Program, ProgramBuilder, Reg};
use superpin_vm::process::Process;

#[derive(Clone)]
struct Count {
    count: u64,
    area: superpin::AreaId,
}

impl Pintool for Count {
    fn instrument_trace(&mut self, trace: &Trace, inserter: &mut Inserter<Self>) {
        for iref in trace.insts() {
            inserter.insert_call(iref.addr, IPoint::Before, |t, _, _| t.count += 1, vec![]);
        }
    }
}

impl SuperTool for Count {
    fn reset(&mut self, _slice: u32) {
        self.count = 0;
    }
    fn on_slice_end(&mut self, _slice: u32, shared: &SharedMem) {
        shared.area(self.area).add(0, self.count);
    }
}

/// A countdown loop: at the loop head only `r0` and `r1` of the four
/// analysis-clobbered registers are live, so two spills per call are
/// elided once liveness is installed.
fn loop_program(iters: i64) -> Program {
    let mut b = ProgramBuilder::new();
    b.label("main");
    b.li(Reg::R1, iters);
    b.label("loop");
    b.subi(Reg::R1, Reg::R1, 1);
    b.bne(Reg::R1, Reg::R0, "loop");
    b.exit(0);
    b.build().expect("build")
}

fn run_super(program: &Program, cfg: SuperPinConfig) -> (u64, superpin::SuperPinReport) {
    let shared = SharedMem::new();
    let tool = Count {
        count: 0,
        area: shared.create_area(1, superpin::AutoMerge::Manual),
    };
    let area = tool.area;
    let report = SuperPinRunner::new(
        Process::load(1, program).expect("load"),
        tool,
        shared.clone(),
        cfg,
    )
    .expect("setup")
    .run()
    .expect("run");
    (shared.area(area).read(0), report)
}

fn cfg(timeslice: u64) -> SuperPinConfig {
    let mut cfg = SuperPinConfig::paper_default();
    cfg.timeslice_cycles = timeslice;
    cfg.quantum_cycles = (timeslice / 20).max(100);
    cfg
}

#[test]
fn sliced_run_with_elision_stays_exact_and_costs_less() {
    let program = loop_program(6_000);
    let native = run_native(Process::load(1, &program).expect("load")).expect("native");
    let live = Arc::new(LiveMap::compute(&program).expect("liveness"));

    let (plain_count, plain) = run_super(&program, cfg(2_000));
    let (thin_count, thin) = run_super(&program, cfg(2_000).with_liveness(live));

    // Exactness is untouched: both runs merge to the native icount.
    assert_eq!(plain_count, native.insts);
    assert_eq!(thin_count, native.insts);
    assert_eq!(thin.slice_inst_total(), thin.master_insts);

    // Every slice does the same calls for fewer modeled cycles.
    let analysis = |report: &superpin::SuperPinReport| -> (u64, u64) {
        report.slices.iter().fold((0, 0), |(calls, cycles), slice| {
            (
                calls + slice.engine.analysis_calls,
                cycles + slice.engine.cycles.analysis,
            )
        })
    };
    let (plain_calls, plain_cycles) = analysis(&plain);
    let (thin_calls, thin_cycles) = analysis(&thin);
    assert_eq!(plain_calls, thin_calls);
    assert!(
        thin_cycles < plain_cycles,
        "elided analysis cycles {thin_cycles} must beat conservative {plain_cycles}"
    );
    // Cheaper slices can only help wall time.
    assert!(thin.total_cycles <= plain.total_cycles);
}

#[test]
fn serial_pin_with_elision_stays_exact_and_costs_less() {
    let program = loop_program(6_000);
    let live = Arc::new(LiveMap::compute(&program).expect("liveness"));
    let cost = CostModel::paper_default();
    let tool = || {
        let shared = SharedMem::new();
        Count {
            count: 0,
            area: shared.create_area(1, superpin::AutoMerge::Manual),
        }
    };

    let load = || Process::load(1, &program).expect("load");
    let plain = baseline::run_pin_with_cost(load(), tool(), &cost).expect("pin");
    let thin = baseline::run_pin_configured(load(), tool(), &cost, Some(live)).expect("pin");

    assert_eq!(thin.tool.count, plain.tool.count);
    assert_eq!(thin.insts, plain.insts);
    assert_eq!(thin.stats.analysis_calls, plain.stats.analysis_calls);
    assert!(
        thin.cycles < plain.cycles,
        "elided serial Pin {} must beat conservative {}",
        thin.cycles,
        plain.cycles
    );
    assert_eq!(thin.stats.cycles.app, plain.stats.cycles.app);
}

//! Edge-case tests for the SuperPin runner built on hand-written
//! programs (no workload catalog), exercising paths the behavioural
//! suite's realistic workloads don't isolate.

use superpin::baseline::run_native;
use superpin::{SharedMem, SliceEnd, SuperPinConfig, SuperPinRunner, SuperTool};
use superpin_dbi::{IPoint, Inserter, Pintool, Trace};
use superpin_isa::{Program, ProgramBuilder, Reg};
use superpin_sched::Policy;
use superpin_vm::process::Process;

#[derive(Clone)]
struct Count {
    count: u64,
    area: superpin::AreaId,
}

impl Count {
    fn new(shared: &SharedMem) -> Count {
        Count {
            count: 0,
            area: shared.create_area(1, superpin::AutoMerge::Manual),
        }
    }
}

impl Pintool for Count {
    fn instrument_trace(&mut self, trace: &Trace, inserter: &mut Inserter<Self>) {
        for iref in trace.insts() {
            inserter.insert_call(iref.addr, IPoint::Before, |t, _, _| t.count += 1, vec![]);
        }
    }
}

impl SuperTool for Count {
    fn reset(&mut self, _slice: u32) {
        self.count = 0;
    }
    fn on_slice_end(&mut self, _slice: u32, shared: &SharedMem) {
        shared.area(self.area).add(0, self.count);
    }
}

fn cfg(timeslice: u64) -> SuperPinConfig {
    let mut cfg = SuperPinConfig::paper_default();
    cfg.timeslice_cycles = timeslice;
    cfg.quantum_cycles = (timeslice / 20).max(100);
    cfg
}

fn run_count(program: &Program, cfg: SuperPinConfig) -> (u64, superpin::SuperPinReport) {
    let shared = SharedMem::new();
    let tool = Count::new(&shared);
    let area = tool.area;
    let report = SuperPinRunner::new(
        Process::load(1, program).expect("load"),
        tool,
        shared.clone(),
        cfg,
    )
    .expect("setup")
    .run()
    .expect("run");
    (shared.area(area).read(0), report)
}

fn loop_program(iters: i64) -> Program {
    let mut b = ProgramBuilder::new();
    b.label("main");
    b.li(Reg::R1, iters);
    b.label("loop");
    b.subi(Reg::R1, Reg::R1, 1);
    b.bne(Reg::R1, Reg::R0, "loop");
    b.exit(0);
    b.build().expect("build")
}

#[test]
fn immediate_exit_program() {
    let mut b = ProgramBuilder::new();
    b.label("main");
    b.exit(0);
    let program = b.build().expect("build");
    let (count, report) = run_count(&program, cfg(1_000));
    let native = run_native(Process::load(1, &program).expect("load")).expect("native");
    assert_eq!(count, native.insts);
    assert_eq!(report.slice_count(), 1);
    assert_eq!(report.slices[0].end, SliceEnd::Exited);
    assert_eq!(report.forks_on_timeout, 0);
}

#[test]
fn syscall_only_program() {
    // A program that is almost entirely syscalls (getpid spam).
    let mut b = ProgramBuilder::new();
    b.label("main");
    b.li(Reg::R2, 40);
    b.label("loop");
    b.li(Reg::R0, 9);
    b.syscall();
    b.subi(Reg::R2, Reg::R2, 1);
    b.bne(Reg::R2, Reg::R0, "loop");
    b.exit(0);
    let program = b.build().expect("build");
    let native = run_native(Process::load(1, &program).expect("load")).expect("native");
    let (count, report) = run_count(&program, cfg(500));
    assert_eq!(count, native.insts);
    assert!(report.master_syscalls >= 40);
}

#[test]
fn master_first_policy_runs_exactly() {
    let program = loop_program(4_000);
    let native = run_native(Process::load(1, &program).expect("load")).expect("native");
    let mut config = cfg(1_500);
    config.policy = Policy::MasterFirst;
    let (count, report) = run_count(&program, config);
    assert_eq!(count, native.insts);
    assert!(report.slice_count() > 2);
}

#[test]
fn master_first_finishes_master_sooner_than_fair_share() {
    let program = loop_program(30_000);
    let mut fair = cfg(2_000);
    fair.max_slices = 2; // force contention
    let mut pinned = fair.clone();
    pinned.policy = Policy::MasterFirst;
    let (_, fair_report) = run_count(&program, fair);
    let (_, pinned_report) = run_count(&program, pinned);
    assert!(
        pinned_report.master_exit_cycles <= fair_report.master_exit_cycles,
        "a pinned master ({}) must not exit later than a fair-share one ({})",
        pinned_report.master_exit_cycles,
        fair_report.master_exit_cycles
    );
}

#[test]
fn shared_cache_with_single_slice_changes_nothing() {
    let program = loop_program(500);
    let plain = run_count(&program, cfg(u64::MAX / 8));
    let mut shared_cfg = cfg(u64::MAX / 8);
    shared_cfg.shared_code_cache = true;
    let shared = run_count(&program, shared_cfg);
    assert_eq!(plain.1.slice_count(), 1);
    assert_eq!(shared.1.slice_count(), 1);
    // One slice ⇒ no adoption opportunities ⇒ identical cost.
    assert_eq!(plain.1.total_cycles, shared.1.total_cycles);
    assert_eq!(plain.0, shared.0);
}

#[test]
fn tiny_timeslice_still_exact() {
    // Timeslices close to the quantum floor: lots of zero-progress timer
    // checks, fork debt, and sub-quantum slices.
    let program = loop_program(2_000);
    let native = run_native(Process::load(1, &program).expect("load")).expect("native");
    let mut config = SuperPinConfig::paper_default();
    config.timeslice_cycles = 300;
    config.quantum_cycles = 100;
    let (count, report) = run_count(&program, config);
    assert_eq!(count, native.insts);
    assert!(report.slice_count() > 3);
}

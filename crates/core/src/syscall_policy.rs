//! Per-syscall slicing policy (paper §4.2).
//!
//! "After each system call, SuperPin must either (a) force a new slice or
//! (b) record the effects of the system call and play them back in the
//! slices. On some system calls, we perform custom emulation actions."

use superpin_vm::kernel::SyscallNo;

/// What the control process does about a syscall observed in the master.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyscallAction {
    /// The call "can be duplicated without any adverse side effects"
    /// (paper's `brk` example; anonymous `mmap` "can be repeated given
    /// the same address"). Replayed from its address-space operations and
    /// charged **no** record-budget space.
    Duplicate,
    /// Record register results and memory modifications; slices play them
    /// back. Counts against the `-spsysrecs` budget.
    RecordReplay,
    /// Unknown or unsafe: fork a new timeslice at this syscall.
    ForceSlice,
}

/// Classifies a syscall. `recording_enabled` is false when
/// `-spsysrecs 0`, which "disable\[s\] system call recording" — every
/// recordable syscall then forces a new slice.
pub fn classify(number: SyscallNo, recording_enabled: bool) -> SyscallAction {
    match number {
        // Custom emulation actions: pure address-space effects.
        SyscallNo::Brk | SyscallNo::Mmap | SyscallNo::Munmap => SyscallAction::Duplicate,
        // Exit terminates the run; it is always delivered to the final
        // slice as its last record.
        SyscallNo::Exit => SyscallAction::RecordReplay,
        // Data-bearing calls.
        SyscallNo::Read
        | SyscallNo::Write
        | SyscallNo::Open
        | SyscallNo::Close
        | SyscallNo::GetTime
        | SyscallNo::GetPid
        | SyscallNo::GetRandom
        // Signal installation, delivery, and return are fully captured
        // by their records (stack frame writes + register/pc effects),
        // so slices replay them exactly.
        | SyscallNo::SigAction
        | SyscallNo::Raise
        | SyscallNo::SigReturn => {
            if recording_enabled {
                SyscallAction::RecordReplay
            } else {
                SyscallAction::ForceSlice
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_calls_are_duplicated() {
        for no in [SyscallNo::Brk, SyscallNo::Mmap, SyscallNo::Munmap] {
            assert_eq!(classify(no, true), SyscallAction::Duplicate);
            assert_eq!(
                classify(no, false),
                SyscallAction::Duplicate,
                "duplication needs no record budget"
            );
        }
    }

    #[test]
    fn data_calls_record_when_enabled() {
        assert_eq!(classify(SyscallNo::Read, true), SyscallAction::RecordReplay);
        assert_eq!(
            classify(SyscallNo::GetTime, true),
            SyscallAction::RecordReplay
        );
    }

    #[test]
    fn disabling_recording_forces_slices() {
        assert_eq!(classify(SyscallNo::Read, false), SyscallAction::ForceSlice);
        assert_eq!(classify(SyscallNo::Write, false), SyscallAction::ForceSlice);
    }

    #[test]
    fn exit_is_always_deliverable() {
        assert_eq!(classify(SyscallNo::Exit, true), SyscallAction::RecordReplay);
        assert_eq!(
            classify(SyscallNo::Exit, false),
            SyscallAction::RecordReplay
        );
    }

    #[test]
    fn every_syscall_is_classified() {
        // `classify` has no wildcard arm, so this is compile-checked too;
        // the loop documents that `SyscallNo::ALL` is the whole universe
        // and pins each call to exactly one action in both modes.
        for no in SyscallNo::ALL {
            for enabled in [true, false] {
                let action = classify(no, enabled);
                assert!(
                    matches!(
                        action,
                        SyscallAction::Duplicate
                            | SyscallAction::RecordReplay
                            | SyscallAction::ForceSlice
                    ),
                    "{no:?} unclassified"
                );
            }
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::ProptestConfig::with_cases(256))]
        /// The `-spsysrecs 0` rule over the whole syscall universe:
        /// disabling recording turns every `RecordReplay` into
        /// `ForceSlice` — except `Exit`, which must always reach the
        /// final slice as its last record — and touches nothing else.
        #[test]
        fn disabled_recording_flips_exactly_the_recordable_calls(
            index in 0usize..SyscallNo::ALL.len(),
        ) {
            let no = SyscallNo::ALL[index];
            let enabled = classify(no, true);
            let disabled = classify(no, false);
            match enabled {
                SyscallAction::RecordReplay if no != SyscallNo::Exit => {
                    proptest::prop_assert_eq!(
                        disabled,
                        SyscallAction::ForceSlice,
                        "{:?} must force when recording is off", no
                    );
                }
                action => {
                    proptest::prop_assert_eq!(
                        disabled, action,
                        "{:?} must not change when recording is off", no
                    );
                }
            }
            // ForceSlice is never *weakened* by enabling recording.
            if disabled == SyscallAction::Duplicate {
                proptest::prop_assert_eq!(enabled, SyscallAction::Duplicate);
            }
        }
    }
}

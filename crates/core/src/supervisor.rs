//! Slice supervision: checkpoints, replay journals, watchdog state, and
//! the bounded retry → degrade ladder (see DESIGN.md §4.8).
//!
//! The supervisor's contract is **bit-identical recovery**: a slice that
//! is condemned (injected fault, runaway, lost worker) is rebuilt by
//! cloning its wake-time checkpoint and replaying the exact epoch
//! schedule it already received — same budgets, same quantum timestamps,
//! same shared-cache snapshots — with fault injection off. Because every
//! simulated quantity is a pure function of that schedule, the rebuilt
//! slice is field-by-field identical to one that never faulted; the only
//! trace recovery leaves in the report is the
//! [`slice_retries`](crate::report::SuperPinReport::slice_retries) /
//! [`slices_degraded`](crate::report::SuperPinReport::slices_degraded)
//! counters.

use crate::api::SuperTool;
use crate::error::SpError;
use crate::slice::SliceRuntime;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use superpin_sched::{watchdog_deadline_quanta, SliceEta};

/// One step of a slice's deterministic epoch schedule, recorded by the
/// runner as it dispatches work and replayed verbatim on recovery.
pub enum ReplayStep {
    /// One epoch of instrumented execution
    /// ([`SliceRuntime::advance_epoch`] with exactly these arguments).
    Advance {
        /// Per-quantum cycle budget the scheduler granted.
        budget: u64,
        /// Quanta in the (possibly truncated) epoch.
        quanta: u64,
        /// Virtual time at the epoch's start.
        epoch_start: u64,
        /// Quantum length in cycles.
        quantum: u64,
    },
    /// An epoch-barrier shared-cache resync: fresh traces drained (they
    /// were already published by the condemned incarnation — the index is
    /// idempotent) and this snapshot installed for the next epoch.
    Snapshot(Arc<HashSet<u64>>),
    /// The memory governor flushed this slice's code cache at a barrier.
    /// Eviction changes cycle accounting (re-execution recompiles at
    /// full JIT cost), so a rebuilt slice must replay it at the same
    /// point in its schedule to stay bit-identical.
    EvictCache,
}

/// Outcome of condemning a slice.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Rebuild and re-arm injection with this salt (fresh fault
    /// schedule, so the retry cannot re-hit the fault that condemned it).
    Retry {
        /// Salt for [`SliceRuntime::arm_chaos`].
        salt: u64,
    },
    /// Retry budget exhausted: rebuild injection-free and pin the slice
    /// to the supervisor thread for the rest of its life.
    Degrade,
    /// The slice already failed while degraded — a genuine defect.
    Unrecoverable,
}

/// Per-slice recovery state, created when the slice wakes (its boundary,
/// records, and split point are final from that moment on).
struct SliceGuard<T: SuperTool> {
    /// Injection-free deep copy of the slice at wake. `None` after the
    /// memory governor's eviction ladder reclaimed it — the slice can no
    /// longer be rebuilt, which is why the ladder only drops checkpoints
    /// of committed ([`Done`](crate::slice::SliceState::Done)) slices.
    checkpoint: Option<SliceRuntime<T>>,
    /// Epoch schedule delivered since the checkpoint.
    journal: Vec<ReplayStep>,
    /// Quanta of execution granted since wake (watchdog clock).
    quanta_since_wake: u64,
    /// Watchdog deadline in quanta-since-wake, fixed at the first
    /// dispatch from the epoch planner's completion prediction.
    deadline: Option<u64>,
    retries: u32,
    degraded: bool,
}

/// Tracks every woken slice's checkpoint + journal and owns the retry
/// accounting surfaced in the report.
pub struct SliceSupervisor<T: SuperTool> {
    guards: HashMap<u32, SliceGuard<T>>,
    watchdog_factor: u64,
    max_retries: u32,
    /// Condemnations repaired by checkpoint replay (plus transient fork
    /// and publish retries).
    pub slice_retries: u64,
    /// Slices that exhausted the retry budget and run pinned + disarmed.
    pub slices_degraded: u64,
}

impl<T: SuperTool> SliceSupervisor<T> {
    /// A supervisor with no guards yet.
    pub fn new(watchdog_factor: u64, max_retries: u32) -> SliceSupervisor<T> {
        SliceSupervisor {
            guards: HashMap::new(),
            watchdog_factor: watchdog_factor.max(1),
            max_retries,
            slice_retries: 0,
            slices_degraded: 0,
        }
    }

    /// Checkpoints a freshly woken slice. Idempotent per slice.
    pub fn guard(&mut self, slice: &SliceRuntime<T>) {
        self.guards
            .entry(slice.num())
            .or_insert_with(|| SliceGuard {
                checkpoint: Some(slice.checkpoint()),
                journal: Vec::new(),
                quanta_since_wake: 0,
                deadline: None,
                retries: 0,
                degraded: false,
            });
    }

    /// Whether this slice is pinned to the supervisor thread.
    pub fn is_degraded(&self, num: u32) -> bool {
        self.guards.get(&num).is_some_and(|guard| guard.degraded)
    }

    /// Slice numbers currently degraded (pinned inline).
    pub fn degraded_set(&self) -> HashSet<u32> {
        self.guards
            .iter()
            .filter(|(_, guard)| guard.degraded)
            .map(|(&num, _)| num)
            .collect()
    }

    /// Whether the slice's watchdog clock has passed its deadline.
    pub fn watchdog_expired(&self, num: u32) -> bool {
        self.guards.get(&num).is_some_and(|guard| {
            guard
                .deadline
                .is_some_and(|deadline| guard.quanta_since_wake > deadline)
        })
    }

    /// Journals one epoch of dispatched work and advances the watchdog
    /// clock. The deadline is pinned on first dispatch: `factor ×` the
    /// planner's completion prediction for the slice (and never less
    /// than `factor` quanta, so fresh slices are never condemned on
    /// their first barrier).
    pub fn journal_advance(
        &mut self,
        num: u32,
        budget: u64,
        quanta: u64,
        epoch_start: u64,
        quantum: u64,
        eta: SliceEta,
    ) {
        let factor = self.watchdog_factor;
        let Some(guard) = self.guards.get_mut(&num) else {
            return;
        };
        if guard.deadline.is_none() {
            guard.deadline =
                Some(guard.quanta_since_wake + watchdog_deadline_quanta(eta, budget, factor));
        }
        guard.quanta_since_wake += quanta;
        guard.journal.push(ReplayStep::Advance {
            budget,
            quanta,
            epoch_start,
            quantum,
        });
    }

    /// Journals an epoch-barrier shared-cache snapshot.
    pub fn journal_snapshot(&mut self, num: u32, snapshot: Arc<HashSet<u64>>) {
        if let Some(guard) = self.guards.get_mut(&num) {
            guard.journal.push(ReplayStep::Snapshot(snapshot));
        }
    }

    /// Journals a governor-driven code-cache eviction so a later rebuild
    /// replays it at the same point in the schedule.
    pub fn journal_evict(&mut self, num: u32) {
        if let Some(guard) = self.guards.get_mut(&num) {
            guard.journal.push(ReplayStep::EvictCache);
        }
    }

    /// Simulated bytes held by retained checkpoints (each is a full
    /// materialized copy of its slice's address space at wake). Charged
    /// against the memory governor's budget.
    pub fn retained_checkpoint_bytes(&self) -> u64 {
        self.guards
            .values()
            .filter_map(|guard| guard.checkpoint.as_ref())
            .map(|checkpoint| checkpoint.full_resident_bytes())
            .sum()
    }

    /// Reclaims a slice's retained checkpoint (eviction-ladder rung 1).
    /// Returns the simulated bytes freed — 0 when the slice is unguarded
    /// or its checkpoint is already gone. The caller must only drop
    /// checkpoints of slices that can no longer be condemned (committed
    /// `Done` slices awaiting merge); a later
    /// [`rebuild`](SliceSupervisor::rebuild) of this slice fails with
    /// [`SpError::CheckpointDropped`].
    pub fn drop_checkpoint(&mut self, num: u32) -> u64 {
        self.guards
            .get_mut(&num)
            .and_then(|guard| guard.checkpoint.take())
            .map(|checkpoint| checkpoint.full_resident_bytes())
            .unwrap_or(0)
    }

    /// Condemns a slice, charging its retry budget.
    pub fn condemn(&mut self, num: u32) -> Verdict {
        let guard = self
            .guards
            .get_mut(&num)
            .expect("condemned slice is guarded");
        if guard.degraded {
            return Verdict::Unrecoverable;
        }
        guard.retries += 1;
        self.slice_retries += 1;
        if guard.retries > self.max_retries {
            guard.degraded = true;
            self.slices_degraded += 1;
            Verdict::Degrade
        } else {
            Verdict::Retry {
                salt: guard.retries as u64,
            }
        }
    }

    /// Counts a transient non-slice retry (fork or publish failpoint that
    /// was absorbed on the spot).
    pub fn note_transient_retry(&mut self) {
        self.slice_retries += 1;
    }

    /// Rebuilds the slice by replaying its journal over a clone of the
    /// checkpoint, injection off. Deterministic: the result is the state
    /// a fault-free slice would hold at the current barrier.
    ///
    /// # Errors
    ///
    /// Propagates replay errors — with injection off these are genuine
    /// defects (true divergence), which the runner reports as
    /// [`SpError::Unrecoverable`] — and returns
    /// [`SpError::CheckpointDropped`] if the eviction ladder reclaimed
    /// the checkpoint (a supervision bug: only committed slices lose
    /// their checkpoint, and committed slices are never condemned).
    pub fn rebuild(&self, num: u32) -> Result<SliceRuntime<T>, SpError> {
        let guard = self.guards.get(&num).expect("rebuilt slice is guarded");
        let Some(checkpoint) = &guard.checkpoint else {
            return Err(SpError::CheckpointDropped { slice: num });
        };
        let mut slice = checkpoint.clone();
        for step in &guard.journal {
            match step {
                ReplayStep::Advance {
                    budget,
                    quanta,
                    epoch_start,
                    quantum,
                } => slice.advance_epoch(*budget, *quanta, *epoch_start, *quantum)?,
                ReplayStep::Snapshot(snapshot) => {
                    // Drain compilations the condemned incarnation already
                    // published; mirror its barrier exactly.
                    slice.take_fresh_traces();
                    slice.enter_shared_epoch(Arc::clone(snapshot));
                }
                ReplayStep::EvictCache => {
                    slice.evict_code_cache();
                }
            }
        }
        Ok(slice)
    }

    /// Drops a merged slice's guard.
    pub fn release(&mut self, num: u32) {
        self.guards.remove(&num);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shared::SharedMem;
    use superpin_dbi::{Inserter, Pintool, Trace};

    #[derive(Clone, Default)]
    struct Nop;
    impl Pintool for Nop {
        fn instrument_trace(&mut self, _: &Trace, _: &mut Inserter<Self>) {}
    }
    impl SuperTool for Nop {
        fn reset(&mut self, _: u32) {}
        fn on_slice_end(&mut self, _: u32, _: &SharedMem) {}
    }

    #[test]
    fn condemn_ladder_retries_then_degrades_then_unrecoverable() {
        let program = superpin_isa::asm::assemble("main:\n exit 0\n").expect("assemble");
        let mut process = superpin_vm::process::Process::load(1, &program).expect("load");
        let bubble = crate::bubble::Bubble::reserve(&mut process.mem).expect("bubble");
        let cfg = crate::config::SuperPinConfig::paper_default();
        let slice = SliceRuntime::spawn(1, &process, &Nop, &bubble, &cfg, 0).expect("spawn");

        let mut sup: SliceSupervisor<Nop> = SliceSupervisor::new(8, 2);
        sup.guard(&slice);
        assert_eq!(sup.condemn(1), Verdict::Retry { salt: 1 });
        assert_eq!(sup.condemn(1), Verdict::Retry { salt: 2 });
        assert_eq!(sup.condemn(1), Verdict::Degrade);
        assert!(sup.is_degraded(1));
        assert_eq!(sup.condemn(1), Verdict::Unrecoverable);
        assert_eq!(sup.slice_retries, 3);
        assert_eq!(sup.slices_degraded, 1);

        // Rung-1 eviction: dropping the checkpoint frees its full
        // resident footprint once, and a rebuild afterwards is refused.
        assert!(sup.retained_checkpoint_bytes() > 0);
        let freed = sup.drop_checkpoint(1);
        assert_eq!(freed, slice.full_resident_bytes());
        assert_eq!(sup.retained_checkpoint_bytes(), 0);
        assert_eq!(sup.drop_checkpoint(1), 0, "second drop frees nothing");
        assert!(matches!(
            sup.rebuild(1),
            Err(SpError::CheckpointDropped { slice: 1 })
        ));
    }

    /// Architectural + accounting view of a slice for bit-identity
    /// assertions.
    fn probe(slice: &SliceRuntime<Nop>) -> (u64, u64, u64, usize, u64, u64) {
        let process = slice.engine().process();
        (
            process.inst_count(),
            process.cpu.pc,
            process.mem.content_digest(),
            slice.cache_resident_insts(),
            slice.engine().stats().cycles.total(),
            slice.records_played(),
        )
    }

    #[test]
    fn journaled_eviction_rebuilds_the_condemned_slice_bit_identically() {
        use crate::slice::Boundary;

        // A hot loop long enough to stay running across several epochs,
        // so a mid-schedule eviction forces real recompilation after it.
        let src = "main:\n li r1, 5000\n\
                   loop:\n subi r1, r1, 1\n nop\n nop\n bne r1, r0, loop\n exit 0\n";
        let program = superpin_isa::asm::assemble(src).expect("assemble");
        let mut process = superpin_vm::process::Process::load(1, &program).expect("load");
        let bubble = crate::bubble::Bubble::reserve(&mut process.mem).expect("bubble");
        let cfg = crate::config::SuperPinConfig::paper_default();
        let mut live = SliceRuntime::spawn(1, &process, &Nop, &bubble, &cfg, 0).expect("spawn");
        live.wake(Boundary::ProgramExit, Vec::new(), 0);

        // Two supervisors guard the same wake-time state; only `sup` is
        // told about the governor's eviction (`blind` models a journal
        // that dropped the EvictCache step).
        let mut sup: SliceSupervisor<Nop> = SliceSupervisor::new(8, 2);
        let mut blind: SliceSupervisor<Nop> = SliceSupervisor::new(8, 2);
        sup.guard(&live);
        blind.guard(&live);

        const BUDGET: u64 = 800;
        const QUANTA: u64 = 2;
        const QUANTUM: u64 = 400;
        for epoch in 0..4u64 {
            if epoch == 2 {
                // Governor pressure between barriers: flush the live
                // slice's code cache and journal it (in `sup` only).
                assert!(live.cache_resident_insts() > 0, "cache must be warm");
                assert!(live.evict_code_cache() > 0, "eviction must free insts");
                sup.journal_evict(1);
            }
            let eta = live.eta();
            let epoch_start = epoch * QUANTA * QUANTUM;
            live.advance_epoch(BUDGET, QUANTA, epoch_start, QUANTUM)
                .expect("advance");
            sup.journal_advance(1, BUDGET, QUANTA, epoch_start, QUANTUM, eta);
            blind.journal_advance(1, BUDGET, QUANTA, epoch_start, QUANTUM, eta);
        }

        // The full-journal rebuild lands on exactly the condemned
        // incarnation's state: same pc, instruction count, memory
        // contents, resident cache, and cycle accounting.
        let rebuilt = sup.rebuild(1).expect("rebuild");
        assert_eq!(probe(&rebuilt), probe(&live));
        assert_eq!(rebuilt.state(), live.state());

        // The EvictCache step is load-bearing: a journal without it
        // replays the same schedule but never repays the recompilation,
        // so its accounting diverges from the live slice.
        let blind_rebuilt = blind.rebuild(1).expect("rebuild");
        assert_ne!(probe(&blind_rebuilt), probe(&live));
    }
}

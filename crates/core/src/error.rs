//! SuperPin error type.

use std::fmt;
use superpin_vm::mem::MemError;
use superpin_vm::VmError;

/// Errors surfaced by the SuperPin runtime.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SpError {
    /// A guest-execution error in the master or a slice.
    Vm(VmError),
    /// A memory-management error while setting up a slice (bubble,
    /// trampoline, private stack).
    Mem(MemError),
    /// A slice reached a syscall the master never recorded for its span —
    /// master/slice divergence, which indicates a signature false
    /// positive or a replay bug.
    SliceDiverged {
        /// The diverging slice number.
        slice: u32,
        /// Guest pc of the unexpected syscall.
        pc: u64,
    },
    /// A slice's next recorded syscall does not match the syscall the
    /// slice actually reached.
    RecordMismatch {
        /// The diverging slice number.
        slice: u32,
        /// Guest pc of the syscall.
        pc: u64,
        /// Syscall number recorded by the master.
        recorded: u64,
        /// Syscall number the slice issued.
        actual: u64,
    },
    /// The simulation made no forward progress (internal scheduling bug
    /// guard).
    NoProgress,
    /// A worker thread died (its channel disconnected). Recoverable: the
    /// supervisor reruns the worker's batch inline and retires the
    /// worker from future epochs.
    WorkerLost {
        /// Index of the dead worker in the pool.
        worker: usize,
    },
    /// A slice overran its watchdog deadline: the signature never fired
    /// within `watchdog_factor ×` the predicted completion, or the slice
    /// executed past its known span.
    Runaway {
        /// The runaway slice number.
        slice: u32,
        /// Instructions the slice had executed when condemned.
        insts: u64,
        /// The slice's known span (0 if the boundary was still open).
        span: u64,
    },
    /// A slice exhausted its retry budget and then failed again while
    /// degraded to serial re-execution — a genuine, non-injected defect.
    Unrecoverable {
        /// The slice that could not be recovered.
        slice: u32,
        /// The terminal failure.
        cause: Box<SpError>,
    },
    /// A slice needed its wake-time checkpoint rebuilt, but the memory
    /// governor had already reclaimed it. The eviction ladder only drops
    /// checkpoints of committed (Done) slices, which are never condemned,
    /// so this error indicates a supervision bug.
    CheckpointDropped {
        /// The slice whose checkpoint was reclaimed.
        slice: u32,
    },
    /// A replaying run consulted its log and found the recorded decision
    /// incompatible with the live state (wrong event kind, exhausted
    /// log, or a syscall whose recorded number/arguments no longer match
    /// the guest's registers). The run's trajectory has departed from
    /// the recording.
    ReplayDivergence {
        /// The decision point that diverged (e.g. `"master syscall"`).
        context: &'static str,
        /// Human-readable description of the mismatch.
        detail: String,
    },
}

impl fmt::Display for SpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpError::Vm(err) => write!(f, "guest execution error: {err}"),
            SpError::Mem(err) => write!(f, "slice setup memory error: {err}"),
            SpError::SliceDiverged { slice, pc } => {
                write!(f, "slice {slice} diverged: unrecorded syscall at {pc:#x}")
            }
            SpError::RecordMismatch {
                slice,
                pc,
                recorded,
                actual,
            } => write!(
                f,
                "slice {slice} record mismatch at {pc:#x}: recorded syscall {recorded}, got {actual}"
            ),
            SpError::NoProgress => write!(f, "simulation made no forward progress"),
            SpError::WorkerLost { worker } => {
                write!(f, "worker thread {worker} died (channel disconnected)")
            }
            SpError::Runaway { slice, insts, span } => write!(
                f,
                "slice {slice} runaway: {insts} instructions against a span of {span}"
            ),
            SpError::Unrecoverable { slice, cause } => {
                write!(f, "slice {slice} unrecoverable after retries: {cause}")
            }
            SpError::CheckpointDropped { slice } => {
                write!(f, "slice {slice} checkpoint was reclaimed under memory pressure")
            }
            SpError::ReplayDivergence { context, detail } => {
                write!(f, "replay divergence at {context}: {detail}")
            }
        }
    }
}

impl std::error::Error for SpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SpError::Vm(err) => Some(err),
            SpError::Mem(err) => Some(err),
            SpError::Unrecoverable { cause, .. } => Some(cause.as_ref()),
            _ => None,
        }
    }
}

impl From<VmError> for SpError {
    fn from(err: VmError) -> SpError {
        SpError::Vm(err)
    }
}

impl From<MemError> for SpError {
    fn from(err: MemError) -> SpError {
        SpError::Mem(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    /// Walks `source()` links, collecting each level's message.
    fn chain(err: &dyn std::error::Error) -> Vec<String> {
        let mut out = vec![err.to_string()];
        let mut cursor = err.source();
        while let Some(inner) = cursor {
            out.push(inner.to_string());
            cursor = inner.source();
        }
        out
    }

    #[test]
    fn unrecoverable_chains_through_to_the_root_cause() {
        let root = MemError::OutOfMemory {
            requested: 0x1000,
            limit: 0x2000,
        };
        let err = SpError::Unrecoverable {
            slice: 7,
            cause: Box::new(SpError::Vm(VmError::Mem(root))),
        };
        let messages = chain(&err);
        assert_eq!(messages.len(), 4, "chain: {messages:?}");
        assert!(messages[0].contains("slice 7 unrecoverable"));
        assert!(messages[1].contains("guest execution error"));
        assert!(messages[2].contains("memory fault"));
        assert!(messages[3].contains("out of memory"));
    }

    #[test]
    fn leaf_errors_have_no_source() {
        assert!(SpError::NoProgress.source().is_none());
        assert!(SpError::WorkerLost { worker: 2 }.source().is_none());
        assert!(SpError::CheckpointDropped { slice: 1 }.source().is_none());
        let div = SpError::ReplayDivergence {
            context: "master syscall",
            detail: "log exhausted".into(),
        };
        assert!(div.source().is_none());
        assert!(div.to_string().contains("master syscall"));
        assert!(div.to_string().contains("log exhausted"));
    }

    #[test]
    fn vm_and_mem_variants_expose_their_source() {
        let vm = SpError::Vm(VmError::ProcessExited);
        assert_eq!(
            vm.source().expect("vm source").to_string(),
            VmError::ProcessExited.to_string()
        );
        let mem = SpError::Mem(MemError::Unmapped(0x10));
        assert!(mem
            .source()
            .expect("mem source")
            .to_string()
            .contains("unmapped"));
    }
}

//! SuperPin error type.

use std::fmt;
use superpin_vm::mem::MemError;
use superpin_vm::VmError;

/// Errors surfaced by the SuperPin runtime.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SpError {
    /// A guest-execution error in the master or a slice.
    Vm(VmError),
    /// A memory-management error while setting up a slice (bubble,
    /// trampoline, private stack).
    Mem(MemError),
    /// A slice reached a syscall the master never recorded for its span —
    /// master/slice divergence, which indicates a signature false
    /// positive or a replay bug.
    SliceDiverged {
        /// The diverging slice number.
        slice: u32,
        /// Guest pc of the unexpected syscall.
        pc: u64,
    },
    /// A slice's next recorded syscall does not match the syscall the
    /// slice actually reached.
    RecordMismatch {
        /// The diverging slice number.
        slice: u32,
        /// Guest pc of the syscall.
        pc: u64,
        /// Syscall number recorded by the master.
        recorded: u64,
        /// Syscall number the slice issued.
        actual: u64,
    },
    /// The simulation made no forward progress (internal scheduling bug
    /// guard).
    NoProgress,
    /// A worker thread died (its channel disconnected). Recoverable: the
    /// supervisor reruns the worker's batch inline and retires the
    /// worker from future epochs.
    WorkerLost {
        /// Index of the dead worker in the pool.
        worker: usize,
    },
    /// A slice overran its watchdog deadline: the signature never fired
    /// within `watchdog_factor ×` the predicted completion, or the slice
    /// executed past its known span.
    Runaway {
        /// The runaway slice number.
        slice: u32,
        /// Instructions the slice had executed when condemned.
        insts: u64,
        /// The slice's known span (0 if the boundary was still open).
        span: u64,
    },
    /// A slice exhausted its retry budget and then failed again while
    /// degraded to serial re-execution — a genuine, non-injected defect.
    Unrecoverable {
        /// The slice that could not be recovered.
        slice: u32,
        /// The terminal failure.
        cause: Box<SpError>,
    },
}

impl fmt::Display for SpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpError::Vm(err) => write!(f, "guest execution error: {err}"),
            SpError::Mem(err) => write!(f, "slice setup memory error: {err}"),
            SpError::SliceDiverged { slice, pc } => {
                write!(f, "slice {slice} diverged: unrecorded syscall at {pc:#x}")
            }
            SpError::RecordMismatch {
                slice,
                pc,
                recorded,
                actual,
            } => write!(
                f,
                "slice {slice} record mismatch at {pc:#x}: recorded syscall {recorded}, got {actual}"
            ),
            SpError::NoProgress => write!(f, "simulation made no forward progress"),
            SpError::WorkerLost { worker } => {
                write!(f, "worker thread {worker} died (channel disconnected)")
            }
            SpError::Runaway { slice, insts, span } => write!(
                f,
                "slice {slice} runaway: {insts} instructions against a span of {span}"
            ),
            SpError::Unrecoverable { slice, cause } => {
                write!(f, "slice {slice} unrecoverable after retries: {cause}")
            }
        }
    }
}

impl std::error::Error for SpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SpError::Vm(err) => Some(err),
            SpError::Mem(err) => Some(err),
            _ => None,
        }
    }
}

impl From<VmError> for SpError {
    fn from(err: VmError) -> SpError {
        SpError::Vm(err)
    }
}

impl From<MemError> for SpError {
    fn from(err: MemError) -> SpError {
        SpError::Mem(err)
    }
}

//! The run's nondeterministic surface, as recordable events (rr-style
//! record/replay, PAPERS.md: "Engineering Record And Replay For
//! Deployability").
//!
//! The SuperPin simulation is deterministic by construction — every
//! scheduling decision happens on the supervisor thread in a fixed
//! order, so a report is bit-identical for any `--threads N`. What this
//! module captures is the *decision stream* at the points where a live
//! run consults something other than pure guest state: syscall effects
//! (kernel results and guest input bytes), epoch plans, governed fork
//! admissions with their eviction-ladder actions, and the supervision
//! ledger that chaos recovery accumulates. A [`RunRecorder`] receives
//! each event as the runner makes the decision; a [`RunSource`] feeds
//! the recorded decisions back in the same order, *substituted* for the
//! live ones, so a replayed run re-executes from the log alone.
//!
//! Fault-injection firings are deliberately **not** individual events:
//! a firing is a pure function of `(FailPlan, site, key)`, so the log's
//! header stores the serialized plan (see `FailPlan::encode`) and that
//! is the whole schedule. Replay runs with injection disarmed — every
//! recovery is state-invisible by the chaos suite's contract — and the
//! recorded [`NondetEvent::FaultLedger`] substitutes the two counters
//! (`slice_retries`, `slices_degraded`) that recovery legitimately
//! perturbs, which is also what makes a run recorded at `--threads 4`
//! under chaos replay bit-identically at `--threads 1`: worker-death
//! firings are keyed on worker index and would not recur.

use crate::report::SliceReport;
use superpin_isa::NUM_REGS;
use superpin_vm::kernel::SyscallRecord;

/// Outcome of the memory governor's admission check for one fork.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdmissionDecision {
    /// The fork fits the budget (possibly after walking the eviction
    /// ladder).
    Admit,
    /// Over budget with nothing left to evict and nothing running that
    /// could free memory by completing: admit the fork but pin the new
    /// slice to inline serial execution (ladder rung 3).
    AdmitDegraded,
    /// Over budget while live slices can still complete and free their
    /// footprint: stall the master and re-check at a later barrier.
    Defer,
}

/// One recorded decision from the run's nondeterministic surface.
#[derive(Clone, Debug, PartialEq)]
pub enum NondetEvent {
    /// The complete architectural effect of one master syscall — the
    /// kernel's return value, guest input bytes written, address-space
    /// operations, register writes, and exit status. On replay the
    /// record is *applied* to the guest (after verifying the number and
    /// arguments still match) instead of re-executing the kernel.
    Syscall(SyscallRecord),
    /// The epoch planner's decision: how many quanta the next epoch
    /// spans. Substituted verbatim on replay, which makes the event the
    /// natural channel for intentionally perturbing a log in divergence
    /// tests.
    EpochPlan {
        /// Quanta planned for the epoch (clamped to at least 1).
        planned: u64,
    },
    /// A governed fork-admission decision together with the eviction
    /// ladder's actions: which Done-slice checkpoints were dropped
    /// (rung 1) and which slice code caches were flushed (rung 2), in
    /// ladder order. Recorded only when a memory governor is armed.
    Admission {
        /// The final admission outcome.
        decision: AdmissionDecision,
        /// Slice numbers whose retained checkpoints were dropped.
        dropped: Vec<u32>,
        /// Slice numbers whose code caches were evicted.
        evicted: Vec<u32>,
    },
    /// The supervision ledger at run end: retries and degradations that
    /// chaos recovery charged. Host-thread-dependent under worker-death
    /// injection, hence recorded and substituted rather than recomputed.
    FaultLedger {
        /// Condemnations plus transient retries charged.
        slice_retries: u64,
        /// Slices degraded to inline serial execution by the supervisor.
        slices_degraded: u64,
    },
}

impl NondetEvent {
    /// A short stable name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            NondetEvent::Syscall(_) => "syscall",
            NondetEvent::EpochPlan { .. } => "epoch-plan",
            NondetEvent::Admission { .. } => "admission",
            NondetEvent::FaultLedger { .. } => "fault-ledger",
        }
    }
}

/// Receives the event stream of a recorded run, in decision order.
/// Driven entirely from the supervisor thread.
pub trait RunRecorder: Send {
    /// Called once per decision, in the order the runner makes them.
    fn record(&mut self, event: NondetEvent);
}

/// Feeds a recorded event stream back into a replaying run.
pub trait RunSource: Send {
    /// The next recorded event, or `None` when the log is exhausted.
    fn next_event(&mut self) -> Option<NondetEvent>;
}

/// How the runner treats the nondeterministic surface.
#[derive(Default)]
pub enum RunMode {
    /// Make every decision live (the default; zero overhead).
    #[default]
    Live,
    /// Make decisions live and stream each one into the recorder.
    Record(Box<dyn RunRecorder>),
    /// Substitute recorded decisions for live ones.
    Replay(Box<dyn RunSource>),
}

impl RunMode {
    /// Whether this run replays from a log.
    pub fn is_replay(&self) -> bool {
        matches!(self, RunMode::Replay(_))
    }
}

impl std::fmt::Debug for RunMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            RunMode::Live => "Live",
            RunMode::Record(_) => "Record",
            RunMode::Replay(_) => "Replay",
        })
    }
}

/// One live slice's architectural state at an epoch barrier.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SliceProbe {
    /// Slice number.
    pub num: u32,
    /// Instructions the slice has executed.
    pub insts: u64,
    /// The slice's guest pc.
    pub pc: u64,
    /// Order-independent digest of the slice's guest memory contents.
    pub mem_digest: u64,
}

/// A snapshot of the whole run's observable state at an epoch barrier,
/// from [`SuperPinRunner::probe`](crate::SuperPinRunner::probe). The
/// divergence differ compares probes of two lockstep replays epoch by
/// epoch to bisect the first divergence to an instruction range.
#[derive(Clone, Debug, PartialEq)]
pub struct RunProbe {
    /// Virtual time in cycles.
    pub now: u64,
    /// Epochs executed so far.
    pub epochs: u64,
    /// The scheduling quantum in cycles (fixed per run; lets probe
    /// consumers convert cycle windows to quantum indices).
    pub quantum: u64,
    /// Whether the master has exited.
    pub master_exited: bool,
    /// Master instructions executed.
    pub master_insts: u64,
    /// Master guest pc.
    pub master_pc: u64,
    /// The master's full register file.
    pub master_regs: [u64; NUM_REGS],
    /// Digest of the master's guest memory contents.
    pub master_mem_digest: u64,
    /// Per-slice probes for every live (unmerged) slice, in fork order.
    pub slices: Vec<SliceProbe>,
    /// Reports of slices already merged, in slice order (merged slices
    /// leave the live set, so lockstep comparison needs their finals).
    pub merged: Vec<SliceReport>,
}

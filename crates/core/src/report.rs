//! Run reports: the data behind every figure in the paper's §6.

use crate::signature::SignatureStats;
use crate::slice::SliceEnd;
use superpin_dbi::{CacheStats, EngineStats};
use superpin_vm::ptrace::PtraceStats;

/// Per-slice results.
///
/// `PartialEq`/`Eq` back the determinism suite: a `threads=N` run must
/// produce slice reports bit-identical to `threads=1`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SliceReport {
    /// Slice number (fork order, 1-based).
    pub num: u32,
    /// Dynamic instructions the slice executed/played back.
    pub insts: u64,
    /// Syscall records played back.
    pub records_played: u64,
    /// How the slice ended.
    pub end: SliceEnd,
    /// Fork time (cycles).
    pub start_cycles: u64,
    /// Time the slice woke — its boundary became known (cycles).
    pub wake_cycles: u64,
    /// Completion time (cycles).
    pub end_cycles: u64,
    /// Engine statistics (cycle breakdown, calls, …).
    pub engine: EngineStats,
    /// Code-cache statistics (per-slice cold-start compilation).
    pub cache: CacheStats,
    /// Copy-on-write page copies taken by the slice.
    pub cow_copies: u64,
}

/// The master's run-time decomposition, matching Figure 6's stacking:
/// `total = native + fork&other + sleep + pipeline`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TimeBreakdown {
    /// Pure native work: `master instructions × native CPI`.
    pub native_cycles: u64,
    /// Residual master overhead while running: forking, COW faults,
    /// ptrace stops, syscalls, and SMP/HT contention ("fork & others").
    pub fork_other_cycles: u64,
    /// Master stalls waiting for a free slice slot ("sleep").
    pub sleep_cycles: u64,
    /// Time after master exit until the last slice completed
    /// ("pipeline delay", paper §3/§6.3).
    pub pipeline_cycles: u64,
}

impl TimeBreakdown {
    /// Total wall time of the run.
    pub fn total_cycles(&self) -> u64 {
        self.native_cycles + self.fork_other_cycles + self.sleep_cycles + self.pipeline_cycles
    }
}

/// Complete results of one SuperPin run.
///
/// `PartialEq`/`Eq` exist so whole reports can be compared bit-for-bit
/// across host thread counts (the parallel runner's contract).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SuperPinReport {
    /// Wall time until the last slice merged (cycles).
    pub total_cycles: u64,
    /// Wall time at master exit (cycles).
    pub master_exit_cycles: u64,
    /// The Figure 6 decomposition.
    pub breakdown: TimeBreakdown,
    /// Master's dynamic instruction count.
    pub master_insts: u64,
    /// Master syscalls serviced.
    pub master_syscalls: u64,
    /// Ptrace stop statistics (paper §6.3 "Ptrace Overhead").
    pub ptrace: PtraceStats,
    /// Per-slice reports, in slice order.
    pub slices: Vec<SliceReport>,
    /// Aggregated signature-detection statistics (paper §4.4).
    pub sig_stats: SignatureStats,
    /// Slices created on timer expiry.
    pub forks_on_timeout: u64,
    /// Slices created because a syscall forced a boundary.
    pub forks_on_syscall: u64,
    /// Times the master stalled on the max-slice limit.
    pub stall_events: u64,
    /// Master COW page copies (fork overhead, paper §6.3).
    pub master_cow_copies: u64,
    /// Scheduling epochs executed (barrier-to-barrier spans). A pure
    /// function of the virtual-time state, so it must be identical
    /// across host thread counts like every other field.
    pub epochs: u64,
    /// Slice executions the supervisor rolled back to a checkpoint and
    /// re-armed (injected faults, runaways, lost workers). 0 in a
    /// fault-free run; every *other* field must match the fault-free run
    /// exactly — recovery is invisible to the simulation.
    pub slice_retries: u64,
    /// Slices that exhausted their retry budget and finished pinned to
    /// the supervisor thread with injection disabled.
    pub slices_degraded: u64,
    /// High-water mark of governed resident bytes (master + slice
    /// private pages + code caches + retained checkpoints + shared
    /// state). 0 when no `--mem-budget` is set — the governor is not
    /// built and charges nothing.
    pub peak_resident_bytes: u64,
    /// Fork-deferral episodes: times the master stalled because
    /// admitting the next slice would exceed the memory budget even
    /// after walking the eviction ladder. 0 without a budget.
    pub slices_deferred: u64,
    /// Retained recovery checkpoints reclaimed by the eviction ladder's
    /// first rung. 0 without a budget.
    pub checkpoints_dropped: u64,
    /// Slice code caches flushed by the eviction ladder's second rung
    /// (coldest first, by last-active quantum). 0 without a budget.
    pub caches_evicted: u64,
}

impl SuperPinReport {
    /// Sum of instructions across all slices — must equal
    /// [`master_insts`](SuperPinReport::master_insts) for a correct run.
    pub fn slice_inst_total(&self) -> u64 {
        self.slices.iter().map(|slice| slice.insts).sum()
    }

    /// Number of slices.
    pub fn slice_count(&self) -> usize {
        self.slices.len()
    }

    /// Slowdown of this run relative to a native run of `native_cycles`.
    pub fn slowdown_vs(&self, native_cycles: u64) -> f64 {
        self.total_cycles as f64 / native_cycles.max(1) as f64
    }
}

//! Baselines for the paper's comparisons: native execution and
//! traditional (serial) Pin.

use crate::error::SpError;
use std::sync::Arc;
use superpin_dbi::{CostModel, Engine, EngineStats, LiveMap, Pintool};
use superpin_vm::process::Process;
use superpin_vm::ptrace::{Controller, StopReason};

/// Result of a native (uninstrumented) run.
#[derive(Clone, Debug)]
pub struct NativeReport {
    /// Exit code.
    pub exit_code: i64,
    /// Total virtual cycles (instructions × native CPI + kernel time).
    pub cycles: u64,
    /// Dynamic instruction count — the ground truth for icount tools.
    pub insts: u64,
    /// Syscalls serviced.
    pub syscalls: u64,
    /// Captured stdout/stderr.
    pub output: Vec<u8>,
}

/// Runs a process natively to completion on one core.
///
/// # Errors
///
/// Propagates guest errors.
pub fn run_native(process: Process) -> Result<NativeReport, SpError> {
    run_native_with_cost(process, &CostModel::paper_default())
}

/// [`run_native`] with an explicit cost model.
///
/// # Errors
///
/// Propagates guest errors.
pub fn run_native_with_cost(process: Process, cost: &CostModel) -> Result<NativeReport, SpError> {
    let mut controller = Controller::new(process);
    let mut syscalls = 0u64;
    let mut kernel_cycles = 0u64;
    let exit_code = loop {
        match controller.resume(u64::MAX / 4)? {
            StopReason::SyscallEntry => {
                let app_cycles = controller.process().inst_count() * cost.native_cpi;
                let record =
                    controller.step_over_syscall(superpin_dbi::cycles_to_ns(app_cycles))?;
                syscalls += 1;
                kernel_cycles += cost.syscall;
                if let Some(code) = record.exited {
                    break code;
                }
            }
            StopReason::Exited(code) => break code,
            StopReason::Halted => {
                return Err(SpError::Vm(superpin_vm::VmError::UnexpectedHalt {
                    pc: controller.process().cpu.pc,
                }))
            }
            StopReason::Timeout => {}
        }
    };
    let process = controller.into_process();
    let insts = process.inst_count();
    Ok(NativeReport {
        exit_code,
        cycles: insts * cost.native_cpi + kernel_cycles,
        insts,
        syscalls,
        output: process.output().to_vec(),
    })
}

/// Result of a traditional (serial, single-core) Pin run.
#[derive(Clone, Debug)]
pub struct PinReport<T> {
    /// Exit code.
    pub exit_code: i64,
    /// Total virtual cycles including JIT, dispatch, analysis, syscalls.
    pub cycles: u64,
    /// Dynamic instruction count.
    pub insts: u64,
    /// The tool, with its accumulated results.
    pub tool: T,
    /// Engine statistics.
    pub stats: EngineStats,
    /// Code-cache statistics.
    pub cache: superpin_dbi::CacheStats,
}

/// Runs a process under traditional Pin with the given tool, serially on
/// one core — the paper's "Pin" bars in Figures 3 and 5.
///
/// # Errors
///
/// Propagates guest errors.
pub fn run_pin<T: Pintool + 'static>(process: Process, tool: T) -> Result<PinReport<T>, SpError> {
    run_pin_with_cost(process, tool, &CostModel::paper_default())
}

/// [`run_pin`] with an explicit cost model.
///
/// # Errors
///
/// Propagates guest errors.
pub fn run_pin_with_cost<T: Pintool + 'static>(
    process: Process,
    tool: T,
    cost: &CostModel,
) -> Result<PinReport<T>, SpError> {
    run_pin_configured(process, tool, cost, None)
}

/// [`run_pin`] with an explicit cost model and optional static liveness.
/// When liveness is supplied, the engine elides save/restores of
/// registers proven dead at each insertion point; instrumentation
/// results are unchanged, only modeled analysis cycles shrink.
///
/// # Errors
///
/// Propagates guest errors.
pub fn run_pin_configured<T: Pintool + 'static>(
    process: Process,
    tool: T,
    cost: &CostModel,
    liveness: Option<Arc<LiveMap>>,
) -> Result<PinReport<T>, SpError> {
    let mut engine = Engine::with_config(
        process,
        tool,
        *cost,
        superpin_dbi::cache::DEFAULT_CAPACITY_INSTS,
    );
    if let Some(live) = liveness {
        engine.set_liveness(live);
    }
    let (exit_code, cycles) = engine.run_to_exit()?;
    let stats = engine.stats();
    let cache = engine.cache_stats();
    let (process, tool) = engine.into_parts();
    Ok(PinReport {
        exit_code,
        cycles,
        insts: process.inst_count(),
        tool,
        stats,
        cache,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use superpin_dbi::NullTool;
    use superpin_isa::asm::assemble;

    fn process(src: &str) -> Process {
        Process::load(1, &assemble(src).expect("assemble")).expect("load")
    }

    const LOOP: &str = "main:\n li r1, 5000\nloop:\n subi r1, r1, 1\n bne r1, r0, loop\n exit 0\n";

    #[test]
    fn native_and_pin_agree_on_instruction_count() {
        let native = run_native(process(LOOP)).expect("native");
        let pin = run_pin(process(LOOP), NullTool).expect("pin");
        assert_eq!(native.exit_code, 0);
        assert_eq!(pin.exit_code, 0);
        assert_eq!(native.insts, pin.insts);
    }

    #[test]
    fn pin_overhead_is_modest_without_instrumentation() {
        let native = run_native(process(LOOP)).expect("native");
        let pin = run_pin(process(LOOP), NullTool).expect("pin");
        let overhead = pin.cycles as f64 / native.cycles as f64;
        // Paper §1: "10% overhead for no instrumentation" up to a few ×
        // for cold code. A hot loop amortizes the JIT almost fully.
        assert!(overhead > 1.0);
        assert!(overhead < 3.0, "null-tool overhead {overhead:.2} too high");
    }

    #[test]
    fn native_collects_output() {
        let native = run_native(process(
            r#"
            .data
            msg: .byte 111, 107
            .text
            main:
                li r0, 1
                li r1, 1
                la r2, msg
                li r3, 2
                syscall
                exit 0
            "#,
        ))
        .expect("native");
        assert_eq!(native.output, b"ok");
        assert_eq!(native.syscalls, 2);
    }
}

//! Shared-memory areas for cross-slice result aggregation
//! (`SP_CreateSharedArea`, paper §5).
//!
//! "Because SuperPin slices an application into separate processes with
//! their own copy of Pin and the Pintool, the data a Pintool records will
//! only be local to its slice. A merge function must be called to combine
//! the output of the last completed slice into a collective total"
//! (paper §4.5). [`SharedArea`] is the shared-memory region those merges
//! target; [`SharedMem`] is the per-run registry of areas.

use std::fmt;
use std::sync::Arc;
use std::sync::Mutex;

/// How an area is merged when a slice ends (the `autoMerge` argument of
/// `SP_CreateSharedArea`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum AutoMerge {
    /// The tool merges manually in its slice-end function.
    #[default]
    Manual,
    /// Each local word is added to the shared word.
    Add,
    /// Each shared word becomes `max(shared, local)`.
    Max,
    /// Each shared word becomes `min(shared, local)`.
    Min,
}

/// Identifier of a [`SharedArea`] within a [`SharedMem`] registry.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct AreaId(usize);

/// A shared-memory region of 64-bit words, visible to every slice and to
/// the `fini` function.
#[derive(Clone)]
pub struct SharedArea {
    words: Arc<Mutex<Vec<u64>>>,
    auto: AutoMerge,
}

impl SharedArea {
    /// A zeroed area of `len` words.
    pub fn new(len: usize, auto: AutoMerge) -> SharedArea {
        SharedArea {
            words: Arc::new(Mutex::new(vec![0; len])),
            auto,
        }
    }

    /// The merge mode declared at creation.
    pub fn auto_merge(&self) -> AutoMerge {
        self.auto
    }

    /// Number of words.
    pub fn len(&self) -> usize {
        self.words.lock().expect("mutex poisoned").len()
    }

    /// Whether the area has zero words.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reads word `i` (0 if out of range).
    pub fn read(&self, i: usize) -> u64 {
        self.words
            .lock()
            .expect("mutex poisoned")
            .get(i)
            .copied()
            .unwrap_or(0)
    }

    /// Writes word `i` (ignored if out of range).
    pub fn write(&self, i: usize, value: u64) {
        if let Some(slot) = self.words.lock().expect("mutex poisoned").get_mut(i) {
            *slot = value;
        }
    }

    /// Atomically adds `value` to word `i`.
    pub fn add(&self, i: usize, value: u64) {
        if let Some(slot) = self.words.lock().expect("mutex poisoned").get_mut(i) {
            *slot = slot.wrapping_add(value);
        }
    }

    /// A snapshot of all words.
    pub fn snapshot(&self) -> Vec<u64> {
        self.words.lock().expect("mutex poisoned").clone()
    }

    /// Merges slice-local words into the area per its [`AutoMerge`] mode.
    /// [`AutoMerge::Manual`] areas are untouched.
    pub fn merge_locals(&self, locals: &[u64]) {
        let mut words = self.words.lock().expect("mutex poisoned");
        for (slot, &local) in words.iter_mut().zip(locals) {
            match self.auto {
                AutoMerge::Manual => {}
                AutoMerge::Add => *slot = slot.wrapping_add(local),
                AutoMerge::Max => *slot = (*slot).max(local),
                AutoMerge::Min => *slot = (*slot).min(local),
            }
        }
    }
}

impl fmt::Debug for SharedArea {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SharedArea")
            .field("len", &self.len())
            .field("auto", &self.auto)
            .finish()
    }
}

/// The registry of shared areas for one SuperPin run. Cloning shares the
/// underlying storage (it models one shared-memory segment mapped into
/// every process).
#[derive(Clone, Debug, Default)]
pub struct SharedMem {
    areas: Arc<Mutex<Vec<SharedArea>>>,
    /// Buffered ordered output appended by slice merges (paper §4.5: "if
    /// we are tracing instructions, the slice output will be buffered,
    /// then appended to the output during merging").
    output: Arc<Mutex<Vec<u8>>>,
}

impl SharedMem {
    /// An empty registry.
    pub fn new() -> SharedMem {
        SharedMem::default()
    }

    /// Creates a zeroed area of `len` words (the `SP_CreateSharedArea`
    /// analogue) and returns its id.
    pub fn create_area(&self, len: usize, auto: AutoMerge) -> AreaId {
        let mut areas = self.areas.lock().expect("mutex poisoned");
        areas.push(SharedArea::new(len, auto));
        AreaId(areas.len() - 1)
    }

    /// The area with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this registry.
    pub fn area(&self, id: AreaId) -> SharedArea {
        self.areas.lock().expect("mutex poisoned")[id.0].clone()
    }

    /// Number of registered areas.
    pub fn area_count(&self) -> usize {
        self.areas.lock().expect("mutex poisoned").len()
    }

    /// Appends bytes to the merged output stream (used by tracing tools
    /// during in-order merges).
    pub fn append_output(&self, bytes: &[u8]) {
        self.output
            .lock()
            .expect("mutex poisoned")
            .extend_from_slice(bytes);
    }

    /// The merged output so far.
    pub fn output(&self) -> Vec<u8> {
        self.output.lock().expect("mutex poisoned").clone()
    }

    /// Simulated resident bytes of the shared segment: every area's
    /// words plus the buffered merge output. Charged against the memory
    /// governor's budget; a pure function of simulated state, so it is
    /// identical across host thread counts.
    pub fn resident_bytes(&self) -> u64 {
        let words: usize = self
            .areas
            .lock()
            .expect("mutex poisoned")
            .iter()
            .map(|area| area.len())
            .sum();
        let output = self.output.lock().expect("mutex poisoned").len();
        (words as u64) * 8 + output as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_merge_accumulates() {
        let area = SharedArea::new(3, AutoMerge::Add);
        area.merge_locals(&[1, 2, 3]);
        area.merge_locals(&[10, 20, 30]);
        assert_eq!(area.snapshot(), vec![11, 22, 33]);
    }

    #[test]
    fn max_and_min_merges() {
        let max = SharedArea::new(2, AutoMerge::Max);
        max.merge_locals(&[5, 1]);
        max.merge_locals(&[3, 9]);
        assert_eq!(max.snapshot(), vec![5, 9]);

        let min = SharedArea::new(2, AutoMerge::Min);
        min.write(0, u64::MAX);
        min.write(1, u64::MAX);
        min.merge_locals(&[5, 1]);
        min.merge_locals(&[3, 9]);
        assert_eq!(min.snapshot(), vec![3, 1]);
    }

    #[test]
    fn manual_merge_is_a_no_op() {
        let area = SharedArea::new(2, AutoMerge::Manual);
        area.merge_locals(&[7, 7]);
        assert_eq!(area.snapshot(), vec![0, 0]);
        area.add(0, 7);
        assert_eq!(area.read(0), 7);
    }

    #[test]
    fn out_of_range_access_is_total() {
        let area = SharedArea::new(1, AutoMerge::Add);
        assert_eq!(area.read(5), 0);
        area.write(5, 1); // ignored
        area.add(5, 1); // ignored
        assert_eq!(area.snapshot(), vec![0]);
    }

    #[test]
    fn clones_share_storage() {
        let mem = SharedMem::new();
        let id = mem.create_area(1, AutoMerge::Add);
        let clone = mem.clone();
        clone.area(id).add(0, 42);
        assert_eq!(mem.area(id).read(0), 42);
        assert_eq!(mem.area_count(), clone.area_count());
    }

    #[test]
    fn resident_bytes_counts_areas_and_output() {
        let mem = SharedMem::new();
        assert_eq!(mem.resident_bytes(), 0);
        mem.create_area(4, AutoMerge::Add);
        mem.create_area(2, AutoMerge::Manual);
        mem.append_output(b"abc");
        assert_eq!(mem.resident_bytes(), 6 * 8 + 3);
    }

    #[test]
    fn output_appends_in_order() {
        let mem = SharedMem::new();
        mem.append_output(b"slice0;");
        mem.append_output(b"slice1;");
        assert_eq!(mem.output(), b"slice0;slice1;");
    }
}

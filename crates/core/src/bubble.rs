//! The memory bubble (paper §4.1).
//!
//! "SuperPin allocates a large bubble of anonymous memory at the start of
//! execution, which is used as a placeholder for the code cache
//! structures. Then, immediately after spawning each slice, that memory
//! is deallocated. Thus, any subsequent code cache allocations will occur
//! in the bubble memory, away from the memory allocated by the
//! application. This preserves precise memory mappings between the master
//! and slices."
//!
//! In this reproduction the per-slice code cache lives host-side, but the
//! transparency property the bubble protects — that application `mmap`s
//! land at identical addresses in the master and every slice — is real
//! and tested: while the bubble is mapped, the guest allocator cannot
//! place anything inside it, and a slice releases it on spawn so
//! instrumentation-side allocations (modelled as reservations within the
//! bubble range) never collide with replayed application mappings.

use superpin_vm::mem::{AddressSpace, MemError, RegionKind};

/// Base address of the bubble reservation.
pub const BUBBLE_BASE: u64 = 0x4000_0000;

/// Default bubble size (64 MiB of address space).
pub const BUBBLE_LEN: u64 = 64 << 20;

/// A reserved bubble of guest address space.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Bubble {
    base: u64,
    len: u64,
}

impl Bubble {
    /// Reserves the bubble in the master's address space at startup.
    ///
    /// # Errors
    ///
    /// Returns a memory error if the range is already occupied.
    pub fn reserve(mem: &mut AddressSpace) -> Result<Bubble, MemError> {
        Bubble::reserve_at(mem, BUBBLE_BASE, BUBBLE_LEN)
    }

    /// Reserves a bubble at an explicit location.
    ///
    /// # Errors
    ///
    /// Returns a memory error if the range is already occupied.
    pub fn reserve_at(mem: &mut AddressSpace, base: u64, len: u64) -> Result<Bubble, MemError> {
        mem.map_region(base, len, RegionKind::Bubble)?;
        Ok(Bubble { base, len })
    }

    /// Base address.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Length in bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the bubble is zero-sized (never true for reserved bubbles).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether `addr` falls inside the bubble range.
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.base && addr < self.base + self.len
    }

    /// Releases the bubble in a freshly spawned slice's address space,
    /// freeing the range for the slice's instrumentation allocations.
    ///
    /// # Errors
    ///
    /// Returns a memory error if the bubble is not mapped (double
    /// release).
    pub fn release(&self, mem: &mut AddressSpace) -> Result<(), MemError> {
        mem.unmap(self.base)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use superpin_vm::mem::AddressSpace;

    #[test]
    fn bubble_excludes_application_mmaps() {
        let mut mem = AddressSpace::new(0x0100_0000);
        let bubble = Bubble::reserve(&mut mem).expect("reserve");
        // A hinted mmap inside the bubble fails while it is mapped.
        assert!(mem.map_anonymous(Some(BUBBLE_BASE), 4096).is_err());
        // Hint-less mmaps never land inside the bubble.
        for _ in 0..8 {
            let addr = mem.map_anonymous(None, 1 << 20).expect("mmap");
            assert!(!bubble.contains(addr), "app mmap {addr:#x} inside bubble");
        }
    }

    #[test]
    fn release_frees_the_range_in_a_slice() {
        let mut master = AddressSpace::new(0x0100_0000);
        let bubble = Bubble::reserve(&mut master).expect("reserve");
        let mut slice = master.fork();
        bubble.release(&mut slice).expect("release");
        // Double release is an error.
        assert!(bubble.release(&mut slice).is_err());
        // Slice-side instrumentation allocations fit in the bubble...
        let addr = slice
            .map_anonymous(Some(BUBBLE_BASE), 1 << 20)
            .expect("cache alloc");
        assert_eq!(addr, BUBBLE_BASE);
        // ...while the master still holds the reservation.
        assert!(master.is_mapped(BUBBLE_BASE));
    }

    #[test]
    fn mappings_stay_congruent_between_master_and_slice() {
        let mut master = AddressSpace::new(0x0100_0000);
        let bubble = Bubble::reserve(&mut master).expect("reserve");
        // Master maps an application region while the bubble is live.
        let app = master.map_anonymous(None, 8192).expect("app mmap");
        let mut slice = master.fork();
        bubble.release(&mut slice).expect("release");
        // Replaying a later master mmap at the same hint succeeds in the
        // slice: precise memory mappings preserved.
        let later = master.map_anonymous(None, 4096).expect("later mmap");
        let replayed = slice.map_anonymous(Some(later), 4096).expect("replay");
        assert_eq!(later, replayed);
        assert!(slice.is_mapped(app));
    }

    #[test]
    fn contains_bounds() {
        let mut mem = AddressSpace::new(0x0100_0000);
        let bubble = Bubble::reserve_at(&mut mem, 0x5000_0000, 4096).expect("reserve");
        assert!(bubble.contains(0x5000_0000));
        assert!(bubble.contains(0x5000_0fff));
        assert!(!bubble.contains(0x5000_1000));
        assert_eq!(bubble.len(), 4096);
        assert!(!bubble.is_empty());
    }
}

//! The SuperPin runner: co-simulates the native master, the control
//! process, and every instrumented slice on the machine model.
//!
//! This is the top of the system — the analogue of running
//! `pin -sp 1 -t tool -- app` on the paper's 8-way Xeon. Virtual time
//! advances in quanta; the runnable tasks (master + running slices)
//! receive fair shares of the machine (`superpin-sched`), the master
//! runs natively under ptrace-style control, slices execute instrumented
//! code with record playback and signature detection, and completed
//! slices merge **in slice order** (paper §4.5).
//!
//! # Epochs and host parallelism
//!
//! Quanta are batched into **epochs** planned by
//! [`EpochPlanner`](superpin_sched::EpochPlanner): spans of quanta over
//! which the runnable set — and with it every per-quantum budget — is
//! frozen. Each epoch runs in three strictly ordered phases:
//!
//! 1. **Master first, serially.** The master advances quantum by quantum
//!    on the supervisor thread. A master event (forced syscall, exit)
//!    truncates the epoch at that quantum, so the following barrier
//!    lands exactly where the classic per-quantum loop would have
//!    reacted.
//! 2. **Slices, in parallel.** Every running slice receives the whole
//!    (possibly truncated) epoch's budget and advances independently —
//!    inline when `threads == 1`, fanned out over a
//!    `std::thread::scope` worker pool otherwise. Slices never touch
//!    the scheduler, the master, or each other, and shared-cache
//!    consistency uses per-epoch snapshots, so host interleaving cannot
//!    leak into any simulated quantity.
//! 3. **Barrier.** Virtual time jumps to the epoch end; freshly compiled
//!    traces are published into the sharded shared index *in slice
//!    order*; completed slices merge in slice order; forks happen.
//!
//! Because every scheduling decision is fixed before workers start and
//! every cross-slice effect is applied in slice order at the barrier,
//! the report is bit-identical for any `threads` value.

use crate::api::SuperTool;
use crate::bubble::Bubble;
use crate::config::SuperPinConfig;
use crate::error::SpError;
use crate::master::{MasterEvent, MasterRuntime};
use crate::report::{SliceReport, SuperPinReport, TimeBreakdown};
use crate::shared::SharedMem;
use crate::signature::{Signature, SignatureStats};
use crate::slice::{Boundary, SliceRuntime, SliceState};
use std::collections::VecDeque;
use std::sync::{mpsc, Arc};
use std::time::Instant;
use superpin_dbi::SharedTraceIndex;
use superpin_sched::{EpochPlanner, QuantumScheduler, SliceEta, Timeline};
use superpin_vm::process::Process;

/// Why the runner wants to fork while no slot is free.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum PendingFork {
    Timer,
    Syscall,
}

/// One epoch's worth of work for one **worker**: its whole share of the
/// runnable slices, dispatched by value in a single message. Slices are
/// moved out of the queue, advanced on the worker, and moved back into
/// their original positions at the barrier. Each job's `usize` is the
/// slice's position in the live queue, which both restores queue order
/// and picks the deterministic first error. Batching per worker (rather
/// than per slice) halves-to-quarters the channel traffic per epoch,
/// which is the dominant synchronization cost at fine epoch grain.
struct EpochBatch<T: SuperTool> {
    /// `(queue position, slice, per-quantum budget)` for each slice.
    jobs: Vec<(usize, SliceRuntime<T>, u64)>,
    quanta: u64,
    epoch_start: u64,
    quantum: u64,
}

type BatchDone<T> = Vec<(usize, SliceRuntime<T>, Result<(), SpError>)>;

/// Host-side (wall-clock) phase timing of one run, from
/// [`SuperPinRunner::run_profiled`].
///
/// Deliberately **not** part of [`SuperPinReport`]: host nanoseconds
/// vary run to run and machine to machine, while the report is
/// bit-identical across thread counts. The bench harness uses this
/// split to report how much of a run is parallelizable slice work —
/// and, on hosts with fewer cores than requested threads, to model the
/// speedup the epoch structure admits (Amdahl over the measured split).
#[derive(Clone, Copy, Debug, Default)]
pub struct HostProfile {
    /// Wall nanoseconds in the serial supervisor sections: control
    /// steps, planning, master quanta, and epoch barriers.
    pub supervisor_ns: u64,
    /// Wall nanoseconds in the slice phase (inline or fanned out).
    pub slice_ns: u64,
}

impl HostProfile {
    /// Total profiled wall nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.supervisor_ns + self.slice_ns
    }

    /// Fraction of the run spent in the (parallelizable) slice phase.
    pub fn slice_fraction(&self) -> f64 {
        self.slice_ns as f64 / (self.total_ns() as f64).max(1.0)
    }

    /// Amdahl projection from the measured split: the wall-clock speedup
    /// if the slice phase were spread over `threads` cores and the
    /// supervisor sections stayed serial.
    pub fn modeled_speedup(&self, threads: usize) -> f64 {
        let parallel = self.slice_ns as f64 / threads.max(1) as f64;
        self.total_ns() as f64 / (self.supervisor_ns as f64 + parallel).max(1.0)
    }
}

/// The slice-execution backend for one run. The pool variant holds
/// channels to workers spawned **once** for the whole run (inside
/// `run`'s `thread::scope`); per-epoch cost is one channel round trip
/// per busy worker, not a thread spawn.
enum WorkerPool<T: SuperTool> {
    /// `threads = 1`: advance slices inline on the supervisor thread.
    Inline,
    /// `threads > 1`: persistent scoped workers fed round-robin.
    Pool {
        senders: Vec<mpsc::Sender<EpochBatch<T>>>,
        results: mpsc::Receiver<BatchDone<T>>,
    },
}

/// Drives one complete SuperPin run. See the crate docs for an example.
pub struct SuperPinRunner<T: SuperTool> {
    cfg: SuperPinConfig,
    scheduler: QuantumScheduler,
    planner: EpochPlanner,
    master: MasterRuntime,
    bubble: Bubble,
    tool_template: T,
    shared: SharedMem,
    /// Live slices in fork order (front = oldest unmerged).
    live: VecDeque<SliceRuntime<T>>,
    finished: Vec<SliceReport>,
    sig_stats: SignatureStats,
    now: u64,
    last_fork: u64,
    master_insts_at_last_fork: u64,
    master_debt: u64,
    master_timeline: Timeline,
    master_exit_cycles: Option<u64>,
    next_slice_num: u32,
    forks_on_timeout: u64,
    forks_on_syscall: u64,
    stall_events: u64,
    stalled: Option<PendingFork>,
    /// Shared compiled-trace index across slices (paper §8 extension).
    /// Slices consult per-epoch snapshots of it, never the live index.
    shared_traces: Option<Arc<SharedTraceIndex>>,
    epochs: u64,
    host_profile: HostProfile,
}

impl<T: SuperTool> SuperPinRunner<T> {
    /// Prepares a run: reserves the memory bubble in the master and wires
    /// up the scheduler. The `process` must be freshly loaded (the first
    /// slice forks from its initial state).
    ///
    /// # Errors
    ///
    /// Returns [`SpError::Mem`] if the bubble range is occupied.
    pub fn new(
        process: Process,
        tool: T,
        shared: SharedMem,
        cfg: SuperPinConfig,
    ) -> Result<SuperPinRunner<T>, SpError> {
        let mut master_process = process;
        let bubble = Bubble::reserve(&mut master_process.mem)?;
        let scheduler = QuantumScheduler::new(cfg.machine, cfg.policy);
        let planner = EpochPlanner::new(cfg.epoch_max_quanta);
        let shared_traces = cfg
            .shared_code_cache
            .then(|| Arc::new(SharedTraceIndex::new()));
        Ok(SuperPinRunner {
            cfg,
            scheduler,
            planner,
            master: MasterRuntime::new(master_process),
            bubble,
            tool_template: tool,
            shared,
            live: VecDeque::new(),
            finished: Vec::new(),
            sig_stats: SignatureStats::default(),
            now: 0,
            last_fork: 0,
            master_insts_at_last_fork: 0,
            master_debt: 0,
            master_timeline: Timeline::new(),
            master_exit_cycles: None,
            next_slice_num: 1,
            forks_on_timeout: 0,
            forks_on_syscall: 0,
            stall_events: 0,
            stalled: None,
            shared_traces,
            epochs: 0,
            host_profile: HostProfile::default(),
        })
    }

    fn running_count(&self) -> usize {
        self.live
            .iter()
            .filter(|slice| slice.state() == SliceState::Running)
            .count()
    }

    /// A fork wakes the previously sleeping slice, so the running count
    /// grows by one; the limit is the `-spmp` maximum of running slices.
    fn can_fork(&self) -> bool {
        self.running_count() < self.cfg.max_slices
    }

    /// Forks a new slice from the master's current state and wakes the
    /// previous slice with `boundary` + the span's records.
    fn fork_slice(&mut self, boundary: Option<Boundary>) -> Result<(), SpError> {
        let num = self.next_slice_num;
        self.next_slice_num += 1;
        let mut slice = SliceRuntime::spawn(
            num,
            self.master.process(),
            &self.tool_template,
            &self.bubble,
            &self.cfg,
            self.now,
        )?;
        if let Some(index) = &self.shared_traces {
            slice.enter_shared_epoch(index.snapshot());
        }
        let records = self.master.take_span_records();
        let span = self.master.process().inst_count() - self.master_insts_at_last_fork;
        if let Some(prev) = self.live.back_mut() {
            let boundary = boundary.expect("boundary required when a slice is sleeping");
            prev.wake(boundary, records, self.now);
            prev.set_span_insts(span);
        }
        self.live.push_back(slice);
        self.last_fork = self.now;
        self.master_insts_at_last_fork = self.master.process().inst_count();
        self.master_debt += self.cfg.cost.fork_base;
        Ok(())
    }

    /// Delivers the final boundary to the last sleeping slice when the
    /// master exits at virtual time `now_cycles`.
    fn deliver_final_boundary(&mut self, now_cycles: u64) {
        let records = self.master.take_span_records();
        let span = self.master.process().inst_count() - self.master_insts_at_last_fork;
        if let Some(last) = self.live.back_mut() {
            if last.state() == SliceState::Sleeping {
                last.wake(Boundary::ProgramExit, records, now_cycles);
                last.set_span_insts(span);
            }
        }
    }

    /// Merges completed slices in slice order, reaping their runtimes.
    fn merge_ready(&mut self) {
        while let Some(front) = self.live.front() {
            if front.state() != SliceState::Done {
                break;
            }
            let mut slice = self.live.pop_front().expect("front exists");
            let num = slice.num();
            slice.tool_mut().inner.on_slice_end(num, &self.shared);
            slice.set_merged();
            self.sig_stats.absorb(&slice.tool().sig_stats);
            self.finished.push(SliceReport {
                num,
                insts: slice.engine().process().inst_count(),
                wake_cycles: slice.wake_cycles().unwrap_or(slice.start_cycles()),
                records_played: slice.records_played(),
                end: slice.end_reason().expect("done slice has a reason"),
                start_cycles: slice.start_cycles(),
                end_cycles: slice.end_cycles().expect("done slice has an end"),
                engine: slice.engine().stats(),
                cache: slice.engine().cache_stats(),
                cow_copies: slice.engine().process().mem.stats().cow_copies,
            });
        }
    }

    /// Handles fork triggers at an epoch barrier: resolves a pending
    /// forced-fork syscall, or performs a timer fork, stalling the master
    /// when no slot is free.
    fn control_step(&mut self) -> Result<(), SpError> {
        if self.master.exited() {
            self.stalled = None;
            return Ok(());
        }
        if self.master.pending_force() {
            if self.can_fork() {
                self.stalled = None;
                let cycles = self.master.resolve_forced_syscall(self.now, &self.cfg)?;
                self.master_debt += cycles;
                self.forks_on_syscall += 1;
                self.fork_slice(Some(Boundary::SyscallEnd))?;
                if self.master.exited() {
                    self.note_master_exit(self.now);
                }
            } else {
                if self.stalled.is_none() {
                    self.stall_events += 1;
                }
                self.stalled = Some(PendingFork::Syscall);
            }
            return Ok(());
        }
        let timeslice = self.cfg.effective_timeslice(self.now);
        // The timer only creates a slice once the master has made forward
        // progress since the last fork — a zero-length slice would be
        // pure overhead (and its boundary state would equal its start
        // state).
        let progressed = self.master.process().inst_count() > self.master_insts_at_last_fork;
        if progressed && self.now.saturating_sub(self.last_fork) >= timeslice {
            if self.can_fork() {
                self.stalled = None;
                let signature = Signature::capture(self.master.process());
                self.forks_on_timeout += 1;
                self.fork_slice(Some(Boundary::Signature(Box::new(signature))))?;
            } else {
                if self.stalled.is_none() {
                    self.stall_events += 1;
                }
                self.stalled = Some(PendingFork::Timer);
            }
        } else {
            self.stalled = None;
        }
        Ok(())
    }

    /// Records the master's exit during the quantum starting at
    /// `quantum_start` and wakes the final slice.
    fn note_master_exit(&mut self, quantum_start: u64) {
        if self.master_exit_cycles.is_none() {
            self.master_exit_cycles = Some(quantum_start + self.cfg.quantum_cycles.max(1));
            self.deliver_final_boundary(quantum_start);
        }
    }

    /// Quanta until the timer-fork deadline, evaluated against the
    /// (possibly adaptive) timeslice at each candidate barrier time.
    /// `None` when no deadline falls within the epoch cap.
    fn fork_deadline_quanta(&self, quantum: u64) -> Option<u64> {
        (1..=self.planner.max_quanta).find(|&k| {
            let barrier = self.now + k * quantum;
            barrier.saturating_sub(self.last_fork) >= self.cfg.effective_timeslice(barrier)
        })
    }

    /// Advances the master `planned` quanta (serially, on the supervisor
    /// thread), truncating the epoch at the quantum where a master event
    /// fires. Returns `(epoch_len, run_quanta_for_timeline)`.
    fn advance_master_epoch(
        &mut self,
        budget: u64,
        planned: u64,
        quantum: u64,
    ) -> Result<(u64, u64), SpError> {
        for j in 0..planned {
            let quantum_start = self.now + j * quantum;
            // Pay fork/ptrace debt out of this quantum first.
            let pay = self.master_debt.min(budget);
            self.master_debt -= pay;
            let remaining = budget - pay;
            if remaining == 0 {
                continue;
            }
            let (used, event) = self.master.advance(remaining, quantum_start, &self.cfg)?;
            // Overshoot (a serviced syscall may exceed the budget) is
            // owed to future quanta.
            self.master_debt += used.saturating_sub(remaining);
            match event {
                MasterEvent::Exited => {
                    self.note_master_exit(quantum_start);
                    // The exit quantum is not recorded as master runtime.
                    return Ok((j + 1, j));
                }
                MasterEvent::NeedForkAtSyscall => {
                    // Barrier here so the control step resolves the fork
                    // exactly one quantum after the syscall parked — the
                    // same instant the per-quantum loop would.
                    return Ok((j + 1, j + 1));
                }
                MasterEvent::None => {}
            }
        }
        Ok((planned, planned))
    }

    /// Advances every running slice through the epoch — inline on the
    /// supervisor thread, or fanned out over the persistent worker pool.
    /// Both paths drive the identical per-quantum
    /// [`SliceRuntime::advance_epoch`] loop, so they are bit-equivalent;
    /// errors are reported for the frontmost slice regardless of which
    /// worker hit one first.
    fn advance_slices_epoch(
        &mut self,
        pool: &mut WorkerPool<T>,
        budgets: &[(u32, u64)],
        quanta: u64,
        epoch_start: u64,
        quantum: u64,
    ) -> Result<(), SpError> {
        let budget_of = |num: u32| budgets.iter().find(|&&(n, _)| n == num).map(|&(_, b)| b);
        let runnable_jobs = self
            .live
            .iter()
            .filter(|slice| {
                slice.state() == SliceState::Running && budget_of(slice.num()).is_some()
            })
            .count();
        let (senders, results) = match pool {
            WorkerPool::Pool { senders, results } if runnable_jobs >= 2 => (senders, results),
            // A single runnable slice gains nothing from a channel round
            // trip; threads = 1 always lands here.
            _ => {
                for slice in self.live.iter_mut() {
                    if slice.state() != SliceState::Running {
                        continue;
                    }
                    let Some(budget) = budget_of(slice.num()) else {
                        continue;
                    };
                    slice.advance_epoch(budget, quanta, epoch_start, quantum)?;
                }
                return Ok(());
            }
        };
        // Move each running slice out of the queue into a per-worker
        // batch (round-robin, by value), leave a placeholder, and
        // reassemble the queue in original order at the barrier. One
        // message each way per busy worker.
        let mut slots: Vec<Option<SliceRuntime<T>>> = self.live.drain(..).map(Some).collect();
        let worker_count = senders.len();
        let mut batches: Vec<Vec<(usize, SliceRuntime<T>, u64)>> =
            (0..worker_count).map(|_| Vec::new()).collect();
        let mut sent = 0usize;
        for (order, slot) in slots.iter_mut().enumerate() {
            let eligible = slot
                .as_ref()
                .is_some_and(|slice| slice.state() == SliceState::Running);
            if !eligible {
                continue;
            }
            let slice = slot.take().expect("eligibility checked");
            let Some(budget) = budget_of(slice.num()) else {
                *slot = Some(slice);
                continue;
            };
            batches[sent % worker_count].push((order, slice, budget));
            sent += 1;
        }
        let mut busy = 0usize;
        for (sender, jobs) in senders.iter().zip(batches) {
            if jobs.is_empty() {
                continue;
            }
            sender
                .send(EpochBatch {
                    jobs,
                    quanta,
                    epoch_start,
                    quantum,
                })
                .expect("worker thread alive");
            busy += 1;
        }
        let mut first_err: Option<(usize, SpError)> = None;
        for _ in 0..busy {
            for (order, slice, outcome) in results.recv().expect("worker thread alive") {
                slots[order] = Some(slice);
                if let Err(err) = outcome {
                    if first_err.as_ref().is_none_or(|&(o, _)| order < o) {
                        first_err = Some((order, err));
                    }
                }
            }
        }
        self.live.extend(
            slots
                .into_iter()
                .map(|slot| slot.expect("all slices returned")),
        );
        match first_err {
            Some((_, err)) => Err(err),
            None => Ok(()),
        }
    }

    /// Epoch-barrier shared-cache synchronization: publish every slice's
    /// fresh compilations into the sharded index **in slice order**, then
    /// hand all slices one common snapshot for the next epoch.
    fn sync_shared_cache(&mut self) {
        let Some(index) = &self.shared_traces else {
            return;
        };
        for slice in self.live.iter_mut() {
            index.publish(slice.take_fresh_traces());
        }
        let snapshot = index.snapshot();
        for slice in self.live.iter_mut() {
            slice.enter_shared_epoch(Arc::clone(&snapshot));
        }
    }

    /// Runs the full simulation to completion and produces the report.
    ///
    /// With `threads > 1` this spawns the worker pool **once** (scoped,
    /// std-only) and keeps it alive for the whole run; the epoch loop
    /// itself is identical for every backend.
    ///
    /// # Errors
    ///
    /// Propagates guest errors and slice-divergence detections.
    pub fn run(self) -> Result<SuperPinReport, SpError> {
        self.run_profiled().map(|(report, _)| report)
    }

    /// Like [`run`](SuperPinRunner::run), but also returns the
    /// host-side [`HostProfile`] phase timing.
    ///
    /// # Errors
    ///
    /// Propagates guest errors and slice-divergence detections.
    pub fn run_profiled(mut self) -> Result<(SuperPinReport, HostProfile), SpError> {
        // "At the start of execution, the application forks off its first
        // instrumented timeslice" (paper §3).
        self.fork_slice(None)?;

        // More workers than the `-spmp` cap can never be fed.
        let workers = self.cfg.threads.min(self.cfg.max_slices);
        if workers <= 1 {
            let report = self.run_epochs(&mut WorkerPool::Inline)?;
            return Ok((report, self.host_profile));
        }
        let report = std::thread::scope(|scope| {
            let (result_tx, results) = mpsc::channel::<BatchDone<T>>();
            let senders = (0..workers)
                .map(|_| {
                    let (tx, rx) = mpsc::channel::<EpochBatch<T>>();
                    let result_tx = result_tx.clone();
                    scope.spawn(move || {
                        while let Ok(batch) = rx.recv() {
                            let EpochBatch {
                                jobs,
                                quanta,
                                epoch_start,
                                quantum,
                            } = batch;
                            let mut done = Vec::with_capacity(jobs.len());
                            for (order, mut slice, budget) in jobs {
                                let outcome =
                                    slice.advance_epoch(budget, quanta, epoch_start, quantum);
                                done.push((order, slice, outcome));
                            }
                            if result_tx.send(done).is_err() {
                                break;
                            }
                        }
                    });
                    tx
                })
                .collect();
            let mut pool = WorkerPool::Pool { senders, results };
            self.run_epochs(&mut pool)
            // `pool` drops at the end of this closure, disconnecting the
            // job channels; workers see the hangup and exit before the
            // scope joins them.
        })?;
        Ok((report, self.host_profile))
    }

    /// The epoch loop (see the module docs for the three-phase shape).
    fn run_epochs(&mut self, pool: &mut WorkerPool<T>) -> Result<SuperPinReport, SpError> {
        let quantum = self.cfg.quantum_cycles.max(1);
        loop {
            // Host timing only — two `Instant` reads per epoch, no
            // effect on any simulated quantity.
            let supervisor_start = Instant::now();
            self.control_step()?;

            // Build the runnable set: master (task 0) + running slices.
            let master_runnable =
                !self.master.exited() && self.stalled.is_none() && !self.master.pending_force();
            let mut runnable: Vec<u64> = Vec::new();
            if master_runnable {
                runnable.push(0);
            }
            let running: Vec<u32> = self
                .live
                .iter()
                .filter(|slice| slice.state() == SliceState::Running)
                .map(SliceRuntime::num)
                .collect();
            runnable.extend(running.iter().map(|&num| num as u64));

            if runnable.is_empty() {
                if self.master.exited() && self.live.is_empty() {
                    break;
                }
                // Master stalled with zero running slices would be a
                // logic error (a slot must be free then); a sleeping-only
                // queue after exit likewise.
                return Err(SpError::NoProgress);
            }

            // Budgets for the whole epoch are fixed here: they depend
            // only on the runnable set, which the barrier structure keeps
            // constant until the next control step.
            let shares = self.scheduler.shares(&runnable);
            let master_budget = master_runnable.then(|| shares[0].budget(quantum));
            let slice_budgets: Vec<(u32, u64)> = shares
                .iter()
                .filter(|share| share.task != 0)
                .map(|share| (share.task as u32, share.budget(quantum)))
                .collect();

            // Plan the epoch: next fork deadline and predicted slice
            // completions, all from virtual state only.
            let deadline = if master_runnable {
                self.fork_deadline_quanta(quantum)
            } else {
                None
            };
            let etas: Vec<(SliceEta, u64)> = self
                .live
                .iter()
                .filter(|slice| slice.state() == SliceState::Running)
                .map(|slice| {
                    let budget = slice_budgets
                        .iter()
                        .find(|(num, _)| *num == slice.num())
                        .map(|&(_, budget)| budget)
                        .unwrap_or(1);
                    (slice.eta(), budget)
                })
                .collect();
            let planned = self.planner.plan(deadline, etas);
            self.epochs += 1;

            // Phase 1: master, serially; a master event truncates the
            // epoch so the barrier lands where the event must be handled.
            let exited_before_epoch = self.master_exit_cycles.is_some();
            let (epoch_len, run_quanta) = match master_budget {
                Some(budget) => self.advance_master_epoch(budget, planned, quantum)?,
                None => (planned, planned),
            };

            // Master timeline for the Figure 6 decomposition.
            if !exited_before_epoch && run_quanta > 0 {
                let label = if master_runnable { "run" } else { "sleep" };
                self.master_timeline
                    .push(self.now, self.now + run_quanta * quantum, label);
            }

            // Phase 2: slices, in parallel across host threads.
            let slice_start = Instant::now();
            self.host_profile.supervisor_ns +=
                slice_start.duration_since(supervisor_start).as_nanos() as u64;
            self.advance_slices_epoch(pool, &slice_budgets, epoch_len, self.now, quantum)?;
            let barrier_start = Instant::now();
            self.host_profile.slice_ns +=
                barrier_start.duration_since(slice_start).as_nanos() as u64;

            // Phase 3: barrier — time, shared-cache publication, merges.
            self.now += epoch_len * quantum;
            self.sync_shared_cache();
            self.merge_ready();
            self.host_profile.supervisor_ns += barrier_start.elapsed().as_nanos() as u64;
        }

        // All slices merged: render the final result.
        let mut fin = self.tool_template.clone();
        fin.fini_shared(&self.shared);

        let master_exit_cycles = self.master_exit_cycles.unwrap_or(self.now);
        let native_cycles = self.master.process().inst_count() * self.cfg.cost.native_cpi;
        let sleep_cycles = self.master_timeline.total("sleep");
        let fork_other_cycles = master_exit_cycles
            .saturating_sub(native_cycles)
            .saturating_sub(sleep_cycles);
        let breakdown = TimeBreakdown {
            native_cycles,
            fork_other_cycles,
            sleep_cycles,
            pipeline_cycles: self.now.saturating_sub(master_exit_cycles),
        };

        Ok(SuperPinReport {
            total_cycles: self.now,
            master_exit_cycles,
            breakdown,
            master_insts: self.master.process().inst_count(),
            master_syscalls: self.master.syscall_count(),
            ptrace: self.master.ptrace_stats(),
            slices: std::mem::take(&mut self.finished),
            sig_stats: self.sig_stats,
            forks_on_timeout: self.forks_on_timeout,
            forks_on_syscall: self.forks_on_syscall,
            stall_events: self.stall_events,
            master_cow_copies: self.master.process().mem.stats().cow_copies,
            epochs: self.epochs,
        })
    }
}

impl<T: SuperTool> std::fmt::Debug for SuperPinRunner<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SuperPinRunner")
            .field("now", &self.now)
            .field("live_slices", &self.live.len())
            .field("finished", &self.finished.len())
            .finish()
    }
}

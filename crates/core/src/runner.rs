//! The SuperPin runner: co-simulates the native master, the control
//! process, and every instrumented slice on the machine model.
//!
//! This is the top of the system — the analogue of running
//! `pin -sp 1 -t tool -- app` on the paper's 8-way Xeon. Virtual time
//! advances in quanta; each quantum the runnable tasks (master + running
//! slices) receive fair shares of the machine (`superpin-sched`), the
//! master runs natively under ptrace-style control, slices execute
//! instrumented code with record playback and signature detection, and
//! completed slices merge **in slice order** (paper §4.5).

use crate::api::SuperTool;
use crate::bubble::Bubble;
use crate::config::SuperPinConfig;
use crate::error::SpError;
use crate::master::{MasterEvent, MasterRuntime};
use crate::report::{SliceReport, SuperPinReport, TimeBreakdown};
use crate::shared::SharedMem;
use crate::signature::{Signature, SignatureStats};
use crate::slice::{Boundary, SliceRuntime, SliceState};
use std::collections::VecDeque;
use superpin_sched::{QuantumScheduler, Timeline};
use superpin_vm::process::Process;

/// Why the runner wants to fork while no slot is free.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum PendingFork {
    Timer,
    Syscall,
}

/// Drives one complete SuperPin run. See the crate docs for an example.
pub struct SuperPinRunner<T: SuperTool> {
    cfg: SuperPinConfig,
    scheduler: QuantumScheduler,
    master: MasterRuntime,
    bubble: Bubble,
    tool_template: T,
    shared: SharedMem,
    /// Live slices in fork order (front = oldest unmerged).
    live: VecDeque<SliceRuntime<T>>,
    finished: Vec<SliceReport>,
    sig_stats: SignatureStats,
    now: u64,
    last_fork: u64,
    master_insts_at_last_fork: u64,
    master_debt: u64,
    master_timeline: Timeline,
    master_exit_cycles: Option<u64>,
    next_slice_num: u32,
    forks_on_timeout: u64,
    forks_on_syscall: u64,
    stall_events: u64,
    stalled: Option<PendingFork>,
    /// Shared compiled-trace index across slices (paper §8 extension).
    shared_traces: Option<std::sync::Arc<std::sync::Mutex<std::collections::HashSet<u64>>>>,
}

impl<T: SuperTool> SuperPinRunner<T> {
    /// Prepares a run: reserves the memory bubble in the master and wires
    /// up the scheduler. The `process` must be freshly loaded (the first
    /// slice forks from its initial state).
    ///
    /// # Errors
    ///
    /// Returns [`SpError::Mem`] if the bubble range is occupied.
    pub fn new(
        process: Process,
        tool: T,
        shared: SharedMem,
        cfg: SuperPinConfig,
    ) -> Result<SuperPinRunner<T>, SpError> {
        let mut master_process = process;
        let bubble = Bubble::reserve(&mut master_process.mem)?;
        let scheduler = QuantumScheduler::new(cfg.machine, cfg.policy);
        let shared_traces = cfg
            .shared_code_cache
            .then(|| std::sync::Arc::new(std::sync::Mutex::new(std::collections::HashSet::new())));
        Ok(SuperPinRunner {
            cfg,
            scheduler,
            master: MasterRuntime::new(master_process),
            bubble,
            tool_template: tool,
            shared,
            live: VecDeque::new(),
            finished: Vec::new(),
            sig_stats: SignatureStats::default(),
            now: 0,
            last_fork: 0,
            master_insts_at_last_fork: 0,
            master_debt: 0,
            master_timeline: Timeline::new(),
            master_exit_cycles: None,
            next_slice_num: 1,
            forks_on_timeout: 0,
            forks_on_syscall: 0,
            stall_events: 0,
            stalled: None,
            shared_traces,
        })
    }

    fn running_count(&self) -> usize {
        self.live
            .iter()
            .filter(|slice| slice.state() == SliceState::Running)
            .count()
    }

    /// A fork wakes the previously sleeping slice, so the running count
    /// grows by one; the limit is the `-spmp` maximum of running slices.
    fn can_fork(&self) -> bool {
        self.running_count() < self.cfg.max_slices
    }

    /// Forks a new slice from the master's current state and wakes the
    /// previous slice with `boundary` + the span's records.
    fn fork_slice(&mut self, boundary: Option<Boundary>) -> Result<(), SpError> {
        let num = self.next_slice_num;
        self.next_slice_num += 1;
        let mut slice = SliceRuntime::spawn(
            num,
            self.master.process(),
            &self.tool_template,
            &self.bubble,
            &self.cfg,
            self.now,
        )?;
        if let Some(index) = &self.shared_traces {
            slice.set_shared_trace_index(std::sync::Arc::clone(index));
        }
        let records = self.master.take_span_records();
        if let Some(prev) = self.live.back_mut() {
            let boundary = boundary.expect("boundary required when a slice is sleeping");
            prev.wake(boundary, records, self.now);
        }
        self.live.push_back(slice);
        self.last_fork = self.now;
        self.master_insts_at_last_fork = self.master.process().inst_count();
        self.master_debt += self.cfg.cost.fork_base;
        Ok(())
    }

    /// Delivers the final boundary to the last sleeping slice when the
    /// master exits.
    fn deliver_final_boundary(&mut self) {
        let records = self.master.take_span_records();
        if let Some(last) = self.live.back_mut() {
            if last.state() == SliceState::Sleeping {
                last.wake(Boundary::ProgramExit, records, self.now);
            }
        }
    }

    /// Merges completed slices in slice order, reaping their runtimes.
    fn merge_ready(&mut self) {
        while let Some(front) = self.live.front() {
            if front.state() != SliceState::Done {
                break;
            }
            let mut slice = self.live.pop_front().expect("front exists");
            let num = slice.num();
            slice.tool_mut().inner.on_slice_end(num, &self.shared);
            slice.set_merged();
            self.sig_stats.absorb(&slice.tool().sig_stats);
            self.finished.push(SliceReport {
                num,
                insts: slice.engine().process().inst_count(),
                wake_cycles: slice.wake_cycles().unwrap_or(slice.start_cycles()),
                records_played: slice.records_played(),
                end: slice.end_reason().expect("done slice has a reason"),
                start_cycles: slice.start_cycles(),
                end_cycles: slice.end_cycles().expect("done slice has an end"),
                engine: slice.engine().stats(),
                cache: slice.engine().cache_stats(),
                cow_copies: slice.engine().process().mem.stats().cow_copies,
            });
        }
    }

    /// Handles fork triggers at a quantum boundary: resolves a pending
    /// forced-fork syscall, or performs a timer fork, stalling the master
    /// when no slot is free.
    fn control_step(&mut self) -> Result<(), SpError> {
        if self.master.exited() {
            self.stalled = None;
            return Ok(());
        }
        if self.master.pending_force() {
            if self.can_fork() {
                if self.stalled.take().is_some() {
                    // Stall just ended.
                }
                let cycles = self.master.resolve_forced_syscall(self.now, &self.cfg)?;
                self.master_debt += cycles;
                self.forks_on_syscall += 1;
                self.fork_slice(Some(Boundary::SyscallEnd))?;
                if self.master.exited() {
                    self.note_master_exit();
                }
            } else {
                if self.stalled.is_none() {
                    self.stall_events += 1;
                }
                self.stalled = Some(PendingFork::Syscall);
            }
            return Ok(());
        }
        let timeslice = self.cfg.effective_timeslice(self.now);
        // The timer only creates a slice once the master has made forward
        // progress since the last fork — a zero-length slice would be
        // pure overhead (and its boundary state would equal its start
        // state).
        let progressed = self.master.process().inst_count() > self.master_insts_at_last_fork;
        if progressed && self.now.saturating_sub(self.last_fork) >= timeslice {
            if self.can_fork() {
                self.stalled = None;
                let signature = Signature::capture(self.master.process());
                self.forks_on_timeout += 1;
                self.fork_slice(Some(Boundary::Signature(Box::new(signature))))?;
            } else {
                if self.stalled.is_none() {
                    self.stall_events += 1;
                }
                self.stalled = Some(PendingFork::Timer);
            }
        } else {
            self.stalled = None;
        }
        Ok(())
    }

    fn note_master_exit(&mut self) {
        if self.master_exit_cycles.is_none() {
            self.master_exit_cycles = Some(self.now + self.cfg.quantum_cycles);
            self.deliver_final_boundary();
        }
    }

    /// Runs the full simulation to completion and produces the report.
    ///
    /// # Errors
    ///
    /// Propagates guest errors and slice-divergence detections.
    pub fn run(mut self) -> Result<SuperPinReport, SpError> {
        // "At the start of execution, the application forks off its first
        // instrumented timeslice" (paper §3).
        self.fork_slice(None)?;

        let quantum = self.cfg.quantum_cycles.max(1);
        loop {
            self.control_step()?;

            // Build the runnable set: master (task 0) + running slices.
            let master_runnable =
                !self.master.exited() && self.stalled.is_none() && !self.master.pending_force();
            let mut runnable: Vec<u64> = Vec::new();
            if master_runnable {
                runnable.push(0);
            }
            let running: Vec<u32> = self
                .live
                .iter()
                .filter(|slice| slice.state() == SliceState::Running)
                .map(SliceRuntime::num)
                .collect();
            runnable.extend(running.iter().map(|&num| num as u64));

            if runnable.is_empty() {
                if self.master.exited() && self.live.is_empty() {
                    break;
                }
                // Master stalled with zero running slices would be a
                // logic error (a slot must be free then); a sleeping-only
                // queue after exit likewise.
                return Err(SpError::NoProgress);
            }

            let shares = self.scheduler.shares(&runnable);
            let mut master_ran = false;
            for share in shares {
                let budget = ((quantum as f64) * share.throughput).max(1.0) as u64;
                if share.task == 0 {
                    master_ran = true;
                    // Pay fork/ptrace debt out of this quantum first.
                    let pay = self.master_debt.min(budget);
                    self.master_debt -= pay;
                    let remaining = budget - pay;
                    if remaining > 0 {
                        let (used, event) = self.master.advance(remaining, self.now, &self.cfg)?;
                        // Overshoot (a serviced syscall may exceed the
                        // budget) is owed to future quanta.
                        self.master_debt += used.saturating_sub(remaining);
                        if event == MasterEvent::Exited {
                            self.note_master_exit();
                        }
                        // NeedForkAtSyscall is resolved by the next
                        // quantum's control step.
                    }
                } else {
                    let num = share.task as u32;
                    let slice = self
                        .live
                        .iter_mut()
                        .find(|slice| slice.num() == num)
                        .expect("runnable slice is live");
                    slice.advance(budget, self.now + quantum)?;
                }
            }

            // Master timeline for the Figure 6 decomposition.
            if self.master_exit_cycles.is_none() {
                let label = if master_ran { "run" } else { "sleep" };
                self.master_timeline
                    .push(self.now, self.now + quantum, label);
            }

            self.now += quantum;
            self.merge_ready();
        }

        // All slices merged: render the final result.
        let mut fin = self.tool_template.clone();
        fin.fini_shared(&self.shared);

        let master_exit_cycles = self.master_exit_cycles.unwrap_or(self.now);
        let native_cycles = self.master.process().inst_count() * self.cfg.cost.native_cpi;
        let sleep_cycles = self.master_timeline.total("sleep");
        let fork_other_cycles = master_exit_cycles
            .saturating_sub(native_cycles)
            .saturating_sub(sleep_cycles);
        let breakdown = TimeBreakdown {
            native_cycles,
            fork_other_cycles,
            sleep_cycles,
            pipeline_cycles: self.now.saturating_sub(master_exit_cycles),
        };

        Ok(SuperPinReport {
            total_cycles: self.now,
            master_exit_cycles,
            breakdown,
            master_insts: self.master.process().inst_count(),
            master_syscalls: self.master.syscall_count(),
            ptrace: self.master.ptrace_stats(),
            slices: self.finished,
            sig_stats: self.sig_stats,
            forks_on_timeout: self.forks_on_timeout,
            forks_on_syscall: self.forks_on_syscall,
            stall_events: self.stall_events,
            master_cow_copies: self.master.process().mem.stats().cow_copies,
        })
    }
}

impl<T: SuperTool> std::fmt::Debug for SuperPinRunner<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SuperPinRunner")
            .field("now", &self.now)
            .field("live_slices", &self.live.len())
            .field("finished", &self.finished.len())
            .finish()
    }
}
